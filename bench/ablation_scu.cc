/**
 * @file
 * Ablations of the SCU design choices the paper calls out:
 *
 *  - pipeline width (Section 5.1's scalability parameter),
 *  - filtering hash capacity (effectiveness vs size trade-off of
 *    Section 4.2),
 *  - grouping group size (Section 4.3's 8-vs-32 discussion).
 *
 * All on the TX1 system with the duplicate-heavy kron dataset.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

harness::RunResult
runWithScu(const scu::ScuParams &sp, harness::Primitive prim)
{
    harness::RunConfig cfg;
    cfg.systemName = "TX1";
    cfg.primitive = prim;
    cfg.dataset = "kron";
    cfg.mode = harness::ScuMode::ScuEnhanced;
    cfg.scale = benchScale();
    cfg.scuOverride = sp;
    return harness::runPrimitive(cfg);
}

void
BM_Width(benchmark::State &state, unsigned width)
{
    scu::ScuParams sp = scu::ScuParams::forTx1();
    sp.pipelineWidth = width;
    for (auto _ : state) {
        auto r = runWithScu(sp, harness::Primitive::Bfs);
        state.counters["cycles"] =
            static_cast<double>(r.totalCycles);
        state.counters["scu_busy"] =
            static_cast<double>(r.scuBusyCycles);
    }
}

void
BM_HashSize(benchmark::State &state, std::uint64_t kb)
{
    scu::ScuParams sp = scu::ScuParams::forTx1();
    sp.filterBfsHash.sizeBytes = kb << 10;
    for (auto _ : state) {
        auto r = runWithScu(sp, harness::Primitive::Bfs);
        state.counters["filtered"] =
            static_cast<double>(r.algMetrics.scuFiltered);
        state.counters["gpu_edge_work"] =
            static_cast<double>(r.algMetrics.gpuEdgeWork);
        state.counters["cycles"] =
            static_cast<double>(r.totalCycles);
    }
}

void
BM_GroupSize(benchmark::State &state, unsigned gsize)
{
    scu::ScuParams sp = scu::ScuParams::forTx1();
    sp.groupSize = gsize;
    for (auto _ : state) {
        auto r = runWithScu(sp, harness::Primitive::Sssp);
        state.counters["coalescing"] = r.coalescingEfficiency;
        state.counters["cycles"] =
            static_cast<double>(r.totalCycles);
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Width, w1, 1u)->Iterations(1);
BENCHMARK_CAPTURE(BM_Width, w2, 2u)->Iterations(1);
BENCHMARK_CAPTURE(BM_Width, w4, 4u)->Iterations(1);
BENCHMARK_CAPTURE(BM_Width, w8, 8u)->Iterations(1);

BENCHMARK_CAPTURE(BM_HashSize, kb8, std::uint64_t{8})
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_HashSize, kb33, std::uint64_t{33})
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_HashSize, kb132, std::uint64_t{132})
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_HashSize, kb528, std::uint64_t{528})
    ->Iterations(1);

BENCHMARK_CAPTURE(BM_GroupSize, g4, 4u)->Iterations(1);
BENCHMARK_CAPTURE(BM_GroupSize, g8, 8u)->Iterations(1);
BENCHMARK_CAPTURE(BM_GroupSize, g32, 32u)->Iterations(1);

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t1("Ablation: SCU pipeline width (BFS, kron, TX1)");
    t1.header({"width", "total cycles", "SCU busy cycles"});
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        scu::ScuParams sp = scu::ScuParams::forTx1();
        sp.pipelineWidth = w;
        auto r = runWithScu(sp, harness::Primitive::Bfs);
        t1.row({std::to_string(w),
                fmt("%.0f", static_cast<double>(r.totalCycles)),
                fmt("%.0f",
                    static_cast<double>(r.scuBusyCycles))});
    }
    t1.print();

    Table t2("Ablation: BFS filtering hash capacity (kron, TX1)");
    t2.header({"hash KB", "duplicates filtered", "GPU edge work",
               "total cycles"});
    for (std::uint64_t kb : {8, 33, 132, 528}) {
        scu::ScuParams sp = scu::ScuParams::forTx1();
        sp.filterBfsHash.sizeBytes = kb << 10;
        auto r = runWithScu(sp, harness::Primitive::Bfs);
        t2.row({std::to_string(kb),
                fmt("%.0f", static_cast<double>(
                                r.algMetrics.scuFiltered)),
                fmt("%.0f", static_cast<double>(
                                r.algMetrics.gpuEdgeWork)),
                fmt("%.0f",
                    static_cast<double>(r.totalCycles))});
    }
    t2.print();

    Table t3("Ablation: grouping group size (SSSP, kron, TX1; "
             "paper picks 8)");
    t3.header({"group size", "GPU coalescing efficiency",
               "total cycles"});
    for (unsigned gs : {4u, 8u, 32u}) {
        scu::ScuParams sp = scu::ScuParams::forTx1();
        sp.groupSize = gs;
        auto r = runWithScu(sp, harness::Primitive::Sssp);
        t3.row({std::to_string(gs),
                fmt("%.3f", r.coalescingEfficiency),
                fmt("%.0f",
                    static_cast<double>(r.totalCycles))});
    }
    t3.print();
    return 0;
}
