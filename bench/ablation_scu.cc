/**
 * @file
 * Ablations of the SCU design choices the paper calls out:
 *
 *  - pipeline width (Section 5.1's scalability parameter),
 *  - filtering hash capacity (effectiveness vs size trade-off of
 *    Section 4.2),
 *  - grouping group size (Section 4.3's 8-vs-32 discussion).
 *
 * All on the TX1 system with the duplicate-heavy kron dataset. Each
 * sweep is one ExperimentPlan with an ablation axis; the three
 * expanded sweeps run as a single parallel batch.
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

harness::ExperimentPlan
tx1KronPlan(harness::Primitive prim)
{
    return harness::ExperimentPlan()
        .systems({"TX1"})
        .primitives({prim})
        .datasets({"kron"})
        .modes({harness::ScuMode::ScuEnhanced})
        .scale(benchScale());
}

} // namespace

int
main(int argc, char **argv)
{
    const sim::FaultPlan faults = parseBenchArgs(argc, argv);

    std::vector<std::pair<std::string, scu::ScuParams>> widths;
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        scu::ScuParams sp = scu::ScuParams::forTx1();
        sp.pipelineWidth = w;
        widths.emplace_back(std::to_string(w), sp);
    }
    auto widthPlan = tx1KronPlan(harness::Primitive::Bfs)
                         .ablate("width", widths)
                         .faults(faults);

    std::vector<std::pair<std::string, scu::ScuParams>> hashes;
    for (std::uint64_t kb : {8, 33, 132, 528}) {
        scu::ScuParams sp = scu::ScuParams::forTx1();
        sp.filterBfsHash.sizeBytes = kb << 10;
        hashes.emplace_back(std::to_string(kb), sp);
    }
    auto hashPlan = tx1KronPlan(harness::Primitive::Bfs)
                        .ablate("hashKB", hashes)
                        .faults(faults);

    std::vector<std::pair<std::string, scu::ScuParams>> groups;
    for (unsigned gs : {4u, 8u, 32u}) {
        scu::ScuParams sp = scu::ScuParams::forTx1();
        sp.groupSize = gs;
        groups.emplace_back(std::to_string(gs), sp);
    }
    auto groupPlan = tx1KronPlan(harness::Primitive::Sssp)
                         .ablate("group", groups)
                         .faults(faults);

    // One batch: the executor interleaves all three sweeps.
    auto runs = widthPlan.expand();
    for (auto &plan : {hashPlan, groupPlan})
        for (auto &r : plan.expand())
            runs.push_back(r);
    std::printf("executing %zu runs on %u workers "
                "(SCUSIM_JOBS to change)...\n",
                runs.size(), harness::executorJobs());
    auto res = harness::runPlan(runs, benchExecutorOptions(faults));

    harness::Table t1(
        "Ablation: SCU pipeline width (BFS, kron, TX1)");
    t1.header({"width", "total cycles", "SCU busy cycles"});
    for (const auto &w : widths) {
        const std::string label =
            "BFS/TX1/kron/scu-enhanced/width=" + w.first;
        const auto *r = res.tryByLabel(label);
        if (!r) {
            const std::string cell = failCell(res.record(label));
            t1.row({w.first, cell, cell});
            continue;
        }
        t1.row({w.first,
                fmt("%.0f", static_cast<double>(r->totalCycles)),
                fmt("%.0f",
                    static_cast<double>(r->scuBusyCycles))});
    }
    t1.print();

    harness::Table t2(
        "Ablation: BFS filtering hash capacity (kron, TX1)");
    t2.header({"hash KB", "duplicates filtered", "GPU edge work",
               "total cycles"});
    for (const auto &h : hashes) {
        const std::string label =
            "BFS/TX1/kron/scu-enhanced/hashKB=" + h.first;
        const auto *r = res.tryByLabel(label);
        if (!r) {
            const std::string cell = failCell(res.record(label));
            t2.row({h.first, cell, cell, cell});
            continue;
        }
        t2.row({h.first,
                fmt("%.0f", static_cast<double>(
                                r->algMetrics.scuFiltered)),
                fmt("%.0f", static_cast<double>(
                                r->algMetrics.gpuEdgeWork)),
                fmt("%.0f",
                    static_cast<double>(r->totalCycles))});
    }
    t2.print();

    harness::Table t3(
        "Ablation: grouping group size (SSSP, kron, TX1; "
        "paper picks 8)");
    t3.header({"group size", "GPU coalescing efficiency",
               "total cycles"});
    for (const auto &g : groups) {
        const std::string label =
            "SSSP/TX1/kron/scu-enhanced/group=" + g.first;
        const auto *r = res.tryByLabel(label);
        if (!r) {
            const std::string cell = failCell(res.record(label));
            t3.row({g.first, cell, cell});
            continue;
        }
        t3.row({g.first, fmt("%.3f", r->coalescingEfficiency),
                fmt("%.0f",
                    static_cast<double>(r->totalCycles))});
    }
    t3.print();

    harness::writeArtifact("ablation_scu", res, {&t1, &t2, &t3});
    return res.failures() ? 1 : 0;
}
