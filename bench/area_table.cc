/**
 * @file
 * Section 6.4: SCU area evaluation — totals, overhead percentages
 * and the per-component split.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "energy/area_model.hh"
#include "harness/system.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

void
BM_Area(benchmark::State &state, std::string system)
{
    for (auto _ : state) {
        auto cfg = harness::SystemConfig::byName(system);
        auto r = energy::scuAreaReport(system, cfg.scu);
        state.counters["scu_mm2"] = r.scuMm2;
        state.counters["overhead_pct"] = r.overheadPercent();
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Area, GTX980, "GTX980")->Iterations(1);
BENCHMARK_CAPTURE(BM_Area, TX1, "TX1")->Iterations(1);

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Section 6.4: SCU area (paper: 13.27 mm2 / 3.3% GTX980,"
            " 3.65 mm2 / 4.1% TX1)");
    t.header({"system", "GPU mm2", "SCU mm2", "overhead %",
              "component", "component mm2"});
    for (const char *sys : {"GTX980", "TX1"}) {
        auto cfg = harness::SystemConfig::byName(sys);
        auto r = energy::scuAreaReport(sys, cfg.scu);
        bool first = true;
        for (const auto &c : r.components) {
            t.row({first ? sys : "",
                   first ? fmt("%.0f", r.gpuMm2) : "",
                   first ? fmt("%.2f", r.scuMm2) : "",
                   first ? fmt("%.1f", r.overheadPercent()) : "",
                   c.name, fmt("%.2f", c.mm2)});
            first = false;
        }
    }
    t.print();
    return 0;
}
