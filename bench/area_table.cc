/**
 * @file
 * Section 6.4: SCU area evaluation — totals, overhead percentages
 * and the per-component split.
 */

#include "bench_common.hh"
#include "energy/area_model.hh"
#include "harness/system.hh"

using namespace scusim;
using namespace scusim::bench;

int
main()
{
    harness::Table t(
        "Section 6.4: SCU area (paper: 13.27 mm2 / 3.3% GTX980,"
        " 3.65 mm2 / 4.1% TX1)");
    t.header({"system", "GPU mm2", "SCU mm2", "overhead %",
              "component", "component mm2"});
    for (const auto &sys : benchSystems()) {
        auto cfg = harness::SystemConfig::byName(sys);
        auto r = energy::scuAreaReport(sys, cfg.scu);
        bool first = true;
        for (const auto &c : r.components) {
            t.row({first ? sys : "",
                   first ? fmt("%.0f", r.gpuMm2) : "",
                   first ? fmt("%.2f", r.scuMm2) : "",
                   first ? fmt("%.1f", r.overheadPercent()) : "",
                   c.name, fmt("%.2f", c.mm2)});
            first = false;
        }
    }
    t.print();
    harness::writeArtifact("area_table", harness::PlanResults(),
                           {&t});
    return 0;
}
