/**
 * @file
 * Shared machinery of the per-figure benchmark binaries: scale
 * selection, run memoization (one simulation per configuration per
 * process) and paper-style table printing.
 *
 * Every binary accepts google-benchmark's usual flags plus the
 * environment variable SCUSIM_SCALE (default 0.05) controlling the
 * dataset scale; EXPERIMENTS.md records results at the default.
 */

#ifndef SCUSIM_BENCH_BENCH_COMMON_HH
#define SCUSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace scusim::bench
{

/** Dataset scale for this process (SCUSIM_SCALE env override). */
inline double
benchScale()
{
    if (const char *s = std::getenv("SCUSIM_SCALE"))
        return std::atof(s);
    return 0.05;
}

/** Names of the six benchmark datasets, Table 5 order. */
inline const std::vector<std::string> &
benchDatasets()
{
    static const std::vector<std::string> d{
        "ca", "cond", "delaunay", "human", "kron", "msdoor"};
    return d;
}

/** Run (or fetch the memoized result of) one configuration. */
inline const harness::RunResult &
runCached(const std::string &system, harness::Primitive prim,
          const std::string &dataset, harness::ScuMode mode)
{
    static std::map<std::string, harness::RunResult> cache;
    std::string key = system + "|" + harness::to_string(prim) + "|" +
                      dataset + "|" + harness::to_string(mode);
    auto it = cache.find(key);
    if (it == cache.end()) {
        harness::RunConfig cfg;
        cfg.systemName = system;
        cfg.primitive = prim;
        cfg.dataset = dataset;
        cfg.mode = mode;
        cfg.scale = benchScale();
        auto r = harness::runPrimitive(cfg);
        if (!r.validated) {
            std::fprintf(stderr,
                         "WARNING: %s failed validation\n",
                         key.c_str());
        }
        it = cache.emplace(key, r).first;
    }
    return it->second;
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::string title) : heading(std::move(title)) {}

    void
    header(const std::vector<std::string> &cols)
    {
        headerRow = cols;
    }

    void
    row(const std::vector<std::string> &cells)
    {
        rows.push_back(cells);
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(headerRow.size(), 0);
        auto widen = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < r.size(); ++i) {
                if (i >= widths.size())
                    widths.resize(i + 1, 0);
                widths[i] = std::max(widths[i], r[i].size());
            }
        };
        widen(headerRow);
        for (const auto &r : rows)
            widen(r);

        std::printf("\n=== %s ===\n", heading.c_str());
        auto print_row = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < r.size(); ++i)
                std::printf("%-*s  ",
                            static_cast<int>(widths[i]),
                            r[i].c_str());
            std::printf("\n");
        };
        print_row(headerRow);
        for (const auto &r : rows)
            print_row(r);
    }

  private:
    std::string heading;
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

} // namespace scusim::bench

#endif // SCUSIM_BENCH_BENCH_COMMON_HH
