/**
 * @file
 * Shared vocabulary of the per-figure benchmark binaries. Each
 * binary declares its run matrix as an harness::ExperimentPlan,
 * executes it on the parallel executor (SCUSIM_JOBS workers), prints
 * the paper-style tables and emits JSON/CSV artifacts via
 * harness::writeArtifact.
 *
 * Environment:
 *   SCUSIM_SCALE        dataset scale factor (default 0.05)
 *   SCUSIM_JOBS         executor worker count (default: all cores)
 *   SCUSIM_ARTIFACT_DIR where artifacts land (default ".")
 */

#ifndef SCUSIM_BENCH_BENCH_COMMON_HH
#define SCUSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/results.hh"

namespace scusim::bench
{

/** Dataset scale for this process (SCUSIM_SCALE env override). */
inline double
benchScale()
{
    if (const char *s = std::getenv("SCUSIM_SCALE"))
        return std::atof(s);
    return 0.05;
}

/** Names of the six benchmark datasets, Table 5 order. */
inline const std::vector<std::string> &
benchDatasets()
{
    static const std::vector<std::string> d{
        "ca", "cond", "delaunay", "human", "kron", "msdoor"};
    return d;
}

/** The two evaluated systems, Tables 3/4 order. */
inline const std::vector<std::string> &
benchSystems()
{
    static const std::vector<std::string> s{"GTX980", "TX1"};
    return s;
}

/** The three primitives of the evaluation. */
inline const std::vector<harness::Primitive> &
benchPrimitives()
{
    static const std::vector<harness::Primitive> p{
        harness::Primitive::Bfs, harness::Primitive::Sssp,
        harness::Primitive::Pr};
    return p;
}

/** The paper's SCU mode for @p prim: PR does not use the enhanced
 *  capabilities (Section 4.6). */
inline harness::ScuMode
scuModeFor(harness::Primitive prim)
{
    return prim == harness::Primitive::Pr
               ? harness::ScuMode::ScuBasic
               : harness::ScuMode::ScuEnhanced;
}

/** Execute @p plan, reporting matrix size and worker count. */
inline harness::PlanResults
runBenchPlan(const harness::ExperimentPlan &plan)
{
    auto runs = plan.expand();
    std::printf("executing %zu runs on %u workers "
                "(SCUSIM_JOBS to change)...\n",
                runs.size(), harness::executorJobs());
    return harness::runPlan(runs);
}

inline std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

/**
 * Cell text for a missing or failed run: "FAIL(<kind>)" with the
 * classified failure kind ("FAIL(missing)" when the plan never
 * produced the cell, "FAIL(error)" for unclassified exceptions).
 * Benches render this instead of dying so one poisoned run degrades
 * a single cell, not the whole table.
 */
inline std::string
failCell(const harness::RunRecord *rec)
{
    if (!rec)
        return "FAIL(missing)";
    if (rec->failure)
        return std::string("FAIL(") + to_string(*rec->failure) + ")";
    return "FAIL(error)";
}

} // namespace scusim::bench

#endif // SCUSIM_BENCH_BENCH_COMMON_HH
