/**
 * @file
 * Shared vocabulary of the per-figure benchmark binaries. Each
 * binary declares its run matrix as an harness::ExperimentPlan,
 * executes it on the parallel executor (SCUSIM_JOBS workers), prints
 * the paper-style tables and emits JSON/CSV artifacts via
 * harness::writeArtifact.
 *
 * Environment:
 *   SCUSIM_SCALE        dataset scale factor (default 0.05)
 *   SCUSIM_JOBS         executor worker count (default: all cores)
 *   SCUSIM_ARTIFACT_DIR where artifacts land (default ".")
 *   SCUSIM_TRACE_MASK   enable per-run tracing (trace-enabled builds)
 *   SCUSIM_TRACE_PERIOD timeseries sampling window, ticks
 *   SCUSIM_PROFILE      print the host-side profiler report
 *
 * Command line (every bench binary):
 *   --inject <kind>@<tick>[x<magnitude>][t<target>]
 *       arm a deterministic fault in every run of the matrix;
 *       repeatable. Kinds: see sim::FaultKind / `--inject help`.
 */

#ifndef SCUSIM_BENCH_BENCH_COMMON_HH
#define SCUSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/results.hh"
#include "sim/fault.hh"

namespace scusim::bench
{

/** Dataset scale for this process (SCUSIM_SCALE env override). */
inline double
benchScale()
{
    if (const char *s = std::getenv("SCUSIM_SCALE"))
        return std::atof(s);
    return 0.05;
}

/** Names of the six benchmark datasets, Table 5 order. */
inline const std::vector<std::string> &
benchDatasets()
{
    static const std::vector<std::string> d{
        "ca", "cond", "delaunay", "human", "kron", "msdoor"};
    return d;
}

/** The two evaluated systems, Tables 3/4 order. */
inline const std::vector<std::string> &
benchSystems()
{
    static const std::vector<std::string> s{"GTX980", "TX1"};
    return s;
}

/** The three primitives of the evaluation. */
inline const std::vector<harness::Primitive> &
benchPrimitives()
{
    static const std::vector<harness::Primitive> p{
        harness::Primitive::Bfs, harness::Primitive::Sssp,
        harness::Primitive::Pr};
    return p;
}

/** The paper's SCU mode for @p prim: PR does not use the enhanced
 *  capabilities (Section 4.6). */
inline harness::ScuMode
scuModeFor(harness::Primitive prim)
{
    return prim == harness::Primitive::Pr
               ? harness::ScuMode::ScuBasic
               : harness::ScuMode::ScuEnhanced;
}

/**
 * Parse the shared bench command line: every "--inject <spec>" arms
 * one fault (syntax "<kind>@<tick>[x<magnitude>][t<target>]", see
 * sim::parseFaultSpec) in every run of the plan. Exits with usage on
 * anything unrecognized, so a typo can't silently run pristine.
 */
inline sim::FaultPlan
parseBenchArgs(int argc, char **argv)
{
    sim::FaultPlan faults;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--inject" && i + 1 < argc) {
            faults.add(sim::parseFaultSpec(argv[++i]));
            continue;
        }
        std::fprintf(stderr,
                     "usage: %s [--inject "
                     "<kind>@<tick>[x<magnitude>][t<target>]]...\n",
                     argv[0]);
        std::exit(2);
    }
    return faults;
}

/**
 * Executor options shared by the bench binaries: tracing defaults
 * from the environment, per-run trace artifacts next to the bench's
 * own artifacts.
 */
inline harness::ExecutorOptions
benchExecutorOptions()
{
    harness::ExecutorOptions opts;
    opts.trace = trace::TraceConfig::fromEnv();
    opts.traceDir = ".";
    if (const char *d = std::getenv("SCUSIM_ARTIFACT_DIR"))
        opts.traceDir = d;
    return opts;
}

/**
 * Executor options for a plan that carries @p faults. An armed fault
 * plan also arms the detection guards: a chaos run without a tick
 * budget or stall window would just absorb the fault into an
 * absurd-but-"successful" cycle count instead of rendering the
 * FAIL(<kind>) cell the injection exists to demonstrate. Both bounds
 * are far above anything a healthy run reaches, and they are only
 * applied when faults are armed, so pristine runs keep the
 * executor's usual (wall-clock-only) supervision.
 */
inline harness::ExecutorOptions
benchExecutorOptions(const sim::FaultPlan &faults)
{
    harness::ExecutorOptions opts = benchExecutorOptions();
    if (!faults.empty()) {
        if (!opts.guards.tickBudget)
            opts.guards.tickBudget = 1'000'000'000;
        if (!opts.guards.stallWindow)
            opts.guards.stallWindow = 1'000'000;
    }
    return opts;
}

/** Execute @p plan, reporting matrix size and worker count. */
inline harness::PlanResults
runBenchPlan(const harness::ExperimentPlan &plan)
{
    auto runs = plan.expand();
    std::printf("executing %zu runs on %u workers "
                "(SCUSIM_JOBS to change)...\n",
                runs.size(), harness::executorJobs());
    return harness::runPlan(runs, benchExecutorOptions());
}

/**
 * Execute @p plan with the shared command line applied: parses
 * --inject faults into every run (arming the chaos guards, see
 * above), then runs as runBenchPlan does.
 */
inline harness::PlanResults
runBenchPlan(harness::ExperimentPlan plan, int argc, char **argv)
{
    sim::FaultPlan faults = parseBenchArgs(argc, argv);
    harness::ExecutorOptions opts = benchExecutorOptions(faults);
    auto runs = plan.faults(std::move(faults)).expand();
    std::printf("executing %zu runs on %u workers "
                "(SCUSIM_JOBS to change)...\n",
                runs.size(), harness::executorJobs());
    return harness::runPlan(runs, opts);
}

inline std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

/**
 * Cell text for a missing or failed run: "FAIL(<kind>)" with the
 * classified failure kind ("FAIL(missing)" when the plan never
 * produced the cell, "FAIL(error)" for unclassified exceptions).
 * Benches render this instead of dying so one poisoned run degrades
 * a single cell, not the whole table.
 */
inline std::string
failCell(const harness::RunRecord *rec)
{
    if (!rec)
        return "FAIL(missing)";
    if (rec->failure)
        return std::string("FAIL(") + to_string(*rec->failure) + ")";
    return "FAIL(error)";
}

} // namespace scusim::bench

#endif // SCUSIM_BENCH_BENCH_COMMON_HH
