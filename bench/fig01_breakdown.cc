/**
 * @file
 * Figure 1: breakdown of GPU-only execution time into stream
 * compaction and the rest of the graph algorithm, for BFS, SSSP and
 * PR on the GTX980 and TX1 systems (averaged over the six datasets,
 * as in the paper).
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main(int argc, char **argv)
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives(benchPrimitives())
            .datasets(benchDatasets())
            .modes({harness::ScuMode::GpuOnly})
            .scale(benchScale()),
        argc, argv);

    harness::Table t(
        "Figure 1: % of GPU-only time in stream compaction "
        "(paper: 25-55%)");
    t.header({"primitive", "system", "compaction %", "rest %"});
    for (auto prim : benchPrimitives()) {
        for (const auto &sys : benchSystems()) {
            double share = 0;
            std::size_t ok = 0;
            std::string fail;
            for (const auto &ds : benchDatasets()) {
                if (const auto *r = res.tryGet(
                        sys, prim, ds, harness::ScuMode::GpuOnly)) {
                    share += r->compactionShare();
                    ++ok;
                } else if (fail.empty()) {
                    fail = failCell(res.cell(
                        sys, prim, ds, harness::ScuMode::GpuOnly));
                }
            }
            if (!ok) {
                t.row({harness::to_string(prim), sys, fail, fail});
                continue;
            }
            share /= static_cast<double>(ok);
            t.row({harness::to_string(prim), sys,
                   fmt("%.1f", 100.0 * share),
                   fmt("%.1f", 100.0 * (1 - share))});
        }
    }
    t.print();
    harness::writeArtifact("fig01_breakdown", res, {&t});
    return res.failures() ? 1 : 0;
}
