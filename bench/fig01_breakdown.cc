/**
 * @file
 * Figure 1: breakdown of GPU-only execution time into stream
 * compaction and the rest of the graph algorithm, for BFS, SSSP and
 * PR on the GTX980 and TX1 systems (averaged over the six datasets,
 * as in the paper).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

double
avgCompactionShare(const std::string &system,
                   harness::Primitive prim)
{
    double sum = 0;
    for (const auto &ds : benchDatasets())
        sum += runCached(system, prim, ds,
                         harness::ScuMode::GpuOnly)
                   .compactionShare();
    return sum / static_cast<double>(benchDatasets().size());
}

void
BM_Breakdown(benchmark::State &state, std::string system,
             harness::Primitive prim)
{
    for (auto _ : state) {
        double share = avgCompactionShare(system, prim);
        state.counters["compaction_pct"] = 100.0 * share;
        state.counters["rest_pct"] = 100.0 * (1.0 - share);
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Breakdown, BFS_GTX980, "GTX980",
                  harness::Primitive::Bfs)->Iterations(1);
BENCHMARK_CAPTURE(BM_Breakdown, BFS_TX1, "TX1",
                  harness::Primitive::Bfs)->Iterations(1);
BENCHMARK_CAPTURE(BM_Breakdown, SSSP_GTX980, "GTX980",
                  harness::Primitive::Sssp)->Iterations(1);
BENCHMARK_CAPTURE(BM_Breakdown, SSSP_TX1, "TX1",
                  harness::Primitive::Sssp)->Iterations(1);
BENCHMARK_CAPTURE(BM_Breakdown, PR_GTX980, "GTX980",
                  harness::Primitive::Pr)->Iterations(1);
BENCHMARK_CAPTURE(BM_Breakdown, PR_TX1, "TX1",
                  harness::Primitive::Pr)->Iterations(1);

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Figure 1: % of GPU-only time in stream compaction "
            "(paper: 25-55%)");
    t.header({"primitive", "system", "compaction %", "rest %"});
    for (auto prim : {harness::Primitive::Bfs,
                      harness::Primitive::Sssp,
                      harness::Primitive::Pr}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            double s = avgCompactionShare(sys, prim);
            t.row({harness::to_string(prim), sys,
                   fmt("%.1f", 100.0 * s),
                   fmt("%.1f", 100.0 * (1 - s))});
        }
    }
    t.print();
    return 0;
}
