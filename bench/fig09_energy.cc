/**
 * @file
 * Figure 9: normalized energy of the SCU-enhanced system (GPU/SCU
 * split), relative to the GPU-only baseline, for BFS / SSSP / PR on
 * every dataset and both systems.
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main()
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives(benchPrimitives())
            .datasets(benchDatasets())
            .modesFor([](harness::Primitive p) {
                return std::vector<harness::ScuMode>{
                    harness::ScuMode::GpuOnly, scuModeFor(p)};
            })
            .scale(benchScale()));

    harness::Table t(
        "Figure 9: normalized energy, SCU system vs GPU-only "
        "baseline (lower is better; paper avg: 0.153 GTX980, "
        "0.31 TX1)");
    t.header({"primitive", "system", "dataset", "norm energy",
              "gpu share", "scu share"});
    for (auto prim : benchPrimitives()) {
        for (const auto &sys : benchSystems()) {
            double avg = 0;
            for (const auto &ds : benchDatasets()) {
                const auto &base = res.get(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto &scu =
                    res.get(sys, prim, ds, scuModeFor(prim));
                double norm =
                    scu.energy.totalJ() / base.energy.totalJ();
                avg += norm;
                t.row({harness::to_string(prim), sys, ds,
                       fmt("%.3f", norm),
                       fmt("%.2f", scu.energy.gpuSideJ() /
                                       scu.energy.totalJ()),
                       fmt("%.2f", scu.energy.scuSideJ() /
                                       scu.energy.totalJ())});
            }
            t.row({harness::to_string(prim), sys, "AVG",
                   fmt("%.3f",
                       avg / static_cast<double>(
                                 benchDatasets().size())),
                   "", ""});
        }
    }
    t.print();
    harness::writeArtifact("fig09_energy", res, {&t});
    return res.failures() ? 1 : 0;
}
