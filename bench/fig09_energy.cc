/**
 * @file
 * Figure 9: normalized energy of the SCU-enhanced system (GPU/SCU
 * split), relative to the GPU-only baseline, for BFS / SSSP / PR on
 * every dataset and both systems.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

void
BM_Energy(benchmark::State &state, std::string system,
          harness::Primitive prim, std::string dataset)
{
    for (auto _ : state) {
        const auto &base = runCached(system, prim, dataset,
                                     harness::ScuMode::GpuOnly);
        const auto mode = prim == harness::Primitive::Pr
                              ? harness::ScuMode::ScuBasic
                              : harness::ScuMode::ScuEnhanced;
        const auto &scu = runCached(system, prim, dataset, mode);
        double norm = scu.energy.totalJ() / base.energy.totalJ();
        state.counters["norm_energy"] = norm;
        state.counters["gpu_share"] =
            scu.energy.gpuSideJ() / scu.energy.totalJ();
        state.counters["scu_share"] =
            scu.energy.scuSideJ() / scu.energy.totalJ();
    }
}

void
registerAll()
{
    for (auto prim : {harness::Primitive::Bfs,
                      harness::Primitive::Sssp,
                      harness::Primitive::Pr}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            for (const auto &ds : benchDatasets()) {
                std::string name = "fig09/" +
                                   harness::to_string(prim) + "/" +
                                   sys + "/" + ds;
                ::benchmark::RegisterBenchmark(
                    name.c_str(),
                    [sys, prim, ds](benchmark::State &st) {
                        BM_Energy(st, sys, prim, ds);
                    })
                    ->Iterations(1);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Figure 9: normalized energy, SCU system vs GPU-only "
            "baseline (lower is better; paper avg: 0.153 GTX980, "
            "0.31 TX1)");
    t.header({"primitive", "system", "dataset", "norm energy",
              "gpu share", "scu share"});
    for (auto prim : {harness::Primitive::Bfs,
                      harness::Primitive::Sssp,
                      harness::Primitive::Pr}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            double avg = 0;
            for (const auto &ds : benchDatasets()) {
                const auto &base = runCached(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto mode =
                    prim == harness::Primitive::Pr
                        ? harness::ScuMode::ScuBasic
                        : harness::ScuMode::ScuEnhanced;
                const auto &scu = runCached(sys, prim, ds, mode);
                double norm =
                    scu.energy.totalJ() / base.energy.totalJ();
                avg += norm;
                t.row({harness::to_string(prim), sys, ds,
                       fmt("%.3f", norm),
                       fmt("%.2f", scu.energy.gpuSideJ() /
                                       scu.energy.totalJ()),
                       fmt("%.2f", scu.energy.scuSideJ() /
                                       scu.energy.totalJ())});
            }
            t.row({harness::to_string(prim), sys, "AVG",
                   fmt("%.3f",
                       avg / static_cast<double>(
                                 benchDatasets().size())),
                   "", ""});
        }
    }
    t.print();
    return 0;
}
