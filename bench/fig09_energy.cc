/**
 * @file
 * Figure 9: normalized energy of the SCU-enhanced system (GPU/SCU
 * split), relative to the GPU-only baseline, for BFS / SSSP / PR on
 * every dataset and both systems.
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main(int argc, char **argv)
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives(benchPrimitives())
            .datasets(benchDatasets())
            .modesFor([](harness::Primitive p) {
                return std::vector<harness::ScuMode>{
                    harness::ScuMode::GpuOnly, scuModeFor(p)};
            })
            .scale(benchScale()),
        argc, argv);

    harness::Table t(
        "Figure 9: normalized energy, SCU system vs GPU-only "
        "baseline (lower is better; paper avg: 0.153 GTX980, "
        "0.31 TX1)");
    t.header({"primitive", "system", "dataset", "norm energy",
              "gpu share", "scu share"});
    for (auto prim : benchPrimitives()) {
        for (const auto &sys : benchSystems()) {
            double avg = 0;
            std::size_t ok = 0;
            for (const auto &ds : benchDatasets()) {
                const auto *base = res.tryGet(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto *scu =
                    res.tryGet(sys, prim, ds, scuModeFor(prim));
                if (!base || !scu) {
                    const auto *bad =
                        !base ? res.cell(sys, prim, ds,
                                         harness::ScuMode::GpuOnly)
                              : res.cell(sys, prim, ds,
                                         scuModeFor(prim));
                    t.row({harness::to_string(prim), sys, ds,
                           failCell(bad), failCell(bad),
                           failCell(bad)});
                    continue;
                }
                double norm =
                    scu->energy.totalJ() / base->energy.totalJ();
                avg += norm;
                ++ok;
                t.row({harness::to_string(prim), sys, ds,
                       fmt("%.3f", norm),
                       fmt("%.2f", scu->energy.gpuSideJ() /
                                       scu->energy.totalJ()),
                       fmt("%.2f", scu->energy.scuSideJ() /
                                       scu->energy.totalJ())});
            }
            t.row({harness::to_string(prim), sys, "AVG",
                   ok ? fmt("%.3f", avg / static_cast<double>(ok))
                      : "FAIL(missing)",
                   "", ""});
        }
    }
    t.print();
    harness::writeArtifact("fig09_energy", res, {&t});
    return res.failures() ? 1 : 0;
}
