/**
 * @file
 * Figure 10: normalized execution time of the SCU system (GPU/SCU
 * split) relative to the GPU-only baseline, for BFS / SSSP / PR on
 * every dataset and both systems.
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main(int argc, char **argv)
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives(benchPrimitives())
            .datasets(benchDatasets())
            .modesFor([](harness::Primitive p) {
                return std::vector<harness::ScuMode>{
                    harness::ScuMode::GpuOnly, scuModeFor(p)};
            })
            .scale(benchScale()),
        argc, argv);

    harness::Table t(
        "Figure 10: normalized time, SCU system vs GPU-only "
        "(lower is better; paper avg speedups: 1.37x GTX980, "
        "2.32x TX1)");
    t.header({"primitive", "system", "dataset", "norm time",
              "speedup"});
    for (auto prim : benchPrimitives()) {
        for (const auto &sys : benchSystems()) {
            double avg_speedup = 0;
            std::size_t ok = 0;
            for (const auto &ds : benchDatasets()) {
                const auto *base = res.tryGet(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto *scu =
                    res.tryGet(sys, prim, ds, scuModeFor(prim));
                if (!base || !scu) {
                    const auto *bad =
                        !base ? res.cell(sys, prim, ds,
                                         harness::ScuMode::GpuOnly)
                              : res.cell(sys, prim, ds,
                                         scuModeFor(prim));
                    t.row({harness::to_string(prim), sys, ds,
                           failCell(bad), failCell(bad)});
                    continue;
                }
                double norm =
                    static_cast<double>(scu->totalCycles) /
                    static_cast<double>(base->totalCycles);
                avg_speedup += 1.0 / norm;
                ++ok;
                t.row({harness::to_string(prim), sys, ds,
                       fmt("%.3f", norm),
                       fmt("%.2fx", 1.0 / norm)});
            }
            t.row({harness::to_string(prim), sys, "AVG", "",
                   ok ? fmt("%.2fx",
                            avg_speedup / static_cast<double>(ok))
                      : "FAIL(missing)"});
        }
    }
    t.print();
    harness::writeArtifact("fig10_time", res, {&t});
    return res.failures() ? 1 : 0;
}
