/**
 * @file
 * Figure 10: normalized execution time of the SCU system (GPU/SCU
 * split) relative to the GPU-only baseline, for BFS / SSSP / PR on
 * every dataset and both systems.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

harness::ScuMode
scuModeFor(harness::Primitive prim)
{
    // PR does not use the enhanced capabilities (Section 4.6).
    return prim == harness::Primitive::Pr
               ? harness::ScuMode::ScuBasic
               : harness::ScuMode::ScuEnhanced;
}

void
BM_Time(benchmark::State &state, std::string system,
        harness::Primitive prim, std::string dataset)
{
    for (auto _ : state) {
        const auto &base = runCached(system, prim, dataset,
                                     harness::ScuMode::GpuOnly);
        const auto &scu =
            runCached(system, prim, dataset, scuModeFor(prim));
        state.counters["norm_time"] =
            static_cast<double>(scu.totalCycles) /
            static_cast<double>(base.totalCycles);
        state.counters["speedup"] =
            static_cast<double>(base.totalCycles) /
            static_cast<double>(scu.totalCycles);
    }
}

void
registerAll()
{
    for (auto prim : {harness::Primitive::Bfs,
                      harness::Primitive::Sssp,
                      harness::Primitive::Pr}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            for (const auto &ds : benchDatasets()) {
                std::string name = "fig10/" +
                                   harness::to_string(prim) + "/" +
                                   sys + "/" + ds;
                ::benchmark::RegisterBenchmark(
                    name.c_str(),
                    [sys, prim, ds](benchmark::State &st) {
                        BM_Time(st, sys, prim, ds);
                    })
                    ->Iterations(1);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Figure 10: normalized time, SCU system vs GPU-only "
            "(lower is better; paper avg speedups: 1.37x GTX980, "
            "2.32x TX1)");
    t.header({"primitive", "system", "dataset", "norm time",
              "speedup"});
    for (auto prim : {harness::Primitive::Bfs,
                      harness::Primitive::Sssp,
                      harness::Primitive::Pr}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            double avg_speedup = 0;
            for (const auto &ds : benchDatasets()) {
                const auto &base = runCached(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto &scu =
                    runCached(sys, prim, ds, scuModeFor(prim));
                double norm =
                    static_cast<double>(scu.totalCycles) /
                    static_cast<double>(base.totalCycles);
                avg_speedup += 1.0 / norm;
                t.row({harness::to_string(prim), sys, ds,
                       fmt("%.3f", norm), fmt("%.2fx", 1.0 / norm)});
            }
            t.row({harness::to_string(prim), sys, "AVG", "",
                   fmt("%.2fx",
                       avg_speedup / static_cast<double>(
                                         benchDatasets().size()))});
        }
    }
    t.print();
    return 0;
}
