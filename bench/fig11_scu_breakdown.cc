/**
 * @file
 * Figure 11: speedup and energy-reduction breakdown between the
 * basic SCU (Section 3) and the enhanced SCU with filtering and
 * grouping (Section 4), for BFS and SSSP on both systems. Also
 * reports the Section 6.3 claim: the fraction of GPU instructions
 * the filtering removes.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main(int argc, char **argv)
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives({harness::Primitive::Bfs,
                         harness::Primitive::Sssp})
            .datasets(benchDatasets())
            .modes({harness::ScuMode::GpuOnly,
                    harness::ScuMode::ScuBasic,
                    harness::ScuMode::ScuEnhanced})
            .scale(benchScale()),
        argc, argv);

    harness::Table t(
        "Figure 11: basic vs enhanced SCU (dataset-average; "
        "paper: BFS TX1 3.83x / SSSP TX1 3.24x enhanced "
        "speedup; basic ~1.5x)");
    t.header({"primitive", "system", "basic speedup",
              "enhanced speedup", "basic energy red",
              "enhanced energy red", "GPU instr reduction %"});
    for (auto prim :
         {harness::Primitive::Bfs, harness::Primitive::Sssp}) {
        for (const auto &sys : benchSystems()) {
            double basicSp = 0, enhSp = 0, basicEn = 0, enhEn = 0,
                   instrRed = 0;
            std::size_t ok = 0;
            std::string fail;
            for (const auto &ds : benchDatasets()) {
                const auto *base = res.tryGet(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto *basic = res.tryGet(
                    sys, prim, ds, harness::ScuMode::ScuBasic);
                const auto *enh = res.tryGet(
                    sys, prim, ds, harness::ScuMode::ScuEnhanced);
                if (!base || !basic || !enh) {
                    if (fail.empty()) {
                        const auto mode =
                            !base ? harness::ScuMode::GpuOnly
                            : !basic ? harness::ScuMode::ScuBasic
                                     : harness::ScuMode::ScuEnhanced;
                        fail = failCell(
                            res.cell(sys, prim, ds, mode));
                    }
                    continue;
                }
                ++ok;
                basicSp += static_cast<double>(base->totalCycles) /
                           static_cast<double>(basic->totalCycles);
                enhSp += static_cast<double>(base->totalCycles) /
                         static_cast<double>(enh->totalCycles);
                basicEn +=
                    base->energy.totalJ() / basic->energy.totalJ();
                enhEn +=
                    base->energy.totalJ() / enh->energy.totalJ();
                instrRed +=
                    100.0 *
                    (1.0 -
                     enh->gpuThreadInstrs /
                         std::max(1.0, basic->gpuThreadInstrs));
            }
            if (!ok) {
                t.row({harness::to_string(prim), sys, fail, fail,
                       fail, fail, fail});
                continue;
            }
            const double n = static_cast<double>(ok);
            t.row({harness::to_string(prim), sys,
                   fmt("%.2fx", basicSp / n),
                   fmt("%.2fx", enhSp / n),
                   fmt("%.2fx", basicEn / n),
                   fmt("%.2fx", enhEn / n),
                   fmt("%.1f", instrRed / n)});
        }
    }
    t.print();
    harness::writeArtifact("fig11_scu_breakdown", res, {&t});
    return res.failures() ? 1 : 0;
}
