/**
 * @file
 * Figure 11: speedup and energy-reduction breakdown between the
 * basic SCU (Section 3) and the enhanced SCU with filtering and
 * grouping (Section 4), for BFS and SSSP on both systems. Also
 * reports the Section 6.3 claim: the fraction of GPU instructions
 * the filtering removes.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

struct Cell
{
    double basicSpeedup = 0, enhSpeedup = 0;
    double basicEnergyRed = 0, enhEnergyRed = 0;
    double instrReductionPct = 0;
};

Cell
computeCell(const std::string &system, harness::Primitive prim)
{
    Cell c;
    double n = 0;
    for (const auto &ds : benchDatasets()) {
        const auto &base = runCached(system, prim, ds,
                                     harness::ScuMode::GpuOnly);
        const auto &basic = runCached(system, prim, ds,
                                      harness::ScuMode::ScuBasic);
        const auto &enh = runCached(system, prim, ds,
                                    harness::ScuMode::ScuEnhanced);
        c.basicSpeedup += static_cast<double>(base.totalCycles) /
                          static_cast<double>(basic.totalCycles);
        c.enhSpeedup += static_cast<double>(base.totalCycles) /
                        static_cast<double>(enh.totalCycles);
        c.basicEnergyRed +=
            base.energy.totalJ() / basic.energy.totalJ();
        c.enhEnergyRed +=
            base.energy.totalJ() / enh.energy.totalJ();
        c.instrReductionPct +=
            100.0 *
            (1.0 - enh.gpuThreadInstrs /
                       std::max(1.0, basic.gpuThreadInstrs));
        n += 1;
    }
    c.basicSpeedup /= n;
    c.enhSpeedup /= n;
    c.basicEnergyRed /= n;
    c.enhEnergyRed /= n;
    c.instrReductionPct /= n;
    return c;
}

void
BM_Fig11(benchmark::State &state, std::string system,
         harness::Primitive prim)
{
    for (auto _ : state) {
        Cell c = computeCell(system, prim);
        state.counters["basic_speedup"] = c.basicSpeedup;
        state.counters["enhanced_speedup"] = c.enhSpeedup;
        state.counters["basic_energy_red"] = c.basicEnergyRed;
        state.counters["enhanced_energy_red"] = c.enhEnergyRed;
        state.counters["gpu_instr_reduction_pct"] =
            c.instrReductionPct;
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Fig11, BFS_GTX980, "GTX980",
                  harness::Primitive::Bfs)->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig11, BFS_TX1, "TX1",
                  harness::Primitive::Bfs)->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig11, SSSP_GTX980, "GTX980",
                  harness::Primitive::Sssp)->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig11, SSSP_TX1, "TX1",
                  harness::Primitive::Sssp)->Iterations(1);

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Figure 11: basic vs enhanced SCU (dataset-average; "
            "paper: BFS TX1 3.83x / SSSP TX1 3.24x enhanced "
            "speedup; basic ~1.5x)");
    t.header({"primitive", "system", "basic speedup",
              "enhanced speedup", "basic energy red",
              "enhanced energy red", "GPU instr reduction %"});
    for (auto prim :
         {harness::Primitive::Bfs, harness::Primitive::Sssp}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            Cell c = computeCell(sys, prim);
            t.row({harness::to_string(prim), sys,
                   fmt("%.2fx", c.basicSpeedup),
                   fmt("%.2fx", c.enhSpeedup),
                   fmt("%.2fx", c.basicEnergyRed),
                   fmt("%.2fx", c.enhEnergyRed),
                   fmt("%.1f", c.instrReductionPct)});
        }
    }
    t.print();
    return 0;
}
