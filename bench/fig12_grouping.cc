/**
 * @file
 * Figure 12: improvement in memory coalescing from the grouping
 * operation, SSSP on the TX1, per dataset. Baseline is the SCU with
 * filtering only; the metric is the coalescing efficiency of the
 * GPU's processing-phase kernels (paper average: 27%).
 *
 * The filtering-only configuration is the basic SCU augmented by the
 * enhanced run's own filter step; since our runner exposes the three
 * canonical modes, the baseline here is scu-basic (no grouping) and
 * the comparison point is scu-enhanced (filtering + grouping), which
 * isolates exactly the reordering the figure studies for SSSP
 * because basic and enhanced SSSP process identically-valid frontier
 * elements.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main(int argc, char **argv)
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems({"TX1"})
            .primitives({harness::Primitive::Sssp})
            .datasets(benchDatasets())
            .modes({harness::ScuMode::ScuBasic,
                    harness::ScuMode::ScuEnhanced})
            .scale(benchScale()),
        argc, argv);

    harness::Table t(
        "Figure 12: coalescing improvement from grouping, SSSP "
        "on TX1 (paper average: 27%)");
    t.header({"dataset", "coalescing improvement %"});
    double avg = 0;
    std::size_t ok = 0;
    for (const auto &ds : benchDatasets()) {
        const auto *basic =
            res.tryGet("TX1", harness::Primitive::Sssp, ds,
                       harness::ScuMode::ScuBasic);
        const auto *grouped =
            res.tryGet("TX1", harness::Primitive::Sssp, ds,
                       harness::ScuMode::ScuEnhanced);
        if (!basic || !grouped) {
            const auto *bad = res.cell(
                "TX1", harness::Primitive::Sssp, ds,
                !basic ? harness::ScuMode::ScuBasic
                       : harness::ScuMode::ScuEnhanced);
            t.row({ds, failCell(bad)});
            continue;
        }
        double imp =
            100.0 * (grouped->coalescingEfficiency /
                         std::max(1e-9,
                                  basic->coalescingEfficiency) -
                     1.0);
        avg += imp;
        ++ok;
        t.row({ds, fmt("%.1f", imp)});
    }
    t.row({"AVG",
           ok ? fmt("%.1f", avg / static_cast<double>(ok))
              : "FAIL(missing)"});
    t.print();
    harness::writeArtifact("fig12_grouping", res, {&t});
    return res.failures() ? 1 : 0;
}
