/**
 * @file
 * Figure 12: improvement in memory coalescing from the grouping
 * operation, SSSP on the TX1, per dataset. Baseline is the SCU with
 * filtering only; the metric is the coalescing efficiency of the
 * GPU's processing-phase kernels (paper average: 27%).
 *
 * The filtering-only configuration is the basic SCU augmented by the
 * enhanced run's own filter step; since our runner exposes the three
 * canonical modes, the baseline here is scu-basic (no grouping) and
 * the comparison point is scu-enhanced (filtering + grouping), which
 * isolates exactly the reordering the figure studies for SSSP
 * because basic and enhanced SSSP process identically-valid frontier
 * elements.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

double
improvementPct(const std::string &ds)
{
    const auto &basic = runCached("TX1", harness::Primitive::Sssp,
                                  ds, harness::ScuMode::ScuBasic);
    const auto &grouped =
        runCached("TX1", harness::Primitive::Sssp, ds,
                  harness::ScuMode::ScuEnhanced);
    return 100.0 * (grouped.coalescingEfficiency /
                        std::max(1e-9,
                                 basic.coalescingEfficiency) -
                    1.0);
}

void
BM_Grouping(benchmark::State &state, std::string ds)
{
    for (auto _ : state)
        state.counters["coalescing_improvement_pct"] =
            improvementPct(ds);
}

void
registerAll()
{
    for (const auto &ds : benchDatasets()) {
        std::string name = "fig12/SSSP/TX1/" + ds;
        ::benchmark::RegisterBenchmark(
            name.c_str(), [ds](benchmark::State &st) {
                BM_Grouping(st, ds);
            })
            ->Iterations(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Figure 12: coalescing improvement from grouping, SSSP "
            "on TX1 (paper average: 27%)");
    t.header({"dataset", "coalescing improvement %"});
    double avg = 0;
    for (const auto &ds : benchDatasets()) {
        double imp = improvementPct(ds);
        avg += imp;
        t.row({ds, fmt("%.1f", imp)});
    }
    t.row({"AVG",
           fmt("%.1f",
               avg / static_cast<double>(benchDatasets().size()))});
    t.print();
    return 0;
}
