/**
 * @file
 * Figure 13: DRAM bandwidth utilization of the GPU-only system and
 * of the system with the SCU, for BFS / SSSP / PR on both GPUs
 * (dataset average). The paper's observation: the SCU system lowers
 * utilization on the GTX980 (more traffic saved than time) and can
 * raise it on the TX1 (more time saved than traffic).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

harness::ScuMode
scuModeFor(harness::Primitive prim)
{
    return prim == harness::Primitive::Pr
               ? harness::ScuMode::ScuBasic
               : harness::ScuMode::ScuEnhanced;
}

std::pair<double, double>
utilization(const std::string &system, harness::Primitive prim)
{
    double base = 0, scu = 0;
    for (const auto &ds : benchDatasets()) {
        base += runCached(system, prim, ds,
                          harness::ScuMode::GpuOnly)
                    .bwUtilization;
        scu += runCached(system, prim, ds, scuModeFor(prim))
                   .bwUtilization;
    }
    double n = static_cast<double>(benchDatasets().size());
    return {base / n, scu / n};
}

void
BM_Bandwidth(benchmark::State &state, std::string system,
             harness::Primitive prim)
{
    for (auto _ : state) {
        auto [base, scu] = utilization(system, prim);
        state.counters["gpu_only_bw_pct"] = 100.0 * base;
        state.counters["scu_system_bw_pct"] = 100.0 * scu;
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Bandwidth, BFS_GTX980, "GTX980",
                  harness::Primitive::Bfs)->Iterations(1);
BENCHMARK_CAPTURE(BM_Bandwidth, BFS_TX1, "TX1",
                  harness::Primitive::Bfs)->Iterations(1);
BENCHMARK_CAPTURE(BM_Bandwidth, SSSP_GTX980, "GTX980",
                  harness::Primitive::Sssp)->Iterations(1);
BENCHMARK_CAPTURE(BM_Bandwidth, SSSP_TX1, "TX1",
                  harness::Primitive::Sssp)->Iterations(1);
BENCHMARK_CAPTURE(BM_Bandwidth, PR_GTX980, "GTX980",
                  harness::Primitive::Pr)->Iterations(1);
BENCHMARK_CAPTURE(BM_Bandwidth, PR_TX1, "TX1",
                  harness::Primitive::Pr)->Iterations(1);

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t("Figure 13: memory bandwidth utilization (% of peak), "
            "GPU-only vs GPU+SCU");
    t.header({"primitive", "system", "GPU-only %", "GPU+SCU %"});
    for (auto prim : {harness::Primitive::Bfs,
                      harness::Primitive::Sssp,
                      harness::Primitive::Pr}) {
        for (const char *sys : {"GTX980", "TX1"}) {
            auto [base, scu] = utilization(sys, prim);
            t.row({harness::to_string(prim), sys,
                   fmt("%.1f", 100.0 * base),
                   fmt("%.1f", 100.0 * scu)});
        }
    }
    t.print();
    return 0;
}
