/**
 * @file
 * Figure 13: DRAM bandwidth utilization of the GPU-only system and
 * of the system with the SCU, for BFS / SSSP / PR on both GPUs
 * (dataset average). The paper's observation: the SCU system lowers
 * utilization on the GTX980 (more traffic saved than time) and can
 * raise it on the TX1 (more time saved than traffic).
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main()
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives(benchPrimitives())
            .datasets(benchDatasets())
            .modesFor([](harness::Primitive p) {
                return std::vector<harness::ScuMode>{
                    harness::ScuMode::GpuOnly, scuModeFor(p)};
            })
            .scale(benchScale()));

    harness::Table t(
        "Figure 13: memory bandwidth utilization (% of peak), "
        "GPU-only vs GPU+SCU");
    t.header({"primitive", "system", "GPU-only %", "GPU+SCU %"});
    for (auto prim : benchPrimitives()) {
        for (const auto &sys : benchSystems()) {
            double base = 0, scu = 0;
            for (const auto &ds : benchDatasets()) {
                base += res.get(sys, prim, ds,
                                harness::ScuMode::GpuOnly)
                            .bwUtilization;
                scu += res.get(sys, prim, ds, scuModeFor(prim))
                           .bwUtilization;
            }
            const double n =
                static_cast<double>(benchDatasets().size());
            t.row({harness::to_string(prim), sys,
                   fmt("%.1f", 100.0 * base / n),
                   fmt("%.1f", 100.0 * scu / n)});
        }
    }
    t.print();
    harness::writeArtifact("fig13_bandwidth", res, {&t});
    return res.failures() ? 1 : 0;
}
