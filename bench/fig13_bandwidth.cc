/**
 * @file
 * Figure 13: DRAM bandwidth utilization of the GPU-only system and
 * of the system with the SCU, for BFS / SSSP / PR on both GPUs
 * (dataset average). The paper's observation: the SCU system lowers
 * utilization on the GTX980 (more traffic saved than time) and can
 * raise it on the TX1 (more time saved than traffic).
 */

#include "bench_common.hh"

using namespace scusim;
using namespace scusim::bench;

int
main(int argc, char **argv)
{
    auto res = runBenchPlan(
        harness::ExperimentPlan()
            .systems(benchSystems())
            .primitives(benchPrimitives())
            .datasets(benchDatasets())
            .modesFor([](harness::Primitive p) {
                return std::vector<harness::ScuMode>{
                    harness::ScuMode::GpuOnly, scuModeFor(p)};
            })
            .scale(benchScale()),
        argc, argv);

    harness::Table t(
        "Figure 13: memory bandwidth utilization (% of peak), "
        "GPU-only vs GPU+SCU");
    t.header({"primitive", "system", "GPU-only %", "GPU+SCU %"});
    for (auto prim : benchPrimitives()) {
        for (const auto &sys : benchSystems()) {
            double base = 0, scu = 0;
            std::size_t ok = 0;
            std::string fail;
            for (const auto &ds : benchDatasets()) {
                const auto *b = res.tryGet(
                    sys, prim, ds, harness::ScuMode::GpuOnly);
                const auto *s =
                    res.tryGet(sys, prim, ds, scuModeFor(prim));
                if (!b || !s) {
                    if (fail.empty()) {
                        fail = failCell(res.cell(
                            sys, prim, ds,
                            !b ? harness::ScuMode::GpuOnly
                               : scuModeFor(prim)));
                    }
                    continue;
                }
                base += b->bwUtilization;
                scu += s->bwUtilization;
                ++ok;
            }
            if (!ok) {
                t.row({harness::to_string(prim), sys, fail, fail});
                continue;
            }
            const double n = static_cast<double>(ok);
            t.row({harness::to_string(prim), sys,
                   fmt("%.1f", 100.0 * base / n),
                   fmt("%.1f", 100.0 * scu / n)});
        }
    }
    t.print();
    harness::writeArtifact("fig13_bandwidth", res, {&t});
    return res.failures() ? 1 : 0;
}
