/**
 * @file
 * Tier-2 self-timing benchmark of the simulation core itself: runs
 * the paper's figure workloads under both schedulers (the reference
 * polling loop vs the event-driven default) and reports wall-clock
 * seconds, simulated-ticks-per-second and the resulting speedup per
 * workload. Emits BENCH_core.json (under SCUSIM_ARTIFACT_DIR,
 * default the working directory) so tools/trend can track simulator
 * performance across commits.
 *
 * The executor, memoization and the disk cache are all bypassed —
 * each cell is one direct runPrimitive() call on a pre-built graph,
 * so the timing covers exactly the simulation core. Datasets are
 * synthesized (and interned) before any timer starts.
 *
 * Usage: perf_core [--smoke]
 *   --smoke   one tiny workload, single rep (the CI wiring check;
 *             the numbers mean nothing at that scale)
 * Environment:
 *   SCUSIM_SCALE       dataset scale (default 0.05)
 *   SCUSIM_PERF_REPS   reps per cell, best-of (default 3)
 *   SCUSIM_PROFILE     also print the host-side profiler breakdown
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/results.hh"
#include "harness/runner.hh"
#include "sim/simulation.hh"
#include "trace/profiler.hh"

using namespace scusim;
using namespace scusim::harness;
using sim::SchedulerMode;
using sim::Simulation;

namespace
{

struct Timing
{
    double seconds = 0;
    Tick simTicks = 0;
};

/** Best-of-@p reps wall-clock of one run under @p mode. */
Timing
timeRun(const RunConfig &cfg, SchedulerMode mode, unsigned reps)
{
    Simulation::overrideDefaultScheduler(mode);
    Timing best;
    for (unsigned r = 0; r < reps; ++r) {
        // Host-side wall clock: this bench *measures* the simulator,
        // it does not feed results. simlint: allow(nondeterminism)
        const auto t0 = std::chrono::steady_clock::now();
        RunResult res = runPrimitive(cfg);
        const auto t1 = // simlint: allow(nondeterminism)
            std::chrono::steady_clock::now();
        const double sec =
            std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || sec < best.seconds) {
            best.seconds = sec;
            best.simTicks = res.totalCycles;
        }
        if (!res.validated)
            std::fprintf(stderr,
                         "warning: workload failed validation\n");
    }
    Simulation::clearDefaultSchedulerOverride();
    return best;
}

std::string
workloadLabel(const RunConfig &cfg)
{
    return to_string(cfg.primitive) + "/" + cfg.systemName + "/" +
           cfg.dataset + "/" + to_string(cfg.mode) + "@" +
           bench::fmt("%g", cfg.scale);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
        return 2;
    }

    double scale = bench::benchScale();
    unsigned reps = 3;
    if (const char *s = std::getenv("SCUSIM_PERF_REPS"))
        reps = std::max(1, std::atoi(s));
    if (smoke) {
        scale = std::min(scale, 0.01);
        reps = 1;
    }

    // The figure workloads the event-driven scheduler targets. The
    // headline is the memory-stall-heavy regime of the paper's
    // Figure 10 BFS: on the high-diameter delaunay mesh at small
    // scale the frontier stays tiny, so the GTX980's 16 SMs spend
    // most serviced ticks blocked on memory — exactly where per-tick
    // polling wastes the most work. The remaining workloads cover
    // the three primitives' phase mixes at the regular bench scale.
    std::vector<RunConfig> workloads;
    {
        RunConfig cfg;
        cfg.systemName = "GTX980";
        cfg.primitive = Primitive::Bfs;
        cfg.mode = ScuMode::GpuOnly;
        cfg.dataset = "delaunay";
        cfg.scale = std::min(scale, 0.02); // stall-heavy regime
        workloads.push_back(cfg);
        if (!smoke) {
            cfg.dataset = "cond";
            cfg.scale = scale;
            workloads.push_back(cfg);
            cfg.mode = bench::scuModeFor(Primitive::Bfs);
            workloads.push_back(cfg);
            cfg.primitive = Primitive::Sssp;
            cfg.mode = bench::scuModeFor(Primitive::Sssp);
            workloads.push_back(cfg);
            cfg.primitive = Primitive::Pr;
            cfg.mode = bench::scuModeFor(Primitive::Pr);
            workloads.push_back(cfg);
        }
    }

    if (trace::Profiler::envEnabled())
        trace::Profiler::instance().setEnabled(true);

    // Intern every dataset before any timer runs.
    for (const RunConfig &cfg : workloads)
        cachedDataset(cfg.dataset, cfg.scale, cfg.seed);

    std::printf("timing %zu workloads, best of %u rep%s, "
                "scale %g...\n",
                workloads.size(), reps, reps == 1 ? "" : "s",
                scale);

    Table table("Simulation core: event-driven vs polling");
    table.header({"workload", "sim ticks", "polling s", "event s",
                  "speedup", "Mticks/s"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"perf_core\",\n  \"schema\": 1,\n"
         << "  \"scale\": " << scale << ",\n  \"workloads\": [\n";

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const RunConfig &cfg = workloads[i];
        const std::string label = workloadLabel(cfg);
        const Timing polling =
            timeRun(cfg, SchedulerMode::Polling, reps);
        const Timing event =
            timeRun(cfg, SchedulerMode::EventDriven, reps);
        const double speedup =
            event.seconds > 0 ? polling.seconds / event.seconds : 0;
        const double mticks =
            event.seconds > 0
                ? static_cast<double>(event.simTicks) /
                      event.seconds / 1e6
                : 0;

        table.row({label, std::to_string(event.simTicks),
                   bench::fmt("%.3f", polling.seconds),
                   bench::fmt("%.3f", event.seconds),
                   bench::fmt("%.2fx", speedup),
                   bench::fmt("%.1f", mticks)});

        json << "    {\"label\": \"" << jsonEscape(label)
             << "\", \"simTicks\": " << event.simTicks
             << ", \"pollingSec\": "
             << bench::fmt("%.6f", polling.seconds)
             << ", \"eventSec\": "
             << bench::fmt("%.6f", event.seconds)
             << ", \"speedup\": " << bench::fmt("%.3f", speedup)
             << ", \"eventTicksPerSec\": "
             << bench::fmt("%.0f",
                           mticks * 1e6)
             << "}" << (i + 1 < workloads.size() ? "," : "")
             << "\n";
    }
    json << "  ]\n}\n";

    table.print();

    if (trace::Profiler::instance().enabled()) {
        std::ostringstream os;
        trace::Profiler::instance().report(os);
        std::printf("%s\n", os.str().c_str());
    }

    std::string dir = ".";
    if (const char *d = std::getenv("SCUSIM_ARTIFACT_DIR"))
        dir = d;
    const std::string path = dir + "/BENCH_core.json";
    std::ofstream out(path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
