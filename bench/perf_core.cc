/**
 * @file
 * Tier-2 self-timing benchmark of the simulation core itself: runs
 * the paper's figure workloads under both schedulers (the reference
 * polling loop vs the event-driven default) and reports wall-clock
 * seconds, simulated-ticks-per-second and the resulting speedup per
 * workload. Emits BENCH_core.json (under SCUSIM_ARTIFACT_DIR,
 * default the working directory) so tools/trend can track simulator
 * performance across commits.
 *
 * The executor, memoization and the disk cache are all bypassed —
 * each cell is one direct runPrimitive() call on a pre-built graph,
 * so the timing covers exactly the simulation core. Datasets are
 * synthesized (and interned) before any timer starts.
 *
 * A second table times Sm::tick directly: a standalone SM rig runs
 * synthetic warp programs under the linear Reference issue path vs
 * the SoA+mask default, isolating the scheduler hot path from the
 * rest of the model. Those rows carry "kind": "smtick" in the JSON
 * (reference seconds reuse the pollingSec key, SoA seconds the
 * eventSec key, so downstream tooling keeps one row shape).
 *
 * Usage: perf_core [--smoke]
 *   --smoke   one tiny workload, single rep (the CI wiring check;
 *             the numbers mean nothing at that scale)
 * Environment:
 *   SCUSIM_SCALE         dataset scale (default 0.05)
 *   SCUSIM_PERF_REPS     reps per cell, best-of (default 3)
 *   SCUSIM_SMTICK_WARPS  warps per Sm::tick microbench run
 *   SCUSIM_PROFILE       also print the host-side profiler breakdown
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "bench_common.hh"
#include "common/bits.hh"
#include "gpu/sm.hh"
#include "harness/results.hh"
#include "harness/runner.hh"
#include "mem/mem_system.hh"
#include "sim/clock.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"
#include "trace/profiler.hh"

using namespace scusim;
using namespace scusim::harness;
using sim::SchedulerMode;
using sim::Simulation;

namespace
{

struct Timing
{
    double seconds = 0;
    Tick simTicks = 0;
};

/** Best-of-@p reps wall-clock of one run under @p mode. */
Timing
timeRun(const RunConfig &cfg, SchedulerMode mode, unsigned reps)
{
    Simulation::overrideDefaultScheduler(mode);
    Timing best;
    for (unsigned r = 0; r < reps; ++r) {
        // Host-side wall clock: this bench *measures* the simulator,
        // it does not feed results. simlint: allow(nondeterminism)
        const auto t0 = std::chrono::steady_clock::now();
        RunResult res = runPrimitive(cfg);
        const auto t1 = // simlint: allow(nondeterminism)
            std::chrono::steady_clock::now();
        const double sec =
            std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || sec < best.seconds) {
            best.seconds = sec;
            best.simTicks = res.totalCycles;
        }
        if (!res.validated)
            std::fprintf(stderr,
                         "warning: workload failed validation\n");
    }
    Simulation::clearDefaultSchedulerOverride();
    return best;
}

std::string
workloadLabel(const RunConfig &cfg)
{
    return to_string(cfg.primitive) + "/" + cfg.systemName + "/" +
           cfg.dataset + "/" + to_string(cfg.mode) + "@" +
           bench::fmt("%g", cfg.scale);
}

/**
 * Synthetic warp for the Sm::tick microbench. The programs pin the
 * regimes the issue-path rewrite targets:
 *  - allbusy: long ALU runs, so some warp is issuable nearly every
 *    cycle and the per-tick scan dominates — the regime where the
 *    cond workloads live;
 *  - coalesced: load/compute mix whose lanes merge to one line;
 *  - divergent: scattered loads, heavy coalescer + MSHR pressure.
 */
void
buildSmTickWarp(const std::string &prog, std::uint64_t i,
                gpu::Warp &out)
{
    out.threads = 32;
    auto compute = [&](std::uint32_t count) {
        gpu::WarpInstr wi;
        wi.kind = gpu::ThreadOp::Kind::Compute;
        wi.computeCount = count;
        out.instrs.push_back(std::move(wi));
    };
    auto load = [&](bool coalesced, unsigned op) {
        gpu::WarpInstr wi;
        wi.kind = gpu::ThreadOp::Kind::Load;
        wi.laneMask = maskLow(32);
        wi.laneAddrs.resize(32);
        for (unsigned l = 0; l < 32; ++l) {
            wi.laneAddrs[l] =
                coalesced
                    ? Addr{0x100000} + (i * 8 + op) * 128 + l * 4
                    : (mixBits(i * 997 + op * 131 + l) & 0x3FFFFF) *
                          64;
        }
        out.instrs.push_back(std::move(wi));
    };

    if (prog == "allbusy-compute") {
        for (unsigned k = 0; k < 40; ++k)
            compute(4);
    } else if (prog == "coalesced-load") {
        for (unsigned k = 0; k < 10; ++k) {
            compute(2);
            load(true, k);
        }
    } else { // divergent-load
        for (unsigned k = 0; k < 10; ++k) {
            compute(1);
            load(false, k);
        }
    }
}

/**
 * Drive one standalone SM over @p warps copies of @p prog on the
 * given issue path, the way the event scheduler would (service busy
 * ticks, fast-forward pure stalls). Returns wall seconds of the
 * drive loop and the serviced-cycle count.
 */
Timing
runSmTick(gpu::SmIssuePath path, const std::string &prog,
          std::uint64_t warps)
{
    gpu::StreamingMultiprocessor::overrideDefaultIssuePath(path);
    gpu::GpuParams params = gpu::GpuParams::gtx980();
    sim::ClockDomain clk(params.freqHz);
    stats::StatGroup root("smtick");
    Simulation simulation;
    mem::MemSystem memsys(params.memsys, clk, &root);
    gpu::StreamingMultiprocessor sm(params, 0, &memsys, &root,
                                    &simulation);
    simulation.addClocked(&sm, "sm0");
    gpu::StreamingMultiprocessor::clearDefaultIssuePathOverride();

    auto next = std::make_shared<std::uint64_t>(0);
    sm.beginKernel(
        [next, warps, &prog](gpu::Warp &out) {
            if (*next >= warps)
                return false;
            buildSmTickWarp(prog, (*next)++, out);
            return true;
        },
        nullptr);

    // Host-side wall clock around the drive loop only; this bench
    // measures the simulator. simlint: allow(nondeterminism)
    const auto t0 = std::chrono::steady_clock::now();
    Tick now = 0;
    while (true) {
        if (sm.busy(now)) {
            sm.tick(now);
            ++now;
            continue;
        }
        const Tick wake = sm.nextWakeTick();
        if (wake == tickNever)
            break;
        now = std::max(now + 1, wake);
    }
    const auto t1 = // simlint: allow(nondeterminism)
        std::chrono::steady_clock::now();
    sm.endKernel(now);
    return {std::chrono::duration<double>(t1 - t0).count(),
            static_cast<Tick>(sm.activeCycles())};
}

/** Best-of-@p reps Sm::tick drive. */
Timing
timeSmTick(gpu::SmIssuePath path, const std::string &prog,
           std::uint64_t warps, unsigned reps)
{
    Timing best;
    for (unsigned r = 0; r < reps; ++r) {
        const Timing t = runSmTick(path, prog, warps);
        if (r == 0 || t.seconds < best.seconds)
            best = t;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
        return 2;
    }

    double scale = bench::benchScale();
    unsigned reps = 3;
    if (const char *s = std::getenv("SCUSIM_PERF_REPS"))
        reps = std::max(1, std::atoi(s));
    if (smoke) {
        scale = std::min(scale, 0.01);
        reps = 1;
    }

    // The figure workloads the event-driven scheduler targets. The
    // headline is the memory-stall-heavy regime of the paper's
    // Figure 10 BFS: on the high-diameter delaunay mesh at small
    // scale the frontier stays tiny, so the GTX980's 16 SMs spend
    // most serviced ticks blocked on memory — exactly where per-tick
    // polling wastes the most work. The remaining workloads cover
    // the three primitives' phase mixes at the regular bench scale.
    std::vector<RunConfig> workloads;
    {
        RunConfig cfg;
        cfg.systemName = "GTX980";
        cfg.primitive = Primitive::Bfs;
        cfg.mode = ScuMode::GpuOnly;
        cfg.dataset = "delaunay";
        cfg.scale = std::min(scale, 0.02); // stall-heavy regime
        workloads.push_back(cfg);
        if (!smoke) {
            cfg.dataset = "cond";
            cfg.scale = scale;
            workloads.push_back(cfg);
            cfg.mode = bench::scuModeFor(Primitive::Bfs);
            workloads.push_back(cfg);
            cfg.primitive = Primitive::Sssp;
            cfg.mode = bench::scuModeFor(Primitive::Sssp);
            workloads.push_back(cfg);
            cfg.primitive = Primitive::Pr;
            cfg.mode = bench::scuModeFor(Primitive::Pr);
            workloads.push_back(cfg);
        }
    }

    if (trace::Profiler::envEnabled())
        trace::Profiler::instance().setEnabled(true);

    // Intern every dataset before any timer runs.
    for (const RunConfig &cfg : workloads)
        cachedDataset(cfg.dataset, cfg.scale, cfg.seed);

    std::printf("timing %zu workloads, best of %u rep%s, "
                "scale %g...\n",
                workloads.size(), reps, reps == 1 ? "" : "s",
                scale);

    Table table("Simulation core: event-driven vs polling");
    table.header({"workload", "sim ticks", "polling s", "event s",
                  "speedup", "Mticks/s"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"perf_core\",\n  \"schema\": 2,\n"
         << "  \"scale\": " << scale << ",\n  \"workloads\": [\n";

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const RunConfig &cfg = workloads[i];
        const std::string label = workloadLabel(cfg);
        const Timing polling =
            timeRun(cfg, SchedulerMode::Polling, reps);
        const Timing event =
            timeRun(cfg, SchedulerMode::EventDriven, reps);
        const double speedup =
            event.seconds > 0 ? polling.seconds / event.seconds : 0;
        const double mticks =
            event.seconds > 0
                ? static_cast<double>(event.simTicks) /
                      event.seconds / 1e6
                : 0;

        table.row({label, std::to_string(event.simTicks),
                   bench::fmt("%.3f", polling.seconds),
                   bench::fmt("%.3f", event.seconds),
                   bench::fmt("%.2fx", speedup),
                   bench::fmt("%.1f", mticks)});

        json << "    {\"label\": \"" << jsonEscape(label)
             << "\", \"kind\": \"scheduler\""
             << ", \"simTicks\": " << event.simTicks
             << ", \"pollingSec\": "
             << bench::fmt("%.6f", polling.seconds)
             << ", \"eventSec\": "
             << bench::fmt("%.6f", event.seconds)
             << ", \"speedup\": " << bench::fmt("%.3f", speedup)
             << ", \"eventTicksPerSec\": "
             << bench::fmt("%.0f",
                           mticks * 1e6)
             << "},\n";
    }

    // --- Sm::tick microbench: reference scan vs SoA+mask path ---
    std::uint64_t smWarps = smoke ? 256 : 16384;
    if (const char *w = std::getenv("SCUSIM_SMTICK_WARPS"))
        smWarps = std::max(1L, std::atol(w));
    std::vector<std::string> programs{"allbusy-compute"};
    if (!smoke) {
        programs.push_back("coalesced-load");
        programs.push_back("divergent-load");
    }

    Table smTable("Sm::tick microbench: reference scan vs SoA+mask");
    smTable.header({"program", "serviced ticks", "reference s",
                    "soa s", "speedup", "Mticks/s"});

    for (std::size_t i = 0; i < programs.size(); ++i) {
        const std::string &prog = programs[i];
        const std::string label =
            "smtick/" + prog + "@" + std::to_string(smWarps) + "w";
        const Timing ref = timeSmTick(gpu::SmIssuePath::Reference,
                                      prog, smWarps, reps);
        const Timing soa = timeSmTick(gpu::SmIssuePath::SoaMasked,
                                      prog, smWarps, reps);
        const double speedup =
            soa.seconds > 0 ? ref.seconds / soa.seconds : 0;
        const double mticks =
            soa.seconds > 0
                ? static_cast<double>(soa.simTicks) / soa.seconds /
                      1e6
                : 0;

        smTable.row({prog, std::to_string(soa.simTicks),
                     bench::fmt("%.3f", ref.seconds),
                     bench::fmt("%.3f", soa.seconds),
                     bench::fmt("%.2fx", speedup),
                     bench::fmt("%.1f", mticks)});

        json << "    {\"label\": \"" << jsonEscape(label)
             << "\", \"kind\": \"smtick\""
             << ", \"simTicks\": " << soa.simTicks
             << ", \"pollingSec\": "
             << bench::fmt("%.6f", ref.seconds)
             << ", \"eventSec\": " << bench::fmt("%.6f", soa.seconds)
             << ", \"speedup\": " << bench::fmt("%.3f", speedup)
             << ", \"eventTicksPerSec\": "
             << bench::fmt("%.0f", mticks * 1e6) << "}"
             << (i + 1 < programs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    table.print();
    smTable.print();

    if (trace::Profiler::instance().enabled()) {
        std::ostringstream os;
        trace::Profiler::instance().report(os);
        std::printf("%s\n", os.str().c_str());
    }

    std::string dir = ".";
    if (const char *d = std::getenv("SCUSIM_ARTIFACT_DIR"))
        dir = d;
    const std::string path = dir + "/BENCH_core.json";
    std::ofstream out(path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
