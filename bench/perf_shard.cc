/**
 * @file
 * Sharded-scaling benchmark: the three primitives on both modeled
 * systems at deviceCount 1/2/4, reporting per-device SCU filter hit
 * rates and interconnect traffic as the graph is cut into more
 * fragments. Emits BENCH_shard.json (under SCUSIM_ARTIFACT_DIR,
 * default the working directory) so tools/trend can track how
 * sharding shifts filtering effectiveness and boundary traffic
 * across commits.
 *
 * Usage: perf_shard [--smoke]
 *   --smoke   GTX980 only, deviceCount 1/2, tiny scale (CI wiring)
 * Environment:
 *   SCUSIM_SCALE   dataset scale (default 0.03)
 *   SCUSIM_JOBS    executor worker count (default: all cores)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/results.hh"
#include "harness/runner.hh"

using namespace scusim;
using namespace scusim::harness;

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
        return 2;
    }

    double scale = 0.03;
    if (const char *s = std::getenv("SCUSIM_SCALE"))
        scale = std::atof(s);
    std::vector<std::string> systems = bench::benchSystems();
    std::vector<unsigned> deviceCounts{1, 2, 4};
    if (smoke) {
        scale = std::min(scale, 0.01);
        systems = {"GTX980"};
        deviceCounts = {1, 2};
    }

    ExperimentPlan plan;
    plan.systems(systems)
        .primitives(bench::benchPrimitives())
        .datasets({"cond"})
        .modesFor([](Primitive p) {
            return std::vector<ScuMode>{bench::scuModeFor(p)};
        })
        .deviceCounts(deviceCounts)
        .scale(scale);
    PlanResults res = bench::runBenchPlan(plan);

    Table table("Sharded scaling: SCU filtering and link traffic");
    table.header({"workload", "dev", "cycles", "icn msgs",
                  "icn bytes", "filter hit rates", "ok"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"perf_shard\",\n  \"schema\": 1,\n"
         << "  \"scale\": " << scale << ",\n  \"workloads\": [\n";

    const auto &records = res.records();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const RunRecord &rec = records[i];
        const RunResult &r = rec.result;

        // Per-device slices exist only on the sharded path; the
        // single-device cells report their aggregate as one slice so
        // every row has a hit-rate column.
        std::vector<DeviceMetrics> devices = r.devices;
        if (devices.empty()) {
            DeviceMetrics dm;
            dm.gpuEdgeWork = r.algMetrics.gpuEdgeWork;
            dm.rawExpanded = r.algMetrics.rawExpanded;
            dm.scuFiltered = r.algMetrics.scuFiltered;
            dm.scuBusyCycles = r.scuBusyCycles;
            devices.push_back(dm);
        }

        std::string rates;
        for (std::size_t d = 0; d < devices.size(); ++d) {
            rates += (d ? " " : "");
            rates += bench::fmt("%.3f", devices[d].filterHitRate());
        }
        const bool ok = rec.ok && r.validated;
        table.row({rec.run.label, std::to_string(r.deviceCount),
                   std::to_string(r.totalCycles),
                   std::to_string(r.icnMessages),
                   std::to_string(r.icnBytes), rates,
                   ok ? "yes" : bench::failCell(&rec)});

        json << "    {\"label\": \"" << jsonEscape(rec.run.label)
             << "\", \"deviceCount\": " << r.deviceCount
             << ", \"totalCycles\": " << r.totalCycles
             << ", \"icnMessages\": " << r.icnMessages
             << ", \"icnBytes\": " << r.icnBytes
             << ", \"validated\": " << (ok ? "true" : "false")
             << ", \"perDevice\": [";
        for (std::size_t d = 0; d < devices.size(); ++d) {
            json << (d ? "," : "") << "{\"gpuEdgeWork\": "
                 << devices[d].gpuEdgeWork << ", \"rawExpanded\": "
                 << devices[d].rawExpanded << ", \"scuFiltered\": "
                 << devices[d].scuFiltered
                 << ", \"filterHitRate\": "
                 << bench::fmt("%.6f", devices[d].filterHitRate())
                 << "}";
        }
        json << "]}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    table.print();
    // The standard runs artifact too: perf_shard.csv carries the
    // dev<k>_* per-device columns `trend --by-device` renders.
    writeArtifact("perf_shard", res, {&table});

    std::string dir = ".";
    if (const char *d = std::getenv("SCUSIM_ARTIFACT_DIR"))
        dir = d;
    const std::string path = dir + "/BENCH_shard.json";
    std::ofstream out(path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return res.failures() == 0 ? 0 : 1;
}
