/**
 * @file
 * Table 5: the benchmark graph datasets. Regenerates each synthetic
 * stand-in and reports its statistics next to the paper's targets,
 * plus the structural measures that drive SCU behaviour (duplicate
 * potential and destination locality).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "graph/analysis.hh"
#include "graph/datasets.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

void
BM_Dataset(benchmark::State &state, std::string name)
{
    for (auto _ : state) {
        const auto &g =
            harness::cachedDataset(name, benchScale(), 1);
        auto st = graph::analyzeGraph(g);
        state.counters["nodes"] = static_cast<double>(st.nodes);
        state.counters["edges"] = static_cast<double>(st.edges);
        state.counters["avg_degree"] = st.avgDegree;
    }
}

void
registerAll()
{
    for (const auto &ds : benchDatasets()) {
        std::string name = "table5/" + ds;
        ::benchmark::RegisterBenchmark(
            name.c_str(), [ds](benchmark::State &st) {
                BM_Dataset(st, ds);
            })
            ->Iterations(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    Table t(std::string("Table 5: datasets at scale ") +
            fmt("%.3g", benchScale()) +
            " (paper columns at scale 1.0 in parentheses)");
    t.header({"graph", "description", "nodes 10^3", "edges 10^6",
              "avg degree", "avg in-degree", "dest locality"});
    for (const auto &ds : benchDatasets()) {
        const auto &spec = graph::datasetSpec(ds);
        const auto &g =
            harness::cachedDataset(ds, benchScale(), 1);
        auto st = graph::analyzeGraph(g);
        t.row({ds, spec.description,
               fmt("%.1f", st.nodes / 1e3) + " (" +
                   fmt("%.0f", spec.nodes / 1e3) + ")",
               fmt("%.2f", static_cast<double>(st.edges) / 1e6) +
                   " (" +
                   fmt("%.2f",
                       static_cast<double>(spec.edges) / 1e6) +
                   ")",
               fmt("%.1f", st.avgDegree),
               fmt("%.1f", st.avgInDegree),
               fmt("%.2f", st.destLineLocality)});
    }
    t.print();
    return 0;
}
