/**
 * @file
 * Table 5: the benchmark graph datasets. Regenerates each synthetic
 * stand-in and reports its statistics next to the paper's targets,
 * plus the structural measures that drive SCU behaviour (duplicate
 * potential and destination locality). The dataset axis is declared
 * as a plan; the "runs" here are graph syntheses, not simulations,
 * so the plan is expanded for its dataset cells only.
 */

#include "bench_common.hh"
#include "graph/analysis.hh"
#include "graph/datasets.hh"

using namespace scusim;
using namespace scusim::bench;

int
main()
{
    auto cells = harness::ExperimentPlan()
                     .datasets(benchDatasets())
                     .scale(benchScale())
                     .expand();

    harness::Table t(
        std::string("Table 5: datasets at scale ") +
        fmt("%.3g", benchScale()) +
        " (paper columns at scale 1.0 in parentheses)");
    t.header({"graph", "description", "nodes 10^3", "edges 10^6",
              "avg degree", "avg in-degree", "dest locality"});
    for (const auto &cell : cells) {
        const auto &ds = cell.cfg.dataset;
        const auto &spec = graph::datasetSpec(ds);
        const auto &g = harness::cachedDataset(
            ds, cell.cfg.scale, cell.cfg.seed);
        auto st = graph::analyzeGraph(g);
        t.row({ds, spec.description,
               fmt("%.1f", st.nodes / 1e3) + " (" +
                   fmt("%.0f", spec.nodes / 1e3) + ")",
               fmt("%.2f", static_cast<double>(st.edges) / 1e6) +
                   " (" +
                   fmt("%.2f",
                       static_cast<double>(spec.edges) / 1e6) +
                   ")",
               fmt("%.1f", st.avgDegree),
               fmt("%.1f", st.avgInDegree),
               fmt("%.2f", st.destLineLocality)});
    }
    t.print();
    harness::writeArtifact("table5_datasets",
                           harness::PlanResults(), {&t});
    return 0;
}
