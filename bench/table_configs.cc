/**
 * @file
 * Tables 1-4: the hardware configurations — SCU parameters, SCU
 * scalability parameters and the two GPGPU system configurations —
 * printed from the live config structs so the tables can never
 * drift from the simulated reality.
 */

#include "bench_common.hh"
#include "harness/system.hh"

using namespace scusim;
using namespace scusim::bench;

namespace
{

std::string
kb(std::uint64_t bytes)
{
    return fmt("%.0f", static_cast<double>(bytes) / 1024.0) + " KB";
}

} // namespace

int
main()
{
    auto hp = harness::SystemConfig::gtx980();
    auto lp = harness::SystemConfig::tx1();

    harness::Table t1("Table 1: SCU hardware parameters");
    t1.header({"parameter", "value"});
    t1.row({"Frequency",
            fmt("%.2f", hp.gpu.freqHz / 1e9) + " GHz / " +
                fmt("%.2f", lp.gpu.freqHz / 1e9) + " GHz"});
    t1.row({"Vector Buffering", kb(hp.scu.vectorBufferBytes)});
    t1.row({"FIFO Requests Buffer", kb(hp.scu.fifoRequestBytes)});
    t1.row({"Hash Request Buffer", kb(hp.scu.hashRequestBytes)});
    t1.row({"Coalescing Unit",
            std::to_string(hp.scu.coalesceInflight) +
                " in-flight requests, " +
                std::to_string(hp.scu.mergeWindow) + "-merge"});
    t1.print();

    harness::Table t2("Table 2: SCU scalability parameters");
    t2.header({"parameter", "GTX980", "TX1"});
    t2.row({"Pipeline Width",
            std::to_string(hp.scu.pipelineWidth) + " elems/cycle",
            std::to_string(lp.scu.pipelineWidth) + " elems/cycle"});
    auto hash_row = [&](const char *name,
                        const scu::HashConfig &a,
                        const scu::HashConfig &b) {
        t2.row({name,
                kb(a.sizeBytes) + ", " + std::to_string(a.ways) +
                    "-way, " + std::to_string(a.entryBytes) +
                    " B/line",
                kb(b.sizeBytes) + ", " + std::to_string(b.ways) +
                    "-way, " + std::to_string(b.entryBytes) +
                    " B/line"});
    };
    hash_row("Filtering BFS Hash", hp.scu.filterBfsHash,
             lp.scu.filterBfsHash);
    hash_row("Filtering SSSP Hash", hp.scu.filterSsspHash,
             lp.scu.filterSsspHash);
    hash_row("Grouping SSSP Hash", hp.scu.groupHash,
             lp.scu.groupHash);
    t2.print();

    std::vector<harness::Table> gpuTables;
    auto gpu_table = [&](const char *title,
                         const harness::SystemConfig &c) {
        harness::Table t(title);
        t.header({"parameter", "value"});
        t.row({"GPU, Frequency",
               c.gpu.name + ", " +
                   fmt("%.2f", c.gpu.freqHz / 1e9) + " GHz"});
        t.row({"Streaming Multiprocessors",
               std::to_string(c.gpu.numSms) + " (" +
                   std::to_string(c.gpu.maxThreadsPerSm) +
                   " threads), Maxwell"});
        t.row({"L1, L2 caches",
               kb(c.gpu.l1.sizeBytes) + ", " +
                   kb(c.gpu.memsys.l2.sizeBytes)});
        t.row({"Main Memory",
               std::string("4 GB ") + c.gpu.memsys.dram.name +
                   ", " +
                   fmt("%.1f",
                       c.gpu.memsys.dram.peakBytesPerSec / 1e9) +
                   " GB/s"});
        t.print();
        gpuTables.push_back(std::move(t));
    };
    gpu_table("Table 3: high-performance GTX980 parameters", hp);
    gpu_table("Table 4: low-power Tegra X1 parameters", lp);

    harness::writeArtifact(
        "table_configs", harness::PlanResults(),
        {&t1, &t2, &gpuTables[0], &gpuTables[1]});
    return 0;
}
