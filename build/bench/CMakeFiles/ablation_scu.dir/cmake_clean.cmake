file(REMOVE_RECURSE
  "CMakeFiles/ablation_scu.dir/ablation_scu.cc.o"
  "CMakeFiles/ablation_scu.dir/ablation_scu.cc.o.d"
  "ablation_scu"
  "ablation_scu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
