# Empty dependencies file for ablation_scu.
# This may be replaced when dependencies are built.
