file(REMOVE_RECURSE
  "CMakeFiles/area_table.dir/area_table.cc.o"
  "CMakeFiles/area_table.dir/area_table.cc.o.d"
  "area_table"
  "area_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
