# Empty compiler generated dependencies file for area_table.
# This may be replaced when dependencies are built.
