# Empty dependencies file for fig11_scu_breakdown.
# This may be replaced when dependencies are built.
