file(REMOVE_RECURSE
  "CMakeFiles/fig12_grouping.dir/fig12_grouping.cc.o"
  "CMakeFiles/fig12_grouping.dir/fig12_grouping.cc.o.d"
  "fig12_grouping"
  "fig12_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
