# Empty dependencies file for fig12_grouping.
# This may be replaced when dependencies are built.
