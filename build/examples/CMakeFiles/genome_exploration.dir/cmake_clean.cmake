file(REMOVE_RECURSE
  "CMakeFiles/genome_exploration.dir/genome_exploration.cpp.o"
  "CMakeFiles/genome_exploration.dir/genome_exploration.cpp.o.d"
  "genome_exploration"
  "genome_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
