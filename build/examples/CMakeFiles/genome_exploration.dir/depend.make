# Empty dependencies file for genome_exploration.
# This may be replaced when dependencies are built.
