file(REMOVE_RECURSE
  "CMakeFiles/scusim_alg.dir/bfs.cc.o"
  "CMakeFiles/scusim_alg.dir/bfs.cc.o.d"
  "CMakeFiles/scusim_alg.dir/gpu_primitives.cc.o"
  "CMakeFiles/scusim_alg.dir/gpu_primitives.cc.o.d"
  "CMakeFiles/scusim_alg.dir/pagerank.cc.o"
  "CMakeFiles/scusim_alg.dir/pagerank.cc.o.d"
  "CMakeFiles/scusim_alg.dir/serial.cc.o"
  "CMakeFiles/scusim_alg.dir/serial.cc.o.d"
  "CMakeFiles/scusim_alg.dir/sssp.cc.o"
  "CMakeFiles/scusim_alg.dir/sssp.cc.o.d"
  "libscusim_alg.a"
  "libscusim_alg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_alg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
