file(REMOVE_RECURSE
  "libscusim_alg.a"
)
