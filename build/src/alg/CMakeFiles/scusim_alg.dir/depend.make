# Empty dependencies file for scusim_alg.
# This may be replaced when dependencies are built.
