# CMake generated Testfile for 
# Source directory: /root/repo/src/alg
# Build directory: /root/repo/build/src/alg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
