file(REMOVE_RECURSE
  "CMakeFiles/scusim_common.dir/logging.cc.o"
  "CMakeFiles/scusim_common.dir/logging.cc.o.d"
  "libscusim_common.a"
  "libscusim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
