file(REMOVE_RECURSE
  "libscusim_common.a"
)
