# Empty compiler generated dependencies file for scusim_common.
# This may be replaced when dependencies are built.
