file(REMOVE_RECURSE
  "CMakeFiles/scusim_energy.dir/area_model.cc.o"
  "CMakeFiles/scusim_energy.dir/area_model.cc.o.d"
  "CMakeFiles/scusim_energy.dir/energy_model.cc.o"
  "CMakeFiles/scusim_energy.dir/energy_model.cc.o.d"
  "libscusim_energy.a"
  "libscusim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
