file(REMOVE_RECURSE
  "libscusim_energy.a"
)
