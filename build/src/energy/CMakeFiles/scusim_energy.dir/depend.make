# Empty dependencies file for scusim_energy.
# This may be replaced when dependencies are built.
