file(REMOVE_RECURSE
  "CMakeFiles/scusim_gpu.dir/gpu.cc.o"
  "CMakeFiles/scusim_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/scusim_gpu.dir/gpu_config.cc.o"
  "CMakeFiles/scusim_gpu.dir/gpu_config.cc.o.d"
  "CMakeFiles/scusim_gpu.dir/sm.cc.o"
  "CMakeFiles/scusim_gpu.dir/sm.cc.o.d"
  "libscusim_gpu.a"
  "libscusim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
