file(REMOVE_RECURSE
  "libscusim_gpu.a"
)
