# Empty compiler generated dependencies file for scusim_gpu.
# This may be replaced when dependencies are built.
