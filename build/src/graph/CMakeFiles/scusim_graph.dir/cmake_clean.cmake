file(REMOVE_RECURSE
  "CMakeFiles/scusim_graph.dir/analysis.cc.o"
  "CMakeFiles/scusim_graph.dir/analysis.cc.o.d"
  "CMakeFiles/scusim_graph.dir/csr.cc.o"
  "CMakeFiles/scusim_graph.dir/csr.cc.o.d"
  "CMakeFiles/scusim_graph.dir/datasets.cc.o"
  "CMakeFiles/scusim_graph.dir/datasets.cc.o.d"
  "CMakeFiles/scusim_graph.dir/generators.cc.o"
  "CMakeFiles/scusim_graph.dir/generators.cc.o.d"
  "CMakeFiles/scusim_graph.dir/loader.cc.o"
  "CMakeFiles/scusim_graph.dir/loader.cc.o.d"
  "libscusim_graph.a"
  "libscusim_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
