file(REMOVE_RECURSE
  "libscusim_graph.a"
)
