# Empty dependencies file for scusim_graph.
# This may be replaced when dependencies are built.
