file(REMOVE_RECURSE
  "CMakeFiles/scusim_harness.dir/runner.cc.o"
  "CMakeFiles/scusim_harness.dir/runner.cc.o.d"
  "CMakeFiles/scusim_harness.dir/system.cc.o"
  "CMakeFiles/scusim_harness.dir/system.cc.o.d"
  "libscusim_harness.a"
  "libscusim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
