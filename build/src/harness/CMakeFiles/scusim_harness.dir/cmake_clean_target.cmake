file(REMOVE_RECURSE
  "libscusim_harness.a"
)
