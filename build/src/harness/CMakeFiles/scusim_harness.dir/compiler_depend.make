# Empty compiler generated dependencies file for scusim_harness.
# This may be replaced when dependencies are built.
