file(REMOVE_RECURSE
  "CMakeFiles/scusim_mem.dir/cache.cc.o"
  "CMakeFiles/scusim_mem.dir/cache.cc.o.d"
  "CMakeFiles/scusim_mem.dir/dram.cc.o"
  "CMakeFiles/scusim_mem.dir/dram.cc.o.d"
  "CMakeFiles/scusim_mem.dir/mem_system.cc.o"
  "CMakeFiles/scusim_mem.dir/mem_system.cc.o.d"
  "libscusim_mem.a"
  "libscusim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
