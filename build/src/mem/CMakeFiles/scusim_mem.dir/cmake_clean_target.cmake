file(REMOVE_RECURSE
  "libscusim_mem.a"
)
