# Empty dependencies file for scusim_mem.
# This may be replaced when dependencies are built.
