file(REMOVE_RECURSE
  "CMakeFiles/scusim_scu.dir/hash_table.cc.o"
  "CMakeFiles/scusim_scu.dir/hash_table.cc.o.d"
  "CMakeFiles/scusim_scu.dir/pipeline.cc.o"
  "CMakeFiles/scusim_scu.dir/pipeline.cc.o.d"
  "CMakeFiles/scusim_scu.dir/scu.cc.o"
  "CMakeFiles/scusim_scu.dir/scu.cc.o.d"
  "CMakeFiles/scusim_scu.dir/scu_config.cc.o"
  "CMakeFiles/scusim_scu.dir/scu_config.cc.o.d"
  "libscusim_scu.a"
  "libscusim_scu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_scu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
