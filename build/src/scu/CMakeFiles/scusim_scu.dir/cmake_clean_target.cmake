file(REMOVE_RECURSE
  "libscusim_scu.a"
)
