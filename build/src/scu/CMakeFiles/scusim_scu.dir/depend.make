# Empty dependencies file for scusim_scu.
# This may be replaced when dependencies are built.
