file(REMOVE_RECURSE
  "CMakeFiles/scusim_sim.dir/simulation.cc.o"
  "CMakeFiles/scusim_sim.dir/simulation.cc.o.d"
  "libscusim_sim.a"
  "libscusim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
