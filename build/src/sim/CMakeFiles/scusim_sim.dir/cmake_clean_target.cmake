file(REMOVE_RECURSE
  "libscusim_sim.a"
)
