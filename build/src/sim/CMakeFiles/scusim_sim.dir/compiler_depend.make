# Empty compiler generated dependencies file for scusim_sim.
# This may be replaced when dependencies are built.
