file(REMOVE_RECURSE
  "CMakeFiles/scusim_stats.dir/stats.cc.o"
  "CMakeFiles/scusim_stats.dir/stats.cc.o.d"
  "libscusim_stats.a"
  "libscusim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scusim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
