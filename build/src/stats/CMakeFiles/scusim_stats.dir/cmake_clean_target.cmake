file(REMOVE_RECURSE
  "libscusim_stats.a"
)
