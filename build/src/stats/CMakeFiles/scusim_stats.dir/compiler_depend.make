# Empty compiler generated dependencies file for scusim_stats.
# This may be replaced when dependencies are built.
