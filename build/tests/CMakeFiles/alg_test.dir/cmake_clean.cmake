file(REMOVE_RECURSE
  "CMakeFiles/alg_test.dir/alg_test.cc.o"
  "CMakeFiles/alg_test.dir/alg_test.cc.o.d"
  "alg_test"
  "alg_test.pdb"
  "alg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
