# Empty compiler generated dependencies file for alg_test.
# This may be replaced when dependencies are built.
