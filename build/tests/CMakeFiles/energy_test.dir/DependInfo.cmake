
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/energy_test.cc" "tests/CMakeFiles/energy_test.dir/energy_test.cc.o" "gcc" "tests/CMakeFiles/energy_test.dir/energy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/scusim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/alg/CMakeFiles/scusim_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/scusim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/scu/CMakeFiles/scusim_scu.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/scusim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/scusim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scusim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scusim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scusim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scusim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
