file(REMOVE_RECURSE
  "CMakeFiles/scu_test.dir/scu_test.cc.o"
  "CMakeFiles/scu_test.dir/scu_test.cc.o.d"
  "scu_test"
  "scu_test.pdb"
  "scu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
