# Empty compiler generated dependencies file for scu_test.
# This may be replaced when dependencies are built.
