# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/scu_test[1]_include.cmake")
include("/root/repo/build/tests/alg_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
