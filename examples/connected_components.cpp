/**
 * @file
 * Building a NEW primitive on the SCU API: connected components via
 * label propagation. The paper ships BFS/SSSP/PR; this example shows
 * what adopting the unit looks like for an algorithm the authors
 * never wrote — including the Bitmask Constructor operation, which
 * turns the per-node "label changed?" vector into the compaction
 * mask without any GPU kernel.
 *
 * Iteration:
 *   1. GPU: propagate min labels across the frontier's edges,
 *      recording which nodes changed.
 *   2. SCU: bitmaskConstructor(changed != 0) -> mask.
 *   3. SCU: dataCompaction(allNodes, mask) -> next frontier.
 *
 * Validated against a serial union-find.
 */

#include <cstdio>
#include <functional>
#include <numeric>
#include <set>
#include <vector>

#include "alg/gpu_primitives.hh"
#include "alg/graph_buffers.hh"
#include "graph/datasets.hh"
#include "harness/system.hh"

using namespace scusim;

namespace
{

/** Serial union-find reference. */
std::vector<NodeId>
serialComponents(const graph::CsrGraph &g)
{
    std::vector<NodeId> parent(g.numNodes());
    std::iota(parent.begin(), parent.end(), 0);
    std::function<NodeId(NodeId)> find = [&](NodeId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            NodeId ru = find(u), rv = find(v);
            if (ru != rv)
                parent[std::max(ru, rv)] = std::min(ru, rv);
        }
    }
    // Normalize labels to component minima.
    std::vector<NodeId> label(g.numNodes());
    for (NodeId u = 0; u < g.numNodes(); ++u)
        label[u] = find(u);
    return label;
}

} // namespace

int
main()
{
    // A symmetric mesh: every edge exists in both directions, so
    // label propagation converges to per-component minima.
    auto g = graph::makeDataset("delaunay", 0.05, 11);
    std::printf("mesh: %u nodes, %llu edges\n\n", g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    harness::System sys(harness::SystemConfig::tx1(true));
    auto &as = sys.addressSpace();
    auto &scu = sys.scuDevice();
    alg::GraphBuffers gb(as, g);

    const std::size_t n = g.numNodes();
    mem::DeviceArray<std::uint32_t> labels(as, "cc_labels", n);
    mem::DeviceArray<std::uint32_t> changed(as, "cc_changed", n);
    mem::DeviceArray<std::uint32_t> allNodes(as, "cc_all", n);
    mem::DeviceArray<std::uint32_t> frontier(as, "cc_frontier", n);
    mem::DeviceArray<std::uint32_t> counts(as, "cc_counts", n);
    mem::DeviceArray<std::uint32_t> indexes(as, "cc_indexes", n);
    mem::DeviceArray<std::uint8_t> mask(as, "cc_mask", n);

    for (std::size_t u = 0; u < n; ++u) {
        labels[u] = static_cast<std::uint32_t>(u);
        allNodes[u] = static_cast<std::uint32_t>(u);
        frontier[u] = static_cast<std::uint32_t>(u);
    }
    std::size_t frontier_n = n;
    unsigned iters = 0;

    while (frontier_n > 0 && iters < 10000) {
        ++iters;

        // --- 1. GPU: min-label propagation over frontier edges ---
        for (std::size_t t = 0; t < frontier_n; ++t) {
            NodeId u = frontier[t];
            counts[t] = gb.offsets[u + 1] - gb.offsets[u];
            indexes[t] = gb.offsets[u];
        }
        // Jacobi-style functional step: sources read the previous
        // iteration's labels, as the parallel kernel would.
        for (std::size_t u = 0; u < n; ++u)
            changed[u] = 0;
        std::vector<std::uint32_t> prev(labels.host());
        for (std::size_t t = 0; t < frontier_n; ++t) {
            NodeId u = frontier[t];
            for (EdgeId e = gb.offsets[u]; e < gb.offsets[u + 1];
                 ++e) {
                NodeId v = gb.edges[static_cast<std::size_t>(e)];
                if (prev[u] < labels[v]) {
                    labels[v] = prev[u];
                    changed[v] = 1;
                }
            }
        }
        alg::gpuStreamKernel(
            sys, "cc_propagate", gpu::Phase::Processing, frontier_n,
            [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                rec.load(frontier.addrOf(t), 4);
                NodeId u = frontier[t];
                rec.load(gb.offsets.addrOf(u), 4);
                rec.load(gb.offsets.addrOf(u + 1), 4);
                rec.load(labels.addrOf(u), 4);
                rec.compute(8);
                for (EdgeId e = gb.offsets[u];
                     e < gb.offsets[u + 1]; ++e) {
                    NodeId v =
                        gb.edges[static_cast<std::size_t>(e)];
                    rec.load(gb.edges.addrOf(
                                 static_cast<std::size_t>(e)),
                             4);
                    rec.compute(4);
                    rec.atomic(labels.addrOf(v), 4); // atomicMin
                    rec.store(changed.addrOf(v), 4);
                }
            });

        // --- 2+3. SCU: mask construction + frontier compaction ---
        std::size_t next_n = 0;
        sys.scuSection([&] {
            scu.bitmaskConstructor(changed, n, scu::CompareOp::Ne,
                                   0, mask);
            scu.dataCompaction(allNodes, n, &mask, frontier,
                               next_n);
        });
        frontier_n = next_n;
    }

    // Validate.
    auto want = serialComponents(g);
    std::size_t bad = 0;
    for (std::size_t u = 0; u < n; ++u) {
        if (labels[u] != want[u])
            ++bad;
    }
    std::set<std::uint32_t> comps(labels.host().begin(),
                                  labels.host().end());

    std::printf("converged in %u iterations: %zu components, "
                "%zu label mismatches vs union-find\n",
                iters, comps.size(), bad);
    std::printf("simulated time %.3f ms, energy %s\n",
                sys.elapsedSeconds() * 1e3,
                "(see harness metrics for full runs)");
    std::printf("\nThe whole frontier machinery above is ~40 lines "
                "because the SCU API supplies the compaction.\n");
    return bad == 0 ? 0 : 1;
}
