/**
 * @file
 * Command-line exploration tool: run any primitive on any dataset /
 * system / execution mode and print the full metric set. Handy for
 * reproducing single cells of the paper's figures, for trying your
 * own graph files, and for studying model sensitivity.
 *
 * Usage:
 *   explore [--dataset ca|cond|delaunay|human|kron|msdoor]
 *           [--file path.el|.gr|.mtx|.scug]  (overrides --dataset;
 *            with SCUSIM_STORE_DIR set, text formats are packed into
 *            the store once and mmap'd on every later run)
 *           [--scale 0.25] [--system GTX980|TX1]
 *           [--prim bfs|sssp|pr] [--mode gpu|basic|enhanced|all]
 *           [--seed N] [--stats]   (--stats dumps the component
 *                                   statistics tree per run)
 */

#include <iostream>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "graph/datasets.hh"
#include "graph/loader.hh"
#include "harness/runner.hh"
#include "store/mapped_graph.hh"
#include "store/store.hh"

using namespace scusim;

namespace
{

void
printRun(const char *label, const harness::RunResult &r)
{
    std::printf("%-14s cycles %12llu  J %9.3e  compact %5.1f%%  "
                "coalesce %4.2f  bw %5.1f%%  l2hit %4.2f  "
                "scuBusy %11llu  gpuEdgeWork %10llu  "
                "filtered %10llu  %s\n",
                label,
                static_cast<unsigned long long>(r.totalCycles),
                r.energy.totalJ(), 100.0 * r.compactionShare(),
                r.coalescingEfficiency, 100.0 * r.bwUtilization,
                r.l2HitRate,
                static_cast<unsigned long long>(r.scuBusyCycles),
                static_cast<unsigned long long>(
                    r.algMetrics.gpuEdgeWork),
                static_cast<unsigned long long>(
                    r.algMetrics.scuFiltered),
                r.validated ? "ok" : "INVALID");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dataset = "cond", file, system = "GTX980",
                prim = "bfs", mode = "all";
    double scale = 0.25;
    std::uint64_t seed = 1;
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--dataset"))
            dataset = next("--dataset");
        else if (!std::strcmp(argv[i], "--file"))
            file = next("--file");
        else if (!std::strcmp(argv[i], "--scale"))
            scale = std::stod(next("--scale"));
        else if (!std::strcmp(argv[i], "--system"))
            system = next("--system");
        else if (!std::strcmp(argv[i], "--prim"))
            prim = next("--prim");
        else if (!std::strcmp(argv[i], "--mode"))
            mode = next("--mode");
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::stoull(next("--seed"));
        else if (!std::strcmp(argv[i], "--stats"))
            dump_stats = true;
        else
            fatal("unknown flag '%s'", argv[i]);
    }

    harness::RunConfig cfg;
    cfg.systemName = system;
    cfg.scale = scale;
    cfg.seed = seed;
    cfg.dataset = dataset;
    if (prim == "bfs")
        cfg.primitive = harness::Primitive::Bfs;
    else if (prim == "sssp")
        cfg.primitive = harness::Primitive::Sssp;
    else if (prim == "pr")
        cfg.primitive = harness::Primitive::Pr;
    else
        fatal("unknown primitive '%s'", prim.c_str());

    graph::CsrGraph own;
    std::shared_ptr<store::MappedGraph> mapped;
    const graph::CsrGraph *g = nullptr;
    if (!file.empty()) {
        if (file.ends_with(".scug")) {
            mapped = store::openStoreFile(file);
            fatal_if(!mapped, "cannot open store file '%s'",
                     file.c_str());
        } else {
            // Null when SCUSIM_STORE_DIR is unset: plain load.
            mapped = store::openGraphFile(file);
        }
        if (mapped) {
            g = &mapped->graph();
        } else {
            own = graph::loadGraphFile(file);
            g = &own;
        }
    } else {
        g = &harness::cachedDataset(dataset, scale, seed);
    }
    std::printf("%s %s on %s: %u nodes, %llu edges (scale %.3g)\n",
                system.c_str(), prim.c_str(),
                file.empty() ? dataset.c_str() : file.c_str(),
                g->numNodes(),
                static_cast<unsigned long long>(g->numEdges()),
                scale);

    std::vector<std::pair<const char *, harness::ScuMode>> modes;
    if (mode == "gpu" || mode == "all")
        modes.emplace_back("gpu-only", harness::ScuMode::GpuOnly);
    if (mode == "basic" || mode == "all")
        modes.emplace_back("scu-basic", harness::ScuMode::ScuBasic);
    if (mode == "enhanced" || mode == "all")
        modes.emplace_back("scu-enhanced",
                           harness::ScuMode::ScuEnhanced);
    fatal_if(modes.empty(), "unknown mode '%s'", mode.c_str());

    harness::RunResult first{};
    bool have_first = false;
    for (auto &[label, m] : modes) {
        cfg.mode = m;
        cfg.dumpStatsTo = dump_stats ? &std::cout : nullptr;
        auto r = harness::runPrimitive(cfg, *g);
        printRun(label, r);
        if (!have_first) {
            first = r;
            have_first = true;
        } else {
            std::printf("  vs %s: speedup %.2fx, energy %.2fx\n",
                        modes.front().first,
                        static_cast<double>(first.totalCycles) /
                            static_cast<double>(r.totalCycles),
                        first.energy.totalJ() / r.energy.totalJ());
        }
    }
    return 0;
}
