/**
 * @file
 * Domain scenario: reachability sweeps over a dense gene-regulatory
 * network (the paper's "human" dataset class) — the workload where
 * SCU filtering shines, because every frontier is saturated with
 * duplicate destinations. Runs BFS from several regulator hubs and
 * reports how much GPU work the enhanced SCU removes. The six runs
 * (3 sources x 2 configs) are declared up front with
 * ExperimentPlan::add() — source is not a matrix axis — and executed
 * on the worker pool in one batch.
 */

#include <cstdio>
#include <string>

#include "graph/datasets.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"

using namespace scusim;

namespace
{

std::string
cellLabel(NodeId source, harness::ScuMode mode)
{
    return "src" + std::to_string(source) + "/" +
           harness::to_string(mode);
}

} // namespace

int
main()
{
    auto g = graph::makeDataset("human", 0.05, 3);
    std::printf("regulatory network: %u genes, %llu interactions "
                "(avg degree %.0f)\n\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                g.averageDegree());

    const NodeId sources[] = {NodeId{1}, NodeId{17}, NodeId{123}};
    const harness::ScuMode modes[] = {harness::ScuMode::GpuOnly,
                                      harness::ScuMode::ScuEnhanced};

    harness::ExperimentPlan plan;
    plan.graph(&g, "human");
    for (NodeId source : sources) {
        for (auto mode : modes) {
            harness::RunConfig cfg;
            cfg.systemName = "GTX980";
            cfg.primitive = harness::Primitive::Bfs;
            cfg.mode = mode;
            cfg.alg.source = source;
            plan.add(cfg, cellLabel(source, mode));
        }
    }
    auto res = harness::runPlan(plan);

    std::printf("%-8s %-14s %12s %14s %14s %6s\n", "source",
                "config", "time (ms)", "edges on GPU",
                "filtered", "ok");
    bool allOk = true;
    for (NodeId source : sources) {
        double base_work = 0;
        for (auto mode : modes) {
            const auto &r = res.byLabel(cellLabel(source, mode));
            if (mode == harness::ScuMode::GpuOnly)
                base_work = static_cast<double>(
                    r.algMetrics.gpuEdgeWork);
            allOk = allOk && r.validated;
            std::printf("%-8u %-14s %12.3f %14llu %14llu %6s\n",
                        source, harness::to_string(mode).c_str(),
                        r.seconds * 1e3,
                        static_cast<unsigned long long>(
                            r.algMetrics.gpuEdgeWork),
                        static_cast<unsigned long long>(
                            r.algMetrics.scuFiltered),
                        r.validated ? "yes" : "NO");
            if (mode == harness::ScuMode::ScuEnhanced &&
                base_work > 0) {
                std::printf("%-8s %-14s -> GPU workload cut to "
                            "%.1f%% of baseline\n", "", "",
                            100.0 *
                                static_cast<double>(
                                    r.algMetrics.gpuEdgeWork) /
                                base_work);
            }
        }
    }
    return allOk ? 0 : 1;
}
