/**
 * @file
 * Domain scenario: reachability sweeps over a dense gene-regulatory
 * network (the paper's "human" dataset class) — the workload where
 * SCU filtering shines, because every frontier is saturated with
 * duplicate destinations. Runs BFS from several regulator hubs and
 * reports how much GPU work the enhanced SCU removes.
 */

#include <cstdio>

#include "alg/bfs.hh"
#include "graph/datasets.hh"
#include "harness/runner.hh"
#include "harness/system.hh"

using namespace scusim;

int
main()
{
    auto g = graph::makeDataset("human", 0.05, 3);
    std::printf("regulatory network: %u genes, %llu interactions "
                "(avg degree %.0f)\n\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                g.averageDegree());

    harness::RunConfig cfg;
    cfg.systemName = "GTX980";
    cfg.primitive = harness::Primitive::Bfs;

    std::printf("%-8s %-14s %12s %14s %14s %6s\n", "source",
                "config", "time (ms)", "edges on GPU",
                "filtered", "ok");
    for (NodeId source : {NodeId{1}, NodeId{17}, NodeId{123}}) {
        cfg.alg.source = source;
        double base_work = 0;
        for (auto mode : {harness::ScuMode::GpuOnly,
                          harness::ScuMode::ScuEnhanced}) {
            cfg.mode = mode;
            auto r = harness::runPrimitive(cfg, g);
            if (mode == harness::ScuMode::GpuOnly)
                base_work = static_cast<double>(
                    r.algMetrics.gpuEdgeWork);
            std::printf("%-8u %-14s %12.3f %14llu %14llu %6s\n",
                        source, harness::to_string(mode).c_str(),
                        r.seconds * 1e3,
                        static_cast<unsigned long long>(
                            r.algMetrics.gpuEdgeWork),
                        static_cast<unsigned long long>(
                            r.algMetrics.scuFiltered),
                        r.validated ? "yes" : "NO");
            if (mode == harness::ScuMode::ScuEnhanced &&
                base_work > 0) {
                std::printf("%-8s %-14s -> GPU workload cut to "
                            "%.1f%% of baseline\n", "", "",
                            100.0 *
                                static_cast<double>(
                                    r.algMetrics.gpuEdgeWork) /
                                base_work);
            }
        }
    }
    return 0;
}
