/**
 * @file
 * Quickstart: build a small graph, run BFS on the simulated GTX 980
 * with and without the SCU, and print the headline numbers. This is
 * the 60-second tour of the library's public API.
 */

#include <cstdio>

#include "graph/csr.hh"
#include "graph/generators.hh"
#include "harness/runner.hh"

using namespace scusim;

int
main()
{
    // 1. Make a graph. Any CsrGraph works: load one from disk with
    //    graph::loadGraphFile(), synthesize a Table 5 stand-in with
    //    graph::makeDataset(), or roll your own edge list.
    Rng rng(42);
    auto el = graph::rmat(14, 1 << 18, rng); // 16k nodes, 262k edges
    auto g = graph::CsrGraph::fromEdgeList(std::move(el));
    std::printf("graph: %u nodes, %llu edges\n", g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    // 2. Describe the run: system, primitive, execution mode.
    //    The low-power TX1 is where the SCU shines brightest
    //    (Figure 10); try "GTX980" for the high-performance system.
    harness::RunConfig cfg;
    cfg.systemName = "TX1";
    cfg.primitive = harness::Primitive::Bfs;

    // 3. Baseline: everything on the GPU's streaming
    //    multiprocessors, stream compaction included.
    cfg.mode = harness::ScuMode::GpuOnly;
    auto base = harness::runPrimitive(cfg, g);

    // 4. The paper's proposal: compaction offloaded to the SCU with
    //    duplicate filtering and coalescing-friendly grouping.
    cfg.mode = harness::ScuMode::ScuEnhanced;
    auto scu = harness::runPrimitive(cfg, g);

    std::printf("\n%-22s %14s %14s\n", "", "GPU only", "GPU + SCU");
    std::printf("%-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(base.totalCycles),
                static_cast<unsigned long long>(scu.totalCycles));
    std::printf("%-22s %14.3e %14.3e\n", "energy (J)",
                base.energy.totalJ(), scu.energy.totalJ());
    std::printf("%-22s %14.2f%% %13.2f%%\n",
                "time in compaction", 100.0 * base.compactionShare(),
                100.0 * scu.compactionShare());
    std::printf("%-22s %14s %14s\n", "validated",
                base.validated ? "yes" : "NO",
                scu.validated ? "yes" : "NO");
    std::printf("\nspeedup: %.2fx   energy reduction: %.2fx\n",
                static_cast<double>(base.totalCycles) /
                    static_cast<double>(scu.totalCycles),
                base.energy.totalJ() / scu.energy.totalJ());
    return (base.validated && scu.validated) ? 0 : 1;
}
