/**
 * @file
 * Quickstart: build a small graph, run BFS on the simulated TX1
 * with and without the SCU, and print the headline numbers. This is
 * the 60-second tour of the library's public API — including the
 * declarative ExperimentPlan / parallel executor that all benches
 * are built on.
 */

#include <cstdio>

#include "graph/csr.hh"
#include "graph/generators.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"

using namespace scusim;

int
main()
{
    // 1. Make a graph. Any CsrGraph works: load one from disk with
    //    graph::loadGraphFile(), synthesize a Table 5 stand-in with
    //    graph::makeDataset(), or roll your own edge list.
    Rng rng(42);
    auto el = graph::rmat(14, 1 << 18, rng); // 16k nodes, 262k edges
    auto g = graph::CsrGraph::fromEdgeList(std::move(el));
    std::printf("graph: %u nodes, %llu edges\n", g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    // 2. Declare the experiment matrix: system x primitive x mode.
    //    The low-power TX1 is where the SCU shines brightest
    //    (Figure 10); try "GTX980" for the high-performance system.
    //    runPlan() executes every cell on a worker pool (all cores;
    //    SCUSIM_JOBS=1 forces serial) and returns results in plan
    //    order.
    auto res = harness::runPlan(
        harness::ExperimentPlan()
            .graph(&g, "rmat14")
            .systems({"TX1"})
            .primitives({harness::Primitive::Bfs})
            .modes({harness::ScuMode::GpuOnly,
                    harness::ScuMode::ScuEnhanced}));

    // 3. Baseline vs the paper's proposal: compaction offloaded to
    //    the SCU with duplicate filtering and coalescing-friendly
    //    grouping.
    const auto &base =
        res.get("TX1", harness::Primitive::Bfs, "rmat14",
                harness::ScuMode::GpuOnly);
    const auto &scu =
        res.get("TX1", harness::Primitive::Bfs, "rmat14",
                harness::ScuMode::ScuEnhanced);

    std::printf("\n%-22s %14s %14s\n", "", "GPU only", "GPU + SCU");
    std::printf("%-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(base.totalCycles),
                static_cast<unsigned long long>(scu.totalCycles));
    std::printf("%-22s %14.3e %14.3e\n", "energy (J)",
                base.energy.totalJ(), scu.energy.totalJ());
    std::printf("%-22s %14.2f%% %13.2f%%\n",
                "time in compaction", 100.0 * base.compactionShare(),
                100.0 * scu.compactionShare());
    std::printf("%-22s %14s %14s\n", "validated",
                base.validated ? "yes" : "NO",
                scu.validated ? "yes" : "NO");
    std::printf("\nspeedup: %.2fx   energy reduction: %.2fx\n",
                static_cast<double>(base.totalCycles) /
                    static_cast<double>(scu.totalCycles),
                base.energy.totalJ() / scu.energy.totalJ());
    return (base.validated && scu.validated) ? 0 : 1;
}
