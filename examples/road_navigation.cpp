/**
 * @file
 * Domain scenario: route planning on a road network. Builds a
 * California-class road graph (or loads a DIMACS ".gr" file you
 * supply), runs SSSP on the low-power TX1 system — the embedded
 * navigation use case the paper's low-power configuration targets —
 * and compares the GPU-only baseline against the SCU designs. The
 * three configurations are declared as one plan and simulated in
 * parallel.
 *
 * Usage: road_navigation [path/to/graph.gr]
 */

#include <cstdio>
#include <vector>

#include "graph/datasets.hh"
#include "graph/loader.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"

using namespace scusim;

int
main(int argc, char **argv)
{
    graph::CsrGraph g;
    if (argc > 1) {
        g = graph::loadGraphFile(argv[1]);
        std::printf("loaded %s\n", argv[1]);
    } else {
        g = graph::makeDataset("ca", 0.1, 1);
        std::printf("synthesized a ca-class road network\n");
    }
    std::printf("road network: %u junctions, %llu segments\n\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    const std::vector<harness::ScuMode> modes = {
        harness::ScuMode::GpuOnly,
        harness::ScuMode::ScuBasic,
        harness::ScuMode::ScuEnhanced,
    };
    auto res = harness::runPlan(
        harness::ExperimentPlan()
            .graph(&g, "road")
            .systems({"TX1"}) // in-vehicle, low-power part
            .primitives({harness::Primitive::Sssp})
            .modes(modes));

    double base_ms = 0;
    std::printf("%-14s %12s %10s %12s %6s\n", "config",
                "time (ms)", "energy (J)", "relaxations", "ok");
    for (auto mode : modes) {
        const auto &r = res.get("TX1", harness::Primitive::Sssp,
                                "road", mode);
        double ms = r.seconds * 1e3;
        if (mode == harness::ScuMode::GpuOnly)
            base_ms = ms;
        std::printf("%-14s %12.2f %10.4f %12llu %6s\n",
                    harness::to_string(mode).c_str(), ms,
                    r.energy.totalJ(),
                    static_cast<unsigned long long>(
                        r.algMetrics.gpuEdgeWork),
                    r.validated ? "yes" : "NO");
    }
    std::printf("\n(on a %4.0f ms baseline, the enhanced SCU saves "
                "battery and latency on every reroute)\n", base_ms);
    return 0;
}
