/**
 * @file
 * Domain scenario: route planning on a road network. Builds a
 * California-class road graph (or loads a DIMACS ".gr" file you
 * supply), runs SSSP on the low-power TX1 system — the embedded
 * navigation use case the paper's low-power configuration targets —
 * and compares the GPU-only baseline against the SCU designs.
 *
 * Usage: road_navigation [path/to/graph.gr]
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "alg/serial.hh"
#include "alg/sssp.hh"
#include "graph/datasets.hh"
#include "graph/loader.hh"
#include "harness/runner.hh"

using namespace scusim;

int
main(int argc, char **argv)
{
    graph::CsrGraph g;
    if (argc > 1) {
        g = graph::loadGraphFile(argv[1]);
        std::printf("loaded %s\n", argv[1]);
    } else {
        g = graph::makeDataset("ca", 0.1, 1);
        std::printf("synthesized a ca-class road network\n");
    }
    std::printf("road network: %u junctions, %llu segments\n\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    harness::RunConfig cfg;
    cfg.systemName = "TX1"; // in-vehicle, low-power part
    cfg.primitive = harness::Primitive::Sssp;

    struct Row
    {
        const char *name;
        harness::ScuMode mode;
    };
    const Row rows[] = {
        {"GPU only", harness::ScuMode::GpuOnly},
        {"basic SCU", harness::ScuMode::ScuBasic},
        {"enhanced SCU", harness::ScuMode::ScuEnhanced},
    };

    double base_ms = 0;
    std::printf("%-14s %12s %10s %12s %6s\n", "config",
                "time (ms)", "energy (J)", "relaxations", "ok");
    for (const auto &row : rows) {
        cfg.mode = row.mode;
        auto r = harness::runPrimitive(cfg, g);
        double ms = r.seconds * 1e3;
        if (row.mode == harness::ScuMode::GpuOnly)
            base_ms = ms;
        std::printf("%-14s %12.2f %10.4f %12llu %6s\n", row.name,
                    ms, r.energy.totalJ(),
                    static_cast<unsigned long long>(
                        r.algMetrics.gpuEdgeWork),
                    r.validated ? "yes" : "NO");
    }
    std::printf("\n(on a %4.0f ms baseline, the enhanced SCU saves "
                "battery and latency on every reroute)\n", base_ms);
    return 0;
}
