/**
 * @file
 * Domain scenario: influence ranking on a social-network-class
 * power-law graph (Graph500 Kronecker). Runs PageRank on the
 * high-performance GTX980 system — the data-center analytics use
 * case of the paper's introduction — and prints the top influencers
 * plus the system-level costs with and without the SCU. The cost
 * comparison is declared as an ExperimentPlan and both cells run in
 * parallel.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "alg/pagerank.hh"
#include "graph/datasets.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/system.hh"

using namespace scusim;

int
main()
{
    auto g = graph::makeDataset("kron", 0.05, 7);
    std::printf("social graph: %u accounts, %llu follows\n\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    // Functional result once, on a system with the SCU.
    harness::SystemConfig sc = harness::SystemConfig::gtx980(true);
    harness::System sys(sc);
    alg::PageRankRunner pr(sys, g);
    alg::AlgOptions opt;
    opt.mode = harness::ScuMode::ScuBasic;
    opt.prMaxIterations = 10;
    auto out = pr.run(opt);

    std::vector<NodeId> order(g.numNodes());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](NodeId a, NodeId b) {
                          return out.ranks[a] > out.ranks[b];
                      });
    std::printf("top influencers (account: score):\n");
    for (int i = 0; i < 5; ++i)
        std::printf("  #%d  node %-8u %8.2f\n", i + 1, order[i],
                    out.ranks[order[i]]);

    // Cost comparison via the declarative harness.
    alg::AlgOptions costOpt;
    costOpt.prMaxIterations = 10;
    auto res = harness::runPlan(
        harness::ExperimentPlan()
            .graph(&g, "kron-social")
            .systems({"GTX980"})
            .primitives({harness::Primitive::Pr})
            .modes({harness::ScuMode::GpuOnly,
                    harness::ScuMode::ScuBasic})
            .algOptions(costOpt));
    const auto &base = res.get("GTX980", harness::Primitive::Pr,
                               "kron-social",
                               harness::ScuMode::GpuOnly);
    const auto &scu = res.get("GTX980", harness::Primitive::Pr,
                              "kron-social",
                              harness::ScuMode::ScuBasic);

    std::printf("\n%-12s %12s %12s %8s\n", "config", "time (ms)",
                "energy (J)", "bw util");
    std::printf("%-12s %12.2f %12.4f %7.1f%%\n", "GPU only",
                base.seconds * 1e3, base.energy.totalJ(),
                100.0 * base.bwUtilization);
    std::printf("%-12s %12.2f %12.4f %7.1f%%\n", "GPU + SCU",
                scu.seconds * 1e3, scu.energy.totalJ(),
                100.0 * scu.bwUtilization);
    std::printf("\nPR is the paper's least SCU-friendly primitive "
                "(all nodes active every iteration): expect ~1x "
                "time but a solid energy win.\n");
    return base.validated && scu.validated ? 0 : 1;
}
