#include "alg/bfs.hh"

#include <deque>

#include "common/logging.hh"

namespace scusim::alg
{

BfsRunner::BfsRunner(harness::System &s, const graph::CsrGraph &graph)
    : BfsRunner(s, 0, graph, nullptr)
{
}

BfsRunner::BfsRunner(harness::System &s, DeviceId d,
                     const graph::CsrGraph &graph,
                     const graph::GraphPartition *p)
    : sys(s), dev(d), part(p),
      frag(p ? &p->fragment(d) : nullptr), g(graph),
      gb(s.addressSpace(d), graph),
      scratch(s.addressSpace(d),
              static_cast<std::size_t>(graph.numEdges()) * 2 + 1024)
{
    auto &as = sys.addressSpace(dev);
    const auto n = static_cast<std::size_t>(g.numNodes());
    const auto ef_cap =
        static_cast<std::size_t>(g.numEdges()) * 2 + 1024;

    dist.allocate(as, "bfs_dist", n);
    visitedBits.allocate(as, "bfs_visited_bits", n / 32 + 1);
    nodeFrontier.allocate(as, "bfs_node_frontier", ef_cap);
    edgeFrontier.allocate(as, "bfs_edge_frontier", ef_cap);
    counts.allocate(as, "bfs_counts", ef_cap);
    indexes.allocate(as, "bfs_indexes", ef_cap);
    flags.allocate(as, "bfs_flags", ef_cap);
    // Remote-injection staging exists only for true multi-fragment
    // runs so single-fragment address spaces stay byte-identical to
    // the historical single-device layout.
    if (part && part->numFragments() > 1)
        inbox.allocate(as, "bfs_inbox", ef_cap);
    visited.assign(n, 0);

    // Best-effort bitmask visibility: marks made by warps racing in
    // flight are not observed. The window covers a few warps per SM
    // (stores commit within hundreds of cycles, and Merrill's warp
    // culling removes same-warp duplicates), so it is far narrower
    // than the full thread complement.
    raceWindow = std::max<std::size_t>(
        64, sys.config().gpu.numSms * 2 *
                sys.config().gpu.warpSize);
    cullTable.assign(4096, invalidNode);
}

void
BfsRunner::prepare(std::size_t nf_n)
{
    for (std::size_t t = 0; t < nf_n; ++t) {
        const NodeId u = nodeFrontier[t];
        counts[t] = gb.offsets[u + 1] - gb.offsets[u];
        indexes[t] = gb.offsets[u];
    }
    gpuStreamKernel(
        sys, "bfs_prepare", gpu::Phase::Processing, nf_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(nodeFrontier.addrOf(t), 4);
            const NodeId u = nodeFrontier[t];
            rec.load(gb.offsets.addrOf(u), 4);
            rec.load(gb.offsets.addrOf(u + 1), 4);
            rec.compute(14);
            rec.store(counts.addrOf(t), 4);
            rec.store(indexes.addrOf(t), 4);
        },
        dev);
}

void
BfsRunner::contractLookup(std::size_t ef_n, std::uint32_t level)
{
    // Functional pass with the best-effort visibility window: a mark
    // becomes visible raceWindow elements after it was made, so
    // duplicates racing in flight produce false negatives, exactly
    // the trade-off of the bitmask of Section 2.1.2.
    // The warp/history culling hash (Merrill) catches most hub
    // duplicates that race past the bitmask: a small direct-mapped
    // table of recently seen nodes, reset each pass, with collisions
    // evicting (so culling stays incomplete — the headroom the SCU
    // filter exploits).
    std::fill(cullTable.begin(), cullTable.end(), invalidNode);
    std::deque<std::pair<std::size_t, NodeId>> pending;
    for (std::size_t t = 0; t < ef_n; ++t) {
        while (!pending.empty() &&
               pending.front().first + raceWindow <= t) {
            visited[pending.front().second] = 1;
            pending.pop_front();
        }
        const NodeId v = edgeFrontier[t];
        const std::size_t h =
            static_cast<std::size_t>(v) % cullTable.size();
        if (visited[v] || cullTable[h] == v) {
            flags[t] = 0;
        } else {
            cullTable[h] = v;
            flags[t] = 1;
            dist[v] = level;
            pending.emplace_back(t, v);
        }
    }
    for (auto &[pos, v] : pending)
        visited[v] = 1;

    // Timing kernel: the status-lookup contraction of Section 2.1.2.
    gpuStreamKernel(
        sys, "bfs_contract_lookup", gpu::Phase::Processing, ef_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(edgeFrontier.addrOf(t), 4);
            const NodeId v = edgeFrontier[t];
            rec.load(visitedBits.addrOf(v / 32), 4);
            rec.compute(24);
            rec.store(flags.addrOf(t), 1);
            if (flags[t]) {
                rec.store(dist.addrOf(v), 4);
                rec.store(visitedBits.addrOf(v / 32), 4);
            }
        },
        dev);
}

void
BfsRunner::beginRun(const AlgOptions &opt)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    if (!frag) {
        fatal_if(opt.source >= g.numNodes(),
                 "BFS source out of range");
    } else {
        fatal_if(opt.source >= part->numNodes(),
                 "BFS source out of range");
    }

    // Initialization kernel: dist <- inf, visited <- 0 (memset-like
    // streaming stores).
    std::fill(dist.host().begin(), dist.host().end(), infDist);
    std::fill(visited.begin(), visited.end(), 0);
    gpuStreamKernel(
        sys, "bfs_init", gpu::Phase::Processing, n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.compute(2);
            rec.store(dist.addrOf(t), 4);
            if (t % 32 == 0)
                rec.store(visitedBits.addrOf(t / 32), 4);
        },
        dev);

    use_scu = opt.mode != harness::ScuMode::GpuOnly;
    enhanced = opt.mode == harness::ScuMode::ScuEnhanced;
    if (use_scu)
        sys.scuDevice(dev).resetFilterTables();

    nf_n = 0;
    const bool owned =
        !frag || part->ownerOf(opt.source) == frag->device;
    if (owned) {
        const NodeId src =
            frag ? part->localOf(opt.source) : opt.source;
        nodeFrontier[0] = src;
        visited[src] = 1;
        dist[src] = 0;
        nf_n = 1;
    }
}

void
BfsRunner::runLevel(std::uint32_t level, AlgMetrics &m,
                    std::vector<BoundaryMsg> *outbox)
{
    // --- Expansion ---------------------------------------------
    prepare(nf_n);
    std::uint64_t produced = 0;
    for (std::size_t i = 0; i < nf_n; ++i)
        produced += counts[i];
    m.rawExpanded += produced;
    panic_if(produced > edgeFrontier.size(),
             "edge frontier overflow (%llu > %zu)",
             static_cast<unsigned long long>(produced),
             edgeFrontier.size());

    std::size_t ef_n = 0;
    if (!use_scu) {
        ExpandOutput out{
            &edgeFrontier,
            [&](std::size_t i, std::uint32_t j,
                gpu::ThreadRecorder &rec) -> std::uint32_t {
                const std::uint32_t e = indexes[i] + j;
                rec.load(gb.edges.addrOf(e), 4);
                return gb.edges[e];
            }};
        ef_n = gpuExpand(sys, counts, nf_n, {&out, 1}, scratch,
                         "bfs_expand", dev);
    } else {
        auto &scu = sys.scuDevice(dev);
        sys.scuSection(dev, [&] {
            if (enhanced) {
                // Step 1 (Algorithm 4): generate the filter
                // vector with an extra expansion pass. The hash
                // is reconfigured (reset) per operation so the
                // single Table 2-sized region stays L2-resident;
                // it removes the intra-frontier duplicates, and
                // the GPU bitmask handles nodes visited in
                // earlier iterations.
                scu.uniqueFilter().reset();
                std::vector<std::uint8_t> keep;
                scu::OpOptions o1;
                o1.writeOutput = false;
                o1.filterMode = scu::FilterMode::Unique;
                o1.keepOut = &keep;
                std::size_t ignore = 0;
                auto st1 = scu.accessExpansionCompaction(
                    gb.edges, indexes, counts, nf_n, nullptr,
                    edgeFrontier, ignore, o1);
                m.scuFiltered += st1.filtered;
                // Step 2: the filtered edge frontier.
                scu::OpOptions o2;
                o2.keep = &keep;
                scu.accessExpansionCompaction(
                    gb.edges, indexes, counts, nf_n, nullptr,
                    edgeFrontier, ef_n, o2);
            } else {
                scu.accessExpansionCompaction(
                    gb.edges, indexes, counts, nf_n, nullptr,
                    edgeFrontier, ef_n);
            }
        });
    }

    // --- Contraction -------------------------------------------
    m.gpuEdgeWork += ef_n;
    contractLookup(ef_n, level);

    std::size_t next_nf = 0;
    if (!use_scu) {
        CompactStream s{&edgeFrontier, &nodeFrontier};
        gpuCompact(sys, {&s, 1}, flags, ef_n, next_nf, scratch,
                   "bfs_contract_compact", dev);
    } else {
        auto &scu = sys.scuDevice(dev);
        sys.scuSection(dev, [&] {
            if (enhanced) {
                // Duplicates that slipped through the expansion
                // filter (hash collisions) and bitmask races are
                // removed before they re-enter the frontier.
                scu.uniqueFilter().reset();
                std::vector<std::uint8_t> keep;
                scu::OpOptions o1;
                o1.writeOutput = false;
                o1.filterMode = scu::FilterMode::Unique;
                o1.keepOut = &keep;
                std::size_t ignore = 0;
                auto st1 = scu.dataCompaction(
                    edgeFrontier, ef_n, &flags, nodeFrontier,
                    ignore, o1);
                m.scuFiltered += st1.filtered;
                scu::OpOptions o2;
                o2.keep = &keep;
                scu.dataCompaction(edgeFrontier, ef_n, &flags,
                                   nodeFrontier, next_nf, o2);
            } else {
                scu.dataCompaction(edgeFrontier, ef_n, &flags,
                                   nodeFrontier, next_nf);
            }
        });
    }
    nf_n = next_nf;

    if (frag && frag->numOuter > 0 && outbox && nf_n > 0)
        splitBoundary(*outbox);
}

void
BfsRunner::splitBoundary(std::vector<BoundaryMsg> &outbox)
{
    const std::size_t old_n = nf_n;
    std::size_t kept = 0;
    for (std::size_t t = 0; t < old_n; ++t) {
        const NodeId v = nodeFrontier[t];
        if (frag->isInner(v)) {
            nodeFrontier[kept++] = v;
        } else {
            outbox.push_back(
                BoundaryMsg{frag->toGlobal[v], dist[v]});
        }
    }
    nf_n = kept;

    // Timing: one pass over the new frontier comparing each entry
    // against the inner-vertex bound, repacking survivors.
    gpuStreamKernel(
        sys, "bfs_boundary_split", gpu::Phase::Processing, old_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(nodeFrontier.addrOf(t), 4);
            rec.compute(8);
            rec.store(nodeFrontier.addrOf(t), 4);
        },
        dev);
}

void
BfsRunner::acceptRemote(std::span<const BoundaryMsg> msgs,
                        std::uint32_t level)
{
    if (msgs.empty())
        return;
    panic_if(!frag, "acceptRemote on a non-sharded BFS runner");

    std::size_t t = 0;
    for (const BoundaryMsg &msg : msgs) {
        const NodeId l = part->localOf(msg.node);
        inbox[t % inbox.size()] = msg.node;
        ++t;
        if (visited[l])
            continue;
        visited[l] = 1;
        dist[l] = msg.value;
        panic_if(nf_n >= nodeFrontier.size(),
                 "node frontier overflow on remote inject");
        nodeFrontier[nf_n++] = l;
    }
    (void)level;

    // Timing: one thread per message — load it, probe the bitmask,
    // conditionally append to the frontier.
    gpuStreamKernel(
        sys, "bfs_inject_remote", gpu::Phase::Processing, msgs.size(),
        [&](std::uint64_t i, gpu::ThreadRecorder &rec) {
            rec.load(inbox.addrOf(i % inbox.size()), 8);
            const NodeId l = part->localOf(msgs[i].node);
            rec.load(visitedBits.addrOf(l / 32), 4);
            rec.compute(12);
            rec.store(dist.addrOf(l), 4);
            rec.store(visitedBits.addrOf(l / 32), 4);
        },
        dev);
}

void
BfsRunner::collect(std::vector<std::uint32_t> &globalDist) const
{
    panic_if(!frag, "collect on a non-sharded BFS runner");
    for (NodeId l = 0; l < frag->numInner; ++l)
        globalDist[frag->toGlobal[l]] = dist[l];
}

BfsResult
BfsRunner::run(const AlgOptions &opt)
{
    BfsResult res;
    beginRun(opt);

    std::uint32_t level = 0;
    while (nf_n > 0 && level < opt.maxIterations) {
        ++level;
        ++res.metrics.iterations;
        runLevel(level, res.metrics, nullptr);
    }

    res.dist.assign(dist.host().begin(), dist.host().end());
    return res;
}

} // namespace scusim::alg
