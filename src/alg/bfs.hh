/**
 * @file
 * Breadth-First Search on the simulated system, following the
 * Merrill-style expand/contract structure of Section 2.1 with the
 * SCU offloads of Sections 3.3 (basic) and 4.4 (enhanced).
 */

#ifndef SCUSIM_ALG_BFS_HH
#define SCUSIM_ALG_BFS_HH

#include <vector>

#include "alg/graph_buffers.hh"
#include "alg/gpu_primitives.hh"
#include "alg/options.hh"
#include "graph/csr.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Result of one simulated BFS run. */
struct BfsResult
{
    std::vector<std::uint32_t> dist; ///< levels, infDist if unreached
    AlgMetrics metrics;
};

/**
 * BFS runner bound to one system + graph. Owns the device frontiers.
 */
class BfsRunner
{
  public:
    BfsRunner(harness::System &sys, const graph::CsrGraph &g);

    BfsResult run(const AlgOptions &opt);

  private:
    /** GPU preparation kernel: counts/indexes from the frontier. */
    void prepare(std::size_t nf_n);

    /** GPU contraction status-lookup kernel; fills flags. */
    void contractLookup(std::size_t ef_n, std::uint32_t level);

    harness::System &sys;
    const graph::CsrGraph &g;
    GraphBuffers gb;
    CompactionScratch scratch;

    Elems dist;
    Elems visitedBits;
    Elems nodeFrontier;
    Elems edgeFrontier;
    Elems counts;
    Elems indexes;
    Flags flags;

    std::vector<std::uint8_t> visited; ///< functional visited set
    /** Best-effort bitmask race window (threads in flight). */
    std::size_t raceWindow;
    /** Warp/history culling hash (Merrill), per contraction pass. */
    std::vector<NodeId> cullTable;
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_BFS_HH
