/**
 * @file
 * Breadth-First Search on the simulated system, following the
 * Merrill-style expand/contract structure of Section 2.1 with the
 * SCU offloads of Sections 3.3 (basic) and 4.4 (enhanced).
 *
 * The runner exposes two granularities: run() executes a complete
 * single-device BFS, and the beginRun()/runLevel()/acceptRemote()
 * step API lets the sharded driver (alg/sharded.cc) advance one
 * fragment per device in lockstep, exchanging boundary discoveries
 * between levels. run() is itself written on top of the step API, so
 * the single-device path and a one-fragment sharded run execute the
 * same code.
 */

#ifndef SCUSIM_ALG_BFS_HH
#define SCUSIM_ALG_BFS_HH

#include <span>
#include <vector>

#include "alg/graph_buffers.hh"
#include "alg/gpu_primitives.hh"
#include "alg/options.hh"
#include "graph/csr.hh"
#include "graph/partition.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Result of one simulated BFS run. */
struct BfsResult
{
    std::vector<std::uint32_t> dist; ///< levels, infDist if unreached
    AlgMetrics metrics;
};

/**
 * BFS runner bound to one system + graph. Owns the device frontiers.
 */
class BfsRunner
{
  public:
    BfsRunner(harness::System &sys, const graph::CsrGraph &g);

    /**
     * Fragment-aware runner for device @p dev of a sharded system:
     * @p g must be @p part's fragment CSR for that device. Ghost
     * vertices act as a local dedup cache; discoveries that land on
     * them are split out of the frontier and returned as boundary
     * messages.
     */
    BfsRunner(harness::System &sys, DeviceId dev,
              const graph::CsrGraph &g,
              const graph::GraphPartition *part);

    BfsResult run(const AlgOptions &opt);

    // --- Step API for the sharded driver -----------------------

    /** Reset state and seed the source (if owned locally). */
    void beginRun(const AlgOptions &opt);

    bool frontierEmpty() const { return nf_n == 0; }

    /**
     * One expand/contract level. New frontier entries that are ghost
     * vertices are removed and reported into @p outbox (global ids);
     * pass nullptr outside sharded multi-device runs.
     */
    void runLevel(std::uint32_t level, AlgMetrics &m,
                  std::vector<BoundaryMsg> *outbox);

    /** Inject remotely discovered owned vertices at @p level. */
    void acceptRemote(std::span<const BoundaryMsg> msgs,
                      std::uint32_t level);

    /** Scatter this fragment's inner distances into @p globalDist. */
    void collect(std::vector<std::uint32_t> &globalDist) const;

  private:
    /** GPU preparation kernel: counts/indexes from the frontier. */
    void prepare(std::size_t nf_n);

    /** GPU contraction status-lookup kernel; fills flags. */
    void contractLookup(std::size_t ef_n, std::uint32_t level);

    /** Strip ghosts out of the new frontier into @p outbox. */
    void splitBoundary(std::vector<BoundaryMsg> &outbox);

    harness::System &sys;
    DeviceId dev = 0;
    const graph::GraphPartition *part = nullptr;
    const graph::Fragment *frag = nullptr;
    const graph::CsrGraph &g;
    GraphBuffers gb;
    CompactionScratch scratch;

    Elems dist;
    Elems visitedBits;
    Elems nodeFrontier;
    Elems edgeFrontier;
    Elems counts;
    Elems indexes;
    Flags flags;
    Elems inbox; ///< staging for remote injections (sharded only)

    std::vector<std::uint8_t> visited; ///< functional visited set
    /** Best-effort bitmask race window (threads in flight). */
    std::size_t raceWindow;
    /** Warp/history culling hash (Merrill), per contraction pass. */
    std::vector<NodeId> cullTable;

    std::size_t nf_n = 0;   ///< current frontier population
    bool use_scu = false;
    bool enhanced = false;
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_BFS_HH
