#include "alg/gpu_primitives.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace scusim::alg
{

namespace
{
constexpr unsigned scanBlock = 256;
} // namespace

gpu::KernelStats
gpuStreamKernel(harness::System &sys, const std::string &name,
                gpu::Phase phase, std::uint64_t threads,
                std::function<void(std::uint64_t,
                                   gpu::ThreadRecorder &)> body,
                DeviceId dev)
{
    gpu::KernelLaunch k;
    k.name = name;
    k.phase = phase;
    k.numThreads = threads;
    k.body = std::move(body);
    return sys.gpuDevice(dev).launch(k);
}

/**
 * Shared scan machinery: charges the two scan kernels over @p n
 * elements whose input loads are described by @p load_input, and
 * fills @p scratch.scanned functionally with the exclusive scan of
 * the values @p value_of yields.
 */
static void
gpuScan(harness::System &sys, std::size_t n,
        CompactionScratch &scratch, const std::string &name,
        const std::function<void(std::uint64_t,
                                 gpu::ThreadRecorder &)> &load_input,
        const std::function<std::uint32_t(std::size_t)> &value_of,
        DeviceId dev)
{
    // Functional exclusive scan.
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
        scratch.scanned[i] = running;
        running += value_of(i);
    }
    scratch.scanned[n] = running;

    // Kernel 1: block-local scan. Each thread loads its input,
    // participates in a shared-memory tree scan (~8 ops) and stores
    // its local prefix.
    gpuStreamKernel(
        sys, name + "_scan_local", gpu::Phase::Compaction, n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            load_input(t, rec);
            rec.compute(18);
            rec.store(scratch.scanned.addrOf(t), 4);
            if (t % scanBlock == scanBlock - 1 || t == n - 1)
                rec.store(scratch.blockSums.addrOf(t / scanBlock), 4);
        },
        dev);

    // Kernel 2: scan of the per-block sums + propagation. One thread
    // per block: loads its block sum, adds the running offset and
    // rewrites the block's prefix base.
    const std::uint64_t blocks = divCeil(n, scanBlock);
    gpuStreamKernel(
        sys, name + "_scan_blocks", gpu::Phase::Compaction, blocks,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(scratch.blockSums.addrOf(t), 4);
            rec.compute(12);
            rec.store(scratch.blockSums.addrOf(t), 4);
        },
        dev);
}

std::size_t
gpuCompact(harness::System &sys,
           std::span<const CompactStream> streams, const Flags &flags,
           std::size_t n, std::size_t &out_n,
           CompactionScratch &scratch, const std::string &name,
           DeviceId dev)
{
    panic_if(streams.empty(), "gpuCompact with no streams");
    panic_if(scratch.scanned.size() < n + 1,
             "compaction scratch too small (%zu < %zu)",
             scratch.scanned.size(), n + 1);

    gpuScan(
        sys, n, scratch, name,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(flags.addrOf(t), 1);
        },
        [&](std::size_t i) -> std::uint32_t {
            return flags[i] ? 1 : 0;
        },
        dev);

    // Scatter kernel: every flagged element copies each stream's
    // value to the packed position.
    const std::size_t base = out_n;
    gpuStreamKernel(
        sys, name + "_scatter", gpu::Phase::Compaction, n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(flags.addrOf(t), 1);
            rec.load(scratch.scanned.addrOf(t), 4);
            rec.compute(12);
            if (!flags[t])
                return;
            const std::size_t pos = base + scratch.scanned[t];
            for (const auto &s : streams) {
                rec.load(s.in->addrOf(t), 4);
                panic_if(pos >= s.out->size(),
                         "gpuCompact output overflow");
                (*s.out)[pos] = (*s.in)[t];
                rec.store(s.out->addrOf(pos), 4);
            }
        },
        dev);

    const std::size_t kept = scratch.scanned[n];
    out_n += kept;
    return kept;
}

std::size_t
gpuExpand(harness::System &sys, const Elems &counts, std::size_t n,
          std::span<const ExpandOutput> outputs,
          CompactionScratch &scratch, const std::string &name,
          DeviceId dev)
{
    panic_if(outputs.empty(), "gpuExpand with no outputs");
    panic_if(scratch.scanned.size() < n + 1,
             "expansion scratch too small");

    gpuScan(
        sys, n, scratch, name,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(counts.addrOf(t), 4);
        },
        [&](std::size_t i) -> std::uint32_t { return counts[i]; },
        dev);

    const std::size_t total = scratch.scanned[n];

    // Gather kernel: one thread per produced element. The Merrill
    // load-balancing search is CTA-cooperative: a coarse partition
    // is found once per CTA and refined in shared memory, so each
    // thread pays a couple of probing loads into the scanned
    // offsets plus the refinement compute — not a full per-thread
    // binary search over global memory.
    gpuStreamKernel(
        sys, name + "_gather", gpu::Phase::Compaction, total,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            // Owner lookup (functional, exact).
            auto it = std::upper_bound(
                scratch.scanned.host().begin(),
                scratch.scanned.host().begin() +
                    static_cast<std::ptrdiff_t>(n) + 1,
                static_cast<std::uint32_t>(t));
            std::size_t i = static_cast<std::size_t>(
                it - scratch.scanned.host().begin()) - 1;
            const auto j = static_cast<std::uint32_t>(
                t - scratch.scanned[i]);

            // Timing: two probes into the scanned array around the
            // owning run plus the shared-memory refinement.
            rec.load(scratch.scanned.addrOf(i), 4);
            if (i + 1 <= n)
                rec.load(scratch.scanned.addrOf(i + 1), 4);
            rec.compute(24);

            for (const auto &o : outputs) {
                std::uint32_t v = o.value(i, j, rec);
                panic_if(t >= o.out->size(),
                         "gpuExpand output overflow");
                (*o.out)[t] = v;
                rec.store(o.out->addrOf(t), 4);
            }
        },
        dev);

    return total;
}

} // namespace scusim::alg
