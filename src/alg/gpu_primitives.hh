/**
 * @file
 * GPU-side stream-compaction building blocks — the baseline the SCU
 * replaces. The shapes follow the state-of-the-art CUDA
 * implementations the paper builds on: multi-kernel exclusive scan
 * (CUB-style) followed by a scatter for compaction, and Merrill-style
 * scan + binary-search gather for frontier expansion.
 *
 * Every primitive both computes the functional result and launches
 * the equivalent kernels on the GPU timing model with the true
 * simulated addresses.
 */

#ifndef SCUSIM_ALG_GPU_PRIMITIVES_HH
#define SCUSIM_ALG_GPU_PRIMITIVES_HH

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "mem/address_space.hh"

namespace scusim::alg
{

using Elems = mem::DeviceArray<std::uint32_t>;
using Flags = mem::DeviceArray<std::uint8_t>;

/** Scratch buffers shared by the scan-based primitives. */
struct CompactionScratch
{
    Elems scanned;   ///< per-element exclusive-scan results
    Elems blockSums; ///< per-block partial sums

    CompactionScratch(mem::AddressSpace &as, std::size_t capacity)
    {
        scanned.allocate(as, "scan_scratch", capacity + 1);
        blockSums.allocate(as, "scan_block_sums",
                           capacity / 256 + 2);
    }
};

/** Launch a simple one-op-per-thread kernel. */
gpu::KernelStats
gpuStreamKernel(harness::System &sys, const std::string &name,
                gpu::Phase phase, std::uint64_t threads,
                std::function<void(std::uint64_t,
                                   gpu::ThreadRecorder &)> body,
                DeviceId dev = 0);

/** One input/output pair of a multi-stream compaction. */
struct CompactStream
{
    const Elems *in;
    Elems *out;
};

/**
 * GPU stream compaction: exclusive scan of @p flags (two kernels)
 * plus a scatter kernel appending, for every i < n with
 * flags[i] != 0, each stream's in[i] to its out at a common packed
 * position starting at @p out_n.
 *
 * @return number of elements kept (out_n is advanced by it).
 */
std::size_t gpuCompact(harness::System &sys,
                       std::span<const CompactStream> streams,
                       const Flags &flags, std::size_t n,
                       std::size_t &out_n, CompactionScratch &scratch,
                       const std::string &name, DeviceId dev = 0);

/** One output stream of a GPU expansion. */
struct ExpandOutput
{
    Elems *out;
    /**
     * Produce the value of output element (i, j) — input element i,
     * offset j within its run — and record the loads that producing
     * it costs on the GPU.
     */
    std::function<std::uint32_t(std::size_t i, std::uint32_t j,
                                gpu::ThreadRecorder &)> value;
};

/**
 * GPU frontier expansion (Merrill): exclusive scan of @p counts, then
 * a gather kernel of one thread per produced element that locates its
 * source run by binary search over the scanned offsets and writes
 * every output stream.
 *
 * @return total elements produced.
 */
std::size_t gpuExpand(harness::System &sys, const Elems &counts,
                      std::size_t n,
                      std::span<const ExpandOutput> outputs,
                      CompactionScratch &scratch,
                      const std::string &name, DeviceId dev = 0);

} // namespace scusim::alg

#endif // SCUSIM_ALG_GPU_PRIMITIVES_HH
