/**
 * @file
 * The device-resident image of a CSR graph (Figure 2b), uploaded
 * into the simulated address space so every kernel and SCU operation
 * touches the true addresses.
 */

#ifndef SCUSIM_ALG_GRAPH_BUFFERS_HH
#define SCUSIM_ALG_GRAPH_BUFFERS_HH

#include "common/logging.hh"
#include "graph/csr.hh"
#include "mem/address_space.hh"

namespace scusim::alg
{

/** CSR arrays living in device memory. */
struct GraphBuffers
{
    mem::DeviceArray<std::uint32_t> offsets; ///< n+1 adjacency offsets
    mem::DeviceArray<std::uint32_t> edges;   ///< destinations
    mem::DeviceArray<std::uint32_t> weights; ///< edge weights
    NodeId numNodes = 0;
    EdgeId numEdges = 0;

    GraphBuffers(mem::AddressSpace &as, const graph::CsrGraph &g)
    {
        numNodes = g.numNodes();
        numEdges = g.numEdges();
        fatal_if(numEdges > 0xffffffffULL,
                 "graph too large for 32-bit edge offsets");
        offsets.allocate(as, "csr_offsets",
                         static_cast<std::size_t>(numNodes) + 1);
        edges.allocate(as, "csr_edges",
                       static_cast<std::size_t>(numEdges));
        weights.allocate(as, "csr_weights",
                         static_cast<std::size_t>(numEdges));
        for (NodeId u = 0; u <= numNodes; ++u) {
            offsets[u] = static_cast<std::uint32_t>(
                g.adjacencyOffsets()[u]);
        }
        for (EdgeId e = 0; e < numEdges; ++e) {
            edges[static_cast<std::size_t>(e)] = g.edgeArray()[e];
            weights[static_cast<std::size_t>(e)] =
                g.weightArray()[e];
        }
    }
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_GRAPH_BUFFERS_HH
