/**
 * @file
 * Options and metrics shared by the three graph primitives.
 */

#ifndef SCUSIM_ALG_OPTIONS_HH
#define SCUSIM_ALG_OPTIONS_HH

#include <cstdint>

#include "common/types.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Per-run options. */
struct AlgOptions
{
    harness::ScuMode mode = harness::ScuMode::GpuOnly;
    NodeId source = 0;        ///< BFS/SSSP start node
    unsigned maxIterations = 100000;
    unsigned prMaxIterations = 5;   ///< PageRank sweep count
    double prEpsilon = 1e-3;        ///< PageRank convergence bound
    /** Near/far threshold step; 0 picks 4x the average edge weight. */
    std::uint32_t ssspDelta = 0;
};

/**
 * One boundary-vertex update crossing devices in a sharded run: a
 * global node id plus a primitive-specific 32-bit payload (BFS level,
 * SSSP tentative distance, PageRank contribution bits).
 */
struct BoundaryMsg
{
    NodeId node = 0;
    std::uint32_t value = 0;
};

/** Work metrics accumulated by a run. */
struct AlgMetrics
{
    unsigned iterations = 0;
    /** Elements the GPU's per-edge kernels actually processed. */
    std::uint64_t gpuEdgeWork = 0;
    /** Elements produced by expansion before any SCU filtering. */
    std::uint64_t rawExpanded = 0;
    /** Elements the SCU filtering removed. */
    std::uint64_t scuFiltered = 0;
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_OPTIONS_HH
