#include "alg/pagerank.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace scusim::alg
{

namespace
{
constexpr float dampening = 0.15f; ///< the paper's alpha

float
asFloat(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

std::uint32_t
asBits(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

} // namespace

PageRankRunner::PageRankRunner(harness::System &s,
                               const graph::CsrGraph &graph)
    : PageRankRunner(s, 0, graph, nullptr)
{
}

PageRankRunner::PageRankRunner(harness::System &s, DeviceId d,
                               const graph::CsrGraph &graph,
                               const graph::GraphPartition *p)
    : sys(s), dev(d), part(p),
      frag(p ? &p->fragment(d) : nullptr), g(graph),
      gb(s.addressSpace(d), graph),
      scratch(s.addressSpace(d),
              static_cast<std::size_t>(graph.numEdges()) + 1024)
{
    auto &as = sys.addressSpace(dev);
    const auto n = static_cast<std::size_t>(g.numNodes());
    const auto m = static_cast<std::size_t>(g.numEdges());

    rankBits.allocate(as, "pr_rank", n);
    newRankBits.allocate(as, "pr_new_rank", n);
    contribBits.allocate(as, "pr_contrib", n);
    counts.allocate(as, "pr_counts", n);
    indexes.allocate(as, "pr_indexes", n);
    edgeFrontier.allocate(as, "pr_edge_frontier", m + 1);
    weightFrontier.allocate(as, "pr_weight_frontier", m + 1);
    if (part && part->numFragments() > 1)
        inbox.allocate(as, "pr_inbox", n + 1);
}

void
PageRankRunner::beginRun(const AlgOptions &opt)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    use_scu = opt.mode != harness::ScuMode::GpuOnly;

    // Initialization: rank <- 1, accumulators <- 0.
    for (std::size_t u = 0; u < n; ++u) {
        rankBits[u] = asBits(1.0f);
        newRankBits[u] = asBits(0.0f);
    }
    gpuStreamKernel(
        sys, "pr_init", gpu::Phase::Processing, n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.compute(2);
            rec.store(rankBits.addrOf(t), 4);
            rec.store(newRankBits.addrOf(t), 4);
        },
        dev);
}

void
PageRankRunner::iterate(AlgMetrics &m,
                        std::vector<BoundaryMsg> *outbox)
{
    const auto n = static_cast<std::size_t>(g.numNodes());

    // --- Expansion preparation (Section 2.3.1) ------------------
    // Ghost rows are empty in the fragment CSR, so their degree —
    // and contribution — is zero: every edge is expanded by the
    // device owning its source.
    for (std::size_t u = 0; u < n; ++u) {
        const std::uint32_t deg = gb.offsets[u + 1] - gb.offsets[u];
        counts[u] = deg;
        indexes[u] = gb.offsets[u];
        contribBits[u] =
            deg ? asBits(asFloat(rankBits[u]) /
                         static_cast<float>(deg))
                : asBits(0.0f);
    }
    gpuStreamKernel(
        sys, "pr_prepare", gpu::Phase::Processing, n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(rankBits.addrOf(t), 4);
            rec.load(gb.offsets.addrOf(t), 4);
            rec.load(gb.offsets.addrOf(t + 1), 4);
            rec.compute(16);
            rec.store(contribBits.addrOf(t), 4);
            rec.store(counts.addrOf(t), 4);
            rec.store(indexes.addrOf(t), 4);
        },
        dev);
    m.rawExpanded += g.numEdges();

    // --- Expansion ----------------------------------------------
    std::size_t ef_n = 0;
    if (!use_scu) {
        ExpandOutput oe{
            &edgeFrontier,
            [&](std::size_t i, std::uint32_t j,
                gpu::ThreadRecorder &rec) -> std::uint32_t {
                const std::uint32_t e = indexes[i] + j;
                rec.load(gb.edges.addrOf(e), 4);
                return gb.edges[e];
            }};
        ExpandOutput ow{
            &weightFrontier,
            [&](std::size_t i, std::uint32_t,
                gpu::ThreadRecorder &rec) -> std::uint32_t {
                rec.load(contribBits.addrOf(i), 4);
                return contribBits[i];
            }};
        std::array<ExpandOutput, 2> outs{oe, ow};
        ef_n = gpuExpand(sys, counts, n, outs, scratch,
                         "pr_expand", dev);
    } else {
        auto &scu = sys.scuDevice(dev);
        sys.scuSection(dev, [&] {
            // Algorithm 3: edge frontier + replicated,
            // pre-divided ranks.
            scu.accessExpansionCompaction(
                gb.edges, indexes, counts, n, nullptr,
                edgeFrontier, ef_n);
            std::size_t wn = 0;
            scu.replicationCompaction(contribBits, counts, n,
                                      nullptr, weightFrontier,
                                      wn);
            panic_if(wn != ef_n, "PR frontier streams diverged");
        });
    }
    m.gpuEdgeWork += ef_n;

    // --- Rank update (Section 2.3.2): atomicAdd per edge ---------
    for (std::size_t t = 0; t < ef_n; ++t) {
        const NodeId v = edgeFrontier[t];
        newRankBits[v] = asBits(asFloat(newRankBits[v]) +
                                asFloat(weightFrontier[t]));
    }
    gpuStreamKernel(
        sys, "pr_rank_update", gpu::Phase::Processing, ef_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(edgeFrontier.addrOf(t), 4);
            rec.load(weightFrontier.addrOf(t), 4);
            rec.compute(12);
            rec.atomic(newRankBits.addrOf(edgeFrontier[t]), 4);
        },
        dev);

    // --- Ghost flush: forward remote contributions ---------------
    if (frag && frag->numOuter > 0 && outbox) {
        for (NodeId l = frag->numInner; l < frag->numLocal(); ++l) {
            const std::uint32_t bits = newRankBits[l];
            if (asFloat(bits) != 0.0f) {
                outbox->push_back(
                    BoundaryMsg{frag->toGlobal[l], bits});
                newRankBits[l] = asBits(0.0f);
            }
        }
        gpuStreamKernel(
            sys, "pr_ghost_flush", gpu::Phase::Processing,
            frag->numOuter,
            [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                rec.load(newRankBits.addrOf(frag->numInner + t), 4);
                rec.compute(6);
                rec.store(newRankBits.addrOf(frag->numInner + t), 4);
            },
            dev);
    }
}

void
PageRankRunner::acceptRemote(std::span<const BoundaryMsg> msgs)
{
    if (msgs.empty())
        return;
    panic_if(!frag, "acceptRemote on a non-sharded PR runner");

    std::size_t t = 0;
    for (const BoundaryMsg &msg : msgs) {
        const NodeId l = part->localOf(msg.node);
        inbox[t % inbox.size()] = msg.node;
        ++t;
        newRankBits[l] = asBits(asFloat(newRankBits[l]) +
                                asFloat(msg.value));
    }
    gpuStreamKernel(
        sys, "pr_inject_remote", gpu::Phase::Processing, msgs.size(),
        [&](std::uint64_t i, gpu::ThreadRecorder &rec) {
            rec.load(inbox.addrOf(i % inbox.size()), 8);
            const NodeId l = part->localOf(msgs[i].node);
            rec.compute(8);
            rec.atomic(newRankBits.addrOf(l), 4);
        },
        dev);
}

float
PageRankRunner::dampen()
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    const std::size_t lim =
        frag ? static_cast<std::size_t>(frag->numInner) : n;

    // --- Dampening + convergence check (2.3.3 / 2.3.4) -----------
    float max_delta = 0.0f;
    for (std::size_t u = 0; u < lim; ++u) {
        const float next =
            dampening + (1.0f - dampening) * asFloat(newRankBits[u]);
        max_delta = std::max(
            max_delta, std::fabs(next - asFloat(rankBits[u])));
        rankBits[u] = asBits(next);
        newRankBits[u] = asBits(0.0f);
    }
    gpuStreamKernel(
        sys, "pr_dampen", gpu::Phase::Processing, lim,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(newRankBits.addrOf(t), 4);
            rec.load(rankBits.addrOf(t), 4);
            rec.compute(12);
            rec.store(rankBits.addrOf(t), 4);
            rec.store(newRankBits.addrOf(t), 4);
        },
        dev);
    // The convergence reduction is fused into the dampening
    // pass above (one extra compare per node plus a per-block
    // reduction, charged as compute).
    return max_delta;
}

void
PageRankRunner::collect(std::vector<float> &ranks) const
{
    panic_if(!frag, "collect on a non-sharded PR runner");
    for (NodeId l = 0; l < frag->numInner; ++l)
        ranks[frag->toGlobal[l]] = asFloat(rankBits[l]);
}

PrResult
PageRankRunner::run(const AlgOptions &opt)
{
    PrResult res;
    const auto n = static_cast<std::size_t>(g.numNodes());
    beginRun(opt);

    for (unsigned it = 0; it < opt.prMaxIterations; ++it) {
        ++res.metrics.iterations;
        iterate(res.metrics, nullptr);
        const float max_delta = dampen();
        if (max_delta < static_cast<float>(opt.prEpsilon)) {
            res.converged = true;
            break;
        }
    }

    res.ranks.resize(n);
    for (std::size_t u = 0; u < n; ++u)
        res.ranks[u] = asFloat(rankBits[u]);
    return res;
}

} // namespace scusim::alg
