#include "alg/pagerank.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace scusim::alg
{

namespace
{
constexpr float dampening = 0.15f; ///< the paper's alpha

float
asFloat(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

std::uint32_t
asBits(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

} // namespace

PageRankRunner::PageRankRunner(harness::System &s,
                               const graph::CsrGraph &graph)
    : sys(s), g(graph), gb(s.addressSpace(), graph),
      scratch(s.addressSpace(),
              static_cast<std::size_t>(graph.numEdges()) + 1024)
{
    auto &as = sys.addressSpace();
    const auto n = static_cast<std::size_t>(g.numNodes());
    const auto m = static_cast<std::size_t>(g.numEdges());

    rankBits.allocate(as, "pr_rank", n);
    newRankBits.allocate(as, "pr_new_rank", n);
    contribBits.allocate(as, "pr_contrib", n);
    counts.allocate(as, "pr_counts", n);
    indexes.allocate(as, "pr_indexes", n);
    edgeFrontier.allocate(as, "pr_edge_frontier", m + 1);
    weightFrontier.allocate(as, "pr_weight_frontier", m + 1);
}

PrResult
PageRankRunner::run(const AlgOptions &opt)
{
    PrResult res;
    const auto n = static_cast<std::size_t>(g.numNodes());
    const bool use_scu = opt.mode != harness::ScuMode::GpuOnly;

    // Initialization: rank <- 1, accumulators <- 0.
    for (std::size_t u = 0; u < n; ++u) {
        rankBits[u] = asBits(1.0f);
        newRankBits[u] = asBits(0.0f);
    }
    gpuStreamKernel(sys, "pr_init", gpu::Phase::Processing, n,
                    [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                        rec.compute(2);
                        rec.store(rankBits.addrOf(t), 4);
                        rec.store(newRankBits.addrOf(t), 4);
                    });

    for (unsigned it = 0; it < opt.prMaxIterations; ++it) {
        ++res.metrics.iterations;

        // --- Expansion preparation (Section 2.3.1) --------------
        for (std::size_t u = 0; u < n; ++u) {
            const std::uint32_t deg =
                gb.offsets[u + 1] - gb.offsets[u];
            counts[u] = deg;
            indexes[u] = gb.offsets[u];
            contribBits[u] =
                deg ? asBits(asFloat(rankBits[u]) /
                             static_cast<float>(deg))
                    : asBits(0.0f);
        }
        gpuStreamKernel(
            sys, "pr_prepare", gpu::Phase::Processing, n,
            [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                rec.load(rankBits.addrOf(t), 4);
                rec.load(gb.offsets.addrOf(t), 4);
                rec.load(gb.offsets.addrOf(t + 1), 4);
                rec.compute(16);
                rec.store(contribBits.addrOf(t), 4);
                rec.store(counts.addrOf(t), 4);
                rec.store(indexes.addrOf(t), 4);
            });
        res.metrics.rawExpanded += g.numEdges();

        // --- Expansion ------------------------------------------
        std::size_t ef_n = 0;
        if (!use_scu) {
            ExpandOutput oe{
                &edgeFrontier,
                [&](std::size_t i, std::uint32_t j,
                    gpu::ThreadRecorder &rec) -> std::uint32_t {
                    const std::uint32_t e = indexes[i] + j;
                    rec.load(gb.edges.addrOf(e), 4);
                    return gb.edges[e];
                }};
            ExpandOutput ow{
                &weightFrontier,
                [&](std::size_t i, std::uint32_t,
                    gpu::ThreadRecorder &rec) -> std::uint32_t {
                    rec.load(contribBits.addrOf(i), 4);
                    return contribBits[i];
                }};
            std::array<ExpandOutput, 2> outs{oe, ow};
            ef_n = gpuExpand(sys, counts, n, outs, scratch,
                             "pr_expand");
        } else {
            auto &scu = sys.scuDevice();
            sys.scuSection([&] {
                // Algorithm 3: edge frontier + replicated,
                // pre-divided ranks.
                scu.accessExpansionCompaction(
                    gb.edges, indexes, counts, n, nullptr,
                    edgeFrontier, ef_n);
                std::size_t wn = 0;
                scu.replicationCompaction(contribBits, counts, n,
                                          nullptr, weightFrontier,
                                          wn);
                panic_if(wn != ef_n, "PR frontier streams diverged");
            });
        }
        res.metrics.gpuEdgeWork += ef_n;

        // --- Rank update (Section 2.3.2): atomicAdd per edge -----
        for (std::size_t t = 0; t < ef_n; ++t) {
            const NodeId v = edgeFrontier[t];
            newRankBits[v] = asBits(asFloat(newRankBits[v]) +
                                    asFloat(weightFrontier[t]));
        }
        gpuStreamKernel(
            sys, "pr_rank_update", gpu::Phase::Processing, ef_n,
            [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                rec.load(edgeFrontier.addrOf(t), 4);
                rec.load(weightFrontier.addrOf(t), 4);
                rec.compute(12);
                rec.atomic(newRankBits.addrOf(edgeFrontier[t]), 4);
            });

        // --- Dampening + convergence check (2.3.3 / 2.3.4) -------
        float max_delta = 0.0f;
        for (std::size_t u = 0; u < n; ++u) {
            const float next =
                dampening +
                (1.0f - dampening) * asFloat(newRankBits[u]);
            max_delta = std::max(
                max_delta, std::fabs(next - asFloat(rankBits[u])));
            rankBits[u] = asBits(next);
            newRankBits[u] = asBits(0.0f);
        }
        gpuStreamKernel(
            sys, "pr_dampen", gpu::Phase::Processing, n,
            [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                rec.load(newRankBits.addrOf(t), 4);
                rec.load(rankBits.addrOf(t), 4);
                rec.compute(12);
                rec.store(rankBits.addrOf(t), 4);
                rec.store(newRankBits.addrOf(t), 4);
            });
        // The convergence reduction is fused into the dampening
        // pass above (one extra compare per node plus a per-block
        // reduction, charged as compute).

        if (max_delta < static_cast<float>(opt.prEpsilon)) {
            res.converged = true;
            break;
        }
    }

    res.ranks.resize(n);
    for (std::size_t u = 0; u < n; ++u)
        res.ranks[u] = asFloat(rankBits[u]);
    return res;
}

} // namespace scusim::alg
