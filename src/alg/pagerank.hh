/**
 * @file
 * PageRank on the simulated system, following the Geil et al.
 * structure of Section 2.3: expansion, rank update (atomicAdd per
 * edge), dampening, convergence check. The SCU offload (Algorithm 3)
 * covers only the expansion — PR uses no filtering or grouping
 * (Section 4.6).
 *
 * The beginRun()/iterate()/dampen() step API lets the sharded driver
 * run one fragment per device: contributions crossing devices
 * accumulate into ghost rows and are flushed as boundary messages at
 * the iteration barrier, before the dampening pass. run() composes
 * the same steps into the original single-device loop.
 */

#ifndef SCUSIM_ALG_PAGERANK_HH
#define SCUSIM_ALG_PAGERANK_HH

#include <span>
#include <vector>

#include "alg/graph_buffers.hh"
#include "alg/gpu_primitives.hh"
#include "alg/options.hh"
#include "graph/csr.hh"
#include "graph/partition.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Result of one simulated PageRank run. */
struct PrResult
{
    std::vector<float> ranks;
    AlgMetrics metrics;
    bool converged = false;
};

class PageRankRunner
{
  public:
    PageRankRunner(harness::System &sys, const graph::CsrGraph &g);

    /** Fragment-aware runner for device @p dev of a sharded run. */
    PageRankRunner(harness::System &sys, DeviceId dev,
                   const graph::CsrGraph &g,
                   const graph::GraphPartition *part);

    PrResult run(const AlgOptions &opt);

    // --- Step API for the sharded driver -----------------------

    /** Reset ranks and accumulators. */
    void beginRun(const AlgOptions &opt);

    /**
     * One prepare/expand/rank-update sweep. Contributions that
     * accumulated on ghost rows are flushed into @p outbox (global
     * id + float bits); pass nullptr outside sharded runs.
     */
    void iterate(AlgMetrics &m, std::vector<BoundaryMsg> *outbox);

    /** Add remote contributions into the local accumulators. */
    void acceptRemote(std::span<const BoundaryMsg> msgs);

    /**
     * Dampening + convergence pass over the owned vertices; returns
     * this fragment's max rank delta (the driver reduces globally).
     */
    float dampen();

    /** Scatter this fragment's inner ranks into @p ranks. */
    void collect(std::vector<float> &ranks) const;

  private:
    harness::System &sys;
    DeviceId dev = 0;
    const graph::GraphPartition *part = nullptr;
    const graph::Fragment *frag = nullptr;
    const graph::CsrGraph &g;
    GraphBuffers gb;
    CompactionScratch scratch;

    Elems rankBits;    ///< float ranks, bit-cast into u32 elements
    Elems newRankBits; ///< accumulation target of the rank update
    Elems contribBits; ///< rank / out-degree, the replicated value
    Elems counts;
    Elems indexes;
    Elems edgeFrontier;
    Elems weightFrontier;
    Elems inbox; ///< staging for remote injections (sharded only)

    bool use_scu = false;
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_PAGERANK_HH
