/**
 * @file
 * PageRank on the simulated system, following the Geil et al.
 * structure of Section 2.3: expansion, rank update (atomicAdd per
 * edge), dampening, convergence check. The SCU offload (Algorithm 3)
 * covers only the expansion — PR uses no filtering or grouping
 * (Section 4.6).
 */

#ifndef SCUSIM_ALG_PAGERANK_HH
#define SCUSIM_ALG_PAGERANK_HH

#include <vector>

#include "alg/graph_buffers.hh"
#include "alg/gpu_primitives.hh"
#include "alg/options.hh"
#include "graph/csr.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Result of one simulated PageRank run. */
struct PrResult
{
    std::vector<float> ranks;
    AlgMetrics metrics;
    bool converged = false;
};

class PageRankRunner
{
  public:
    PageRankRunner(harness::System &sys, const graph::CsrGraph &g);

    PrResult run(const AlgOptions &opt);

  private:
    harness::System &sys;
    const graph::CsrGraph &g;
    GraphBuffers gb;
    CompactionScratch scratch;

    Elems rankBits;    ///< float ranks, bit-cast into u32 elements
    Elems newRankBits; ///< accumulation target of the rank update
    Elems contribBits; ///< rank / out-degree, the replicated value
    Elems counts;
    Elems indexes;
    Elems edgeFrontier;
    Elems weightFrontier;
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_PAGERANK_HH
