#include "alg/serial.hh"

#include <cmath>
#include <queue>

#include "common/types.hh"

namespace scusim::alg
{

std::vector<std::uint32_t>
serialBfs(const graph::CsrGraph &g, NodeId source)
{
    std::vector<std::uint32_t> dist(g.numNodes(), infDist);
    std::queue<NodeId> q;
    dist[source] = 0;
    q.push(source);
    while (!q.empty()) {
        NodeId u = q.front();
        q.pop();
        for (NodeId v : g.neighbors(u)) {
            if (dist[v] == infDist) {
                dist[v] = dist[u] + 1;
                q.push(v);
            }
        }
    }
    return dist;
}

std::vector<std::uint32_t>
serialDijkstra(const graph::CsrGraph &g, NodeId source)
{
    std::vector<std::uint32_t> dist(g.numNodes(), infDist);
    using Item = std::pair<std::uint32_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>>
        pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d != dist[u])
            continue;
        auto nbrs = g.neighbors(u);
        auto ws = g.edgeWeights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            std::uint32_t nd = d + ws[i];
            if (nd < dist[nbrs[i]]) {
                dist[nbrs[i]] = nd;
                pq.push({nd, nbrs[i]});
            }
        }
    }
    return dist;
}

std::vector<double>
serialPageRank(const graph::CsrGraph &g, double alpha, double epsilon,
               unsigned max_iters)
{
    const NodeId n = g.numNodes();
    std::vector<double> rank(n, 1.0), next(n, 0.0);
    for (unsigned it = 0; it < max_iters; ++it) {
        std::fill(next.begin(), next.end(), 0.0);
        for (NodeId u = 0; u < n; ++u) {
            const auto deg = g.degree(u);
            if (deg == 0)
                continue;
            const double contrib =
                rank[u] / static_cast<double>(deg);
            for (NodeId v : g.neighbors(u))
                next[v] += contrib;
        }
        double max_delta = 0;
        for (NodeId v = 0; v < n; ++v) {
            next[v] = alpha + (1.0 - alpha) * next[v];
            max_delta = std::max(max_delta,
                                 std::fabs(next[v] - rank[v]));
        }
        rank.swap(next);
        if (max_delta < epsilon)
            break;
    }
    return rank;
}

} // namespace scusim::alg
