/**
 * @file
 * Serial reference implementations used to validate every simulated
 * run: BFS level labeling, Dijkstra shortest paths and power-iteration
 * PageRank (Figure 2c ground truth).
 */

#ifndef SCUSIM_ALG_SERIAL_HH
#define SCUSIM_ALG_SERIAL_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace scusim::alg
{

/** BFS distances (edge counts) from @p source; infDist if unreached. */
std::vector<std::uint32_t> serialBfs(const graph::CsrGraph &g,
                                     NodeId source);

/** Dijkstra distances from @p source; infDist if unreached. */
std::vector<std::uint32_t> serialDijkstra(const graph::CsrGraph &g,
                                          NodeId source);

/**
 * PageRank by power iteration with dampening @p alpha, stopping when
 * the max node-wise change drops below @p epsilon or after
 * @p max_iters iterations.
 * @return per-node scores.
 */
std::vector<double> serialPageRank(const graph::CsrGraph &g,
                                   double alpha = 0.15,
                                   double epsilon = 1e-4,
                                   unsigned max_iters = 100);

} // namespace scusim::alg

#endif // SCUSIM_ALG_SERIAL_HH
