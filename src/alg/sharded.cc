#include "alg/sharded.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "mem/interconnect.hh"

namespace scusim::alg
{

namespace
{

/** Per-message wire size: global node id + one payload word. */
constexpr unsigned msgBytes = 8;

/**
 * Barrier exchange: push every outbox message onto the modeled
 * interconnect (stalling on link back-pressure), advance the
 * simulation until everything is delivered, then sort the arrivals
 * into per-device inboxes. No-op (and no simulated time) when no
 * device has anything to say.
 */
void
exchange(harness::System &sys, const graph::GraphPartition &part,
         std::vector<std::vector<BoundaryMsg>> &outbox,
         std::vector<std::vector<BoundaryMsg>> &inbox)
{
    const unsigned numDev = sys.deviceCount();
    for (auto &in : inbox)
        in.clear();

    std::size_t total = 0;
    for (const auto &out : outbox)
        total += out.size();
    if (total == 0)
        return;

    auto &icn = sys.interconnect();
    auto &sim = sys.simulation();
    for (DeviceId d = 0; d < numDev; ++d) {
        for (const BoundaryMsg &m : outbox[d]) {
            const DeviceId dst = part.ownerOf(m.node);
            panic_if(dst == d,
                     "boundary message %u addressed to its sender",
                     m.node);
            while (!icn.canSend(d, dst))
                sim.step(1);
            icn.send(mem::IcnMessage{d, dst, m.node, m.value,
                                     msgBytes},
                     sim.now());
        }
        outbox[d].clear();
    }
    sim.run();
    for (DeviceId d = 0; d < numDev; ++d) {
        for (const mem::IcnMessage &m : icn.drain(d))
            inbox[d].push_back(BoundaryMsg{m.a, m.b});
    }
}

/** Sum per-device work metrics into the aggregate result. */
void
aggregate(const std::vector<AlgMetrics> &perDev, AlgMetrics &agg,
          std::vector<AlgMetrics> *perDeviceOut)
{
    for (const AlgMetrics &m : perDev) {
        agg.gpuEdgeWork += m.gpuEdgeWork;
        agg.rawExpanded += m.rawExpanded;
        agg.scuFiltered += m.scuFiltered;
    }
    if (perDeviceOut)
        *perDeviceOut = perDev;
}

} // namespace

BfsResult
shardedBfs(harness::System &sys, const graph::GraphPartition &part,
           const AlgOptions &opt,
           std::vector<AlgMetrics> *perDevice)
{
    const unsigned numDev = sys.deviceCount();
    fatal_if(part.numFragments() != numDev,
             "partition has %u fragments for %u devices",
             part.numFragments(), numDev);

    std::vector<std::unique_ptr<BfsRunner>> runners;
    for (DeviceId d = 0; d < numDev; ++d) {
        runners.push_back(std::make_unique<BfsRunner>(
            sys, d, part.fragment(d).csr, &part));
    }

    BfsResult res;
    std::vector<AlgMetrics> met(numDev);
    std::vector<std::vector<BoundaryMsg>> outbox(numDev);
    std::vector<std::vector<BoundaryMsg>> inbox(numDev);
    const bool multi = numDev > 1;

    for (DeviceId d = 0; d < numDev; ++d)
        runners[d]->beginRun(opt);

    auto anyFrontier = [&] {
        for (DeviceId d = 0; d < numDev; ++d) {
            if (!runners[d]->frontierEmpty())
                return true;
        }
        return false;
    };

    std::uint32_t level = 0;
    while (anyFrontier() && level < opt.maxIterations) {
        ++level;
        ++res.metrics.iterations;
        for (DeviceId d = 0; d < numDev; ++d) {
            if (runners[d]->frontierEmpty())
                continue;
            ++met[d].iterations;
            runners[d]->runLevel(level, met[d],
                                 multi ? &outbox[d] : nullptr);
        }
        if (multi) {
            exchange(sys, part, outbox, inbox);
            for (DeviceId d = 0; d < numDev; ++d)
                runners[d]->acceptRemote(inbox[d], level);
        }
    }

    res.dist.assign(part.numNodes(), infDist);
    for (DeviceId d = 0; d < numDev; ++d)
        runners[d]->collect(res.dist);
    aggregate(met, res.metrics, perDevice);
    return res;
}

SsspResult
shardedSssp(harness::System &sys, const graph::CsrGraph &g,
            const graph::GraphPartition &part, const AlgOptions &opt,
            std::vector<AlgMetrics> *perDevice)
{
    const unsigned numDev = sys.deviceCount();
    fatal_if(part.numFragments() != numDev,
             "partition has %u fragments for %u devices",
             part.numFragments(), numDev);

    // Fragment-local average weights diverge between devices, so the
    // near/far delta is fixed globally up front (same formula the
    // plain runner applies to the whole graph).
    AlgOptions o = opt;
    if (o.ssspDelta == 0) {
        double avg = 0;
        for (auto w : g.weightArray())
            avg += w;
        avg = g.numEdges() ? avg / static_cast<double>(g.numEdges())
                           : 1.0;
        o.ssspDelta = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(avg * 4.0));
    }

    std::vector<std::unique_ptr<SsspRunner>> runners;
    for (DeviceId d = 0; d < numDev; ++d) {
        runners.push_back(std::make_unique<SsspRunner>(
            sys, d, part.fragment(d).csr, &part));
    }

    SsspResult res;
    std::vector<AlgMetrics> met(numDev);
    std::vector<std::vector<BoundaryMsg>> outbox(numDev);
    std::vector<std::vector<BoundaryMsg>> inbox(numDev);
    const bool multi = numDev > 1;

    for (DeviceId d = 0; d < numDev; ++d)
        runners[d]->beginRun(o);

    auto anyNear = [&] {
        for (DeviceId d = 0; d < numDev; ++d) {
            if (!runners[d]->nearEmpty())
                return true;
        }
        return false;
    };
    auto allFarEmpty = [&] {
        for (DeviceId d = 0; d < numDev; ++d) {
            if (!runners[d]->farEmpty())
                return false;
        }
        return true;
    };

    unsigned iters = 0;
    while (iters < o.maxIterations) {
        // ------- Near phase: drain every node frontier -----------
        while (anyNear() && iters < o.maxIterations) {
            ++iters;
            ++res.metrics.iterations;
            for (DeviceId d = 0; d < numDev; ++d) {
                if (runners[d]->nearEmpty())
                    continue;
                ++met[d].iterations;
                runners[d]->nearIteration(
                    met[d], multi ? &outbox[d] : nullptr);
            }
            if (multi) {
                exchange(sys, part, outbox, inbox);
                for (DeviceId d = 0; d < numDev; ++d)
                    runners[d]->acceptRemote(inbox[d]);
            }
        }

        if (!anyNear() && allFarEmpty())
            break;

        // ------- Far phase: raise the threshold and re-split -----
        for (DeviceId d = 0; d < numDev; ++d)
            runners[d]->advanceThreshold();
        if (allFarEmpty())
            continue;
        for (DeviceId d = 0; d < numDev; ++d) {
            if (!runners[d]->farEmpty())
                runners[d]->farPhase(met[d]);
        }
    }

    res.dist.assign(part.numNodes(), infDist);
    for (DeviceId d = 0; d < numDev; ++d)
        runners[d]->collect(res.dist);
    aggregate(met, res.metrics, perDevice);
    return res;
}

PrResult
shardedPr(harness::System &sys, const graph::GraphPartition &part,
          const AlgOptions &opt, std::vector<AlgMetrics> *perDevice)
{
    const unsigned numDev = sys.deviceCount();
    fatal_if(part.numFragments() != numDev,
             "partition has %u fragments for %u devices",
             part.numFragments(), numDev);

    std::vector<std::unique_ptr<PageRankRunner>> runners;
    for (DeviceId d = 0; d < numDev; ++d) {
        runners.push_back(std::make_unique<PageRankRunner>(
            sys, d, part.fragment(d).csr, &part));
    }

    PrResult res;
    std::vector<AlgMetrics> met(numDev);
    std::vector<std::vector<BoundaryMsg>> outbox(numDev);
    std::vector<std::vector<BoundaryMsg>> inbox(numDev);
    const bool multi = numDev > 1;

    for (DeviceId d = 0; d < numDev; ++d)
        runners[d]->beginRun(opt);

    for (unsigned it = 0; it < opt.prMaxIterations; ++it) {
        ++res.metrics.iterations;
        for (DeviceId d = 0; d < numDev; ++d) {
            ++met[d].iterations;
            runners[d]->iterate(met[d],
                                multi ? &outbox[d] : nullptr);
        }
        if (multi) {
            exchange(sys, part, outbox, inbox);
            for (DeviceId d = 0; d < numDev; ++d)
                runners[d]->acceptRemote(inbox[d]);
        }
        float max_delta = 0.0f;
        for (DeviceId d = 0; d < numDev; ++d)
            max_delta = std::max(max_delta, runners[d]->dampen());
        if (max_delta < static_cast<float>(opt.prEpsilon)) {
            res.converged = true;
            break;
        }
    }

    res.ranks.assign(part.numNodes(), 0.0f);
    for (DeviceId d = 0; d < numDev; ++d)
        runners[d]->collect(res.ranks);
    aggregate(met, res.metrics, perDevice);
    return res;
}

} // namespace scusim::alg
