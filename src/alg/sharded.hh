/**
 * @file
 * Sharded multi-device drivers for the three graph primitives. Each
 * driver partitions iterations into lockstep super-steps: every
 * device advances its fragment one step, then boundary messages are
 * exchanged over the modeled interconnect at the barrier. With a
 * single device the drivers execute exactly the plain runners' loop
 * (no exchange, no ghost work), which the 1-fragment equivalence
 * gate pins down byte-for-byte.
 */

#ifndef SCUSIM_ALG_SHARDED_HH
#define SCUSIM_ALG_SHARDED_HH

#include <vector>

#include "alg/bfs.hh"
#include "alg/options.hh"
#include "alg/pagerank.hh"
#include "alg/sssp.hh"
#include "graph/csr.hh"
#include "graph/partition.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/**
 * Sharded BFS over @p part on @p sys (one fragment per device).
 * Results are in global ids. @p perDevice, if non-null, receives
 * each device's work metrics (aggregate metrics land in the result).
 */
BfsResult shardedBfs(harness::System &sys,
                     const graph::GraphPartition &part,
                     const AlgOptions &opt,
                     std::vector<AlgMetrics> *perDevice = nullptr);

/**
 * Sharded SSSP. The near/far threshold is stepped globally: the far
 * phase starts only when every device's near frontier is drained and
 * no boundary messages remain in flight.
 */
SsspResult shardedSssp(harness::System &sys,
                       const graph::CsrGraph &g,
                       const graph::GraphPartition &part,
                       const AlgOptions &opt,
                       std::vector<AlgMetrics> *perDevice = nullptr);

/** Sharded PageRank; convergence is decided on the global max
 *  rank delta reduced across devices. */
PrResult shardedPr(harness::System &sys,
                   const graph::GraphPartition &part,
                   const AlgOptions &opt,
                   std::vector<AlgMetrics> *perDevice = nullptr);

} // namespace scusim::alg

#endif // SCUSIM_ALG_SHARDED_HH
