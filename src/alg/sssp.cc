#include "alg/sssp.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace scusim::alg
{

namespace
{

/**
 * Keep, per node, only the last improving entry (the one with the
 * best cost, since successive improvements are strictly decreasing).
 * This is the lookup-table deduplication of Section 2.2.2: complete,
 * unlike BFS's best-effort bitmask.
 */
class WinnerDedup
{
  public:
    explicit WinnerDedup(std::size_t n)
        : epoch(n, 0), winner(n, 0), cur(0) {}

    void
    begin()
    {
        ++cur;
    }

    void
    offer(NodeId v, std::size_t t)
    {
        epoch[v] = cur;
        winner[v] = t;
    }

    bool
    isWinner(NodeId v, std::size_t t) const
    {
        return epoch[v] == cur && winner[v] == t;
    }

  private:
    std::vector<std::uint32_t> epoch;
    std::vector<std::size_t> winner;
    std::uint32_t cur;
};

} // namespace

SsspRunner::SsspRunner(harness::System &s,
                       const graph::CsrGraph &graph)
    : SsspRunner(s, 0, graph, nullptr)
{
}

SsspRunner::SsspRunner(harness::System &s, DeviceId d,
                       const graph::CsrGraph &graph,
                       const graph::GraphPartition *p)
    : sys(s), dev(d), part(p),
      frag(p ? &p->fragment(d) : nullptr), g(graph),
      gb(s.addressSpace(d), graph),
      scratch(s.addressSpace(d),
              static_cast<std::size_t>(graph.numEdges()) * 2 + 1024)
{
    auto &as = sys.addressSpace(dev);
    const auto n = static_cast<std::size_t>(g.numNodes());
    const auto ef_cap =
        static_cast<std::size_t>(g.numEdges()) * 2 + 1024;
    const auto far_cap =
        static_cast<std::size_t>(g.numEdges()) * 3 + 1024;

    dist.allocate(as, "sssp_dist", n);
    nodeFrontier.allocate(as, "sssp_node_frontier", ef_cap);
    edgeFrontier.allocate(as, "sssp_edge_frontier", ef_cap);
    weightFrontier.allocate(as, "sssp_weight_frontier", ef_cap);
    gatherWeights.allocate(as, "sssp_gather_weights", ef_cap);
    replDist.allocate(as, "sssp_repl_dist", ef_cap);
    srcDist.allocate(as, "sssp_src_dist", ef_cap);
    counts.allocate(as, "sssp_counts", ef_cap);
    indexes.allocate(as, "sssp_indexes", ef_cap);
    farEdges[0].allocate(as, "sssp_far_edges_a", far_cap);
    farEdges[1].allocate(as, "sssp_far_edges_b", far_cap);
    farWeights[0].allocate(as, "sssp_far_weights_a", far_cap);
    farWeights[1].allocate(as, "sssp_far_weights_b", far_cap);
    lookupTable.allocate(as, "sssp_lookup_table", n);
    nearFlags.allocate(as, "sssp_near_flags", far_cap);
    farFlags.allocate(as, "sssp_far_flags", far_cap);
    if (part && part->numFragments() > 1)
        inbox.allocate(as, "sssp_inbox", ef_cap);
}

void
SsspRunner::prepare(std::size_t nf_n)
{
    for (std::size_t t = 0; t < nf_n; ++t) {
        const NodeId u = nodeFrontier[t];
        counts[t] = gb.offsets[u + 1] - gb.offsets[u];
        indexes[t] = gb.offsets[u];
        srcDist[t] = dist[u];
    }
    gpuStreamKernel(
        sys, "sssp_prepare", gpu::Phase::Processing, nf_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(nodeFrontier.addrOf(t), 4);
            const NodeId u = nodeFrontier[t];
            rec.load(gb.offsets.addrOf(u), 4);
            rec.load(gb.offsets.addrOf(u + 1), 4);
            rec.load(dist.addrOf(u), 4);
            rec.compute(16);
            rec.store(counts.addrOf(t), 4);
            rec.store(indexes.addrOf(t), 4);
            rec.store(srcDist.addrOf(t), 4);
        },
        dev);
}

void
SsspRunner::contract(std::size_t ef_n, AlgMetrics &m,
                     std::vector<BoundaryMsg> *outbox)
{
    m.gpuEdgeWork += ef_n;

    // Functional relaxation sweep (deterministic atomicMin order).
    // Ghost targets never enter the local piles: an improving
    // relaxation updates the ghost's best-cost cache and is
    // forwarded to the owner at the next exchange barrier.
    WinnerDedup local(g.numNodes());
    local.begin();
    for (std::size_t t = 0; t < ef_n; ++t) {
        const NodeId v = edgeFrontier[t];
        const std::uint32_t w = weightFrontier[t];
        const bool improved = w < dist[v];
        if (improved)
            dist[v] = w;
        if (frag && !frag->isInner(v)) {
            nearFlags[t] = 0;
            farFlags[t] = 0;
            if (improved && outbox)
                outbox->push_back(
                    BoundaryMsg{frag->toGlobal[v], w});
            continue;
        }
        nearFlags[t] = (improved && w <= threshold) ? 1 : 0;
        farFlags[t] = (improved && w > threshold) ? 1 : 0;
        if (nearFlags[t])
            local.offer(v, t);
    }
    // Complete near deduplication (lookup table): only the winning
    // (best-cost) entry of each node stays in the node frontier.
    for (std::size_t t = 0; t < ef_n; ++t) {
        if (nearFlags[t] &&
            !local.isWinner(edgeFrontier[t], t))
            nearFlags[t] = 0;
    }

    gpuStreamKernel(
        sys, "sssp_contract", gpu::Phase::Processing, ef_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(edgeFrontier.addrOf(t), 4);
            rec.load(weightFrontier.addrOf(t), 4);
            const NodeId v = edgeFrontier[t];
            rec.load(dist.addrOf(v), 4);
            rec.compute(24);
            // Lookup-table deduplication: write thread id, re-read
            // after the synchronization point.
            rec.store(lookupTable.addrOf(v), 4);
            rec.load(lookupTable.addrOf(v), 4);
            rec.compute(2);
            // atomicMin on the distance of improving entries.
            if (nearFlags[t] || farFlags[t])
                rec.atomic(dist.addrOf(v), 4);
            rec.store(nearFlags.addrOf(t), 1);
            rec.store(farFlags.addrOf(t), 1);
        },
        dev);
}

void
SsspRunner::splitFarPile(std::size_t far_n, std::uint32_t threshold,
                         bool gpu_dedup)
{
    Elems &fe = farEdges[farCur];
    Elems &fw = farWeights[farCur];

    WinnerDedup local(g.numNodes());
    local.begin();
    for (std::size_t t = 0; t < far_n; ++t) {
        const NodeId v = fe[t];
        const std::uint32_t w = fw[t];
        // Keep entries that still carry the node's best label
        // (w == dist[v] means this entry set the label and the node
        // still awaits expansion); drop strictly stale ones.
        const bool valid = w <= dist[v];
        nearFlags[t] = (valid && w <= threshold) ? 1 : 0;
        farFlags[t] = (valid && w > threshold) ? 1 : 0;
        if (nearFlags[t])
            local.offer(v, t);
    }
    // With the enhanced SCU the best-cost hash does the
    // deduplication (Section 4.5.2); otherwise the GPU pays for the
    // complete lookup-table pass.
    if (gpu_dedup) {
        for (std::size_t t = 0; t < far_n; ++t) {
            if (nearFlags[t] && !local.isWinner(fe[t], t))
                nearFlags[t] = 0;
        }
    }

    gpuStreamKernel(
        sys, "sssp_far_split", gpu::Phase::Processing, far_n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.load(fe.addrOf(t), 4);
            rec.load(fw.addrOf(t), 4);
            rec.load(dist.addrOf(fe[t]), 4);
            rec.compute(20);
            if (gpu_dedup) {
                rec.store(lookupTable.addrOf(fe[t]), 4);
                rec.load(lookupTable.addrOf(fe[t]), 4);
            }
            rec.store(nearFlags.addrOf(t), 1);
            rec.store(farFlags.addrOf(t), 1);
        },
        dev);
}

void
SsspRunner::beginRun(const AlgOptions &opt)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    if (!frag) {
        fatal_if(opt.source >= g.numNodes(),
                 "SSSP source out of range");
    } else {
        fatal_if(opt.source >= part->numNodes(),
                 "SSSP source out of range");
    }

    delta = opt.ssspDelta;
    if (delta == 0) {
        double avg = 0;
        for (auto w : g.weightArray())
            avg += w;
        avg = g.numEdges() ? avg / static_cast<double>(g.numEdges())
                           : 1.0;
        delta = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(avg * 4.0));
    }

    std::fill(dist.host().begin(), dist.host().end(), infDist);
    gpuStreamKernel(
        sys, "sssp_init", gpu::Phase::Processing, n,
        [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
            rec.compute(2);
            rec.store(dist.addrOf(t), 4);
            rec.store(lookupTable.addrOf(t), 4);
        },
        dev);

    use_scu = opt.mode != harness::ScuMode::GpuOnly;
    enhanced = opt.mode == harness::ScuMode::ScuEnhanced;
    if (use_scu)
        sys.scuDevice(dev).resetFilterTables();

    nf_n = 0;
    far_n = 0;
    farCur = 0;
    threshold = delta;
    const bool owned =
        !frag || part->ownerOf(opt.source) == frag->device;
    if (owned) {
        const NodeId src =
            frag ? part->localOf(opt.source) : opt.source;
        dist[src] = 0;
        nodeFrontier[0] = src;
        nf_n = 1;
    }
}

std::size_t
SsspRunner::expand(AlgMetrics &m)
{
    const std::size_t cur_nf = nf_n;
    prepare(cur_nf);
    std::uint64_t produced = 0;
    for (std::size_t i = 0; i < cur_nf; ++i)
        produced += counts[i];
    m.rawExpanded += produced;
    panic_if(produced > edgeFrontier.size(),
             "SSSP edge frontier overflow");

    std::size_t ef_n = 0;
    if (!use_scu) {
        ExpandOutput oe{
            &edgeFrontier,
            [&](std::size_t i, std::uint32_t j,
                gpu::ThreadRecorder &rec) -> std::uint32_t {
                const std::uint32_t e = indexes[i] + j;
                rec.load(gb.edges.addrOf(e), 4);
                return gb.edges[e];
            }};
        ExpandOutput ow{
            &weightFrontier,
            [&](std::size_t i, std::uint32_t j,
                gpu::ThreadRecorder &rec) -> std::uint32_t {
                const std::uint32_t e = indexes[i] + j;
                rec.load(gb.weights.addrOf(e), 4);
                rec.load(srcDist.addrOf(i), 4);
                return gb.weights[e] + srcDist[i];
            }};
        std::array<ExpandOutput, 2> outs{oe, ow};
        ef_n = gpuExpand(sys, counts, cur_nf, outs, scratch,
                         "sssp_expand", dev);
    } else {
        auto &scu = sys.scuDevice(dev);
        std::vector<std::uint8_t> keep;
        std::vector<std::uint32_t> order;
        scu::OpOptions step2;

        sys.scuSection(dev, [&] {
            if (enhanced) {
                // Accumulated costs of the would-be edge
                // frontier, for best-cost filtering.
                std::vector<std::uint32_t> costs;
                costs.reserve(produced);
                for (std::size_t i = 0; i < cur_nf; ++i) {
                    for (std::uint32_t j = 0; j < counts[i]; ++j)
                        costs.push_back(
                            srcDist[i] +
                            gb.weights[indexes[i] + j]);
                }
                // The best-cost hash is reset per operation so
                // the Table 2-sized region stays L2-resident; it
                // drops the worse-cost duplicates within the
                // frontier before the GPU sees them.
                scu.costFilter().reset();
                scu::OpOptions f1;
                f1.writeOutput = false;
                f1.filterMode = scu::FilterMode::BestCost;
                f1.keepOut = &keep;
                f1.costs = costs;
                std::size_t ignore = 0;
                auto st1 = scu.accessExpansionCompaction(
                    gb.edges, indexes, counts, cur_nf, nullptr,
                    edgeFrontier, ignore, f1);
                m.scuFiltered += st1.filtered;

                scu.groupingTable().reset();
                scu::OpOptions g1;
                g1.writeOutput = false;
                g1.makeGroups = true;
                g1.orderOut = &order;
                ignore = 0;
                scu.accessExpansionCompaction(
                    gb.edges, indexes, counts, cur_nf, nullptr,
                    edgeFrontier, ignore, g1);

                step2.keep = &keep;
                step2.order = &order;
            }
            // The paper's Algorithm 2: edge frontier, gathered
            // weights and replicated source distances.
            scu.accessExpansionCompaction(
                gb.edges, indexes, counts, cur_nf, nullptr,
                edgeFrontier, ef_n, step2);
            std::size_t wn = 0, rn = 0;
            scu.accessExpansionCompaction(
                gb.weights, indexes, counts, cur_nf, nullptr,
                gatherWeights, wn, step2);
            scu.replicationCompaction(srcDist, counts, cur_nf,
                                      nullptr, replDist, rn,
                                      step2);
            panic_if(wn != ef_n || rn != ef_n,
                     "SSSP frontier streams diverged");
        });

        // GPU combines the two SCU-prepared vectors into the
        // weight (cost) frontier.
        for (std::size_t t = 0; t < ef_n; ++t)
            weightFrontier[t] = gatherWeights[t] + replDist[t];
        gpuStreamKernel(
            sys, "sssp_wf_add", gpu::Phase::Processing, ef_n,
            [&](std::uint64_t t, gpu::ThreadRecorder &rec) {
                rec.load(gatherWeights.addrOf(t), 4);
                rec.load(replDist.addrOf(t), 4);
                rec.compute(6);
                rec.store(weightFrontier.addrOf(t), 4);
            },
            dev);
    }
    return ef_n;
}

void
SsspRunner::nearIteration(AlgMetrics &m,
                          std::vector<BoundaryMsg> *outbox)
{
    const std::size_t ef_n = expand(m);
    contract(ef_n, m, outbox);

    std::size_t next_nf = 0;
    if (!use_scu) {
        CompactStream sn{&edgeFrontier, &nodeFrontier};
        gpuCompact(sys, {&sn, 1}, nearFlags, ef_n, next_nf,
                   scratch, "sssp_near_compact", dev);
        std::array<CompactStream, 2> sf{
            CompactStream{&edgeFrontier, &farEdges[farCur]},
            CompactStream{&weightFrontier,
                          &farWeights[farCur]}};
        gpuCompact(sys, sf, farFlags, ef_n, far_n, scratch,
                   "sssp_far_compact", dev);
    } else {
        auto &scu = sys.scuDevice(dev);
        sys.scuSection(dev, [&] {
            if (enhanced) {
                // Near nodes: grouping only (GPU filtering
                // is already complete, Section 4.5.2).
                scu.groupingTable().reset();
                std::vector<std::uint32_t> order;
                scu::OpOptions g1;
                g1.writeOutput = false;
                g1.makeGroups = true;
                g1.orderOut = &order;
                std::size_t ignore = 0;
                scu.dataCompaction(edgeFrontier, ef_n,
                                   &nearFlags, nodeFrontier,
                                   ignore, g1);
                scu::OpOptions s2;
                s2.order = &order;
                scu.dataCompaction(edgeFrontier, ef_n,
                                   &nearFlags, nodeFrontier,
                                   next_nf, s2);
            } else {
                scu.dataCompaction(edgeFrontier, ef_n,
                                   &nearFlags, nodeFrontier,
                                   next_nf);
            }
            // Far pile: edges and weights land at the same
            // packed positions (Algorithm 2).
            std::size_t fw_n = far_n;
            scu.dataCompaction(edgeFrontier, ef_n, &farFlags,
                               farEdges[farCur], far_n);
            scu.dataCompaction(weightFrontier, ef_n,
                               &farFlags, farWeights[farCur],
                               fw_n);
            panic_if(fw_n != far_n,
                     "far pile streams diverged");
        });
    }
    nf_n = next_nf;
}

void
SsspRunner::farPhase(AlgMetrics &m)
{
    splitFarPile(far_n, threshold, !enhanced);
    m.gpuEdgeWork += far_n;

    std::size_t new_nf = 0;
    std::size_t new_far = 0;
    const unsigned nxt = 1 - farCur;
    if (!use_scu) {
        CompactStream sn{&farEdges[farCur], &nodeFrontier};
        gpuCompact(sys, {&sn, 1}, nearFlags, far_n, new_nf,
                   scratch, "sssp_farphase_near", dev);
        std::array<CompactStream, 2> sf{
            CompactStream{&farEdges[farCur], &farEdges[nxt]},
            CompactStream{&farWeights[farCur], &farWeights[nxt]}};
        gpuCompact(sys, sf, farFlags, far_n, new_far, scratch,
                   "sssp_farphase_far", dev);
    } else {
        auto &scu = sys.scuDevice(dev);
        sys.scuSection(dev, [&] {
            if (enhanced) {
                // Both filtering and grouping apply to the far
                // elements (Section 4.5.2).
                std::vector<std::uint32_t> costs(far_n);
                for (std::size_t t = 0; t < far_n; ++t)
                    costs[t] = farWeights[farCur][t];
                // Costs of the kept (near-flagged) stream only.
                std::vector<std::uint32_t> kept_costs;
                for (std::size_t t = 0; t < far_n; ++t) {
                    if (nearFlags[t])
                        kept_costs.push_back(costs[t]);
                }
                scu.costFilter().reset();
                std::vector<std::uint8_t> keep;
                scu::OpOptions f1;
                f1.writeOutput = false;
                f1.filterMode = scu::FilterMode::BestCost;
                f1.keepOut = &keep;
                f1.costs = kept_costs;
                std::size_t ignore = 0;
                auto st1 = scu.dataCompaction(
                    farEdges[farCur], far_n, &nearFlags,
                    nodeFrontier, ignore, f1);
                m.scuFiltered += st1.filtered;

                scu.groupingTable().reset();
                std::vector<std::uint32_t> order;
                scu::OpOptions g1;
                g1.writeOutput = false;
                g1.makeGroups = true;
                g1.orderOut = &order;
                ignore = 0;
                scu.dataCompaction(farEdges[farCur], far_n,
                                   &nearFlags, nodeFrontier,
                                   ignore, g1);

                scu::OpOptions s2;
                s2.keep = &keep;
                s2.order = &order;
                scu.dataCompaction(farEdges[farCur], far_n,
                                   &nearFlags, nodeFrontier,
                                   new_nf, s2);
            } else {
                scu.dataCompaction(farEdges[farCur], far_n,
                                   &nearFlags, nodeFrontier,
                                   new_nf);
            }
            scu.dataCompaction(farEdges[farCur], far_n,
                               &farFlags, farEdges[nxt],
                               new_far);
            std::size_t w_far = 0;
            scu.dataCompaction(farWeights[farCur], far_n,
                               &farFlags, farWeights[nxt],
                               w_far);
        });
    }
    farCur = nxt;
    far_n = new_far;
    nf_n = new_nf;
}

void
SsspRunner::acceptRemote(std::span<const BoundaryMsg> msgs)
{
    if (msgs.empty())
        return;
    panic_if(!frag, "acceptRemote on a non-sharded SSSP runner");

    std::size_t t = 0;
    for (const BoundaryMsg &msg : msgs) {
        const NodeId l = part->localOf(msg.node);
        inbox[t % inbox.size()] = msg.node;
        ++t;
        if (msg.value >= dist[l])
            continue;
        dist[l] = msg.value;
        if (msg.value <= threshold) {
            panic_if(nf_n >= nodeFrontier.size(),
                     "node frontier overflow on remote inject");
            nodeFrontier[nf_n++] = l;
        } else {
            panic_if(far_n >= farEdges[farCur].size(),
                     "far pile overflow on remote inject");
            farEdges[farCur][far_n] = l;
            farWeights[farCur][far_n] = msg.value;
            ++far_n;
        }
    }

    // Timing: one thread per message — load it, compare against the
    // label, conditionally relax and append.
    gpuStreamKernel(
        sys, "sssp_inject_remote", gpu::Phase::Processing,
        msgs.size(),
        [&](std::uint64_t i, gpu::ThreadRecorder &rec) {
            rec.load(inbox.addrOf(i % inbox.size()), 8);
            const NodeId l = part->localOf(msgs[i].node);
            rec.load(dist.addrOf(l), 4);
            rec.compute(14);
            rec.atomic(dist.addrOf(l), 4);
        },
        dev);
}

void
SsspRunner::collect(std::vector<std::uint32_t> &globalDist) const
{
    panic_if(!frag, "collect on a non-sharded SSSP runner");
    for (NodeId l = 0; l < frag->numInner; ++l)
        globalDist[frag->toGlobal[l]] = dist[l];
}

SsspResult
SsspRunner::run(const AlgOptions &opt)
{
    SsspResult res;
    beginRun(opt);

    unsigned iters = 0;
    while ((nf_n > 0 || far_n > 0) && iters < opt.maxIterations) {
        // ------- Near phase: drain the node frontier -------------
        while (nf_n > 0 && iters < opt.maxIterations) {
            ++iters;
            ++res.metrics.iterations;
            nearIteration(res.metrics, nullptr);
        }

        if (far_n == 0 && nf_n == 0)
            break;

        // ------- Far phase: raise the threshold and re-split -----
        advanceThreshold();
        if (far_n == 0)
            continue;
        farPhase(res.metrics);
    }

    res.dist.assign(dist.host().begin(), dist.host().end());
    return res;
}

} // namespace scusim::alg
