/**
 * @file
 * Single-Source Shortest Paths on the simulated system, following the
 * Davidson et al. near-far work delegation of Section 2.2 with the
 * SCU offloads of Sections 3.4 (basic) and 4.5 (enhanced: best-cost
 * filtering plus grouping).
 *
 * Like BFS, the runner is written on top of a step API
 * (beginRun()/nearIteration()/advanceThreshold()/farPhase()) so the
 * sharded driver can advance one fragment per device in lockstep,
 * exchanging boundary relaxations between near iterations; run()
 * composes the same steps into the original single-device loop.
 */

#ifndef SCUSIM_ALG_SSSP_HH
#define SCUSIM_ALG_SSSP_HH

#include <span>
#include <vector>

#include "alg/graph_buffers.hh"
#include "alg/gpu_primitives.hh"
#include "alg/options.hh"
#include "graph/csr.hh"
#include "graph/partition.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Result of one simulated SSSP run. */
struct SsspResult
{
    std::vector<std::uint32_t> dist; ///< costs, infDist if unreached
    AlgMetrics metrics;
};

class SsspRunner
{
  public:
    SsspRunner(harness::System &sys, const graph::CsrGraph &g);

    /**
     * Fragment-aware runner for device @p dev of a sharded system.
     * Ghost vertices keep a best-cost cache: a relaxation that
     * improves a ghost is forwarded to its owner as a boundary
     * message instead of entering the local frontier. In sharded
     * runs the driver must pre-compute a global ssspDelta (the
     * per-fragment average weight would diverge between devices).
     */
    SsspRunner(harness::System &sys, DeviceId dev,
               const graph::CsrGraph &g,
               const graph::GraphPartition *part);

    SsspResult run(const AlgOptions &opt);

    // --- Step API for the sharded driver -----------------------

    /** Reset state, pick delta and seed the source (if owned). */
    void beginRun(const AlgOptions &opt);

    bool nearEmpty() const { return nf_n == 0; }
    bool farEmpty() const { return far_n == 0; }

    /**
     * One near-phase expand/contract/compact iteration. Improving
     * relaxations that land on ghost vertices are reported into
     * @p outbox (global id + tentative cost) instead of the local
     * frontier; pass nullptr outside sharded multi-device runs.
     */
    void nearIteration(AlgMetrics &m,
                       std::vector<BoundaryMsg> *outbox);

    /** Raise the near/far threshold by delta. */
    void advanceThreshold() { threshold += delta; }

    /** Revalidate and re-split the far pile at the new threshold. */
    void farPhase(AlgMetrics &m);

    /** Inject remote relaxations against the current threshold. */
    void acceptRemote(std::span<const BoundaryMsg> msgs);

    /** Scatter this fragment's inner distances into @p globalDist. */
    void collect(std::vector<std::uint32_t> &globalDist) const;

  private:
    /** GPU preparation: counts/indexes/source-distance gather. */
    void prepare(std::size_t nf_n);

    /** Expansion of the current node frontier; returns ef_n. */
    std::size_t expand(AlgMetrics &m);

    /**
     * GPU contraction over the current edge/weight frontier:
     * atomicMin relaxation, lookup-table deduplication and near/far
     * flag generation. Ghost targets divert into @p outbox.
     */
    void contract(std::size_t ef_n, AlgMetrics &m,
                  std::vector<BoundaryMsg> *outbox);

    /**
     * GPU far-pile revalidation: drop settled entries, split the
     * rest into the new node frontier and the next far pile.
     */
    void splitFarPile(std::size_t far_n, std::uint32_t threshold,
                      bool gpu_dedup);

    harness::System &sys;
    DeviceId dev = 0;
    const graph::GraphPartition *part = nullptr;
    const graph::Fragment *frag = nullptr;
    const graph::CsrGraph &g;
    GraphBuffers gb;
    CompactionScratch scratch;

    Elems dist;
    Elems nodeFrontier;
    Elems edgeFrontier;
    Elems weightFrontier;
    Elems gatherWeights; ///< SCU temp: per-edge weight gather
    Elems replDist;      ///< SCU temp: replicated source distances
    Elems srcDist;       ///< per-frontier-node distance (prepare)
    Elems counts;
    Elems indexes;
    Elems farEdges[2];   ///< ping-pong far pile (node ids)
    Elems farWeights[2]; ///< ping-pong far pile (costs)
    Elems lookupTable;   ///< one entry per node (GPU dedup)
    Flags nearFlags;
    Flags farFlags;
    Elems inbox; ///< staging for remote injections (sharded only)

    unsigned farCur = 0; ///< which far pile is current

    std::size_t nf_n = 0;
    std::size_t far_n = 0;
    std::uint32_t delta = 0;
    std::uint32_t threshold = 0;
    bool use_scu = false;
    bool enhanced = false;
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_SSSP_HH
