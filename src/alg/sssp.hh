/**
 * @file
 * Single-Source Shortest Paths on the simulated system, following the
 * Davidson et al. near-far work delegation of Section 2.2 with the
 * SCU offloads of Sections 3.4 (basic) and 4.5 (enhanced: best-cost
 * filtering plus grouping).
 */

#ifndef SCUSIM_ALG_SSSP_HH
#define SCUSIM_ALG_SSSP_HH

#include <vector>

#include "alg/graph_buffers.hh"
#include "alg/gpu_primitives.hh"
#include "alg/options.hh"
#include "graph/csr.hh"
#include "harness/system.hh"

namespace scusim::alg
{

/** Result of one simulated SSSP run. */
struct SsspResult
{
    std::vector<std::uint32_t> dist; ///< costs, infDist if unreached
    AlgMetrics metrics;
};

class SsspRunner
{
  public:
    SsspRunner(harness::System &sys, const graph::CsrGraph &g);

    SsspResult run(const AlgOptions &opt);

  private:
    /** GPU preparation: counts/indexes/source-distance gather. */
    void prepare(std::size_t nf_n);

    /**
     * GPU contraction over the current edge/weight frontier:
     * atomicMin relaxation, lookup-table deduplication and near/far
     * flag generation.
     */
    void contract(std::size_t ef_n, std::uint32_t threshold,
                  AlgMetrics &m);

    /**
     * GPU far-pile revalidation: drop settled entries, split the
     * rest into the new node frontier and the next far pile.
     */
    void splitFarPile(std::size_t far_n, std::uint32_t threshold,
                      bool gpu_dedup);

    harness::System &sys;
    const graph::CsrGraph &g;
    GraphBuffers gb;
    CompactionScratch scratch;

    Elems dist;
    Elems nodeFrontier;
    Elems edgeFrontier;
    Elems weightFrontier;
    Elems gatherWeights; ///< SCU temp: per-edge weight gather
    Elems replDist;      ///< SCU temp: replicated source distances
    Elems srcDist;       ///< per-frontier-node distance (prepare)
    Elems counts;
    Elems indexes;
    Elems farEdges[2];   ///< ping-pong far pile (node ids)
    Elems farWeights[2]; ///< ping-pong far pile (costs)
    Elems lookupTable;   ///< one entry per node (GPU dedup)
    Flags nearFlags;
    Flags farFlags;

    unsigned farCur = 0; ///< which far pile is current
};

} // namespace scusim::alg

#endif // SCUSIM_ALG_SSSP_HH
