/**
 * @file
 * Small bit-manipulation helpers used across the memory system.
 */

#ifndef SCUSIM_COMMON_BITS_HH
#define SCUSIM_COMMON_BITS_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace scusim
{

/** True if @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Smallest power of two >= v. */
constexpr std::uint64_t
ceilPowerOf2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Round @p v down to a multiple of the power-of-two @p align. */
constexpr Addr
alignDown(Addr v, Addr align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of the power-of-two @p align. */
constexpr Addr
alignUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer ceil division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Mix the bits of a 64-bit value; used as the hash function of the
 * SCU filtering/grouping tables and of set-index hashing. This is the
 * finalizer of MurmurHash3, a cheap function with good avalanche
 * behaviour, which is the kind of function trivially implementable in
 * the hardware the paper synthesizes.
 */
constexpr std::uint64_t
mixBits(std::uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
}

} // namespace scusim

#endif // SCUSIM_COMMON_BITS_HH
