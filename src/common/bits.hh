/**
 * @file
 * Small bit-manipulation helpers used across the memory system.
 */

#ifndef SCUSIM_COMMON_BITS_HH
#define SCUSIM_COMMON_BITS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace scusim
{

/** True if @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Smallest power of two >= v. */
constexpr std::uint64_t
ceilPowerOf2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Round @p v down to a multiple of the power-of-two @p align. */
constexpr Addr
alignDown(Addr v, Addr align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of the power-of-two @p align. */
constexpr Addr
alignUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer ceil division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * 64-bit occupancy/lane masks. The scheduler and coalescer hot paths
 * iterate set bits with the classic ctz / clear-lowest idiom:
 *
 *     for (std::uint64_t m = mask; m; m &= m - 1)
 *         use(ctz64(m));
 *
 * which visits indices in ascending order — the property the
 * first-touch-order and way-scan-order invariants rely on.
 */

/** Index of the lowest set bit (64 when @p v is zero). */
constexpr unsigned
ctz64(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Number of set bits. */
constexpr unsigned
popcount64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** Mask with bits [0, n) set; @p n of 64 or more yields all ones. */
constexpr std::uint64_t
maskLow(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << n) - 1;
}

/**
 * Mix the bits of a 64-bit value; used as the hash function of the
 * SCU filtering/grouping tables and of set-index hashing. This is the
 * finalizer of MurmurHash3, a cheap function with good avalanche
 * behaviour, which is the kind of function trivially implementable in
 * the hardware the paper synthesizes.
 */
constexpr std::uint64_t
mixBits(std::uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
}

} // namespace scusim

#endif // SCUSIM_COMMON_BITS_HH
