/**
 * @file
 * Bounded FIFO queue. Models the finite buffering of hardware queues
 * (the SCU's vector buffer, request buffers, store queues, MSHRs).
 */

#ifndef SCUSIM_COMMON_FIFO_HH
#define SCUSIM_COMMON_FIFO_HH

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/logging.hh"
#include "sim/check.hh"

namespace scusim
{

/**
 * A bounded FIFO. push() on a full queue is a simulator bug — callers
 * must check full() first, exactly as hardware must apply
 * back-pressure before enqueueing.
 */
template <typename T>
class BoundedFifo
{
  public:
    explicit BoundedFifo(std::size_t capacity = 0) : cap(capacity) {}

    /** Change capacity; only allowed while empty. */
    void
    setCapacity(std::size_t capacity)
    {
        panic_if(!q.empty(), "resizing a non-empty BoundedFifo");
        cap = capacity;
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }
    bool full() const { return q.size() >= cap; }

    /** Free slots remaining. */
    std::size_t
    space() const
    {
        return q.size() >= cap ? 0 : cap - q.size();
    }

    void
    push(const T &v)
    {
        panic_if(full(), "push to full BoundedFifo (cap=%zu)", cap);
        q.push_back(v);
        ++pushCount;
        sim::checkFifoCredits("BoundedFifo", pushCount, popCount,
                              q.size());
    }

    void
    push(T &&v)
    {
        panic_if(full(), "push to full BoundedFifo (cap=%zu)", cap);
        q.push_back(std::move(v));
        ++pushCount;
        sim::checkFifoCredits("BoundedFifo", pushCount, popCount,
                              q.size());
    }

    T &
    front()
    {
        panic_if(q.empty(), "front of empty BoundedFifo");
        return q.front();
    }

    const T &
    front() const
    {
        panic_if(q.empty(), "front of empty BoundedFifo");
        return q.front();
    }

    void
    pop()
    {
        panic_if(q.empty(), "pop of empty BoundedFifo");
        q.pop_front();
        ++popCount;
        sim::checkFifoCredits("BoundedFifo", pushCount, popCount,
                              q.size());
    }

    /** Elements ever pushed (flow-control credit bookkeeping). */
    std::uint64_t pushes() const { return pushCount; }
    /** Elements ever popped. */
    std::uint64_t pops() const { return popCount; }

    /** Iteration support (e.g. for coalescing-window scans). */
    auto begin() { return q.begin(); }
    auto end() { return q.end(); }
    auto begin() const { return q.begin(); }
    auto end() const { return q.end(); }

    void
    clear()
    {
        // Drained wholesale, not element by element: credits settle.
        popCount += q.size();
        q.clear();
    }

  private:
    std::size_t cap;
    std::deque<T> q;
    std::uint64_t pushCount = 0;
    std::uint64_t popCount = 0;
};

} // namespace scusim

#endif // SCUSIM_COMMON_FIFO_HH
