#include "common/logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

#include "common/sim_error.hh"

namespace scusim
{

namespace
{

/**
 * One process-wide lock keeps log lines whole when executor worker
 * threads report concurrently. Each sink writes a single line, so
 * the critical section is one fprintf.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
logFatal(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        // This IS the logging backend. simlint: allow(direct-output)
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    }
    std::exit(1);
}

void
logPanic(const std::string &msg)
{
    reportFailure(FailureKind::Panic, msg);
}

void
logInvariant(const std::string &msg)
{
    reportFailure(FailureKind::Invariant, msg);
}

void
logWarn(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    // simlint: allow(direct-output)
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
logInform(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    // simlint: allow(direct-output)
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace scusim
