/**
 * @file
 * Error and status reporting in the gem5 tradition: panic() for
 * simulator bugs, fatal() for user errors, warn()/inform() for
 * everything a user should see without the simulation stopping.
 */

#ifndef SCUSIM_COMMON_LOGGING_HH
#define SCUSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace scusim
{

/** Severity levels used by the logging backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Low-level log sink. Prints "level: message" to stderr. Fatal exits
 * with status 1; Panic aborts (simulator bug, core dump wanted).
 */
[[noreturn]] void logFatal(const std::string &msg);
[[noreturn]] void logPanic(const std::string &msg);
/**
 * Invariant (sim_check) violation: a checked-build contract broke.
 * Same abort-or-throw behaviour as logPanic but classified as
 * FailureKind::Invariant for supervised runs.
 */
[[noreturn]] void logInvariant(const std::string &msg);
void logWarn(const std::string &msg);
void logInform(const std::string &msg);

/** printf-style formatting helper returning a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace scusim

/**
 * Called when the simulation cannot continue because of a user error
 * (bad configuration, invalid arguments). Exits with status 1.
 */
#define fatal(...) ::scusim::logFatal(::scusim::strprintf(__VA_ARGS__))

/**
 * Called when something happened that should never happen regardless
 * of user input, i.e. a simulator bug. Aborts — unless the thread
 * runs under the executor's error trap (common/sim_error.hh), in
 * which case a SimError(FailureKind::Panic) is thrown so one bad run
 * cannot kill a whole experiment matrix.
 */
#define panic(...) ::scusim::logPanic(::scusim::strprintf(__VA_ARGS__))

/** Checked-build invariant violation (see sim/check.hh). */
#define sim_invariant(...)                                              \
    ::scusim::logInvariant(::scusim::strprintf(__VA_ARGS__))

/** Non-fatal warning about questionable but survivable conditions. */
#define warn(...) ::scusim::logWarn(::scusim::strprintf(__VA_ARGS__))

/** Status message with no connotation of incorrect behaviour. */
#define inform(...) ::scusim::logInform(::scusim::strprintf(__VA_ARGS__))

/** Condition check that reports a simulator bug when violated. */
#define panic_if(cond, ...)                                             \
    do {                                                                \
        if (cond)                                                       \
            panic(__VA_ARGS__);                                         \
    } while (0)

/** Condition check that reports a user error when violated. */
#define fatal_if(cond, ...)                                             \
    do {                                                                \
        if (cond)                                                       \
            fatal(__VA_ARGS__);                                         \
    } while (0)

#endif // SCUSIM_COMMON_LOGGING_HH
