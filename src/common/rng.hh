/**
 * @file
 * Deterministic pseudo-random number generator for graph synthesis
 * and workload generation. All simulator randomness flows through
 * this class so experiments are exactly reproducible.
 */

#ifndef SCUSIM_COMMON_RNG_HH
#define SCUSIM_COMMON_RNG_HH

#include <cstdint>

namespace scusim
{

/**
 * xoshiro256** generator. Small, fast and high quality; seeded
 * deterministically so every run of a bench reproduces the same
 * synthetic datasets.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5ca1ab1edeadbeefULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t z = seed;
        for (auto &word : s) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            word = x ^ (x >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method would be overkill;
        // modulo bias is negligible for our bounds (< 2^32).
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace scusim

#endif // SCUSIM_COMMON_RNG_HH
