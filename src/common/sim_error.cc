#include "common/sim_error.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace scusim
{

namespace
{

thread_local bool trapActive = false;

std::mutex &
errMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

const char *
to_string(FailureKind k)
{
    switch (k) {
      case FailureKind::Panic:
        return "panic";
      case FailureKind::Invariant:
        return "invariant";
      case FailureKind::Deadlock:
        return "deadlock";
      case FailureKind::Runaway:
        return "runaway";
      case FailureKind::Timeout:
        return "timeout";
      case FailureKind::Overloaded:
        return "overloaded";
      case FailureKind::ConnectionLost:
        return "connection-lost";
    }
    return "?";
}

SimError::SimError(FailureKind kind, const std::string &msg,
                   std::string diagnostics)
    : std::runtime_error(msg), failKind(kind),
      diag(std::move(diagnostics))
{
}

bool
errorTrapActive()
{
    return trapActive;
}

ErrorTrapGuard::ErrorTrapGuard() : previous(trapActive)
{
    trapActive = true;
}

ErrorTrapGuard::~ErrorTrapGuard()
{
    trapActive = previous;
}

void
reportFailure(FailureKind kind, const std::string &msg,
              std::string diagnostics)
{
    if (trapActive || kind == FailureKind::Timeout)
        throw SimError(kind, msg, std::move(diagnostics));
    {
        std::lock_guard<std::mutex> lock(errMutex());
        // This IS the failure reporting backend.
        // simlint: allow(direct-output)
        std::fprintf(stderr, "%s: %s\n", to_string(kind),
                     msg.c_str());
        if (!diagnostics.empty()) // simlint: allow(direct-output)
            std::fprintf(stderr, "%s\n", diagnostics.c_str());
    }
    std::abort();
}

} // namespace scusim
