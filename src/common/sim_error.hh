/**
 * @file
 * Typed failure taxonomy for supervised simulation runs. In the
 * gem5 tradition a panic() aborts the process; under the parallel
 * executor that kills a whole experiment matrix for one bad cell.
 * The executor therefore installs a thread-local *error trap* around
 * each run: while it is active, panic/invariant/watchdog failures
 * are thrown as SimError (carrying a FailureKind and a per-component
 * diagnostic dump) instead of aborting, so the matrix records the
 * failure and keeps going. Standalone tools and death tests see the
 * classic abort behaviour unchanged.
 */

#ifndef SCUSIM_COMMON_SIM_ERROR_HH
#define SCUSIM_COMMON_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace scusim
{

/** Classification of a failed simulation run. */
enum class FailureKind
{
    Panic,     ///< simulator bug (panic() fired)
    Invariant, ///< checked-build contract violation (sim_check)
    Deadlock,  ///< components busy but making no progress
    Runaway,   ///< tick budget exceeded without draining
    Timeout,   ///< wall-clock budget exceeded or run cancelled
    /** Service admission queue full; the request was shed, not run. */
    Overloaded,
    /** Service connection died before a reply arrived. */
    ConnectionLost,
};

/**
 * Transient failures depend on host load or connectivity, not on the
 * run itself: they are retried (with backoff), and neither the
 * in-process memo nor the persistent run cache ever stores them.
 */
constexpr bool
isTransientFailure(FailureKind k)
{
    return k == FailureKind::Timeout || k == FailureKind::Overloaded ||
           k == FailureKind::ConnectionLost;
}

/** Lowercase name: "panic", "invariant", "deadlock", ... */
const char *to_string(FailureKind k);

/**
 * A classified simulation failure. what() is the original message;
 * diagnostics() optionally carries the per-component dump taken at
 * the point of failure (watchdog failures always attach one).
 */
class SimError : public std::runtime_error
{
  public:
    SimError(FailureKind kind, const std::string &msg,
             std::string diagnostics = "");

    FailureKind kind() const { return failKind; }
    const std::string &diagnostics() const { return diag; }

  private:
    FailureKind failKind;
    std::string diag;
};

/** Whether the calling thread runs under an error trap. */
bool errorTrapActive();

/**
 * RAII error trap: while alive on this thread, reportFailure() (and
 * through it panic()/sim_check) throws SimError instead of aborting.
 * Nests safely; the executor installs one per supervised run.
 */
class ErrorTrapGuard
{
  public:
    ErrorTrapGuard();
    ~ErrorTrapGuard();
    ErrorTrapGuard(const ErrorTrapGuard &) = delete;
    ErrorTrapGuard &operator=(const ErrorTrapGuard &) = delete;

  private:
    bool previous;
};

/**
 * Report a classified failure: throws SimError when the thread's
 * error trap is active, otherwise prints "<kind>: <msg>" (plus the
 * diagnostics, if any) to stderr and aborts — Timeout excepted, which
 * always throws (only a supervisor raises it, and a supervisor
 * implies a trap).
 */
[[noreturn]] void reportFailure(FailureKind kind,
                                const std::string &msg,
                                std::string diagnostics = "");

} // namespace scusim

#endif // SCUSIM_COMMON_SIM_ERROR_HH
