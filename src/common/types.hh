/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef SCUSIM_COMMON_TYPES_HH
#define SCUSIM_COMMON_TYPES_HH

#include <cstdint>

namespace scusim
{

/** Simulated time, expressed in core-clock cycles of the GPU domain. */
using Tick = std::uint64_t;

/** A simulated physical address in the device address space. */
using Addr = std::uint64_t;

/** Graph node identifier. 32 bits match the paper's 4-byte elements. */
using NodeId = std::uint32_t;

/** Index into the CSR edge array. 64 bits so offsets never overflow. */
using EdgeId = std::uint64_t;

/** Edge weight; the paper's graphs carry small integer weights. */
using Weight = std::uint32_t;

/** Index of one simulated device in a sharded multi-device system. */
using DeviceId = unsigned;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = static_cast<NodeId>(-1);

/** Sentinel for "unreachable / infinite distance". */
constexpr std::uint32_t infDist = static_cast<std::uint32_t>(-1);

/** Sentinel tick for "never". */
constexpr Tick tickNever = static_cast<Tick>(-1);

} // namespace scusim

#endif // SCUSIM_COMMON_TYPES_HH
