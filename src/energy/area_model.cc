#include "energy/area_model.hh"

#include "common/logging.hh"

namespace scusim::energy
{

AreaReport
scuAreaReport(const std::string &gpu_name, const scu::ScuParams &scu)
{
    AreaReport r;
    r.gpuName = gpu_name;
    if (gpu_name == "GTX980") {
        // GM204 die is 398 mm^2; the paper reports the SCU at
        // 13.27 mm^2 = 3.3% of the GPU system.
        r.gpuMm2 = 398.0;
        r.scuMm2 = 13.27;
    } else if (gpu_name == "TX1") {
        // The paper reports 3.65 mm^2 = 4.1% for the TX1 system.
        r.gpuMm2 = 89.0;
        r.scuMm2 = 3.65;
    } else {
        fatal("no area data for GPU '%s'", gpu_name.c_str());
    }

    // Distribute the total across components in proportion to their
    // storage (Table 1) and datapath width (Table 2). The buffers
    // (5 + 38 + 18 KB of SRAM) dominate; the pipeline logic scales
    // with the configured width.
    const double buffer_kb =
        static_cast<double>(scu.vectorBufferBytes +
                            scu.fifoRequestBytes +
                            scu.hashRequestBytes) / 1024.0;
    const double total_kb = buffer_kb;
    const double buffers_mm2 = r.scuMm2 * 0.55;
    const double datapath_mm2 = r.scuMm2 * 0.30;
    const double coalesce_mm2 = r.scuMm2 * 0.10;
    const double control_mm2 = r.scuMm2 * 0.05;

    r.components = {
        {"request/vector buffers (" +
             std::to_string(static_cast<int>(total_kb)) + " KB)",
         buffers_mm2},
        {"pipeline datapath (width " +
             std::to_string(scu.pipelineWidth) + ")",
         datapath_mm2},
        {"coalescing units", coalesce_mm2},
        {"address generator / control", control_mm2},
    };
    return r;
}

} // namespace scusim::energy
