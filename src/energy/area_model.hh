/**
 * @file
 * Area model of the SCU (Section 6.4). The paper obtains these
 * numbers by synthesizing the Verilog design with Synopsys DC at
 * 32 nm / 0.78 V and characterizing SRAM with CACTI; synthesis is
 * not reproducible offline, so the totals the paper reports are
 * taken as the envelope and broken down across components in
 * proportion to their storage and datapath width.
 */

#ifndef SCUSIM_ENERGY_AREA_MODEL_HH
#define SCUSIM_ENERGY_AREA_MODEL_HH

#include <string>
#include <vector>

#include "scu/scu_config.hh"

namespace scusim::energy
{

/** One component's contribution to the SCU area. */
struct AreaComponent
{
    std::string name;
    double mm2;
};

/** Area report for one GPU system. */
struct AreaReport
{
    std::string gpuName;
    double gpuMm2;               ///< total GPU die area
    double scuMm2;               ///< SCU total (paper Section 6.4)
    std::vector<AreaComponent> components;

    double
    overheadPercent() const
    {
        return 100.0 * scuMm2 / (gpuMm2 /*+ scuMm2 not counted*/);
    }
};

/**
 * Build the area report for @p gpu_name ("GTX980" or "TX1") with the
 * matching SCU configuration @p scu.
 */
AreaReport scuAreaReport(const std::string &gpu_name,
                         const scu::ScuParams &scu);

} // namespace scusim::energy

#endif // SCUSIM_ENERGY_AREA_MODEL_HH
