#include "energy/energy_model.hh"

namespace scusim::energy
{

EnergyParams
EnergyParams::gtx980()
{
    EnergyParams p;
    p.name = "GTX980";
    p.threadInstrNj = 0.25;
    p.smActiveCycleNj = 2.0;
    p.l1AccessNj = 0.40;
    p.l2AccessNj = 1.20;
    p.gpuStaticWatts = 25.0;
    p.dramActivateNj = 15.0;
    p.dramLineNj = 20.0;        // ~20 pJ/bit GDDR5
    p.dramBackgroundWatts = 8.0;
    p.scuElementNj = 0.05;
    p.scuTxnNj = 0.20;
    p.scuStaticWatts = 0.30;
    return p;
}

EnergyParams
EnergyParams::tx1()
{
    EnergyParams p;
    p.name = "TX1";
    p.threadInstrNj = 0.12;     // low-voltage mobile process point
    p.smActiveCycleNj = 1.0;
    p.l1AccessNj = 0.25;
    p.l2AccessNj = 0.80;
    p.gpuStaticWatts = 1.5;
    p.dramActivateNj = 4.0;
    p.dramLineNj = 4.5;         // ~4 pJ/bit LPDDR4
    p.dramBackgroundWatts = 0.5;
    p.scuElementNj = 0.03;
    p.scuTxnNj = 0.12;
    p.scuStaticWatts = 0.08;
    return p;
}

double
EnergyModel::gpuDynamicJ(const Activity &a) const
{
    return (a.threadInstrs * p.threadInstrNj +
            a.smActiveCycles * p.smActiveCycleNj +
            a.l1Accesses * p.l1AccessNj) * 1e-9;
}

double
EnergyModel::memDynamicJ(const Activity &a) const
{
    return (a.l2Accesses * p.l2AccessNj +
            a.dramActivates * p.dramActivateNj +
            a.dramLines * p.dramLineNj) * 1e-9;
}

double
EnergyModel::scuDynamicJ(const Activity &a) const
{
    return (a.scuElements * p.scuElementNj +
            a.scuTxns * p.scuTxnNj) * 1e-9;
}

double
EnergyModel::dynamicJ(const Activity &a) const
{
    return gpuDynamicJ(a) + memDynamicJ(a) + scuDynamicJ(a);
}

EnergyBreakdown
EnergyModel::breakdown(const Activity &gpu_side,
                       const Activity &scu_side, double seconds,
                       bool scu_present) const
{
    EnergyBreakdown e;
    e.gpuDynamicJ = gpuDynamicJ(gpu_side);
    e.gpuStaticJ = p.gpuStaticWatts * seconds;
    e.memDynamicGpuJ = memDynamicJ(gpu_side);
    e.memDynamicScuJ = memDynamicJ(scu_side);
    e.memStaticJ = p.dramBackgroundWatts * seconds;
    e.scuDynamicJ = scuDynamicJ(scu_side);
    e.scuStaticJ = scu_present ? p.scuStaticWatts * seconds : 0;
    return e;
}

} // namespace scusim::energy
