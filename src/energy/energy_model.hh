/**
 * @file
 * Energy model in the GPUWattch/McPAT tradition: per-event dynamic
 * energies plus static power integrated over run time. The constants
 * are calibrated against the public TDPs of the two boards the paper
 * models (GTX 980 ~165 W, Tegra X1 ~10 W class) and against the
 * relative per-access costs GPUWattch/CACTI report at 32 nm; the
 * figures the paper reports are all *normalized* energies, which
 * depend on the activity counts produced by the timing model rather
 * than on these absolute scale factors.
 */

#ifndef SCUSIM_ENERGY_ENERGY_MODEL_HH
#define SCUSIM_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "common/types.hh"

namespace scusim::energy
{

/** Per-event energies (nanojoules) and static powers (watts). */
struct EnergyParams
{
    std::string name = "GTX980";

    // GPU core side.
    double threadInstrNj = 0.25;   ///< per executed lane instruction
    double smActiveCycleNj = 2.0;  ///< per SM per active cycle
    double l1AccessNj = 0.40;
    double l2AccessNj = 1.20;
    double gpuStaticWatts = 25.0;

    // DRAM (Micron power-calculator style).
    double dramActivateNj = 15.0;  ///< per row activation
    double dramLineNj = 20.0;      ///< per 128 B line transferred
    double dramBackgroundWatts = 8.0;

    // SCU (from the synthesized design's envelope).
    double scuElementNj = 0.05;    ///< per pipeline element slot
    double scuTxnNj = 0.20;        ///< per issued memory transaction
    double scuStaticWatts = 0.30;

    static EnergyParams gtx980();
    static EnergyParams tx1();
};

/** Raw activity counts of one run (or one slice of a run). */
struct Activity
{
    double threadInstrs = 0;
    double smActiveCycles = 0;
    double l1Accesses = 0;
    double l2Accesses = 0;
    double dramActivates = 0;
    double dramLines = 0;
    double scuElements = 0;
    double scuTxns = 0;

    Activity
    operator-(const Activity &o) const
    {
        return {threadInstrs - o.threadInstrs,
                smActiveCycles - o.smActiveCycles,
                l1Accesses - o.l1Accesses,
                l2Accesses - o.l2Accesses,
                dramActivates - o.dramActivates,
                dramLines - o.dramLines,
                scuElements - o.scuElements,
                scuTxns - o.scuTxns};
    }

    Activity &
    operator+=(const Activity &o)
    {
        threadInstrs += o.threadInstrs;
        smActiveCycles += o.smActiveCycles;
        l1Accesses += o.l1Accesses;
        l2Accesses += o.l2Accesses;
        dramActivates += o.dramActivates;
        dramLines += o.dramLines;
        scuElements += o.scuElements;
        scuTxns += o.scuTxns;
        return *this;
    }
};

/** Energy of one run, split the way Figure 9 splits it. */
struct EnergyBreakdown
{
    double gpuDynamicJ = 0;
    double gpuStaticJ = 0;
    double memDynamicGpuJ = 0; ///< memory traffic caused by the GPU
    double memDynamicScuJ = 0; ///< memory traffic caused by the SCU
    double memStaticJ = 0;
    double scuDynamicJ = 0;
    double scuStaticJ = 0;

    /** Everything attributed to the GPU bar of Figure 9. */
    double
    gpuSideJ() const
    {
        return gpuDynamicJ + gpuStaticJ + memDynamicGpuJ +
               memStaticJ;
    }

    /** Everything attributed to the SCU bar of Figure 9. */
    double
    scuSideJ() const
    {
        return scuDynamicJ + scuStaticJ + memDynamicScuJ;
    }

    double totalJ() const { return gpuSideJ() + scuSideJ(); }
};

/** The energy model proper. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params) : p(params) {}

    /** Dynamic energy of an activity slice, in joules. */
    double dynamicJ(const Activity &a) const;

    /** Memory-only dynamic energy of a slice, in joules. */
    double memDynamicJ(const Activity &a) const;

    /** GPU-core-only dynamic energy of a slice, in joules. */
    double gpuDynamicJ(const Activity &a) const;

    /** SCU-only dynamic energy of a slice, in joules. */
    double scuDynamicJ(const Activity &a) const;

    /**
     * Full breakdown of a run: @p gpu_side and @p scu_side are the
     * activity slices attributed to GPU kernels and SCU operations
     * respectively, @p seconds the wall time of the run.
     */
    EnergyBreakdown breakdown(const Activity &gpu_side,
                              const Activity &scu_side,
                              double seconds,
                              bool scu_present) const;

    const EnergyParams &params() const { return p; }

  private:
    EnergyParams p;
};

} // namespace scusim::energy

#endif // SCUSIM_ENERGY_ENERGY_MODEL_HH
