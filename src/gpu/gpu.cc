#include "gpu/gpu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace scusim::gpu
{

Gpu::Gpu(const GpuParams &params, mem::MemSystem &mem,
         sim::Simulation &simulation, stats::StatGroup *parent)
    : p(params), sim(simulation), grp("gpu", parent)
{
    for (unsigned i = 0; i < p.numSms; ++i) {
        sms.push_back(std::make_unique<StreamingMultiprocessor>(
            p, i, &mem, &grp, &sim));
        sim.addClocked(sms.back().get(),
                       "sm" + std::to_string(i));
    }
}

void
Gpu::attachTrace(trace::TraceSink &sink, const std::string &prefix)
{
    traceChan = sink.channel(prefix + "gpu");
    for (std::size_t i = 0; i < sms.size(); ++i)
        sms[i]->setTraceChannel(
            sink.channel(prefix + "sm" + std::to_string(i)));
}

void
Gpu::buildWarp(const KernelLaunch &k, std::uint64_t warp_id, Warp &out)
{
    const std::uint64_t first = warp_id * p.warpSize;
    const std::uint64_t last =
        std::min<std::uint64_t>(first + p.warpSize, k.numThreads);

    // Record each thread's operation list.
    thread_local ThreadRecorder rec;
    std::vector<std::vector<ThreadOp>> lanes;
    lanes.reserve(last - first);
    for (std::uint64_t tid = first; tid < last; ++tid) {
        rec.clear();
        k.body(tid, rec);
        lanes.push_back(rec.recorded());
    }
    out.threads = static_cast<unsigned>(lanes.size());

    // Positional SIMT merge: at each step, the kind of the first
    // unfinished lane's current op executes; lanes whose current op
    // differs (divergent paths) wait and execute in a later slot.
    std::vector<std::size_t> pos(lanes.size(), 0);
    while (true) {
        int leader = -1;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            if (pos[i] < lanes[i].size()) {
                leader = static_cast<int>(i);
                break;
            }
        }
        if (leader < 0)
            break;
        const ThreadOp::Kind kind =
            lanes[static_cast<std::size_t>(leader)]
                 [pos[static_cast<std::size_t>(leader)]].kind;
        WarpInstr wi;
        wi.kind = kind;
        if (kind != ThreadOp::Kind::Compute)
            wi.laneAddrs.resize(lanes.size(), 0);
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            if (pos[i] >= lanes[i].size())
                continue;
            const ThreadOp &op = lanes[i][pos[i]];
            if (op.kind != kind)
                continue;
            if (kind == ThreadOp::Kind::Compute) {
                wi.computeCount =
                    std::max(wi.computeCount, op.count);
            } else {
                // Slot-per-lane handoff: lane i's address lives in
                // slot i, the mask says which slots participate.
                wi.laneAddrs[i] = op.addr;
                wi.laneMask |= std::uint64_t{1} << i;
                wi.bytesPerLane = std::max(wi.bytesPerLane, op.count);
            }
            ++pos[i];
        }
        if (kind == ThreadOp::Kind::Compute && wi.computeCount == 0)
            wi.computeCount = 1;
        out.instrs.push_back(std::move(wi));
    }
}

KernelStats
Gpu::launch(const KernelLaunch &k)
{
    KernelStats ks;
    ks.name = k.name;
    ks.phase = k.phase;

    // Host-side launch latency.
    sim.step(launchOverhead());
    ks.startTick = sim.now();

    if (k.numThreads > 0) {
        const std::uint64_t num_warps =
            (k.numThreads + p.warpSize - 1) / p.warpSize;

        // Warp w runs on SM (w % numSms); each SM pulls its next warp
        // lazily when a slot frees up.
        for (unsigned s = 0; s < p.numSms; ++s) {
            auto next = std::make_shared<std::uint64_t>(s);
            sms[s]->beginKernel(
                [this, &k, next, num_warps](Warp &out) {
                    if (*next >= num_warps)
                        return false;
                    buildWarp(k, *next, out);
                    *next += p.numSms;
                    return true;
                },
                &ks);
        }
        sim.run();
        for (auto &sm : sms)
            sm->endKernel(sim.now());
    }

    ks.endTick = sim.now();
    TRACE_EVENT_SPAN(traceChan, trace::Category::Kernel,
                     ks.name.empty() ? std::string("kernel") : ks.name,
                     ks.startTick, ks.endTick, k.numThreads);

    ++agg.launches;
    if (k.phase == Phase::Compaction) {
        agg.compaction.accumulate(ks);
        agg.compactionCycles += ks.cycles();
    } else {
        agg.processing.accumulate(ks);
        agg.processingCycles += ks.cycles();
    }
    return ks;
}

double
Gpu::smActiveCycles() const
{
    double c = 0;
    for (const auto &sm : sms)
        c += sm->activeCycles();
    return c;
}

double
Gpu::l1Accesses() const
{
    double c = 0;
    for (const auto &sm : sms)
        c += sm->l1().numAccesses();
    return c;
}

} // namespace scusim::gpu
