/**
 * @file
 * The GPU device model: owns the SMs and their L1s, dispatches
 * kernel launches onto them, runs the simulation until the grid
 * drains and aggregates per-phase statistics (the stream-compaction
 * versus rest-of-algorithm split of Figure 1).
 */

#ifndef SCUSIM_GPU_GPU_HH
#define SCUSIM_GPU_GPU_HH

#include <memory>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "gpu/sm.hh"
#include "mem/mem_system.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

namespace scusim::trace
{
class TraceChannel;
class TraceSink;
} // namespace scusim::trace

namespace scusim::gpu
{

/** Whole-device accumulated activity, per phase. */
struct GpuTotals
{
    KernelStats compaction;
    KernelStats processing;
    Tick compactionCycles = 0;
    Tick processingCycles = 0;
    std::uint64_t launches = 0;

    Tick
    busyCycles() const
    {
        return compactionCycles + processingCycles;
    }
};

class Gpu
{
  public:
    Gpu(const GpuParams &params, mem::MemSystem &mem,
        sim::Simulation &simulation, stats::StatGroup *parent);

    /**
     * Launch @p k and run the simulation until the grid completes.
     * Kernel launches are serialized on the system timeline, as in
     * the iterative graph algorithms.
     */
    KernelStats launch(const KernelLaunch &k);

    const GpuParams &params() const { return p; }
    const GpuTotals &totals() const { return agg; }

    /** Sum of per-SM active cycles (for dynamic energy). */
    double smActiveCycles() const;

    /** Sum of L1 accesses over all SMs (for energy). */
    double l1Accesses() const;

    /** Fixed host-side launch overhead, in cycles. */
    Tick launchOverhead() const { return p.launchLatency; }

    /**
     * Bind trace channels: "gpu" for kernel spans, one per-SM channel
     * ("sm<i>") for issue/memory events. Multi-device systems pass a
     * "d<k>." prefix so each device gets its own channel lane.
     */
    void attachTrace(trace::TraceSink &sink,
                     const std::string &prefix = "");

  private:
    /** Merge one warp's thread op lists into a SIMT stream. */
    void buildWarp(const KernelLaunch &k, std::uint64_t warp_id,
                   Warp &out);

    const GpuParams p;
    sim::Simulation &sim;
    stats::StatGroup grp;
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms;
    GpuTotals agg;
    trace::TraceChannel *traceChan = nullptr;
};

} // namespace scusim::gpu

#endif // SCUSIM_GPU_GPU_HH
