#include "gpu/gpu_config.hh"

namespace scusim::gpu
{

GpuParams
GpuParams::gtx980()
{
    GpuParams p;
    p.name = "GTX980";
    p.freqHz = 1.27e9;
    p.numSms = 16;
    p.maxThreadsPerSm = 2048;
    p.issueWidth = 2; // practical dual-issue on divergent code
    p.maxOutstanding = 64;
    p.launchLatency = 2200; // ~1.7 us at 1.27 GHz

    p.l1.name = "l1";
    p.l1.sizeBytes = 32 << 10;
    p.l1.lineBytes = 128;
    p.l1.ways = 4;
    p.l1.banks = 4;
    p.l1.hitLatency = 80;  // measured Maxwell L1/tex load-to-use
    p.l1.mshrs = 32;

    p.memsys.l2.name = "l2";
    p.memsys.l2.sizeBytes = 2 << 20;
    p.memsys.l2.lineBytes = 128;
    p.memsys.l2.ways = 16;
    p.memsys.l2.banks = 16;
    p.memsys.l2.hitLatency = 130; // ~190-cycle L2 load-to-use with icn
    p.memsys.l2.atomicExtra = 4;
    p.memsys.l2.mshrs = 256;
    p.memsys.dram = mem::DramParams::gddr5();
    p.memsys.icnLatency = 30;
    return p;
}

GpuParams
GpuParams::tx1()
{
    GpuParams p;
    p.name = "TX1";
    p.freqHz = 1.0e9;
    p.numSms = 2;
    p.maxThreadsPerSm = 256;
    p.issueWidth = 2;
    p.maxOutstanding = 32;
    p.launchLatency = 1700; // ~1.7 us at 1 GHz

    p.l1.name = "l1";
    p.l1.sizeBytes = 32 << 10;
    p.l1.lineBytes = 128;
    p.l1.ways = 4;
    p.l1.banks = 2;
    p.l1.hitLatency = 80;
    p.l1.mshrs = 16;

    p.memsys.l2.name = "l2";
    p.memsys.l2.sizeBytes = 256 << 10;
    p.memsys.l2.lineBytes = 128;
    p.memsys.l2.ways = 16;
    p.memsys.l2.banks = 4;
    p.memsys.l2.hitLatency = 120;
    p.memsys.l2.atomicExtra = 4;
    p.memsys.l2.mshrs = 64;
    p.memsys.dram = mem::DramParams::lpddr4();
    p.memsys.icnLatency = 25;
    return p;
}

} // namespace scusim::gpu
