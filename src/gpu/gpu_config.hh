/**
 * @file
 * GPU configuration presets matching Tables 3 and 4 of the paper:
 * a high-performance NVIDIA GTX 980 and a low-power Tegra X1, both
 * Maxwell-generation.
 */

#ifndef SCUSIM_GPU_GPU_CONFIG_HH
#define SCUSIM_GPU_GPU_CONFIG_HH

#include <string>

#include "mem/cache.hh"
#include "mem/mem_system.hh"

namespace scusim::gpu
{

/** Full configuration of a simulated GPU system. */
struct GpuParams
{
    std::string name = "GTX980";
    double freqHz = 1.27e9;

    unsigned numSms = 16;
    unsigned maxThreadsPerSm = 2048;
    unsigned warpSize = 32;
    /** Warp schedulers per SM (instructions issued per cycle). */
    unsigned issueWidth = 4;
    /** Memory transactions the LSU can inject per cycle. */
    unsigned lsuThroughput = 1;

    /**
     * Result latency of an ALU instruction as seen by the next
     * dependent instruction of the same warp (Maxwell: ~6 cycles).
     * Graph kernels have little ILP, so a warp re-issues at this
     * cadence and latency hiding falls entirely on multithreading.
     */
    Tick depIssueLatency = 14;
    /** Outstanding load transactions per SM (MSHR-style limit). */
    unsigned maxOutstanding = 64;

    /**
     * Host-side kernel launch latency in core cycles (driver +
     * dispatch). One of the overheads the SCU's lightweight
     * operation setup avoids.
     */
    Tick launchLatency = 1800;

    mem::CacheParams l1;
    mem::MemSystemParams memsys;

    unsigned
    maxResidentWarps() const
    {
        return maxThreadsPerSm / warpSize;
    }

    /** Table 3: GTX980, 16 SMs, 2 MB L2, 4 GB GDDR5 @ 224 GB/s. */
    static GpuParams gtx980();
    /** Table 4: Tegra X1, 2 SMs, 256 KB L2, 4 GB LPDDR4 @ 25.6 GB/s. */
    static GpuParams tx1();
};

} // namespace scusim::gpu

#endif // SCUSIM_GPU_GPU_CONFIG_HH
