/**
 * @file
 * The "device kernel" interface of the GPU timing model. A kernel is
 * a C++ functor that, for each logical thread, records the thread's
 * compute-instruction count and the exact simulated memory addresses
 * it touches. The same code computes the functional result, so the
 * timing model always sees the addresses the real algorithm would
 * issue, with all of its divergence and (lack of) coalescing.
 */

#ifndef SCUSIM_GPU_KERNEL_HH
#define SCUSIM_GPU_KERNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace scusim::gpu
{

/** Execution phase a kernel belongs to, for Figure 1 attribution. */
enum class Phase
{
    Compaction, ///< stream compaction work (offloadable to the SCU)
    Processing, ///< the rest of the graph algorithm
};

/** One recorded per-thread operation. */
struct ThreadOp
{
    enum class Kind : std::uint8_t { Compute, Load, Store, Atomic };

    Kind kind;
    std::uint32_t count; ///< instructions (Compute) or bytes (mem ops)
    Addr addr;           ///< memory ops only
};

/**
 * Recorder handed to a kernel body for one thread. Operations are
 * replayed in order by the SIMT pipeline, positionally merged across
 * the 32 lanes of a warp.
 */
class ThreadRecorder
{
  public:
    /** @p n back-to-back ALU/control instructions. */
    void
    compute(std::uint32_t n)
    {
        if (n)
            ops.push_back({ThreadOp::Kind::Compute, n, 0});
    }

    /** A global load of @p bytes at @p a. */
    void
    load(Addr a, std::uint32_t bytes = 4)
    {
        ops.push_back({ThreadOp::Kind::Load, bytes, a});
    }

    /** A global (posted) store of @p bytes at @p a. */
    void
    store(Addr a, std::uint32_t bytes = 4)
    {
        ops.push_back({ThreadOp::Kind::Store, bytes, a});
    }

    /** A read-modify-write performed at the L2 (atomicAdd/Min). */
    void
    atomic(Addr a, std::uint32_t bytes = 4)
    {
        ops.push_back({ThreadOp::Kind::Atomic, bytes, a});
    }

    const std::vector<ThreadOp> &recorded() const { return ops; }
    void clear() { ops.clear(); }

  private:
    std::vector<ThreadOp> ops;
};

/**
 * A kernel launch: a name, a phase tag, a thread count and a body
 * invoked once per thread at warp-activation time.
 */
struct KernelLaunch
{
    std::string name;
    Phase phase = Phase::Processing;
    std::uint64_t numThreads = 0;
    /** Body: fill @p rec with thread @p tid's work. */
    std::function<void(std::uint64_t tid, ThreadRecorder &rec)> body;
};

/** Aggregate result of one kernel execution. */
struct KernelStats
{
    std::string name;
    Phase phase = Phase::Processing;
    Tick startTick = 0;
    Tick endTick = 0;
    std::uint64_t threads = 0;
    std::uint64_t warps = 0;
    std::uint64_t warpInstrs = 0;   ///< issued warp instructions
    std::uint64_t threadInstrs = 0; ///< sum of active lanes
    std::uint64_t warpMemInstrs = 0;
    std::uint64_t memTransactions = 0;
    std::uint64_t memLanes = 0;     ///< active lanes of mem instrs

    Tick cycles() const { return endTick - startTick; }

    /** Average transactions per warp memory instruction. */
    double
    txnsPerMemInstr() const
    {
        return warpMemInstrs
                   ? static_cast<double>(memTransactions) /
                         static_cast<double>(warpMemInstrs)
                   : 0;
    }

    /** Coalescing efficiency in (0,1]: lanes served per transaction
     *  relative to a fully coalesced 32-lane access. */
    double
    coalescingEfficiency() const
    {
        return memTransactions
                   ? static_cast<double>(memLanes) /
                         (32.0 *
                          static_cast<double>(memTransactions))
                   : 0;
    }

    void
    accumulate(const KernelStats &o)
    {
        threads += o.threads;
        warps += o.warps;
        warpInstrs += o.warpInstrs;
        threadInstrs += o.threadInstrs;
        warpMemInstrs += o.warpMemInstrs;
        memTransactions += o.memTransactions;
        memLanes += o.memLanes;
    }
};

} // namespace scusim::gpu

#endif // SCUSIM_GPU_KERNEL_HH
