#include "gpu/sm.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"

namespace scusim::gpu
{

StreamingMultiprocessor::StreamingMultiprocessor(
    const GpuParams &params, unsigned id, mem::MemLevel *shared_mem,
    stats::StatGroup *parent, sim::Simulation *sim)
    : p(params), smId(id), sharedMem(shared_mem), simPtr(sim),
      l1Cache(params.l1, shared_mem, parent),
      grp(std::string("sm") + std::to_string(id), parent),
      smActiveCycles(&grp, "active_cycles",
                     "cycles with at least one resident warp"),
      issuedInstrs(&grp, "issued_instrs", "warp instructions issued"),
      issueStallCycles(&grp, "issue_stalls",
                       "cycles with residents but nothing issuable")
{
    resident.reserve(p.maxResidentWarps());
}

void
StreamingMultiprocessor::beginKernel(WarpSource source,
                                     KernelStats *sink)
{
    panic_if(!resident.empty(), "beginKernel on a busy SM");
    warpSource = std::move(source);
    kstats = sink;
    sourceDry = false;
    refill();
    // New work arrived outside tick(): re-arm the event-driven
    // scheduler so the launch is picked up without a full rescan.
    notifyWake();
}

void
StreamingMultiprocessor::endKernel(Tick now)
{
    panic_if(busy(now) || nextWakeTick() != tickNever,
             "endKernel on a busy SM");
    warpSource = nullptr;
    kstats = nullptr;
    // GPU L1s are not kept coherent across kernel launches.
    l1Cache.invalidateAll(now);
}

void
StreamingMultiprocessor::refill()
{
    while (!sourceDry && resident.size() < p.maxResidentWarps()) {
        Warp w;
        if (!warpSource || !warpSource(w)) {
            sourceDry = true;
            break;
        }
        if (kstats) {
            ++kstats->warps;
            kstats->threads += w.threads;
        }
        resident.push_back(std::move(w));
    }
    recomputeWake();
}

void
StreamingMultiprocessor::recomputeWake()
{
    Tick t = tickNever;
    for (const auto &w : resident)
        t = std::min(t, w.blockedUntil);
    wakeCache = t;
}

bool
StreamingMultiprocessor::busy(Tick now) const
{
    // Busy if a warp can issue or retire this cycle; warps that are
    // merely blocked on memory make the SM wake-able, not busy, so
    // the simulation fast-forwards over pure stall intervals.
    if (resident.empty())
        return !sourceDry && warpSource != nullptr;
    return wakeCache <= now;
}

Tick
StreamingMultiprocessor::nextWakeTick() const
{
    return resident.empty() ? tickNever : wakeCache;
}

Tick
StreamingMultiprocessor::executeMem(const WarpInstr &wi, Tick now)
{
    // Coalesce the active lanes into line transactions. Atomics
    // cannot merge lanes: each distinct address is its own
    // read-modify-write at the L2.
    txnScratch.clear();
    std::size_t txns;
    if (wi.kind == ThreadOp::Kind::Atomic) {
        txns = mem::appendUniqueAddrs(wi.laneAddrs, txnScratch);
    } else {
        txns = mem::coalesceLanes(wi.laneAddrs, p.l1.lineBytes,
                                  txnScratch);
    }

    if (kstats) {
        ++kstats->warpMemInstrs;
        kstats->memTransactions += txns;
        kstats->memLanes += wi.laneAddrs.size();
    }

    // The LSU injects transactions at its throughput.
    Tick start = std::max(now, lsuFree);
    lsuFree = start + (txns + p.lsuThroughput - 1) / p.lsuThroughput;

    Tick complete = start;
    Tick inject = start;
    for (Addr line : txnScratch) {
        if (wi.kind == ThreadOp::Kind::Load) {
            // Respect the outstanding-transaction budget.
            while (!outstandingLoads.empty() &&
                   outstandingLoads.top() <= inject) {
                outstandingLoads.pop();
            }
            if (outstandingLoads.size() >= p.maxOutstanding) {
                inject = std::max(inject, outstandingLoads.top());
                outstandingLoads.pop();
            }
            auto r = l1Cache.access(inject, line,
                                    mem::AccessKind::Read,
                                    p.l1.lineBytes);
            outstandingLoads.push(r.complete);
            // MSHR occupancy high-water mark, for the FIFO track.
            if (outstandingLoads.size() > mshrHighWater) {
                mshrHighWater = outstandingLoads.size();
                TRACE_EVENT_COUNTER(traceChan, trace::Category::Fifo,
                                    "outstanding_loads", inject,
                                    mshrHighWater);
            }
            complete = std::max(complete, r.complete);
        } else if (wi.kind == ThreadOp::Kind::Store) {
            auto r = l1Cache.access(inject, line,
                                    mem::AccessKind::Write,
                                    p.l1.lineBytes);
            complete = std::max(complete, inject + 1);
            (void)r;
        } else { // Atomic: performed at the L2, bypassing the L1.
            auto r = sharedMem->access(inject, line,
                                       mem::AccessKind::Atomic,
                                       wi.bytesPerLane);
            // Posted from the warp's perspective (no return value
            // consumed by our kernels), but the L2 bank occupancy
            // and DRAM traffic are fully accounted.
            complete = std::max(complete, inject + 1);
            (void)r;
        }
        ++inject;
    }
    return complete;
}

bool
StreamingMultiprocessor::issueOne(Warp &w, Tick now)
{
    if (w.done() || w.blockedUntil > now)
        return false;

    WarpInstr &wi = w.instrs[w.pc];
    ++issuedInstrs;
    if (kstats) {
        ++kstats->warpInstrs;
        kstats->threadInstrs +=
            (wi.kind == ThreadOp::Kind::Compute)
                ? w.threads
                : wi.laneAddrs.size();
    }

    if (wi.kind == ThreadOp::Kind::Compute) {
        if (w.computeLeft == 0)
            w.computeLeft = wi.computeCount;
        if (--w.computeLeft == 0)
            ++w.pc;
        // Dependent issue: the warp waits out the ALU result
        // latency before its next instruction.
        w.blockedUntil = now + p.depIssueLatency;
        return true;
    }

    Tick complete = executeMem(wi, now);
    ++w.pc;
    if (wi.kind == ThreadOp::Kind::Load)
        w.blockedUntil = complete;
    else
        w.blockedUntil = now + p.depIssueLatency;
    return true;
}

void
StreamingMultiprocessor::tick(Tick now)
{
    SCUSIM_PROFILE_SCOPE("Sm::tick");
    if (simPtr) {
        // An injected FIFO stall: the SM stays busy but cannot
        // drain, so its progress counter freezes and the deadlock
        // watchdog eventually fires.
        if (auto *inj = simPtr->faultInjector();
            inj && inj->smStalled(smId, now))
            return;
    }
    if (resident.empty()) {
        refill();
        if (resident.empty())
            return;
        noteProgress(resident.size());
    }
    smActiveCycles += 1;

    // Round-robin over the residents starting at the cursor. One
    // modulo normalizes the cursor (retirement may have shrunk the
    // list since last cycle); the walk itself wraps with a compare
    // instead of the old per-iteration `(rrCursor + i) % n` divide.
    unsigned issued = 0;
    const std::size_t n = resident.size();
    const std::size_t start = rrCursor % n;
    std::size_t idx = start;
    for (std::size_t i = 0; i < n && issued < p.issueWidth; ++i) {
        if (issueOne(resident[idx], now))
            ++issued;
        if (++idx == n)
            idx = 0;
    }
    rrCursor = start + 1 == n ? 0 : start + 1;
    if (issued)
        noteProgress(issued);
    else
        issueStallCycles += 1;

    // Retire finished warps — a warp with its last memory access
    // still in flight stays resident until it completes.
    const std::size_t before = resident.size();
    std::erase_if(resident, [now](const Warp &w) {
        return w.done() && w.blockedUntil <= now;
    });
    const std::size_t retired = before - resident.size();
    const std::size_t low = resident.size();
    refill();
    const std::size_t added = resident.size() - low;
    if (retired + added)
        noteProgress(retired + added);
}

} // namespace scusim::gpu
