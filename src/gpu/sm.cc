#include "gpu/sm.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "sim/check.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"

namespace scusim::gpu
{

namespace
{

/** Process-wide issue-path override: -1 unset, else SmIssuePath. */
std::atomic<int> pathOverride{-1};

} // namespace

SmIssuePath
StreamingMultiprocessor::defaultIssuePath()
{
    const int o = pathOverride.load(std::memory_order_relaxed);
    if (o >= 0)
        return static_cast<SmIssuePath>(o);
    if (const char *s = std::getenv("SCUSIM_SM_PATH")) {
        const std::string v = s;
        if (v == "reference")
            return SmIssuePath::Reference;
        if (!v.empty() && v != "soa")
            warn("ignoring unknown SCUSIM_SM_PATH='%s' "
                 "(want 'soa' or 'reference')",
                 s);
    }
    return SmIssuePath::SoaMasked;
}

void
StreamingMultiprocessor::overrideDefaultIssuePath(SmIssuePath p)
{
    pathOverride.store(static_cast<int>(p),
                       std::memory_order_relaxed);
}

void
StreamingMultiprocessor::clearDefaultIssuePathOverride()
{
    pathOverride.store(-1, std::memory_order_relaxed);
}

StreamingMultiprocessor::StreamingMultiprocessor(
    const GpuParams &params, unsigned id, mem::MemLevel *shared_mem,
    stats::StatGroup *parent, sim::Simulation *sim)
    : p(params), smId(id), sharedMem(shared_mem), simPtr(sim),
      l1Cache(params.l1, shared_mem, parent),
      path(defaultIssuePath()),
      grp(std::string("sm") + std::to_string(id), parent),
      smActiveCycles(&grp, "active_cycles",
                     "cycles with at least one resident warp"),
      issuedInstrs(&grp, "issued_instrs", "warp instructions issued"),
      issueStallCycles(&grp, "issue_stalls",
                       "cycles with residents but nothing issuable")
{
    panic_if(p.maxResidentWarps() > kMaxWarpSlots,
             "maxResidentWarps %u exceeds the %u-slot ready mask",
             p.maxResidentWarps(), kMaxWarpSlots);
    body.reserve(p.maxResidentWarps());
    wBlocked.reserve(p.maxResidentWarps());
    wPc.reserve(p.maxResidentWarps());
    wComputeLeft.reserve(p.maxResidentWarps());
    wNumInstrs.reserve(p.maxResidentWarps());
}

void
StreamingMultiprocessor::beginKernel(WarpSource source,
                                     KernelStats *sink)
{
    panic_if(!body.empty(), "beginKernel on a busy SM");
    warpSource = std::move(source);
    kstats = sink;
    sourceDry = false;
    refill();
    // New work arrived outside tick(): re-arm the event-driven
    // scheduler so the launch is picked up without a full rescan.
    notifyWake();
}

void
StreamingMultiprocessor::endKernel(Tick now)
{
    panic_if(busy(now) || nextWakeTick() != tickNever,
             "endKernel on a busy SM");
    warpSource = nullptr;
    kstats = nullptr;
    // The MSHR high-water trace counter tracks one kernel's FIFO
    // peak, not a monotone across launches.
    mshrHighWater = 0;
    // GPU L1s are not kept coherent across kernel launches.
    l1Cache.invalidateAll(now);
}

void
StreamingMultiprocessor::refill()
{
    while (!sourceDry && body.size() < p.maxResidentWarps()) {
        Warp w;
        if (!warpSource || !warpSource(w)) {
            sourceDry = true;
            break;
        }
        if (kstats) {
            ++kstats->warps;
            kstats->threads += w.threads;
        }
        const std::size_t s = body.size();
        const std::uint64_t bit = std::uint64_t{1} << s;
        body.push_back({std::move(w.instrs), w.threads});
        wBlocked.push_back(w.blockedUntil);
        wPc.push_back(static_cast<std::uint32_t>(w.pc));
        wComputeLeft.push_back(w.computeLeft);
        wNumInstrs.push_back(
            static_cast<std::uint32_t>(body.back().instrs.size()));
        if (wPc[s] >= wNumInstrs[s])
            doneMask |= bit;
        // A slot arriving blocked in the past is promoted by the
        // next advanceReady(); nothing reads the masks in between.
        if (wBlocked[s] == 0)
            readyMask |= bit;
        else
            blockedMin = std::min(blockedMin, wBlocked[s]);
    }
    recomputeWake();
}

void
StreamingMultiprocessor::advanceReady(Tick now)
{
    if (blockedMin > now)
        return;
    const std::uint64_t blocked =
        maskLow(static_cast<unsigned>(body.size())) & ~readyMask;
    Tick rest = tickNever;
    for (std::uint64_t m = blocked; m; m &= m - 1) {
        const std::size_t s = ctz64(m);
        if (wBlocked[s] <= now)
            readyMask |= std::uint64_t{1} << s;
        else
            rest = std::min(rest, wBlocked[s]);
    }
    blockedMin = rest;
}

void
StreamingMultiprocessor::recomputeWake()
{
    // blockedMin already covers the blocked slots exactly; folding in
    // the ready slots' (stale-low) blockedUntil reproduces the full
    // min without touching the non-resident tail.
    Tick t = blockedMin;
    for (std::uint64_t m = readyMask; m; m &= m - 1)
        t = std::min(t, wBlocked[ctz64(m)]);
    wakeCache = t;
    if constexpr (sim::checksEnabled) {
        Tick lin = tickNever;
        for (const Tick b : wBlocked)
            lin = std::min(lin, b);
        sim_check(wakeCache == lin,
                  "mask-folded wake %llu disagrees with linear scan "
                  "%llu (blockedMin invariant broken)",
                  static_cast<unsigned long long>(wakeCache),
                  static_cast<unsigned long long>(lin));
    }
}

bool
StreamingMultiprocessor::busy(Tick now) const
{
    // Busy if a warp can issue or retire this cycle; warps that are
    // merely blocked on memory make the SM wake-able, not busy, so
    // the simulation fast-forwards over pure stall intervals.
    if (body.empty())
        return !sourceDry && warpSource != nullptr;
    return wakeCache <= now;
}

Tick
StreamingMultiprocessor::nextWakeTick() const
{
    return body.empty() ? tickNever : wakeCache;
}

Tick
StreamingMultiprocessor::executeMem(const WarpInstr &wi, Tick now)
{
    // Coalesce the active lanes into line transactions. Atomics
    // cannot merge lanes: each distinct address is its own
    // read-modify-write at the L2.
    txnScratch.clear();
    std::size_t txns;
    if (wi.kind == ThreadOp::Kind::Atomic) {
        txns = mem::appendUniqueAddrs(wi.laneAddrs, wi.laneMask,
                                      txnScratch);
    } else {
        txns = mem::coalesceLanes(wi.laneAddrs, wi.laneMask,
                                  p.l1.lineBytes, txnScratch);
    }

    if (kstats) {
        ++kstats->warpMemInstrs;
        kstats->memTransactions += txns;
        kstats->memLanes += popcount64(wi.laneMask);
    }

    // The LSU injects transactions at its throughput.
    Tick start = std::max(now, lsuFree);
    lsuFree = start + (txns + p.lsuThroughput - 1) / p.lsuThroughput;

    Tick complete = start;
    Tick inject = start;
    for (Addr line : txnScratch) {
        if (wi.kind == ThreadOp::Kind::Load) {
            // Respect the outstanding-transaction budget.
            while (!outstandingLoads.empty() &&
                   outstandingLoads.top() <= inject) {
                outstandingLoads.pop();
            }
            if (outstandingLoads.size() >= p.maxOutstanding) {
                inject = std::max(inject, outstandingLoads.top());
                outstandingLoads.pop();
            }
            auto r = l1Cache.access(inject, line,
                                    mem::AccessKind::Read,
                                    p.l1.lineBytes);
            outstandingLoads.push(r.complete);
            // MSHR occupancy high-water mark, for the FIFO track.
            if (outstandingLoads.size() > mshrHighWater) {
                mshrHighWater = outstandingLoads.size();
                TRACE_EVENT_COUNTER(traceChan, trace::Category::Fifo,
                                    "outstanding_loads", inject,
                                    mshrHighWater);
            }
            complete = std::max(complete, r.complete);
        } else if (wi.kind == ThreadOp::Kind::Store) {
            auto r = l1Cache.access(inject, line,
                                    mem::AccessKind::Write,
                                    p.l1.lineBytes);
            complete = std::max(complete, inject + 1);
            (void)r;
        } else { // Atomic: performed at the L2, bypassing the L1.
            auto r = sharedMem->access(inject, line,
                                       mem::AccessKind::Atomic,
                                       wi.bytesPerLane);
            // Posted from the warp's perspective (no return value
            // consumed by our kernels), but the L2 bank occupancy
            // and DRAM traffic are fully accounted.
            complete = std::max(complete, inject + 1);
            (void)r;
        }
        ++inject;
    }
    return complete;
}

void
StreamingMultiprocessor::issueSlot(std::size_t s, Tick now)
{
    WarpBody &b = body[s];
    WarpInstr &wi = b.instrs[wPc[s]];
    ++issuedInstrs;
    if (kstats) {
        ++kstats->warpInstrs;
        kstats->threadInstrs +=
            (wi.kind == ThreadOp::Kind::Compute)
                ? b.threads
                : popcount64(wi.laneMask);
    }

    Tick blocked_until;
    if (wi.kind == ThreadOp::Kind::Compute) {
        if (wComputeLeft[s] == 0)
            wComputeLeft[s] = wi.computeCount;
        if (--wComputeLeft[s] == 0 && ++wPc[s] >= wNumInstrs[s])
            doneMask |= std::uint64_t{1} << s;
        // Dependent issue: the warp waits out the ALU result
        // latency before its next instruction.
        blocked_until = now + p.depIssueLatency;
    } else {
        const Tick complete = executeMem(wi, now);
        if (++wPc[s] >= wNumInstrs[s])
            doneMask |= std::uint64_t{1} << s;
        blocked_until = wi.kind == ThreadOp::Kind::Load
                            ? complete
                            : now + p.depIssueLatency;
    }
    wBlocked[s] = blocked_until;
    if (blocked_until > now) {
        readyMask &= ~(std::uint64_t{1} << s);
        blockedMin = std::min(blockedMin, blocked_until);
    }
}

void
StreamingMultiprocessor::compactRetired(std::uint64_t retire)
{
    const std::size_t n = body.size();
    std::uint64_t new_ready = 0;
    std::uint64_t new_done = 0;
    std::size_t k = 0;
    for (std::size_t j = 0; j < n; ++j) {
        if ((retire >> j) & 1)
            continue;
        if (k != j) {
            body[k] = std::move(body[j]);
            wBlocked[k] = wBlocked[j];
            wPc[k] = wPc[j];
            wComputeLeft[k] = wComputeLeft[j];
            wNumInstrs[k] = wNumInstrs[j];
        }
        new_ready |= ((readyMask >> j) & 1) << k;
        new_done |= ((doneMask >> j) & 1) << k;
        ++k;
    }
    body.resize(k);
    wBlocked.resize(k);
    wPc.resize(k);
    wComputeLeft.resize(k);
    wNumInstrs.resize(k);
    readyMask = new_ready;
    doneMask = new_done;
    // Retired slots were all ready, so the blocked set — and
    // blockedMin — are unchanged.
}

void
StreamingMultiprocessor::tickSoa(Tick now)
{
    advanceReady(now);
    smActiveCycles += 1;

    // Round-robin over the residents starting at the cursor, walking
    // only the slots that can actually issue: set bits of
    // ready & ~done, rotated so slots >= start go first. ctz visits
    // each half in ascending slot order, which is exactly the
    // reference scan's visit order restricted to issuable slots. A
    // wholly-blocked mask makes both loops vanish without touching
    // the warp arrays.
    unsigned issued = 0;
    const std::size_t n = body.size();
    const std::size_t start = rrCursor % n;
    const std::uint64_t cand = readyMask & ~doneMask;
    for (std::uint64_t m =
             cand & ~maskLow(static_cast<unsigned>(start));
         m && issued < p.issueWidth; m &= m - 1) {
        issueSlot(ctz64(m), now);
        ++issued;
    }
    for (std::uint64_t m =
             cand & maskLow(static_cast<unsigned>(start));
         m && issued < p.issueWidth; m &= m - 1) {
        issueSlot(ctz64(m), now);
        ++issued;
    }
    rrCursor = start + 1 == n ? 0 : start + 1;
    if (issued)
        noteProgress(issued);
    else
        issueStallCycles += 1;

    // Retire finished warps — a warp with its last memory access
    // still in flight stays resident until it completes (its ready
    // bit was cleared when the access issued, so done & ready is
    // precisely "done with nothing in flight").
    const std::uint64_t retire = readyMask & doneMask;
    const std::size_t retired = popcount64(retire);
    if (retire)
        compactRetired(retire);
    const std::size_t low = body.size();
    refill();
    const std::size_t added = body.size() - low;
    if (retired + added)
        noteProgress(retired + added);
}

void
StreamingMultiprocessor::tickReference(Tick now)
{
    // The oracle still runs advanceReady so the mask invariants stay
    // exact for the shared helpers; its scans below never read the
    // masks.
    advanceReady(now);
    smActiveCycles += 1;

    // Round-robin over the residents starting at the cursor. One
    // modulo normalizes the cursor (retirement may have shrunk the
    // list since last cycle); the walk itself wraps with a compare
    // instead of a per-iteration `(rrCursor + i) % n` divide.
    unsigned issued = 0;
    const std::size_t n = body.size();
    const std::size_t start = rrCursor % n;
    std::size_t idx = start;
    for (std::size_t i = 0; i < n && issued < p.issueWidth; ++i) {
        if (wPc[idx] < wNumInstrs[idx] && wBlocked[idx] <= now) {
            issueSlot(idx, now);
            ++issued;
        }
        if (++idx == n)
            idx = 0;
    }
    rrCursor = start + 1 == n ? 0 : start + 1;
    if (issued)
        noteProgress(issued);
    else
        issueStallCycles += 1;

    // Retire finished warps — a warp with its last memory access
    // still in flight stays resident until it completes.
    std::uint64_t retire = 0;
    for (std::size_t j = 0; j < n; ++j) {
        if (wPc[j] >= wNumInstrs[j] && wBlocked[j] <= now)
            retire |= std::uint64_t{1} << j;
    }
    const std::size_t retired = popcount64(retire);
    if (retire)
        compactRetired(retire);
    const std::size_t low = body.size();
    refill();
    const std::size_t added = body.size() - low;
    if (retired + added)
        noteProgress(retired + added);
}

void
StreamingMultiprocessor::tick(Tick now)
{
    SCUSIM_PROFILE_SCOPE("Sm::tick");
    if (simPtr) {
        // An injected FIFO stall: the SM stays busy but cannot
        // drain, so its progress counter freezes and the deadlock
        // watchdog eventually fires.
        if (auto *inj = simPtr->faultInjector();
            inj && inj->smStalled(smId, now))
            return;
    }
    if (body.empty()) {
        refill();
        if (body.empty())
            return;
        noteProgress(body.size());
    }
    if (path == SmIssuePath::Reference)
        tickReference(now);
    else
        tickSoa(now);
}

} // namespace scusim::gpu
