/**
 * @file
 * Streaming multiprocessor timing model: resident warps, greedy
 * round-robin warp scheduling with a configurable issue width, an
 * LSU that injects one coalesced transaction per cycle, per-SM L1,
 * and an MSHR-style cap on outstanding load transactions.
 *
 * The scheduling hot path keeps the per-warp fields tick() actually
 * reads — blockedUntil, pc, computeLeft, instruction count — in
 * parallel packed arrays (SoA) beside 64-bit ready/done masks, so a
 * serviced cycle walks a handful of cache lines instead of a vector
 * of fat Warp structs. A reference scan path (`SmIssuePath`) keeps
 * the straightforward linear loop alive as an equivalence oracle.
 */

#ifndef SCUSIM_GPU_SM_HH
#define SCUSIM_GPU_SM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace scusim::sim
{
class Simulation;
}

namespace scusim::trace
{
class TraceChannel;
}

namespace scusim::gpu
{

/** One warp-level instruction after SIMT lane merging. */
struct WarpInstr
{
    ThreadOp::Kind kind = ThreadOp::Kind::Compute;
    std::uint32_t computeCount = 0;  ///< Compute: instructions
    std::uint32_t bytesPerLane = 4;  ///< mem ops
    /** Active lanes of a mem op: bit i set means lane i participates. */
    std::uint64_t laneMask = 0;
    /**
     * Mem ops: one address slot per warp lane (laneAddrs[i] is lane
     * i's address; slots whose laneMask bit is clear are don't-care).
     * Compute ops leave this empty. The coalescer consumes the
     * (span, laneMask) pair directly.
     */
    std::vector<Addr> laneAddrs;
};

/**
 * A warp as handed over by the dispatcher: merged instruction stream
 * plus initial pipeline state. The SM unpacks it into its SoA arrays
 * on refill; this struct is the handoff/test-construction type, not
 * the resident representation.
 */
struct Warp
{
    std::vector<WarpInstr> instrs;
    std::size_t pc = 0;
    std::uint32_t computeLeft = 0; ///< remaining issues of current op
    Tick blockedUntil = 0;
    unsigned threads = 0; ///< active thread count (last warp may be
                          ///< partial)

    bool done() const { return pc >= instrs.size(); }
};

/**
 * Builds the next warp for an SM, or returns false when the kernel
 * has no more warps for it. Supplied by the Gpu dispatcher.
 */
using WarpSource = std::function<bool(Warp &out)>;

/**
 * Which issue-scan implementation tick() runs. Both produce
 * byte-identical stats and tick trajectories; `Reference` is the
 * plain linear scan kept as the equivalence oracle for the mask
 * path (`sm_equiv_test` pits them against each other).
 */
enum class SmIssuePath
{
    SoaMasked, ///< ctz walk over readyMask & ~doneMask (default)
    Reference, ///< linear rotated scan testing every resident slot
};

class StreamingMultiprocessor : public sim::Clocked
{
  public:
    /**
     * Resident-slot capacity of the mask machinery: one bit per slot
     * in a 64-bit word. Both modeled systems resolve
     * maxResidentWarps() to 64 (2048 threads / 32-wide warps); the
     * constructor rejects configs that exceed the mask width.
     */
    static constexpr unsigned kMaxWarpSlots = 64;
    static_assert(kMaxWarpSlots <= 64,
                  "ready/done masks are single 64-bit words");

    StreamingMultiprocessor(const GpuParams &params, unsigned id,
                            mem::MemLevel *shared_mem,
                            stats::StatGroup *parent,
                            sim::Simulation *sim = nullptr);

    /** Attach the warp source and per-kernel stats sink for a launch. */
    void beginKernel(WarpSource source, KernelStats *sink);

    /** Detach after a launch completes; invalidates the L1. */
    void endKernel(Tick now);

    void tick(Tick now) override;
    bool busy(Tick now) const override;
    Tick nextWakeTick() const override;

    mem::Cache &l1() { return l1Cache; }

    double activeCycles() const { return smActiveCycles.value(); }

    /** Bind this SM's trace channel (non-owning, null detaches). */
    void setTraceChannel(trace::TraceChannel *c) { traceChan = c; }

    /** The issue path this SM resolved at construction. */
    SmIssuePath issuePath() const { return path; }

    /**
     * Issue path new SMs use: the override if set, else
     * SCUSIM_SM_PATH=soa|reference, else SoaMasked.
     */
    static SmIssuePath defaultIssuePath();
    /** Process-wide override (tests/bench); survives until cleared. */
    static void overrideDefaultIssuePath(SmIssuePath path);
    static void clearDefaultIssuePathOverride();

  private:
    /** Cold per-warp state the issue scan never touches. */
    struct WarpBody
    {
        std::vector<WarpInstr> instrs;
        unsigned threads = 0;
    };

    /**
     * Promote blocked slots whose blockedUntil has arrived into
     * readyMask and re-derive blockedMin over the rest. No-op (one
     * compare) while blockedMin is still in the future — the
     * wholly-blocked rejection that keeps stall-adjacent ticks off
     * the warp arrays entirely.
     */
    void advanceReady(Tick now);

    /**
     * Issue slot @p s's current instruction. The caller guarantees
     * the slot is ready and not done; mask/blockedMin bookkeeping for
     * the slot's new blockedUntil happens here.
     */
    void issueSlot(std::size_t s, Tick now);

    /** Execute a memory warp instruction; returns block-until tick. */
    Tick executeMem(const WarpInstr &wi, Tick now);

    /**
     * Remove the slots of @p retire, preserving the relative order of
     * the survivors (an order-preserving two-pointer compaction — a
     * swap-with-back would permute round-robin issue order and break
     * the byte-identical-stats mandate; see DESIGN).
     */
    void compactRetired(std::uint64_t retire);

    /** Pull new warps from the source while slots are free. */
    void refill();

    /** The mask issue scan (default path). */
    void tickSoa(Tick now);
    /** The linear reference scan (equivalence oracle). */
    void tickReference(Tick now);

    const GpuParams &p;
    unsigned smId;
    mem::MemLevel *sharedMem; ///< L2 side (atomics bypass the L1)
    sim::Simulation *simPtr;  ///< for fault-injector lookups (may
                              ///< be null in unit tests)
    mem::Cache l1Cache;
    SmIssuePath path;

    /** Recompute wakeCache (blockedMin folded with the ready slots). */
    void recomputeWake();

    WarpSource warpSource;
    KernelStats *kstats = nullptr;

    /**
     * Resident warps in SoA layout, index = slot. `body` holds the
     * cold halves (instruction vectors, thread counts); the packed
     * arrays below are everything the per-cycle scan reads, so the
     * scan streams over ~n*16 bytes instead of n fat structs.
     * Invariants (outside tick()):
     *  - readyMask bit s set  ⇔ wBlocked[s] <= some past now (ticks
     *    are monotone, so ready slots never revert on their own);
     *  - doneMask bit s set   ⇔ wPc[s] >= wNumInstrs[s];
     *  - blockedMin == exact min wBlocked[] over slots NOT in
     *    readyMask (tickNever when none);
     *  - masks never carry bits >= body.size().
     */
    std::vector<WarpBody> body;
    std::vector<Tick> wBlocked;
    std::vector<std::uint32_t> wPc;
    std::vector<std::uint32_t> wComputeLeft;
    std::vector<std::uint32_t> wNumInstrs;
    std::uint64_t readyMask = 0;
    std::uint64_t doneMask = 0;
    Tick blockedMin = tickNever;

    std::size_t rrCursor = 0;
    bool sourceDry = true;
    /**
     * Min blockedUntil over resident warps (tickNever when none),
     * maintained at the end of every tick()/refill() so busy() and
     * nextWakeTick() are O(1) instead of rescanning the warp list
     * twice per serviced cycle — the simulator's hottest reads.
     */
    Tick wakeCache = tickNever;

    Tick lsuFree = 0;
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        outstandingLoads;
    std::vector<Addr> txnScratch;
    trace::TraceChannel *traceChan = nullptr;
    std::size_t mshrHighWater = 0; ///< outstanding-load FIFO peak
                                   ///< (per kernel; reset on
                                   ///< endKernel)

    stats::StatGroup grp;
    stats::Scalar smActiveCycles;
    stats::Scalar issuedInstrs;
    stats::Scalar issueStallCycles;
};

} // namespace scusim::gpu

#endif // SCUSIM_GPU_SM_HH
