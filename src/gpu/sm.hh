/**
 * @file
 * Streaming multiprocessor timing model: resident warps, greedy
 * round-robin warp scheduling with a configurable issue width, an
 * LSU that injects one coalesced transaction per cycle, per-SM L1,
 * and an MSHR-style cap on outstanding load transactions.
 */

#ifndef SCUSIM_GPU_SM_HH
#define SCUSIM_GPU_SM_HH

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace scusim::sim
{
class Simulation;
}

namespace scusim::trace
{
class TraceChannel;
}

namespace scusim::gpu
{

/** One warp-level instruction after SIMT lane merging. */
struct WarpInstr
{
    ThreadOp::Kind kind = ThreadOp::Kind::Compute;
    std::uint32_t computeCount = 0;  ///< Compute: instructions
    std::uint32_t bytesPerLane = 4;  ///< mem ops
    std::vector<Addr> laneAddrs;     ///< active lanes' addresses
};

/** A resident warp: merged instruction stream plus pipeline state. */
struct Warp
{
    std::vector<WarpInstr> instrs;
    std::size_t pc = 0;
    std::uint32_t computeLeft = 0; ///< remaining issues of current op
    Tick blockedUntil = 0;
    unsigned threads = 0; ///< active thread count (last warp may be
                          ///< partial)

    bool done() const { return pc >= instrs.size(); }
};

/**
 * Builds the next warp for an SM, or returns false when the kernel
 * has no more warps for it. Supplied by the Gpu dispatcher.
 */
using WarpSource = std::function<bool(Warp &out)>;

class StreamingMultiprocessor : public sim::Clocked
{
  public:
    StreamingMultiprocessor(const GpuParams &params, unsigned id,
                            mem::MemLevel *shared_mem,
                            stats::StatGroup *parent,
                            sim::Simulation *sim = nullptr);

    /** Attach the warp source and per-kernel stats sink for a launch. */
    void beginKernel(WarpSource source, KernelStats *sink);

    /** Detach after a launch completes; invalidates the L1. */
    void endKernel(Tick now);

    void tick(Tick now) override;
    bool busy(Tick now) const override;
    Tick nextWakeTick() const override;

    mem::Cache &l1() { return l1Cache; }

    double activeCycles() const { return smActiveCycles.value(); }

    /** Bind this SM's trace channel (non-owning, null detaches). */
    void setTraceChannel(trace::TraceChannel *c) { traceChan = c; }

  private:
    /** Issue one instruction of @p w; true if it issued. */
    bool issueOne(Warp &w, Tick now);

    /** Execute a memory warp instruction; returns block-until tick. */
    Tick executeMem(const WarpInstr &wi, Tick now);

    /** Pull new warps from the source while slots are free. */
    void refill();

    const GpuParams &p;
    unsigned smId;
    mem::MemLevel *sharedMem; ///< L2 side (atomics bypass the L1)
    sim::Simulation *simPtr;  ///< for fault-injector lookups (may
                              ///< be null in unit tests)
    mem::Cache l1Cache;

    /** Recompute wakeCache from the resident warps' blockedUntil. */
    void recomputeWake();

    WarpSource warpSource;
    KernelStats *kstats = nullptr;
    std::vector<Warp> resident;
    std::size_t rrCursor = 0;
    bool sourceDry = true;
    /**
     * Min blockedUntil over resident warps (tickNever when none),
     * maintained at the end of every tick()/refill() so busy() and
     * nextWakeTick() are O(1) instead of rescanning the warp list
     * twice per serviced cycle — the simulator's hottest reads.
     */
    Tick wakeCache = tickNever;

    Tick lsuFree = 0;
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        outstandingLoads;
    std::vector<Addr> txnScratch;
    trace::TraceChannel *traceChan = nullptr;
    std::size_t mshrHighWater = 0; ///< outstanding-load FIFO peak

    stats::StatGroup grp;
    stats::Scalar smActiveCycles;
    stats::Scalar issuedInstrs;
    stats::Scalar issueStallCycles;
};

} // namespace scusim::gpu

#endif // SCUSIM_GPU_SM_HH
