#include "graph/analysis.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scusim::graph
{

GraphStats
analyzeGraph(const CsrGraph &g)
{
    GraphStats st;
    st.nodes = g.numNodes();
    st.edges = g.numEdges();
    st.avgDegree = g.averageDegree();

    double sum = 0, sum_sq = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const auto d = g.degree(u);
        st.maxOutDegree = std::max(st.maxOutDegree, d);
        if (d == 0)
            ++st.isolatedNodes;
        sum += static_cast<double>(d);
        sum_sq += static_cast<double>(d) * static_cast<double>(d);
    }
    if (st.nodes > 0) {
        double mean = sum / st.nodes;
        st.degreeStdDev = std::sqrt(
            std::max(0.0, sum_sq / st.nodes - mean * mean));
    }

    // In-degree over nodes with at least one in-edge.
    std::vector<std::uint32_t> indeg(g.numNodes(), 0);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v : g.neighbors(u))
            ++indeg[v];
    }
    double in_sum = 0;
    NodeId reachable = 0;
    for (auto d : indeg) {
        if (d) {
            in_sum += d;
            ++reachable;
        }
    }
    st.avgInDegree = reachable ? in_sum / reachable : 0;

    // Same-line destination adjacency across the whole edge array.
    const auto &dsts = g.edgeArray();
    std::uint64_t same_line = 0;
    for (std::size_t i = 1; i < dsts.size(); ++i) {
        if (dsts[i] / 32 == dsts[i - 1] / 32)
            ++same_line;
    }
    st.destLineLocality =
        dsts.size() > 1
            ? static_cast<double>(same_line) /
                  static_cast<double>(dsts.size() - 1)
            : 0;
    return st;
}

std::string
formatDatasetRow(const std::string &name,
                 const std::string &description, const GraphStats &st)
{
    return scusim::strprintf("%-10s %-36s %8.0f %10.2f %10.1f",
                     name.c_str(), description.c_str(),
                     static_cast<double>(st.nodes) / 1e3,
                     static_cast<double>(st.edges) / 1e6,
                     st.avgDegree);
}

} // namespace scusim::graph
