/**
 * @file
 * Graph property analysis: the statistics of Table 5 plus structural
 * measures that explain SCU behaviour (duplicate potential of
 * frontiers, destination locality).
 */

#ifndef SCUSIM_GRAPH_ANALYSIS_HH
#define SCUSIM_GRAPH_ANALYSIS_HH

#include <cstdint>
#include <string>

#include "graph/csr.hh"

namespace scusim::graph
{

/** Summary statistics of a graph. */
struct GraphStats
{
    NodeId nodes = 0;
    EdgeId edges = 0;
    double avgDegree = 0;     ///< (in+out)/n, Table 5 convention
    EdgeId maxOutDegree = 0;
    double degreeStdDev = 0;
    NodeId isolatedNodes = 0; ///< nodes with no outgoing edges
    /**
     * Duplicate potential: average in-degree of reachable nodes — a
     * proxy for how many duplicate frontier entries SCU filtering can
     * remove (each extra in-edge is a potential duplicate).
     */
    double avgInDegree = 0;
    /**
     * Destination locality: fraction of consecutive edge pairs whose
     * destinations fall in the same 32-node-wide window (one 128 B
     * line of 4 B node records) — a proxy for grouping headroom.
     */
    double destLineLocality = 0;
};

/** Compute GraphStats for @p g. */
GraphStats analyzeGraph(const CsrGraph &g);

/** Format one Table 5 row: name, description, nodes/edges/degree. */
std::string formatDatasetRow(const std::string &name,
                             const std::string &description,
                             const GraphStats &st);

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_ANALYSIS_HH
