#include "graph/csr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scusim::graph
{

CsrGraph
CsrGraph::fromEdgeList(EdgeList el, bool dedup)
{
    CsrGraph g;
    g.n = el.numNodes;

    auto &edges = el.edges;
    std::sort(edges.begin(), edges.end(),
              [](const CooEdge &a, const CooEdge &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  return a.weight < b.weight;
              });

    if (dedup) {
        auto last = std::unique(edges.begin(), edges.end(),
                                [](const CooEdge &a, const CooEdge &b) {
                                    return a.src == b.src &&
                                           a.dst == b.dst;
                                });
        edges.erase(last, edges.end());
    }

    g.offsets.assign(static_cast<std::size_t>(g.n) + 1, 0);
    g.dst.reserve(edges.size());
    g.w.reserve(edges.size());
    for (const auto &e : edges) {
        fatal_if(e.src >= g.n || e.dst >= g.n,
                 "edge (%u -> %u) out of range for %u nodes", e.src,
                 e.dst, g.n);
        ++g.offsets[e.src + 1];
        g.dst.push_back(e.dst);
        g.w.push_back(e.weight);
    }
    for (std::size_t i = 1; i <= g.n; ++i)
        g.offsets[i] += g.offsets[i - 1];
    return g;
}

CsrGraph
CsrGraph::fromCsrArrays(NodeId n, std::vector<EdgeId> offsets,
                        std::vector<NodeId> dst, std::vector<Weight> w)
{
    CsrGraph g;
    g.n = n;
    g.offsets = std::move(offsets);
    g.dst = std::move(dst);
    g.w = std::move(w);
    fatal_if(g.dst.size() != g.w.size(),
             "edge/weight array size mismatch (%zu vs %zu)",
             g.dst.size(), g.w.size());
    g.validate();
    return g;
}

CsrGraph
CsrGraph::viewing(NodeId n, std::span<const EdgeId> offsets,
                  std::span<const NodeId> dst,
                  std::span<const Weight> w, RowPager *pager)
{
    CsrGraph g;
    g.n = n;
    g.extOffsets = offsets;
    g.extDst = dst;
    g.extW = w;
    g.borrowed = true;
    g.pager = pager;
    fatal_if(offsets.size() != static_cast<std::size_t>(n) + 1,
             "viewing: offset span must hold n+1 entries "
             "(%zu for %u nodes)",
             offsets.size(), n);
    fatal_if(dst.size() != w.size(),
             "viewing: edge/weight span size mismatch (%zu vs %zu)",
             dst.size(), w.size());
    return g;
}

CsrGraph
CsrGraph::transpose() const
{
    const std::span<const EdgeId> off = adjacencyOffsets();
    const std::span<const NodeId> d = edgeArray();
    const std::span<const Weight> ww = weightArray();
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(d.size());
    for (NodeId u = 0; u < n; ++u) {
        for (EdgeId e = off[u]; e < off[u + 1]; ++e)
            el.edges.push_back(CooEdge{d[e], u, ww[e]});
    }
    return fromEdgeList(std::move(el));
}

void
CsrGraph::validate() const
{
    const std::span<const EdgeId> off = adjacencyOffsets();
    const std::span<const NodeId> d = edgeArray();
    panic_if(off.size() != static_cast<std::size_t>(n) + 1,
             "offset array size mismatch");
    panic_if(off.front() != 0, "offsets must start at 0");
    panic_if(off.back() != numEdges(),
             "offsets must end at numEdges");
    for (NodeId u = 0; u < n; ++u) {
        panic_if(off[u] > off[u + 1],
                 "non-monotone offsets at node %u", u);
        for (EdgeId e = off[u]; e < off[u + 1]; ++e) {
            panic_if(d[e] >= n, "edge target out of range");
            panic_if(e + 1 < off[u + 1] && d[e] > d[e + 1],
                     "adjacency of node %u not sorted", u);
        }
    }
}

CsrGraph
referenceGraph()
{
    // Figure 2a: A->B(2), A->C(3), A->D(1), B->E(1), B->F(1),
    // C->F(2), D->C(1), D->G(2). Nodes A..G = 0..6.
    EdgeList el;
    el.numNodes = 7;
    el.edges = {
        {0, 1, 2}, {0, 2, 3}, {0, 3, 1}, {1, 4, 1},
        {1, 5, 1}, {2, 5, 2}, {3, 2, 1}, {3, 6, 2},
    };
    return CsrGraph::fromEdgeList(std::move(el));
}

} // namespace scusim::graph
