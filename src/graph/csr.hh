/**
 * @file
 * Compressed Sparse Row graph representation, exactly the layout of
 * Figure 2b of the paper: a node array is implicit, adjacency offsets
 * give each node's slice of the edge (destination) array, and a
 * parallel weight array carries edge costs.
 */

#ifndef SCUSIM_GRAPH_CSR_HH
#define SCUSIM_GRAPH_CSR_HH

#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace scusim::graph
{

/** One directed edge of an edge list (COO triple). */
struct CooEdge
{
    NodeId src;
    NodeId dst;
    Weight weight;

    bool
    operator==(const CooEdge &o) const
    {
        return src == o.src && dst == o.dst && weight == o.weight;
    }
};

/** A raw edge list plus node count; the input to CSR construction. */
struct EdgeList
{
    NodeId numNodes = 0;
    std::vector<CooEdge> edges;
};

/**
 * Immutable CSR graph. Construction sorts edges by (src, dst) and can
 * optionally drop exact duplicate (src, dst) pairs keeping the
 * minimum weight.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an edge list.
     * @param el input edges; consumed (sorted in place)
     * @param dedup drop duplicate (src,dst) pairs, keep min weight
     */
    static CsrGraph fromEdgeList(EdgeList el, bool dedup = false);

    /**
     * Build directly from pre-assembled CSR arrays. The partitioner
     * uses this to carve fragments out of a parent graph without a
     * round trip through an edge list (which could re-order equal
     * edges and break byte-identity guarantees). The arrays must
     * already satisfy validate(): monotone offsets, in-range
     * destinations, sorted adjacency rows.
     */
    static CsrGraph fromCsrArrays(NodeId n, std::vector<EdgeId> offsets,
                                  std::vector<NodeId> dst,
                                  std::vector<Weight> w);

    NodeId numNodes() const { return n; }
    EdgeId numEdges() const { return static_cast<EdgeId>(dst.size()); }

    /** Out-degree of @p u. */
    EdgeId
    degree(NodeId u) const
    {
        return offsets[u + 1] - offsets[u];
    }

    /** First edge index of @p u in the edge array. */
    EdgeId edgeBegin(NodeId u) const { return offsets[u]; }
    EdgeId edgeEnd(NodeId u) const { return offsets[u + 1]; }

    /** Neighbors of @p u. */
    std::span<const NodeId>
    neighbors(NodeId u) const
    {
        return {dst.data() + offsets[u],
                static_cast<std::size_t>(degree(u))};
    }

    /** Edge weights of @p u, parallel to neighbors(u). */
    std::span<const Weight>
    edgeWeights(NodeId u) const
    {
        return {w.data() + offsets[u],
                static_cast<std::size_t>(degree(u))};
    }

    const std::vector<EdgeId> &adjacencyOffsets() const
    {
        return offsets;
    }
    const std::vector<NodeId> &edgeArray() const { return dst; }
    const std::vector<Weight> &weightArray() const { return w; }

    /** Graph with every edge reversed (same weights). */
    CsrGraph transpose() const;

    /** Sum of all degrees divided by n, counting in + out edges. */
    double
    averageDegree() const
    {
        return n ? 2.0 * static_cast<double>(numEdges()) /
                       static_cast<double>(n)
                 : 0;
    }

    /**
     * Internal-consistency check: offsets monotone, destinations in
     * range, adjacency sorted. Panics on violation (simulator bug).
     */
    void validate() const;

  private:
    NodeId n = 0;
    std::vector<EdgeId> offsets; ///< n+1 adjacency offsets
    std::vector<NodeId> dst;     ///< edge destinations
    std::vector<Weight> w;       ///< edge weights
};

/** The 7-node reference graph of Figure 2a, used in tests and docs. */
CsrGraph referenceGraph();

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_CSR_HH
