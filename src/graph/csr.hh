/**
 * @file
 * Compressed Sparse Row graph representation, exactly the layout of
 * Figure 2b of the paper: a node array is implicit, adjacency offsets
 * give each node's slice of the edge (destination) array, and a
 * parallel weight array carries edge costs.
 *
 * A CsrGraph either owns its arrays (built from an edge list or from
 * pre-assembled vectors) or *borrows* them — spans into memory owned
 * by someone else, e.g. the mmap'd sections of an on-disk store file
 * (store/mapped_graph.hh). Borrowed graphs are plain aliasing views:
 * copying one copies the spans, and the backing buffer must outlive
 * every view. An optional RowPager hook lets the buffer owner watch
 * row accesses (the out-of-core windowed loader advances its
 * residency window through it); it never changes what an accessor
 * returns, so paged and in-memory traversals are byte-identical.
 */

#ifndef SCUSIM_GRAPH_CSR_HH
#define SCUSIM_GRAPH_CSR_HH

#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace scusim::graph
{

/** One directed edge of an edge list (COO triple). */
struct CooEdge
{
    NodeId src;
    NodeId dst;
    Weight weight;

    bool
    operator==(const CooEdge &o) const
    {
        return src == o.src && dst == o.dst && weight == o.weight;
    }
};

/** A raw edge list plus node count; the input to CSR construction. */
struct EdgeList
{
    NodeId numNodes = 0;
    std::vector<CooEdge> edges;
};

/**
 * Residency observer for borrowed CSR arrays. neighbors()/
 * edgeWeights() report the edge range of every row they hand out
 * *before* returning it, so an out-of-core backing store can make
 * the range resident (and trim what the scan left behind). The hook
 * is advisory: it must not move or mutate the arrays — returned
 * spans stay valid for the lifetime of the mapping.
 */
class RowPager
{
  public:
    virtual ~RowPager() = default;

    /** Edge range [begin, end) of a row about to be handed out. */
    virtual void noteRow(EdgeId begin, EdgeId end) = 0;
};

/**
 * Immutable CSR graph. Construction sorts edges by (src, dst) and can
 * optionally drop exact duplicate (src, dst) pairs keeping the
 * minimum weight.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an edge list.
     * @param el input edges; consumed (sorted in place)
     * @param dedup drop duplicate (src,dst) pairs, keep min weight
     */
    static CsrGraph fromEdgeList(EdgeList el, bool dedup = false);

    /**
     * Build directly from pre-assembled CSR arrays. The partitioner
     * uses this to carve fragments out of a parent graph without a
     * round trip through an edge list (which could re-order equal
     * edges and break byte-identity guarantees). The arrays must
     * already satisfy validate(): monotone offsets, in-range
     * destinations, sorted adjacency rows.
     */
    static CsrGraph fromCsrArrays(NodeId n, std::vector<EdgeId> offsets,
                                  std::vector<NodeId> dst,
                                  std::vector<Weight> w);

    /**
     * Borrow pre-assembled CSR arrays owned by someone else (the
     * store's mmap'd sections). No bytes are copied; the caller
     * guarantees the arrays outlive every view and already satisfy
     * validate(). @p pager, when non-null, observes row accesses
     * (out-of-core windowing) and must outlive the view too.
     */
    static CsrGraph viewing(NodeId n, std::span<const EdgeId> offsets,
                            std::span<const NodeId> dst,
                            std::span<const Weight> w,
                            RowPager *pager = nullptr);

    NodeId numNodes() const { return n; }
    EdgeId
    numEdges() const
    {
        return static_cast<EdgeId>(borrowed ? extDst.size()
                                            : dst.size());
    }

    /** Out-degree of @p u. */
    EdgeId
    degree(NodeId u) const
    {
        const EdgeId *o = offPtr();
        return o[u + 1] - o[u];
    }

    /** First edge index of @p u in the edge array. */
    EdgeId edgeBegin(NodeId u) const { return offPtr()[u]; }
    EdgeId edgeEnd(NodeId u) const { return offPtr()[u + 1]; }

    /** Neighbors of @p u. */
    std::span<const NodeId>
    neighbors(NodeId u) const
    {
        const EdgeId *o = offPtr();
        const EdgeId b = o[u], e = o[u + 1];
        if (pager)
            pager->noteRow(b, e);
        return {dstPtr() + b, static_cast<std::size_t>(e - b)};
    }

    /** Edge weights of @p u, parallel to neighbors(u). */
    std::span<const Weight>
    edgeWeights(NodeId u) const
    {
        const EdgeId *o = offPtr();
        const EdgeId b = o[u], e = o[u + 1];
        if (pager)
            pager->noteRow(b, e);
        return {wPtr() + b, static_cast<std::size_t>(e - b)};
    }

    std::span<const EdgeId>
    adjacencyOffsets() const
    {
        return borrowed ? extOffsets
                        : std::span<const EdgeId>(offsets);
    }
    std::span<const NodeId>
    edgeArray() const
    {
        return borrowed ? extDst : std::span<const NodeId>(dst);
    }
    std::span<const Weight>
    weightArray() const
    {
        return borrowed ? extW : std::span<const Weight>(w);
    }

    /** Whether this graph borrows externally owned arrays. */
    bool isView() const { return borrowed; }

    /** Graph with every edge reversed (same weights). */
    CsrGraph transpose() const;

    /** Sum of all degrees divided by n, counting in + out edges. */
    double
    averageDegree() const
    {
        return n ? 2.0 * static_cast<double>(numEdges()) /
                       static_cast<double>(n)
                 : 0;
    }

    /**
     * Internal-consistency check: offsets monotone, destinations in
     * range, adjacency sorted. Panics on violation (simulator bug).
     */
    void validate() const;

  private:
    const EdgeId *
    offPtr() const
    {
        return borrowed ? extOffsets.data() : offsets.data();
    }
    const NodeId *
    dstPtr() const
    {
        return borrowed ? extDst.data() : dst.data();
    }
    const Weight *
    wPtr() const
    {
        return borrowed ? extW.data() : w.data();
    }

    NodeId n = 0;
    std::vector<EdgeId> offsets; ///< n+1 adjacency offsets (owned)
    std::vector<NodeId> dst;     ///< edge destinations (owned)
    std::vector<Weight> w;       ///< edge weights (owned)
    std::span<const EdgeId> extOffsets; ///< borrowed offsets
    std::span<const NodeId> extDst;     ///< borrowed destinations
    std::span<const Weight> extW;       ///< borrowed weights
    bool borrowed = false;
    RowPager *pager = nullptr; ///< residency observer (views only)
};

/** The 7-node reference graph of Figure 2a, used in tests and docs. */
CsrGraph referenceGraph();

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_CSR_HH
