#include "graph/datasets.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/generators.hh"

namespace scusim::graph
{

const std::vector<DatasetSpec> &
datasetTable()
{
    static const std::vector<DatasetSpec> table = {
        {"ca", "California road network", 710000, 3480000},
        {"cond", "Collaboration network, arxiv.org", 40000, 350000},
        {"delaunay", "Delaunay triangulation", 524000, 3400000},
        {"human", "Human gene regulatory network", 22000, 24600000},
        {"kron", "Graph500, Synthetic Graph", 262144, 21000000},
        {"msdoor", "Mesh of a 3D object", 415000, 20200000},
    };
    return table;
}

const DatasetSpec &
datasetSpec(const std::string &name)
{
    for (const auto &s : datasetTable()) {
        if (s.name == name)
            return s;
    }
    fatal("unknown dataset '%s'", name.c_str());
}

CsrGraph
makeDataset(const std::string &name, double scale, std::uint64_t seed)
{
    fatal_if(scale <= 0 || scale > 1.0,
             "dataset scale must be in (0, 1], got %f", scale);
    const DatasetSpec &spec = datasetSpec(name);
    const auto n = std::max<NodeId>(
        64, static_cast<NodeId>(
                static_cast<double>(spec.nodes) * scale));
    const auto m = std::max<EdgeId>(
        128, static_cast<EdgeId>(
                 static_cast<double>(spec.edges) * scale));
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + mixBits(spec.nodes));

    EdgeList el;
    if (name == "ca") {
        el = roadNetwork(n, m, rng);
    } else if (name == "cond") {
        el = communityGraph(n, m, rng);
    } else if (name == "delaunay") {
        el = triangularMesh(n, m, rng);
    } else if (name == "human") {
        el = denseRegulatory(n, m, rng);
    } else if (name == "kron") {
        // R-MAT needs a power-of-two node count; round to the
        // nearest so small scales do not distort the degree.
        std::uint64_t up = ceilPowerOf2(n);
        std::uint64_t down = up > 1 ? up / 2 : 1;
        unsigned scale_log2 =
            floorLog2((up - n) <= (n - down) ? up : down);
        el = rmat(scale_log2, m, rng);
    } else if (name == "msdoor") {
        el = femMesh3d(n, m, rng);
    } else {
        fatal("dataset '%s' has no generator", name.c_str());
    }
    return CsrGraph::fromEdgeList(std::move(el));
}

} // namespace scusim::graph
