/**
 * @file
 * Registry of the benchmark datasets of Table 5. Each entry maps a
 * dataset name to the generator that synthesizes a graph of that
 * class, plus the node/edge counts the paper reports. A scale factor
 * shrinks node and edge counts proportionally (preserving average
 * degree) so benches can trade fidelity for wall-clock time.
 */

#ifndef SCUSIM_GRAPH_DATASETS_HH
#define SCUSIM_GRAPH_DATASETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hh"

namespace scusim::graph
{

/** One row of Table 5. */
struct DatasetSpec
{
    std::string name;
    std::string description;
    NodeId nodes;  ///< node count at scale 1.0
    EdgeId edges;  ///< edge count at scale 1.0
};

/** The six benchmark datasets, in Table 5 order. */
const std::vector<DatasetSpec> &datasetTable();

/** Spec of a named dataset; fatal on unknown name. */
const DatasetSpec &datasetSpec(const std::string &name);

/**
 * Synthesize dataset @p name at @p scale (0 < scale <= 1 typical).
 * Deterministic for a given (name, scale, seed).
 */
CsrGraph makeDataset(const std::string &name, double scale = 1.0,
                     std::uint64_t seed = 1);

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_DATASETS_HH
