#include "graph/generators.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scusim::graph
{

namespace
{

Weight
randWeight(Rng &rng, Weight max_weight)
{
    return static_cast<Weight>(rng.range(1, max_weight));
}

/**
 * Pad @p el with extra locally-biased edges or trim random edges so
 * the final edge count is exactly @p m.
 */
void
fitEdgeCount(EdgeList &el, EdgeId m, Rng &rng, std::uint64_t span,
             Weight max_weight)
{
    if (el.edges.size() > m) {
        // Trim a deterministic random sample: partial Fisher-Yates.
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j = i + static_cast<std::size_t>(
                                    rng.below(el.edges.size() - i));
            std::swap(el.edges[i], el.edges[j]);
        }
        el.edges.resize(m);
        return;
    }
    const std::uint64_t n = el.numNodes;
    while (el.edges.size() < m) {
        auto u = static_cast<NodeId>(rng.below(n));
        std::uint64_t lo = u > span ? u - span : 0;
        std::uint64_t hi = std::min<std::uint64_t>(n - 1, u + span);
        auto v = static_cast<NodeId>(rng.range(lo, hi));
        if (v == u)
            continue;
        el.edges.push_back({u, v, randWeight(rng, max_weight)});
    }
}

} // namespace

EdgeList
erdosRenyi(NodeId n, EdgeId m, Rng &rng, Weight max_weight)
{
    fatal_if(n < 2, "erdosRenyi needs at least 2 nodes");
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m);
    while (el.edges.size() < m) {
        auto u = static_cast<NodeId>(rng.below(n));
        auto v = static_cast<NodeId>(rng.below(n));
        if (u == v)
            continue;
        el.edges.push_back({u, v, randWeight(rng, max_weight)});
    }
    return el;
}

EdgeList
rmat(unsigned scale_log2, EdgeId m, Rng &rng, const RmatParams &p,
     Weight max_weight)
{
    const NodeId n = static_cast<NodeId>(1) << scale_log2;
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m);
    const double ab = p.a + p.b;
    const double abc = p.a + p.b + p.c;
    while (el.edges.size() < m) {
        NodeId u = 0, v = 0;
        for (unsigned bit = 0; bit < scale_log2; ++bit) {
            double r = rng.uniform();
            unsigned ubit = (r >= ab);
            unsigned vbit = (r >= p.a && r < ab) || (r >= abc);
            u = (u << 1) | ubit;
            v = (v << 1) | vbit;
        }
        if (!p.allowSelfLoops && u == v)
            continue;
        el.edges.push_back({u, v, randWeight(rng, max_weight)});
    }
    return el;
}

EdgeList
roadNetwork(NodeId n, EdgeId m, Rng &rng, Weight max_weight)
{
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m + 16);
    const auto width = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(n) * 1.4));
    const double keep = 0.92; // some road segments are missing

    for (NodeId u = 0; u < n; ++u) {
        const std::uint64_t x = u % width;
        // East link.
        if (x + 1 < width && u + 1 < n && rng.chance(keep)) {
            Weight w = randWeight(rng, max_weight);
            el.edges.push_back({u, u + 1, w});
            el.edges.push_back({u + 1, u, w});
        }
        // South link.
        if (u + width < n && rng.chance(keep)) {
            Weight w = randWeight(rng, max_weight);
            auto v = static_cast<NodeId>(u + width);
            el.edges.push_back({u, v, w});
            el.edges.push_back({v, u, w});
        }
    }
    // Ramps / bridges: short-range shortcuts.
    fitEdgeCount(el, m, rng, width * 4, max_weight);
    return el;
}

EdgeList
communityGraph(NodeId n, EdgeId m, Rng &rng, Weight max_weight)
{
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m + 16);

    // Power-law-ish community sizes between 4 and 4*avg.
    const std::uint64_t avg_size = 24;
    NodeId next = 0;
    std::vector<std::pair<NodeId, NodeId>> comms; // [begin, end)
    while (next < n) {
        double u = rng.uniform();
        auto size = static_cast<std::uint64_t>(
            4.0 + avg_size / std::sqrt(u + 0.02));
        size = std::min<std::uint64_t>(size, n - next);
        comms.emplace_back(next, static_cast<NodeId>(next + size));
        next = static_cast<NodeId>(next + size);
    }

    // Intra-community collaboration links (symmetric).
    const auto intra = static_cast<EdgeId>(
        static_cast<double>(m) * 0.46); // x2 directions => 92%
    while (el.edges.size() < 2 * intra) {
        const auto &c = comms[rng.below(comms.size())];
        NodeId span = c.second - c.first;
        if (span < 2)
            continue;
        auto u = static_cast<NodeId>(c.first + rng.below(span));
        auto v = static_cast<NodeId>(c.first + rng.below(span));
        if (u == v)
            continue;
        Weight w = randWeight(rng, max_weight);
        el.edges.push_back({u, v, w});
        el.edges.push_back({v, u, w});
    }
    // Cross-community links.
    fitEdgeCount(el, m, rng, n, max_weight);
    return el;
}

EdgeList
triangularMesh(NodeId n, EdgeId m, Rng &rng, Weight max_weight)
{
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m + 16);
    const auto width = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(n)));

    auto link = [&](NodeId u, std::uint64_t v64) {
        if (v64 >= n)
            return;
        auto v = static_cast<NodeId>(v64);
        Weight w = randWeight(rng, max_weight);
        el.edges.push_back({u, v, w});
        el.edges.push_back({v, u, w});
    };

    for (NodeId u = 0; u < n; ++u) {
        const std::uint64_t x = u % width;
        if (x + 1 < width)
            link(u, u + 1);            // east
        link(u, u + width);            // south
        if (x + 1 < width)
            link(u, u + width + 1);    // south-east (triangulation)
    }
    fitEdgeCount(el, m, rng, width * 2, max_weight);
    return el;
}

EdgeList
denseRegulatory(NodeId n, EdgeId m, Rng &rng, Weight max_weight)
{
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m + 16);

    // 4% of nodes are regulators with ~10x the base out-degree.
    const auto regulators = std::max<NodeId>(1, n / 25);
    const double hub_share = 0.55;
    const auto hub_edges = static_cast<EdgeId>(
        static_cast<double>(m) * hub_share);
    const EdgeId base_edges = m - hub_edges;

    // Hub fan-out: targets drawn from clustered windows, producing
    // the duplicate-heavy frontiers characteristic of this dataset.
    const std::uint64_t window = std::max<std::uint64_t>(64, n / 64);
    while (el.edges.size() < hub_edges) {
        auto u = static_cast<NodeId>(rng.below(regulators));
        auto anchor = rng.below(n);
        auto v = static_cast<NodeId>(
            (anchor + rng.below(window)) % n);
        if (v == u)
            continue;
        el.edges.push_back({u, v, randWeight(rng, max_weight)});
    }
    // Background regulation: all nodes, mildly clustered targets.
    while (el.edges.size() < hub_edges + base_edges) {
        auto u = static_cast<NodeId>(rng.below(n));
        NodeId v;
        if (rng.chance(0.7)) {
            auto anchor = rng.below(n);
            v = static_cast<NodeId>((anchor + rng.below(window)) % n);
        } else {
            v = static_cast<NodeId>(rng.below(n));
        }
        if (v == u)
            continue;
        el.edges.push_back({u, v, randWeight(rng, max_weight)});
    }
    return el;
}

EdgeList
femMesh3d(NodeId n, EdgeId m, Rng &rng, Weight max_weight)
{
    EdgeList el;
    el.numNodes = n;
    el.edges.reserve(m + 64);
    const auto side = static_cast<std::uint64_t>(
        std::cbrt(static_cast<double>(n)));
    const std::uint64_t plane = side * side;

    // Stencil: every (dx,dy,dz) in [-2,2]^3 with 0 < |dx|+|dy|+|dz|
    // <= 3 gives 56 neighbors; drop probabilistically to fit m.
    const double keep =
        static_cast<double>(m) / (static_cast<double>(n) * 56.0);

    for (NodeId u = 0; u < n; ++u) {
        const std::int64_t x =
            static_cast<std::int64_t>(u % side);
        const std::int64_t y =
            static_cast<std::int64_t>((u / side) % side);
        const std::int64_t z =
            static_cast<std::int64_t>(u / plane);
        for (int dx = -2; dx <= 2; ++dx) {
            for (int dy = -2; dy <= 2; ++dy) {
                for (int dz = -2; dz <= 2; ++dz) {
                    int l1 = std::abs(dx) + std::abs(dy) +
                             std::abs(dz);
                    if (l1 == 0 || l1 > 3)
                        continue;
                    std::int64_t nx = x + dx, ny = y + dy,
                                 nz = z + dz;
                    if (nx < 0 || ny < 0 || nz < 0 ||
                        nx >= static_cast<std::int64_t>(side) ||
                        ny >= static_cast<std::int64_t>(side))
                        continue;
                    std::uint64_t v64 =
                        static_cast<std::uint64_t>(nz) * plane +
                        static_cast<std::uint64_t>(ny) * side +
                        static_cast<std::uint64_t>(nx);
                    if (v64 >= n)
                        continue;
                    if (!rng.chance(keep))
                        continue;
                    el.edges.push_back(
                        {u, static_cast<NodeId>(v64),
                         randWeight(rng, max_weight)});
                }
            }
        }
    }
    fitEdgeCount(el, m, rng, side, max_weight);
    return el;
}

EdgeList
grid2d(unsigned width, unsigned height, Weight w)
{
    EdgeList el;
    el.numNodes = width * height;
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            NodeId u = y * width + x;
            if (x + 1 < width) {
                el.edges.push_back({u, u + 1, w});
                el.edges.push_back({u + 1, u, w});
            }
            if (y + 1 < height) {
                NodeId v = u + width;
                el.edges.push_back({u, v, w});
                el.edges.push_back({v, u, w});
            }
        }
    }
    return el;
}

EdgeList
path(NodeId n, Weight w)
{
    EdgeList el;
    el.numNodes = n;
    for (NodeId u = 0; u + 1 < n; ++u)
        el.edges.push_back({u, u + 1, w});
    return el;
}

EdgeList
star(NodeId n, Weight w)
{
    EdgeList el;
    el.numNodes = n;
    for (NodeId v = 1; v < n; ++v)
        el.edges.push_back({0, v, w});
    return el;
}

} // namespace scusim::graph
