/**
 * @file
 * Synthetic graph generators. Two roles: (a) generic generators any
 * library user may want (Erdős–Rényi, R-MAT, grids); (b) generators
 * that synthesize stand-ins for the six benchmark datasets of
 * Table 5, matching each dataset's class, node/edge counts and the
 * structural properties that matter to the SCU (frontier duplication,
 * locality of destinations).
 */

#ifndef SCUSIM_GRAPH_GENERATORS_HH
#define SCUSIM_GRAPH_GENERATORS_HH

#include <cstdint>

#include "common/rng.hh"
#include "graph/csr.hh"

namespace scusim::graph
{

/** Parameters of the R-MAT recursive generator (Graph500 defaults). */
struct RmatParams
{
    double a = 0.57;
    double b = 0.19;
    double c = 0.19; // d = 1 - a - b - c
    bool allowSelfLoops = false;
};

/** Uniform random directed graph with @p m edges. */
EdgeList erdosRenyi(NodeId n, EdgeId m, Rng &rng,
                    Weight max_weight = 15);

/** R-MAT / Kronecker power-law generator (kron dataset class). */
EdgeList rmat(unsigned scale_log2, EdgeId m, Rng &rng,
              const RmatParams &p = {}, Weight max_weight = 15);

/**
 * 2D road-network-like lattice: 4-connected grid with dropped links
 * and local shortcut ramps (ca dataset class).
 */
EdgeList roadNetwork(NodeId n, EdgeId m, Rng &rng,
                     Weight max_weight = 16);

/**
 * Community graph: power-law community sizes, dense intra-community
 * links, sparse cross links (cond collaboration-network class).
 */
EdgeList communityGraph(NodeId n, EdgeId m, Rng &rng,
                        Weight max_weight = 15);

/**
 * Triangulated planar mesh: triangular lattice plus jitter links
 * (delaunay dataset class).
 */
EdgeList triangularMesh(NodeId n, EdgeId m, Rng &rng,
                        Weight max_weight = 15);

/**
 * Dense regulatory network: a small node set with very high average
 * degree, hub regulators and clustered target windows (human gene
 * regulatory class; the duplicate-heaviest dataset).
 */
EdgeList denseRegulatory(NodeId n, EdgeId m, Rng &rng,
                         Weight max_weight = 15);

/**
 * 3D finite-element mesh: lattice with a wide stencil giving ~50
 * out-neighbors per node (msdoor class).
 */
EdgeList femMesh3d(NodeId n, EdgeId m, Rng &rng,
                   Weight max_weight = 15);

/** Simple 2D grid (tests). 4-connected, both directions. */
EdgeList grid2d(unsigned width, unsigned height, Weight w = 1);

/** Directed path 0->1->...->n-1 (tests). */
EdgeList path(NodeId n, Weight w = 1);

/** Star: center 0 -> all others (tests). */
EdgeList star(NodeId n, Weight w = 1);

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_GENERATORS_HH
