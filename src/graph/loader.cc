#include "graph/loader.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace scusim::graph
{

namespace
{

bool
isCommentOrEmpty(const std::string &line)
{
    for (char c : line) {
        if (c == ' ' || c == '\t')
            continue;
        return c == '#' || c == '%';
    }
    return true;
}

} // namespace

EdgeList
parseEdgeList(std::istream &in)
{
    EdgeList el;
    std::string line;
    NodeId max_node = 0;
    while (std::getline(in, line)) {
        if (isCommentOrEmpty(line))
            continue;
        std::istringstream ls(line);
        std::uint64_t u = 0, v = 0, w = 1;
        ls >> u >> v;
        fatal_if(ls.fail(), "malformed edge-list line: '%s'",
                 line.c_str());
        ls >> w; // optional
        el.edges.push_back({static_cast<NodeId>(u),
                            static_cast<NodeId>(v),
                            static_cast<Weight>(w ? w : 1)});
        max_node = std::max({max_node, static_cast<NodeId>(u),
                             static_cast<NodeId>(v)});
    }
    el.numNodes = el.edges.empty() ? 0 : max_node + 1;
    return el;
}

EdgeList
parseDimacs(std::istream &in)
{
    EdgeList el;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c')
            continue;
        std::istringstream ls(line);
        char tag = 0;
        ls >> tag;
        if (tag == 'p') {
            std::string kind;
            std::uint64_t n = 0, m = 0;
            ls >> kind >> n >> m;
            fatal_if(ls.fail() || kind != "sp",
                     "bad DIMACS problem line: '%s'", line.c_str());
            el.numNodes = static_cast<NodeId>(n);
            el.edges.reserve(m);
        } else if (tag == 'a') {
            std::uint64_t u = 0, v = 0, w = 1;
            ls >> u >> v >> w;
            fatal_if(ls.fail() || u == 0 || v == 0,
                     "bad DIMACS arc line: '%s'", line.c_str());
            el.edges.push_back({static_cast<NodeId>(u - 1),
                                static_cast<NodeId>(v - 1),
                                static_cast<Weight>(w)});
        }
    }
    fatal_if(el.numNodes == 0, "DIMACS file missing 'p sp' header");
    return el;
}

EdgeList
parseMatrixMarket(std::istream &in)
{
    std::string line;
    fatal_if(!std::getline(in, line) ||
                 line.rfind("%%MatrixMarket", 0) != 0,
             "not a MatrixMarket file");
    const bool symmetric =
        line.find("symmetric") != std::string::npos;
    const bool pattern = line.find("pattern") != std::string::npos;

    // Skip remaining comments, read the size line.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream hs(line);
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    hs >> rows >> cols >> nnz;
    fatal_if(hs.fail(), "bad MatrixMarket size line: '%s'",
             line.c_str());

    EdgeList el;
    el.numNodes = static_cast<NodeId>(std::max(rows, cols));
    el.edges.reserve(symmetric ? 2 * nnz : nnz);
    for (std::uint64_t i = 0; i < nnz; ++i) {
        fatal_if(!std::getline(in, line),
                 "MatrixMarket file truncated at entry %llu",
                 static_cast<unsigned long long>(i));
        std::istringstream ls(line);
        std::uint64_t r = 0, c = 0;
        double val = 1.0;
        ls >> r >> c;
        if (!pattern)
            ls >> val;
        fatal_if(ls.fail() || r == 0 || c == 0,
                 "bad MatrixMarket entry: '%s'", line.c_str());
        auto w = static_cast<Weight>(
            val > 0 && val < 1e9 ? (val < 1 ? 1 : val) : 1);
        auto u = static_cast<NodeId>(r - 1);
        auto v = static_cast<NodeId>(c - 1);
        if (u == v)
            continue;
        el.edges.push_back({u, v, w});
        if (symmetric)
            el.edges.push_back({v, u, w});
    }
    return el;
}

CsrGraph
loadGraphFile(const std::string &path, bool dedup)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open graph file '%s'", path.c_str());
    EdgeList el;
    if (path.size() > 3 && path.ends_with(".gr")) {
        el = parseDimacs(in);
    } else if (path.size() > 4 && path.ends_with(".mtx")) {
        el = parseMatrixMarket(in);
    } else {
        el = parseEdgeList(in);
    }
    return CsrGraph::fromEdgeList(std::move(el), dedup);
}

void
writeEdgeList(const CsrGraph &g, std::ostream &out)
{
    out << "# scusim edge list: " << g.numNodes() << " nodes, "
        << g.numEdges() << " edges\n";
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        auto nbrs = g.neighbors(u);
        auto ws = g.edgeWeights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            out << u << " " << nbrs[i] << " " << ws[i] << "\n";
    }
}

} // namespace scusim::graph
