/**
 * @file
 * Text-format graph loaders and writers so downstream users can run
 * the simulator on their own graphs: plain edge lists ("u v [w]"),
 * DIMACS shortest-path files (".gr": "a u v w") and MatrixMarket
 * coordinate patterns (the UFL sparse collection's format, where the
 * paper's datasets come from).
 */

#ifndef SCUSIM_GRAPH_LOADER_HH
#define SCUSIM_GRAPH_LOADER_HH

#include <istream>
#include <ostream>
#include <string>

#include "graph/csr.hh"

namespace scusim::graph
{

/**
 * Parse a whitespace edge list: one "src dst [weight]" per line,
 * '#' or '%' comment lines skipped; node ids 0-based. Missing
 * weights default to 1.
 */
EdgeList parseEdgeList(std::istream &in);

/**
 * Parse the DIMACS shortest-path format: "p sp <n> <m>" header and
 * "a <u> <v> <w>" arc lines with 1-based node ids.
 */
EdgeList parseDimacs(std::istream &in);

/**
 * Parse a MatrixMarket coordinate header + entries. Symmetric
 * matrices are expanded to both directions; pattern matrices get
 * weight 1; 1-based indices.
 */
EdgeList parseMatrixMarket(std::istream &in);

/** Load from a path, dispatching on extension (.gr, .mtx, else el). */
CsrGraph loadGraphFile(const std::string &path, bool dedup = false);

/** Write @p g as a plain edge list. */
void writeEdgeList(const CsrGraph &g, std::ostream &out);

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_LOADER_HH
