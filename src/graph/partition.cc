#include "graph/partition.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace scusim::graph
{

GraphPartition
GraphPartition::build(const CsrGraph &g, unsigned numDevices)
{
    fatal_if(numDevices == 0, "cannot partition across zero devices");

    GraphPartition p;
    p.n = g.numNodes();
    p.ownerArr.assign(p.n, 0);
    p.blockLo.assign(numDevices + 1, 0);
    p.frags.resize(numDevices);

    const std::uint64_t n64 = p.n;
    for (unsigned d = 0; d <= numDevices; ++d)
        p.blockLo[d] = static_cast<NodeId>(n64 * d / numDevices);

    for (unsigned d = 0; d < numDevices; ++d) {
        for (NodeId v = p.blockLo[d]; v < p.blockLo[d + 1]; ++v)
            p.ownerArr[v] = d;
    }

    const auto &pOffsets = g.adjacencyOffsets();
    const auto &pDst = g.edgeArray();
    const auto &pW = g.weightArray();

    for (unsigned d = 0; d < numDevices; ++d) {
        Fragment &f = p.frags[d];
        f.device = d;
        const NodeId gLo = p.blockLo[d];
        const NodeId gHi = p.blockLo[d + 1];
        f.numInner = gHi - gLo;

        // Ghosts: every remote destination reachable from an inner
        // row, deduplicated and ordered by global id so local ids are
        // a pure function of the graph.
        std::vector<NodeId> ghosts;
        for (NodeId u = gLo; u < gHi; ++u) {
            for (EdgeId e = pOffsets[u]; e < pOffsets[u + 1]; ++e) {
                const NodeId v = pDst[e];
                if (v < gLo || v >= gHi)
                    ghosts.push_back(v);
            }
        }
        std::sort(ghosts.begin(), ghosts.end());
        ghosts.erase(std::unique(ghosts.begin(), ghosts.end()),
                     ghosts.end());
        f.numOuter = static_cast<NodeId>(ghosts.size());

        f.toGlobal.resize(f.numLocal());
        std::iota(f.toGlobal.begin(), f.toGlobal.begin() + f.numInner,
                  gLo);
        std::copy(ghosts.begin(), ghosts.end(),
                  f.toGlobal.begin() + f.numInner);

        auto ghostLocal = [&](NodeId global) {
            const auto it = std::lower_bound(ghosts.begin(),
                                             ghosts.end(), global);
            return f.numInner +
                   static_cast<NodeId>(it - ghosts.begin());
        };

        // Fragment CSR built straight from the parent arrays; rows
        // are re-sorted (stably) because ghost local ids do not
        // preserve global order relative to inner ids. With no ghosts
        // the copy is verbatim.
        std::vector<EdgeId> offsets(
            static_cast<std::size_t>(f.numLocal()) + 1, 0);
        std::vector<NodeId> dst;
        std::vector<Weight> w;
        dst.reserve(pOffsets[gHi] - pOffsets[gLo]);
        w.reserve(pOffsets[gHi] - pOffsets[gLo]);

        std::vector<std::pair<NodeId, Weight>> row;
        for (NodeId u = gLo; u < gHi; ++u) {
            row.clear();
            for (EdgeId e = pOffsets[u]; e < pOffsets[u + 1]; ++e) {
                const NodeId v = pDst[e];
                const NodeId local = (v >= gLo && v < gHi)
                                         ? v - gLo
                                         : ghostLocal(v);
                row.emplace_back(local, pW[e]);
            }
            std::stable_sort(row.begin(), row.end(),
                             [](const auto &a, const auto &b) {
                                 return a.first < b.first;
                             });
            for (const auto &[v, weight] : row) {
                dst.push_back(v);
                w.push_back(weight);
            }
            offsets[u - gLo + 1] = dst.size();
        }
        // Ghost rows stay empty: propagate the final offset.
        for (NodeId l = f.numInner; l < f.numLocal(); ++l)
            offsets[l + 1] = offsets[l];

        f.csr = CsrGraph::fromCsrArrays(f.numLocal(),
                                        std::move(offsets),
                                        std::move(dst), std::move(w));
    }

    return p;
}

namespace
{

void
fnv1a(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

} // namespace

std::uint64_t
GraphPartition::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    fnv1a(h, n);
    fnv1a(h, frags.size());
    for (const DeviceId d : ownerArr)
        fnv1a(h, d);
    for (const Fragment &f : frags) {
        fnv1a(h, f.numInner);
        fnv1a(h, f.numOuter);
        for (const EdgeId o : f.csr.adjacencyOffsets())
            fnv1a(h, o);
        for (const NodeId v : f.csr.edgeArray())
            fnv1a(h, v);
        for (const Weight wt : f.csr.weightArray())
            fnv1a(h, wt);
        for (const NodeId v : f.toGlobal)
            fnv1a(h, v);
    }
    return h;
}

} // namespace scusim::graph
