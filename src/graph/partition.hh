/**
 * @file
 * Deterministic edge-cut partitioner for sharded multi-device
 * simulation. Vertices are assigned to devices in contiguous blocks
 * (device d owns globals [d*n/N, (d+1)*n/N)); each fragment keeps a
 * local CSR over its inner vertices plus "outer" (ghost) copies of
 * every non-owned destination its edges reach. Ghost rows are empty:
 * all expansion work for a vertex happens on its owner, and frontier
 * crossings travel as boundary messages over the interconnect.
 *
 * Local ID layout per fragment: [0, numInner) are inner vertices in
 * ascending global order, [numInner, numInner+numOuter) are ghosts in
 * ascending global order. With N=1 there are no ghosts and the
 * fragment CSR arrays are byte-identical to the parent's.
 */

#ifndef SCUSIM_GRAPH_PARTITION_HH
#define SCUSIM_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"

namespace scusim::graph
{

/** One device's share of a partitioned graph. */
struct Fragment
{
    DeviceId device = 0;
    NodeId numInner = 0; ///< vertices owned by this fragment
    NodeId numOuter = 0; ///< ghost copies of remote destinations

    /** Local CSR: numInner+numOuter rows, ghost rows empty. */
    CsrGraph csr;

    /** Local id -> global id, size numInner+numOuter. */
    std::vector<NodeId> toGlobal;

    NodeId numLocal() const { return numInner + numOuter; }
    bool isInner(NodeId local) const { return local < numInner; }
    NodeId globalOf(NodeId local) const { return toGlobal[local]; }
};

/**
 * A full edge-cut partition of one graph across N devices. Build is
 * single-threaded and purely a function of (graph, numDevices), so
 * assignment is byte-identical across repeated runs and unaffected by
 * SCUSIM_JOBS.
 */
class GraphPartition
{
  public:
    static GraphPartition build(const CsrGraph &g, unsigned numDevices);

    unsigned
    numFragments() const
    {
        return static_cast<unsigned>(frags.size());
    }
    const Fragment &fragment(DeviceId d) const { return frags[d]; }

    NodeId numNodes() const { return n; }

    /** Owning device of a global vertex. */
    DeviceId ownerOf(NodeId global) const { return ownerArr[global]; }

    /** Inner local id of a global vertex on its owning device. */
    NodeId
    localOf(NodeId global) const
    {
        return global - blockLo[ownerArr[global]];
    }

    /**
     * FNV-1a digest over the complete partition state (ownership,
     * fragment CSR arrays, id maps). Used by the determinism tests:
     * equal fingerprints mean byte-identical assignment.
     */
    std::uint64_t fingerprint() const;

  private:
    NodeId n = 0;
    std::vector<Fragment> frags;
    std::vector<DeviceId> ownerArr; ///< global -> owning device
    std::vector<NodeId> blockLo;    ///< device -> first owned global
};

} // namespace scusim::graph

#endif // SCUSIM_GRAPH_PARTITION_HH
