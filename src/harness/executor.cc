#include "harness/executor.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/datasets.hh"
#include "harness/run_cache.hh"
#include "trace/profiler.hh"

namespace scusim::harness
{

namespace
{

std::mutex memoMutex;
std::map<std::string, RunRecord> &
memo()
{
    static std::map<std::string, RunRecord> m;
    return m;
}

/** Copy the outcome fields of @p from into @p to (not the run). */
void
copyOutcome(RunRecord &to, const RunRecord &from)
{
    to.result = from.result;
    to.ok = from.ok;
    to.error = from.error;
    to.failure = from.failure;
    to.diagnostics = from.diagnostics;
    to.attempts = from.attempts;
    to.backoffMs = from.backoffMs;
    to.fromDiskCache = from.fromDiskCache;
}

/** Merge executor-level default guards into one run's config. */
void
mergeGuards(RunConfig &cfg, const ExecutorOptions &opts)
{
    if (!cfg.guards.tickBudget)
        cfg.guards.tickBudget = opts.guards.tickBudget;
    if (!cfg.guards.stallWindow)
        cfg.guards.stallWindow = opts.guards.stallWindow;
    if (cfg.guards.wallSeconds <= 0)
        cfg.guards.wallSeconds = opts.guards.wallSeconds;
    if (!cfg.guards.cancel)
        cfg.guards.cancel =
            opts.guards.cancel ? opts.guards.cancel : opts.cancel;
}

/** File-name-safe rendering of a run label. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        bool keep = (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '_';
        out.push_back(keep ? c : '-');
    }
    return out;
}

/**
 * Merge executor-level tracing defaults into one run's config and
 * fill the per-run artifact paths from opts.traceDir.
 */
void
mergeTrace(RunConfig &cfg, const std::string &label,
           const ExecutorOptions &opts)
{
    if (!cfg.trace.enabled && opts.trace.enabled)
        cfg.trace = opts.trace;
    if (!cfg.trace.enabled || opts.traceDir.empty())
        return;
    const std::string stem =
        opts.traceDir + "/" + sanitizeLabel(label);
    if (cfg.trace.exportPath.empty())
        cfg.trace.exportPath = stem + ".trace.json";
    if (cfg.trace.timeseriesPath.empty() &&
        cfg.trace.timeseriesPeriod)
        cfg.trace.timeseriesPath = stem + ".timeseries.csv";
}

/**
 * Validate and execute one run. User errors that runPrimitive()
 * would treat as fatal (unknown system or dataset, bad scale) are
 * thrown instead so one poisoned config cannot abort the matrix.
 */
RunResult
checkedRun(const RunConfig &cfg, const graph::CsrGraph *g)
{
    if (!SystemConfig::isKnown(cfg.systemName))
        throw std::invalid_argument("unknown system '" +
                                    cfg.systemName + "'");
    if (!g) {
        bool known = false;
        for (const auto &spec : graph::datasetTable())
            known = known || spec.name == cfg.dataset;
        if (!known)
            throw std::invalid_argument("unknown dataset '" +
                                        cfg.dataset + "'");
        if (cfg.scale <= 0 || cfg.scale > 1.0)
            throw std::invalid_argument(
                "scale must be in (0, 1], got " +
                std::to_string(cfg.scale));
    }
    return g ? runPrimitive(cfg, *g) : runPrimitive(cfg);
}

} // namespace

PlanResults::PlanResults(std::vector<RunRecord> r)
    : recs(std::move(r))
{
}

std::size_t
PlanResults::failures() const
{
    std::size_t n = 0;
    for (const auto &r : recs)
        n += !r.ok;
    return n;
}

const RunRecord *
PlanResults::find(const std::string &label) const
{
    const RunRecord *hit = nullptr;
    for (const auto &r : recs) {
        if (r.run.label == label) {
            fatal_if(hit, "ambiguous result label '%s'",
                     label.c_str());
            hit = &r;
        }
    }
    return hit;
}

const RunResult &
PlanResults::get(const std::string &system, Primitive prim,
                 const std::string &dataset, ScuMode mode) const
{
    RunConfig cfg;
    cfg.systemName = system;
    cfg.primitive = prim;
    cfg.dataset = dataset;
    cfg.mode = mode;
    return byLabel(runLabel(cfg));
}

const RunResult &
PlanResults::byLabel(const std::string &label) const
{
    const RunRecord *r = find(label);
    fatal_if(!r, "no run result labelled '%s'", label.c_str());
    fatal_if(!r->ok, "run '%s' failed: %s", label.c_str(),
             r->error.c_str());
    return r->result;
}

const RunRecord *
PlanResults::cell(const std::string &system, Primitive prim,
                  const std::string &dataset, ScuMode mode) const
{
    RunConfig cfg;
    cfg.systemName = system;
    cfg.primitive = prim;
    cfg.dataset = dataset;
    cfg.mode = mode;
    return find(runLabel(cfg));
}

const RunRecord *
PlanResults::record(const std::string &label) const
{
    return find(label);
}

const RunResult *
PlanResults::tryGet(const std::string &system, Primitive prim,
                    const std::string &dataset, ScuMode mode) const
{
    const RunRecord *r = cell(system, prim, dataset, mode);
    return r && r->ok ? &r->result : nullptr;
}

const RunResult *
PlanResults::tryByLabel(const std::string &label) const
{
    const RunRecord *r = find(label);
    return r && r->ok ? &r->result : nullptr;
}

unsigned
retryBackoffMs(std::uint64_t seed, unsigned attempt,
               unsigned baseMs, unsigned capMs)
{
    if (!baseMs || !attempt)
        return 0;
    // Exponential growth saturating at the cap; shifting past the
    // cap's magnitude would overflow, so clamp the exponent first.
    std::uint64_t delay = baseMs;
    for (unsigned i = 1; i < attempt && delay < capMs; ++i)
        delay *= 2;
    if (delay > capMs)
        delay = capMs;
    // Jitter into [delay/2, delay]: desynchronizes retry herds while
    // staying reproducible — the generator is seeded purely from the
    // run identity and the attempt number.
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (attempt + 1)));
    const std::uint64_t half = delay / 2;
    return static_cast<unsigned>(half + rng.below(delay - half + 1));
}

unsigned
executorJobs(const ExecutorOptions &opts)
{
    if (opts.jobs)
        return opts.jobs;
    if (const char *s = std::getenv("SCUSIM_JOBS")) {
        int n = std::atoi(s);
        if (n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring invalid SCUSIM_JOBS='%s'", s);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

PlanResults
runPlan(const std::vector<PlannedRun> &runs,
        const ExecutorOptions &opts)
{
    if (trace::Profiler::envEnabled())
        trace::Profiler::instance().setEnabled(true);

    std::vector<RunRecord> recs(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        recs[i].run = runs[i];

    // Serve memoized results, then the persistent disk cache;
    // collect the indexes left to execute. Within those, equal keys
    // (possible through the raw-run-list overload) execute once and
    // fan out afterwards.
    const std::string cacheDir = opts.memoize && opts.diskCache
                                     ? runCacheDir()
                                     : std::string();
    std::vector<std::size_t> todo;
    std::map<std::string, std::vector<std::size_t>> dup;
    {
        std::lock_guard<std::mutex> lock(memoMutex);
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (opts.memoize) {
                auto it = memo().find(runs[i].key);
                if (it != memo().end()) {
                    copyOutcome(recs[i], it->second);
                    continue;
                }
            }
            // Graph-backed runs consult the disk cache only when
            // their key carries a durable fingerprint; pointer-keyed
            // keys are process-local and can never match on disk.
            if (!cacheDir.empty() &&
                (!runs[i].graph || !runs[i].graphFp.empty())) {
                RunRecord hit;
                if (loadCachedRun(cacheDir, runs[i].key, hit) &&
                    !(hit.failure &&
                      isTransientFailure(*hit.failure))) {
                    copyOutcome(recs[i], hit);
                    recs[i].fromDiskCache = true;
                    // Disk hits also feed the in-process memo so
                    // later plans in this process skip the file
                    // system too.
                    memo().emplace(runs[i].key, recs[i]);
                    continue;
                }
            }
            auto &group = dup[runs[i].key];
            if (group.empty())
                todo.push_back(i);
            group.push_back(i);
        }
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            std::size_t t = next.fetch_add(1);
            if (t >= todo.size())
                break;
            RunRecord &rec = recs[todo[t]];
            RunConfig cfg = rec.run.cfg;
            mergeGuards(cfg, opts);
            mergeTrace(cfg, rec.run.label, opts);
            for (;;) {
                ++rec.attempts;
                if (opts.cancel &&
                    opts.cancel->load(std::memory_order_relaxed)) {
                    rec.failure = FailureKind::Timeout;
                    rec.error = "cancelled before start";
                    break;
                }
                try {
                    // Failures inside the run (panics, invariant
                    // violations, watchdog trips) throw SimError
                    // while the trap is alive instead of aborting
                    // the whole matrix.
                    ErrorTrapGuard trap;
                    rec.result = checkedRun(cfg, rec.run.graph);
                    rec.ok = true;
                    rec.failure.reset();
                    rec.error.clear();
                    rec.diagnostics.clear();
                    if (!rec.result.validated)
                        warn("run '%s' failed validation",
                             rec.run.label.c_str());
                    break;
                } catch (const SimError &e) {
                    rec.error = e.what();
                    rec.failure = e.kind();
                    rec.diagnostics = e.diagnostics();
                    warn("run '%s' failed (%s): %s",
                         rec.run.label.c_str(),
                         to_string(e.kind()), e.what());
                    // Only transient failures are worth retrying; a
                    // deterministic fault would just fail again.
                    if (isTransientFailure(e.kind()) &&
                        rec.attempts <= opts.maxRetries) {
                        const unsigned delay = retryBackoffMs(
                            cfg.seed, rec.attempts,
                            opts.backoffBaseMs, opts.backoffCapMs);
                        rec.backoffMs += delay;
                        // Sleep in short slices so plan cancellation
                        // is not held up by a long backoff.
                        unsigned slept = 0;
                        while (slept < delay &&
                               !(opts.cancel &&
                                 opts.cancel->load(
                                     std::memory_order_relaxed))) {
                            const unsigned slice =
                                std::min(delay - slept, 50u);
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(slice));
                            slept += slice;
                        }
                        continue;
                    }
                    break;
                } catch (const std::exception &e) {
                    rec.error = e.what();
                    warn("run '%s' failed: %s",
                         rec.run.label.c_str(), e.what());
                    break;
                }
            }
        }
    };

    unsigned jobs = executorJobs(opts);
    if (todo.size() < jobs)
        jobs = todo.empty() ? 1
                            : static_cast<unsigned>(todo.size());
    std::vector<std::thread> pool;
    for (unsigned j = 1; j < jobs; ++j)
        pool.emplace_back(worker);
    worker();
    for (auto &th : pool)
        th.join();

    // Fan the executed results out to same-key duplicates and fill
    // the memo.
    {
        std::lock_guard<std::mutex> lock(memoMutex);
        for (std::size_t i : todo) {
            for (std::size_t j : dup[recs[i].run.key]) {
                if (j != i)
                    copyOutcome(recs[j], recs[i]);
            }
            // Transient failures depend on host load, not on the
            // run: serving one from the memo would make them
            // permanent.
            if (opts.memoize &&
                !(recs[i].failure &&
                  isTransientFailure(*recs[i].failure)))
                memo().emplace(recs[i].run.key, recs[i]);
            // Persist freshly executed outcomes for later processes
            // (storeCachedRun itself rejects pointer-keyed
            // graph-backed runs and transient Timeouts).
            if (!cacheDir.empty())
                storeCachedRun(cacheDir, recs[i]);
        }
    }

    if (!cacheDir.empty()) {
        std::size_t served = 0;
        for (const auto &r : recs)
            served += r.fromDiskCache ? 1 : 0;
        if (served && served == recs.size())
            inform("disk cache: all %zu runs served from %s",
                   recs.size(), cacheDir.c_str());
        else if (served)
            inform("disk cache: %zu of %zu runs served from %s",
                   served, recs.size(), cacheDir.c_str());
    }

    // Per-phase wall-clock breakdown of the plan just executed
    // (SCUSIM_PROFILE=1). Reset so consecutive plans don't blur.
    if (trace::Profiler::instance().enabled()) {
        std::ostringstream os;
        trace::Profiler::instance().report(os);
        inform("%s", os.str().c_str());
        trace::Profiler::instance().reset();
    }
    return PlanResults(std::move(recs));
}

PlanResults
runPlan(const ExperimentPlan &plan, const ExecutorOptions &opts)
{
    return runPlan(plan.expand(), opts);
}

std::size_t
memoizedRunCount()
{
    std::lock_guard<std::mutex> lock(memoMutex);
    return memo().size();
}

void
clearRunMemo()
{
    std::lock_guard<std::mutex> lock(memoMutex);
    memo().clear();
}

} // namespace scusim::harness
