/**
 * @file
 * Parallel experiment executor. Runs an ExperimentPlan on a worker
 * pool of std::threads — every run builds its own System, so runs
 * are fully isolated — with process-wide result memoization,
 * per-run failure capture (a throwing run marks its record failed
 * instead of killing the matrix) and deterministic result ordering
 * regardless of completion order.
 */

#ifndef SCUSIM_HARNESS_EXECUTOR_HH
#define SCUSIM_HARNESS_EXECUTOR_HH

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "harness/plan.hh"

namespace scusim::harness
{

/** Outcome of one planned run. */
struct RunRecord
{
    PlannedRun run;
    RunResult result; ///< meaningful only when ok
    bool ok = false;
    std::string error; ///< what() of the exception, when !ok
    /** Classified failure; empty when ok or for non-SimError throws. */
    std::optional<FailureKind> failure;
    /** Per-component diagnostic dump attached to the failure. */
    std::string diagnostics;
    /** Execution attempts (> 1 when a Timeout was retried). */
    unsigned attempts = 0;
    /**
     * Total milliseconds of retry backoff applied before the final
     * attempt. Deterministic for a given (seed, attempts) pair — the
     * delays are seed-derived, not drawn from wall-clock entropy.
     */
    unsigned backoffMs = 0;
    /**
     * Served from the persistent disk cache (SCUSIM_CACHE_DIR)
     * instead of simulating. Deliberately excluded from the JSON/CSV
     * artifacts so a cache-served plan stays byte-identical to a
     * simulated one.
     */
    bool fromDiskCache = false;
};

/**
 * Results of one executed plan, in plan order. Records are also
 * indexed by matrix coordinates and by label for table printing.
 */
class PlanResults
{
  public:
    PlanResults() = default;
    explicit PlanResults(std::vector<RunRecord> recs);

    const std::vector<RunRecord> &records() const { return recs; }
    std::size_t size() const { return recs.size(); }
    bool empty() const { return recs.empty(); }

    /** Number of failed runs. */
    std::size_t failures() const;

    /**
     * The result at the given matrix coordinates; fatal if the cell
     * is absent, ambiguous (ablation sweeps: use byLabel) or failed.
     */
    const RunResult &get(const std::string &system, Primitive prim,
                         const std::string &dataset,
                         ScuMode mode) const;

    /** The result labelled @p label; fatal if absent or failed. */
    const RunResult &byLabel(const std::string &label) const;

    /**
     * The record at the given matrix coordinates, failed or not;
     * null when absent, fatal when ambiguous. The ok-aware access
     * path benches use to render failed cells instead of dying.
     */
    const RunRecord *cell(const std::string &system, Primitive prim,
                          const std::string &dataset,
                          ScuMode mode) const;

    /** The record labelled @p label; null when absent. */
    const RunRecord *record(const std::string &label) const;

    /**
     * The result at the given matrix coordinates, or null when the
     * cell is absent or failed (fatal only when ambiguous).
     */
    const RunResult *tryGet(const std::string &system,
                            Primitive prim,
                            const std::string &dataset,
                            ScuMode mode) const;

    /** The result labelled @p label, or null if absent or failed. */
    const RunResult *tryByLabel(const std::string &label) const;

  private:
    const RunRecord *find(const std::string &label) const;

    std::vector<RunRecord> recs;
};

/** Worker-pool configuration. */
struct ExecutorOptions
{
    /**
     * Worker count; 0 resolves SCUSIM_JOBS from the environment and
     * falls back to std::thread::hardware_concurrency().
     */
    unsigned jobs = 0;
    /**
     * Share results across runPlan() calls in this process (the
     * run-level replacement of the old bench runCached()). Tests
     * that compare fresh executions turn this off. Timeout failures
     * are never memoized — they are transient by definition.
     */
    bool memoize = true;
    /**
     * Default budgets merged into every run whose own guards leave
     * the corresponding field unset.
     */
    RunGuards guards = {};
    /** Extra attempts granted to transient (Timeout) failures. */
    unsigned maxRetries = 0;
    /**
     * Retry backoff: attempt n waits roughly baseMs * 2^(n-1),
     * capped at capMs, with +/-50% jitter derived deterministically
     * from the run's seed and the attempt number (never from
     * wall-clock entropy), so a retried plan stays reproducible.
     * baseMs == 0 restores the historical immediate retry.
     */
    unsigned backoffBaseMs = 25;
    unsigned backoffCapMs = 2000;
    /**
     * Consult the persistent on-disk run cache when SCUSIM_CACHE_DIR
     * is set (run_cache.hh): completed records are stored keyed by
     * run key, and later processes serve matching runs from disk —
     * zero simulation — with bit-identical results. Requires memoize
     * (the same "identical key, identical result" contract); runs on
     * caller-owned graphs and Timeout failures are never cached.
     */
    bool diskCache = true;
    /**
     * Cooperative cancellation of the whole plan: pending runs fail
     * fast with Timeout, in-flight runs stop at their supervisor's
     * next checkpoint.
     */
    std::atomic<bool> *cancel = nullptr;
    /**
     * Default observability configuration merged into every run
     * whose own RunConfig::trace is disabled (typically
     * trace::TraceConfig::fromEnv()). Note that memoized results are
     * served without re-executing, so repeated runs of an identical
     * config within one process do not regenerate trace artifacts.
     */
    trace::TraceConfig trace = {};
    /**
     * Directory for per-run trace artifacts. When a run has tracing
     * enabled but no explicit export paths, the executor fills them
     * with "<traceDir>/<sanitized label>.trace.json" and
     * ".timeseries.csv". Empty leaves pathless runs unexported.
     */
    std::string traceDir;
};

/** The resolved worker count runPlan() would use for @p opts. */
unsigned executorJobs(const ExecutorOptions &opts = {});

/**
 * The delay before retry number @p attempt (1 = first retry) of a
 * run seeded with @p seed: exponential in the attempt, capped at
 * @p capMs, jittered into [delay/2, delay] by a generator seeded
 * from (seed, attempt) — pure function, reproducible everywhere.
 * The service client applies the same policy to Overloaded /
 * ConnectionLost replies, so daemon retry traffic is as predictable
 * as executor retries.
 */
unsigned retryBackoffMs(std::uint64_t seed, unsigned attempt,
                        unsigned baseMs, unsigned capMs);

/** Expand and run @p plan. */
PlanResults runPlan(const ExperimentPlan &plan,
                    const ExecutorOptions &opts = {});

/** Run an explicit (already expanded) run list. */
PlanResults runPlan(const std::vector<PlannedRun> &runs,
                    const ExecutorOptions &opts = {});

/** Number of memoized run results held by this process. */
std::size_t memoizedRunCount();

/** Drop all memoized run results (tests). */
void clearRunMemo();

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_EXECUTOR_HH
