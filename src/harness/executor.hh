/**
 * @file
 * Parallel experiment executor. Runs an ExperimentPlan on a worker
 * pool of std::threads — every run builds its own System, so runs
 * are fully isolated — with process-wide result memoization,
 * per-run failure capture (a throwing run marks its record failed
 * instead of killing the matrix) and deterministic result ordering
 * regardless of completion order.
 */

#ifndef SCUSIM_HARNESS_EXECUTOR_HH
#define SCUSIM_HARNESS_EXECUTOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/plan.hh"

namespace scusim::harness
{

/** Outcome of one planned run. */
struct RunRecord
{
    PlannedRun run;
    RunResult result; ///< meaningful only when ok
    bool ok = false;
    std::string error; ///< what() of the exception, when !ok
};

/**
 * Results of one executed plan, in plan order. Records are also
 * indexed by matrix coordinates and by label for table printing.
 */
class PlanResults
{
  public:
    PlanResults() = default;
    explicit PlanResults(std::vector<RunRecord> recs);

    const std::vector<RunRecord> &records() const { return recs; }
    std::size_t size() const { return recs.size(); }
    bool empty() const { return recs.empty(); }

    /** Number of failed runs. */
    std::size_t failures() const;

    /**
     * The result at the given matrix coordinates; fatal if the cell
     * is absent, ambiguous (ablation sweeps: use byLabel) or failed.
     */
    const RunResult &get(const std::string &system, Primitive prim,
                         const std::string &dataset,
                         ScuMode mode) const;

    /** The result labelled @p label; fatal if absent or failed. */
    const RunResult &byLabel(const std::string &label) const;

  private:
    const RunRecord *find(const std::string &label) const;

    std::vector<RunRecord> recs;
};

/** Worker-pool configuration. */
struct ExecutorOptions
{
    /**
     * Worker count; 0 resolves SCUSIM_JOBS from the environment and
     * falls back to std::thread::hardware_concurrency().
     */
    unsigned jobs = 0;
    /**
     * Share results across runPlan() calls in this process (the
     * run-level replacement of the old bench runCached()). Tests
     * that compare fresh executions turn this off.
     */
    bool memoize = true;
};

/** The resolved worker count runPlan() would use for @p opts. */
unsigned executorJobs(const ExecutorOptions &opts = {});

/** Expand and run @p plan. */
PlanResults runPlan(const ExperimentPlan &plan,
                    const ExecutorOptions &opts = {});

/** Run an explicit (already expanded) run list. */
PlanResults runPlan(const std::vector<PlannedRun> &runs,
                    const ExecutorOptions &opts = {});

/** Number of memoized run results held by this process. */
std::size_t memoizedRunCount();

/** Drop all memoized run results (tests). */
void clearRunMemo();

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_EXECUTOR_HH
