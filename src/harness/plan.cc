#include "harness/plan.hh"

#include <sstream>

namespace scusim::harness
{

namespace
{

/** Exact, locale-independent double rendering for keys. */
std::string
keyNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
appendHash(std::ostringstream &os, const scu::HashConfig &h)
{
    os << h.sizeBytes << "," << h.ways << "," << h.entryBytes;
}

/** Serialize every timing-relevant ScuParams field. */
void
appendScu(std::ostringstream &os, const scu::ScuParams &p)
{
    os << p.pipelineWidth << ";" << p.vectorBufferBytes << ";"
       << p.fifoRequestBytes << ";" << p.hashRequestBytes << ";"
       << p.coalesceInflight << ";" << p.mergeWindow << ";"
       << p.groupSize << ";" << p.opSetupCycles << ";"
       << p.opDrainCycles << ";";
    appendHash(os, p.filterBfsHash);
    os << ";";
    appendHash(os, p.filterSsspHash);
    os << ";";
    appendHash(os, p.groupHash);
}

} // namespace

std::string
runKey(const RunConfig &cfg, const graph::CsrGraph *graph,
       const std::string &graphFp)
{
    std::ostringstream os;
    os << cfg.systemName << "|" << to_string(cfg.primitive) << "|"
       << cfg.dataset << "|" << keyNum(cfg.scale) << "|" << cfg.seed
       << "|" << to_string(cfg.mode) << "|src=" << cfg.alg.source
       << ",it=" << cfg.alg.maxIterations
       << ",prit=" << cfg.alg.prMaxIterations
       << ",preps=" << keyNum(cfg.alg.prEpsilon)
       << ",delta=" << cfg.alg.ssspDelta;
    // SCU parameters only shape the run when an SCU is present;
    // omitting them from GPU-only keys is what shares one baseline
    // across an ablation sweep.
    if (cfg.mode != ScuMode::GpuOnly && cfg.scuOverride) {
        os << "|scu=";
        appendScu(os, *cfg.scuOverride);
    }
    // Faults and budgets change what a run produces (or whether it
    // completes at all), so they key the memo; a pristine, unguarded
    // run keeps the exact key it had before either feature existed.
    if (!cfg.faults.empty())
        os << "|faults=" << cfg.faults.fingerprint();
    if (cfg.guards.tickBudget || cfg.guards.stallWindow ||
        cfg.guards.wallSeconds > 0) {
        os << "|guards=" << cfg.guards.tickBudget << ","
           << cfg.guards.stallWindow << ","
           << keyNum(cfg.guards.wallSeconds);
    }
    // Sharding changes the execution path (and, with more than one
    // device, the system itself). Single-device non-sharded runs keep
    // their historical keys.
    if (cfg.deviceCount > 1)
        os << "|dev=" << cfg.deviceCount;
    else if (cfg.sharded)
        os << "|sharded";
    // A content fingerprint is a durable graph identity — the same
    // bytes key the same run in every process, so these runs are
    // disk-cacheable. A bare pointer only means "some ad-hoc graph in
    // this process"; such keys must never leave the process, which is
    // why runCacheStorable rejects them.
    if (!graphFp.empty())
        os << "|fp=" << graphFp;
    else if (graph)
        os << "|graph=" << static_cast<const void *>(graph);
    return os.str();
}

std::string
runLabel(const RunConfig &cfg)
{
    std::string label = to_string(cfg.primitive) + "/" +
                        cfg.systemName + "/" + cfg.dataset + "/" +
                        to_string(cfg.mode);
    if (cfg.deviceCount > 1)
        label += "/dev" + std::to_string(cfg.deviceCount);
    return label;
}

ExperimentPlan::ExperimentPlan()
{
    const RunConfig def;
    systemAxis = {def.systemName};
    primitiveAxis = {def.primitive};
    datasetAxis = {def.dataset};
    modeAxis = {def.mode};
    scaleValue = def.scale;
    seedValue = def.seed;
    algValue = def.alg;
}

ExperimentPlan &
ExperimentPlan::systems(std::vector<std::string> v)
{
    axesDeclared = true;
    systemAxis = std::move(v);
    return *this;
}

ExperimentPlan &
ExperimentPlan::primitives(std::vector<Primitive> v)
{
    axesDeclared = true;
    primitiveAxis = std::move(v);
    return *this;
}

ExperimentPlan &
ExperimentPlan::datasets(std::vector<std::string> v)
{
    axesDeclared = true;
    datasetAxis = std::move(v);
    return *this;
}

ExperimentPlan &
ExperimentPlan::modes(std::vector<ScuMode> v)
{
    axesDeclared = true;
    modeAxis = std::move(v);
    modeFn = nullptr;
    return *this;
}

ExperimentPlan &
ExperimentPlan::modesFor(
    std::function<std::vector<ScuMode>(Primitive)> f)
{
    axesDeclared = true;
    modeFn = std::move(f);
    return *this;
}

ExperimentPlan &
ExperimentPlan::deviceCounts(std::vector<unsigned> v)
{
    axesDeclared = true;
    deviceCountAxis = std::move(v);
    return *this;
}

ExperimentPlan &
ExperimentPlan::scale(double s)
{
    scaleValue = s;
    return *this;
}

ExperimentPlan &
ExperimentPlan::seed(std::uint64_t s)
{
    seedValue = s;
    return *this;
}

ExperimentPlan &
ExperimentPlan::algOptions(const alg::AlgOptions &o)
{
    algValue = o;
    return *this;
}

ExperimentPlan &
ExperimentPlan::faults(sim::FaultPlan f)
{
    faultsValue = std::move(f);
    return *this;
}

ExperimentPlan &
ExperimentPlan::graph(const graph::CsrGraph *g, std::string name,
                      std::string fp)
{
    graphPtr = g;
    graphFpValue = std::move(fp);
    datasetAxis = {std::move(name)};
    return *this;
}

ExperimentPlan &
ExperimentPlan::ablate(
    std::string axis,
    std::vector<std::pair<std::string, scu::ScuParams>> variants)
{
    axesDeclared = true;
    ablateAxis = std::move(axis);
    ablateVariants = std::move(variants);
    return *this;
}

ExperimentPlan &
ExperimentPlan::add(RunConfig cfg, std::string label)
{
    PlannedRun r;
    r.cfg = std::move(cfg);
    r.graph = graphPtr;
    r.graphFp = graphFpValue;
    r.key = runKey(r.cfg, r.graph, r.graphFp);
    r.label = label.empty() ? runLabel(r.cfg) : std::move(label);
    extras.push_back(std::move(r));
    return *this;
}

std::vector<PlannedRun>
ExperimentPlan::expand() const
{
    std::vector<PlannedRun> out;
    std::vector<std::string> seen;
    auto push = [&](PlannedRun r) {
        for (const auto &k : seen)
            if (k == r.key)
                return;
        seen.push_back(r.key);
        out.push_back(std::move(r));
    };

    // Extras keep their own faults; plan-level faults only fill the
    // gap (and re-key, since faults are part of the run identity).
    auto pushExtra = [&](const PlannedRun &e) {
        if (faultsValue.empty() || !e.cfg.faults.empty()) {
            push(e);
            return;
        }
        PlannedRun r = e;
        r.cfg.faults = faultsValue;
        r.key = runKey(r.cfg, r.graph, r.graphFp);
        push(std::move(r));
    };

    // An extras-only plan states its runs exhaustively: don't smuggle
    // in the one-cell default matrix.
    if (!extras.empty() && !axesDeclared) {
        for (const auto &e : extras)
            pushExtra(e);
        return out;
    }

    // One no-override "variant" when no ablation axis is declared.
    std::vector<std::pair<std::string, scu::ScuParams>> variants;
    if (ablateVariants.empty())
        variants.emplace_back("", scu::ScuParams{});
    const auto &vars =
        ablateVariants.empty() ? variants : ablateVariants;

    for (Primitive prim : primitiveAxis) {
        const std::vector<ScuMode> modes =
            modeFn ? modeFn(prim) : modeAxis;
        for (const auto &sys : systemAxis) {
            for (const auto &ds : datasetAxis) {
                for (ScuMode mode : modes) {
                    for (const auto &var : vars) {
                        for (unsigned dc : deviceCountAxis) {
                            RunConfig cfg;
                            cfg.systemName = sys;
                            cfg.primitive = prim;
                            cfg.dataset = ds;
                            cfg.mode = mode;
                            cfg.scale = scaleValue;
                            cfg.seed = seedValue;
                            cfg.alg = algValue;
                            cfg.faults = faultsValue;
                            cfg.deviceCount = dc;
                            if (!ablateVariants.empty())
                                cfg.scuOverride = var.second;
                            PlannedRun r;
                            r.cfg = std::move(cfg);
                            r.graph = graphPtr;
                            r.graphFp = graphFpValue;
                            r.key = runKey(r.cfg, r.graph, r.graphFp);
                            r.label = runLabel(r.cfg);
                            if (!ablateVariants.empty() &&
                                r.cfg.mode != ScuMode::GpuOnly)
                                r.label += "/" + ablateAxis + "=" +
                                           var.first;
                            push(std::move(r));
                        }
                    }
                }
            }
        }
    }
    for (const auto &e : extras)
        pushExtra(e);
    return out;
}

} // namespace scusim::harness
