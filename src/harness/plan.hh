/**
 * @file
 * Declarative experiment plans. A plan describes a cartesian matrix
 * of runs — systems x primitives x datasets x modes, optionally an
 * ablation axis of SCU-parameter variants — and expands it into a
 * deduplicated, deterministically ordered list of RunConfigs. The
 * paper's figures (1, 9-13) and the ablations are all instances of
 * such matrices; the executor (executor.hh) runs them in parallel.
 */

#ifndef SCUSIM_HARNESS_PLAN_HH
#define SCUSIM_HARNESS_PLAN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace scusim::harness
{

/** One expanded run of a plan. */
struct PlannedRun
{
    /**
     * Canonical identity of the configuration: two runs with equal
     * keys produce bit-identical results, so the key doubles as the
     * dedup and memoization handle. GPU-only runs ignore the SCU
     * override in their key — that is what lets one baseline be
     * shared across a whole ablation sweep.
     */
    std::string key;
    /** Human-readable "PRIM/system/dataset/mode[/axis=variant]". */
    std::string label;
    RunConfig cfg;
    /** Caller-owned pre-built graph; null = synthesize cfg.dataset. */
    const graph::CsrGraph *graph = nullptr;
    /**
     * Durable content identity of *graph (the dataset store's
     * 16-hex-digit FNV-1a fingerprint). When set, the run key embeds
     * it instead of the raw pointer, which makes graph-backed runs
     * meaningful across processes — and therefore memo- and
     * disk-cache-eligible. Empty for pointer-keyed ad-hoc graphs.
     */
    std::string graphFp;
};

/**
 * Canonical identity of @p cfg (see PlannedRun::key). A non-empty
 * @p graphFp keys the graph by durable content fingerprint; a bare
 * @p graph pointer is the process-local fallback.
 */
std::string runKey(const RunConfig &cfg,
                   const graph::CsrGraph *graph = nullptr,
                   const std::string &graphFp = "");

/** Default label: "PRIM/system/dataset/mode". */
std::string runLabel(const RunConfig &cfg);

/**
 * Builder for a run matrix. Every axis defaults to the singleton
 * taken from a default-constructed RunConfig, so a plan only states
 * the axes it actually sweeps:
 *
 *     auto res = runPlan(ExperimentPlan()
 *                            .systems({"GTX980", "TX1"})
 *                            .primitives(allPrimitives())
 *                            .datasets(benchDatasets())
 *                            .modes({ScuMode::GpuOnly,
 *                                    ScuMode::ScuEnhanced})
 *                            .scale(0.05));
 */
class ExperimentPlan
{
  public:
    ExperimentPlan();

    ExperimentPlan &systems(std::vector<std::string> v);
    ExperimentPlan &primitives(std::vector<Primitive> v);
    ExperimentPlan &datasets(std::vector<std::string> v);
    ExperimentPlan &modes(std::vector<ScuMode> v);

    /**
     * Per-primitive mode list, for matrices whose SCU mode depends
     * on the primitive (e.g. Figure 10 pairs each primitive with
     * GpuOnly + its best SCU mode). Overrides modes().
     */
    ExperimentPlan &
    modesFor(std::function<std::vector<ScuMode>(Primitive)> f);

    /**
     * Sharding axis: simulated device counts to sweep (default {1}).
     * Multi-device cells are labeled with a "/dev<N>" suffix.
     */
    ExperimentPlan &deviceCounts(std::vector<unsigned> v);

    ExperimentPlan &scale(double s);
    ExperimentPlan &seed(std::uint64_t s);
    ExperimentPlan &algOptions(const alg::AlgOptions &o);

    /**
     * Inject @p f into every run of the matrix (and into add()ed
     * extras that carry no faults of their own). Fault-carrying runs
     * get distinct memo keys, so a faulted plan never collides with
     * the pristine matrix.
     */
    ExperimentPlan &faults(sim::FaultPlan f);

    /**
     * Run every cell on @p g (caller-owned, must outlive execution)
     * instead of synthesizing a dataset; @p name becomes the
     * dataset axis label. A non-empty @p fp (the dataset store's
     * content fingerprint, 16 hex digits) gives the runs a durable
     * identity instead of the pointer, making them cacheable.
     */
    ExperimentPlan &graph(const graph::CsrGraph *g, std::string name,
                          std::string fp = "");

    /**
     * Ablation axis: each variant replaces the preset ScuParams of
     * every matrix cell (RunConfig::scuOverride). GPU-only cells do
     * not depend on SCU parameters, so dedup collapses them into
     * one shared baseline across all variants.
     */
    ExperimentPlan &
    ablate(std::string axis,
           std::vector<std::pair<std::string, scu::ScuParams>>
               variants);

    /**
     * Append one explicit config outside the matrix (axes that the
     * cartesian builders cannot express, e.g. a per-run source
     * node). Inherits the plan's graph, if any. A plan that only
     * add()s runs — no axis declared — expands to just those runs;
     * the implicit one-cell default matrix is dropped.
     */
    ExperimentPlan &add(RunConfig cfg, std::string label = "");

    /**
     * Expand to the deduplicated run list: matrix cells first
     * (primitive-major, then system, dataset, mode, variant), then
     * the add()ed extras, first occurrence of each key wins.
     */
    std::vector<PlannedRun> expand() const;

  private:
    bool axesDeclared = false;
    std::vector<std::string> systemAxis;
    std::vector<Primitive> primitiveAxis;
    std::vector<std::string> datasetAxis;
    std::vector<ScuMode> modeAxis;
    std::vector<unsigned> deviceCountAxis = {1};
    std::function<std::vector<ScuMode>(Primitive)> modeFn;
    double scaleValue;
    std::uint64_t seedValue;
    alg::AlgOptions algValue;
    sim::FaultPlan faultsValue;
    const graph::CsrGraph *graphPtr = nullptr;
    std::string graphFpValue;
    std::string ablateAxis;
    std::vector<std::pair<std::string, scu::ScuParams>>
        ablateVariants;
    std::vector<PlannedRun> extras;
};

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_PLAN_HH
