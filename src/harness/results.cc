#include "harness/results.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"

namespace scusim::harness
{

void
Table::header(std::vector<std::string> cols)
{
    headerRow = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> widths(headerRow.size(), 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i >= widths.size())
                widths.resize(i + 1, 0);
            widths[i] = std::max(widths[i], r[i].size());
        }
    };
    widen(headerRow);
    for (const auto &r : rows)
        widen(r);

    // Result tables are the benches' stdout product, not diagnostics
    // — stderr logging is the wrong channel for them.
    // simlint: allow(direct-output)
    std::printf("\n=== %s ===\n", heading.c_str());
    auto print_row = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            std::printf("%-*s  ", // simlint: allow(direct-output)
                        static_cast<int>(widths[i]), r[i].c_str());
        std::printf("\n"); // simlint: allow(direct-output)
    };
    print_row(headerRow);
    for (const auto &r : rows)
        print_row(r);
}

namespace
{

void
jsonStringArray(std::ostream &os,
                const std::vector<std::string> &v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? "," : "") << "\"" << jsonEscape(v[i]) << "\"";
    os << "]";
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
Table::json(std::ostream &os) const
{
    os << "{\"title\":\"" << jsonEscape(heading)
       << "\",\"header\":";
    jsonStringArray(os, headerRow);
    os << ",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << (i ? "," : "");
        jsonStringArray(os, rows[i]);
    }
    os << "]}";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** The flattened fields every run record exports. */
struct Field
{
    const char *name;
    std::string (*get)(const RunRecord &);
};

std::string
quoted(const std::string &s)
{
    // Built by append rather than operator+ chaining: GCC 12's
    // -Wrestrict misfires on literal+string+literal in Release.
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += jsonEscape(s);
    out += '"';
    return out;
}

const Field runFields[] = {
    {"label", [](const RunRecord &r) { return quoted(r.run.label); }},
    {"system",
     [](const RunRecord &r) { return quoted(r.run.cfg.systemName); }},
    {"primitive",
     [](const RunRecord &r) {
         return quoted(to_string(r.run.cfg.primitive));
     }},
    {"dataset",
     [](const RunRecord &r) { return quoted(r.run.cfg.dataset); }},
    {"mode",
     [](const RunRecord &r) {
         return quoted(to_string(r.run.cfg.mode));
     }},
    {"scale",
     [](const RunRecord &r) { return num(r.run.cfg.scale); }},
    {"seed",
     [](const RunRecord &r) {
         return std::to_string(r.run.cfg.seed);
     }},
    {"ok", [](const RunRecord &r) {
         return std::string(r.ok ? "true" : "false");
     }},
    {"error", [](const RunRecord &r) { return quoted(r.error); }},
    {"failureKind",
     [](const RunRecord &r) {
         if (r.ok)
             return quoted("");
         // A failed run without a classified kind was a plain
         // exception (bad config, ...), not a supervised failure.
         return quoted(r.failure ? to_string(*r.failure) : "error");
     }},
    {"attempts",
     [](const RunRecord &r) { return std::to_string(r.attempts); }},
    {"validated",
     [](const RunRecord &r) {
         return std::string(r.ok && r.result.validated ? "true"
                                                       : "false");
     }},
    {"totalCycles",
     [](const RunRecord &r) {
         return std::to_string(r.result.totalCycles);
     }},
    {"seconds", [](const RunRecord &r) { return num(r.result.seconds); }},
    {"gpuCompactionCycles",
     [](const RunRecord &r) {
         return std::to_string(r.result.gpuCompactionCycles);
     }},
    {"gpuProcessingCycles",
     [](const RunRecord &r) {
         return std::to_string(r.result.gpuProcessingCycles);
     }},
    {"scuBusyCycles",
     [](const RunRecord &r) {
         return std::to_string(r.result.scuBusyCycles);
     }},
    {"gpuThreadInstrs",
     [](const RunRecord &r) { return num(r.result.gpuThreadInstrs); }},
    {"coalescingEfficiency",
     [](const RunRecord &r) {
         return num(r.result.coalescingEfficiency);
     }},
    {"txnsPerMemInstr",
     [](const RunRecord &r) { return num(r.result.txnsPerMemInstr); }},
    {"bwUtilization",
     [](const RunRecord &r) { return num(r.result.bwUtilization); }},
    {"l2HitRate",
     [](const RunRecord &r) { return num(r.result.l2HitRate); }},
    {"dramLines",
     [](const RunRecord &r) { return num(r.result.dramLines); }},
    {"energyTotalJ",
     [](const RunRecord &r) { return num(r.result.energy.totalJ()); }},
    {"energyGpuJ",
     [](const RunRecord &r) {
         return num(r.result.energy.gpuSideJ());
     }},
    {"energyScuJ",
     [](const RunRecord &r) {
         return num(r.result.energy.scuSideJ());
     }},
    {"iterations",
     [](const RunRecord &r) {
         return std::to_string(r.result.algMetrics.iterations);
     }},
    {"gpuEdgeWork",
     [](const RunRecord &r) {
         return std::to_string(r.result.algMetrics.gpuEdgeWork);
     }},
    {"rawExpanded",
     [](const RunRecord &r) {
         return std::to_string(r.result.algMetrics.rawExpanded);
     }},
    {"scuFiltered",
     [](const RunRecord &r) {
         return std::to_string(r.result.algMetrics.scuFiltered);
     }},
    {"deviceCount",
     [](const RunRecord &r) {
         return std::to_string(r.result.deviceCount);
     }},
    {"icnMessages",
     [](const RunRecord &r) {
         return std::to_string(r.result.icnMessages);
     }},
    {"icnBytes", [](const RunRecord &r) {
         return std::to_string(r.result.icnBytes);
     }},
};

/** One device's JSON object within a record's "perDevice" array. */
void
jsonDevice(std::ostream &os, const DeviceMetrics &dm)
{
    os << "{\"gpuEdgeWork\":" << dm.gpuEdgeWork
       << ",\"rawExpanded\":" << dm.rawExpanded
       << ",\"scuFiltered\":" << dm.scuFiltered
       << ",\"iterations\":" << dm.iterations
       << ",\"scuBusyCycles\":" << dm.scuBusyCycles
       << ",\"filterHitRate\":" << num(dm.filterHitRate()) << "}";
}

} // namespace

void
writeRunsJson(std::ostream &os, const PlanResults &res)
{
    os << "[";
    bool firstRec = true;
    for (const auto &r : res.records()) {
        os << (firstRec ? "" : ",") << "\n  {";
        bool first = true;
        for (const auto &f : runFields) {
            os << (first ? "" : ",") << "\"" << f.name
               << "\":" << f.get(r);
            first = false;
        }
        // Per-device slices only exist for sharded runs; the array is
        // omitted (not empty) elsewhere so single-device JSON stays
        // exactly what it always was.
        if (r.result.deviceCount > 1) {
            os << ",\"perDevice\":[";
            for (std::size_t d = 0; d < r.result.devices.size();
                 ++d) {
                os << (d ? "," : "");
                jsonDevice(os, r.result.devices[d]);
            }
            os << "]";
        }
        os << "}";
        firstRec = false;
    }
    os << "\n]";
}

void
writeRunsCsv(std::ostream &os, const PlanResults &res)
{
    // Per-device columns appear only when some record is sharded
    // wider than one device, so single-device CSVs keep their
    // historical schema.
    std::size_t maxDev = 0;
    for (const auto &r : res.records()) {
        if (r.result.deviceCount > 1)
            maxDev = std::max(maxDev, r.result.devices.size());
    }

    bool first = true;
    for (const auto &f : runFields) {
        os << (first ? "" : ",") << f.name;
        first = false;
    }
    for (std::size_t d = 0; d < maxDev; ++d) {
        os << ",dev" << d << "_gpuEdgeWork"
           << ",dev" << d << "_rawExpanded"
           << ",dev" << d << "_scuFiltered"
           << ",dev" << d << "_scuBusyCycles"
           << ",dev" << d << "_filterHitRate";
    }
    os << "\n";
    for (const auto &r : res.records()) {
        first = true;
        for (const auto &f : runFields) {
            std::string v = f.get(r);
            // JSON strings are already quoted+escaped; CSV reuses
            // them (quotes around fields are valid CSV quoting for
            // our escape-free field set).
            os << (first ? "" : ",") << v;
            first = false;
        }
        for (std::size_t d = 0; d < maxDev; ++d) {
            if (r.result.deviceCount > 1 &&
                d < r.result.devices.size()) {
                const DeviceMetrics &dm = r.result.devices[d];
                os << "," << dm.gpuEdgeWork << ","
                   << dm.rawExpanded << "," << dm.scuFiltered << ","
                   << dm.scuBusyCycles << ","
                   << num(dm.filterHitRate());
            } else {
                os << ",,,,,";
            }
        }
        os << "\n";
    }
}

void
writeFailureReport(std::ostream &os, const PlanResults &res)
{
    os << "{\"failures\":[";
    bool first = true;
    for (const auto &r : res.records()) {
        if (r.ok)
            continue;
        os << (first ? "" : ",") << "\n  {\"label\":"
           << quoted(r.run.label) << ",\"failureKind\":"
           << quoted(r.failure ? to_string(*r.failure) : "error")
           << ",\"error\":" << quoted(r.error)
           << ",\"attempts\":" << r.attempts
           << ",\"backoffMs\":" << r.backoffMs
           << ",\"diagnostics\":" << quoted(r.diagnostics) << "}";
        first = false;
    }
    os << "\n]}\n";
}

void
writeArtifact(const std::string &name, const PlanResults &res,
              const std::vector<const Table *> &tables)
{
    std::string dir = ".";
    if (const char *d = std::getenv("SCUSIM_ARTIFACT_DIR"))
        dir = d;
    const std::string jsonPath = dir + "/" + name + ".json";
    const std::string csvPath = dir + "/" + name + ".csv";

    std::ofstream js(jsonPath);
    fatal_if(!js, "cannot write artifact '%s'", jsonPath.c_str());
    js << "{\"artifact\":\"" << jsonEscape(name)
       << "\",\"failures\":" << res.failures() << ",\"runs\":";
    writeRunsJson(js, res);
    js << ",\n\"tables\":[";
    for (std::size_t i = 0; i < tables.size(); ++i) {
        js << (i ? "," : "") << "\n";
        tables[i]->json(js);
    }
    js << "]}\n";

    std::ofstream csv(csvPath);
    fatal_if(!csv, "cannot write artifact '%s'", csvPath.c_str());
    writeRunsCsv(csv, res);

    if (res.failures()) {
        const std::string failPath =
            dir + "/" + name + ".failures.json";
        std::ofstream fs(failPath);
        fatal_if(!fs, "cannot write artifact '%s'",
                 failPath.c_str());
        writeFailureReport(fs, res);
        // simlint: allow(direct-output)
        std::printf("\nfailure report: %s\n", failPath.c_str());
    }

    // simlint: allow(direct-output)
    std::printf("\nartifacts: %s, %s\n", jsonPath.c_str(),
                csvPath.c_str());
}

} // namespace scusim::harness
