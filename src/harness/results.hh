/**
 * @file
 * Structured result sinks: the paper-style fixed-width tables the
 * bench binaries print, plus machine-readable JSON and CSV artifacts
 * so the bench trajectory can be tracked across commits without
 * scraping stdout.
 */

#ifndef SCUSIM_HARNESS_RESULTS_HH
#define SCUSIM_HARNESS_RESULTS_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/executor.hh"

namespace scusim::harness
{

/** Simple fixed-width table printer (paper-style output). */
class Table
{
  public:
    explicit Table(std::string title) : heading(std::move(title)) {}

    void header(std::vector<std::string> cols);
    void row(std::vector<std::string> cells);

    /** Render to stdout. */
    void print() const;

    /** Render as a JSON object {title, header, rows}. */
    void json(std::ostream &os) const;

    const std::string &title() const { return heading; }

  private:
    std::string heading;
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/**
 * Write every record of @p res as a JSON array. Numbers render with
 * %.17g, so equal results produce byte-identical output — the
 * executor determinism test diffs exactly this.
 */
void writeRunsJson(std::ostream &os, const PlanResults &res);

/** The same records as CSV (one header row, one row per run). */
void writeRunsCsv(std::ostream &os, const PlanResults &res);

/**
 * Write a machine-readable failure report: one JSON object per
 * failed run with its label, classified failure kind, error message
 * and per-component diagnostics.
 */
void writeFailureReport(std::ostream &os, const PlanResults &res);

/**
 * Emit the artifact of one bench binary: <name>.json holding the
 * run records and the printed tables, plus <name>.csv with the run
 * records, under $SCUSIM_ARTIFACT_DIR (default "."). When any run
 * failed, also <name>.failures.json with the failure report. Prints
 * the paths written.
 */
void writeArtifact(const std::string &name, const PlanResults &res,
                   const std::vector<const Table *> &tables);

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_RESULTS_HH
