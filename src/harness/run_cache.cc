#include "harness/run_cache.hh"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"

namespace scusim::harness
{

namespace
{

std::atomic<std::uint64_t> quarantined{0};

/** Why a cache read failed to produce a record. */
enum class DecodeOutcome
{
    Hit,         ///< record parsed and matched the key
    KeyMismatch, ///< well-formed record for a different key/schema
    Malformed,   ///< truncated or corrupt bytes: quarantine material
};

/** FNV-1a over the schema version + key: the cache file name. */
std::uint64_t
keyHash(const std::string &key)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](unsigned char c) {
        h ^= c;
        h *= 0x100000001B3ull;
    };
    mix(static_cast<unsigned char>(runCacheSchemaVersion));
    for (char c : key)
        mix(static_cast<unsigned char>(c));
    return h;
}

/** Length-prefixed string field: "name <len>\n<raw bytes>\n". */
void
putString(std::ostream &os, const char *name, const std::string &s)
{
    os << name << ' ' << s.size() << '\n' << s << '\n';
}

void
putU64(std::ostream &os, const char *name, std::uint64_t v)
{
    os << name << ' ' << v << '\n';
}

/**
 * Doubles as IEEE-754 bit patterns in hex: the loaded value is
 * bit-identical to the stored one, so cache-served artifacts render
 * byte-identically under %.17g.
 */
void
putDouble(std::ostream &os, const char *name, double v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    os << name << " x" << buf << '\n';
}

/** Line-oriented field reader over the serialized record. */
class FieldReader
{
  public:
    explicit FieldReader(const std::string &text) : is(text) {}

    /** Read "name value\n"; false on EOF or name mismatch. */
    bool
    line(const char *name, std::string &value)
    {
        std::string got;
        if (!(is >> got) || got != name)
            return false;
        if (!(is >> value))
            return false;
        return is.get() == '\n';
    }

    bool
    u64(const char *name, std::uint64_t &v)
    {
        std::string s;
        if (!line(name, s) || s.empty())
            return false;
        char *end = nullptr;
        v = std::strtoull(s.c_str(), &end, 10);
        return end && *end == '\0';
    }

    bool
    dbl(const char *name, double &v)
    {
        std::string s;
        if (!line(name, s) || s.size() != 17 || s[0] != 'x')
            return false;
        char *end = nullptr;
        const std::uint64_t bits =
            std::strtoull(s.c_str() + 1, &end, 16);
        if (!end || *end != '\0')
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    /** Consume one bare token; false unless it equals @p name. */
    bool
    tok(const char *name)
    {
        std::string got;
        return (is >> got) && got == name;
    }

    /** Read a length-prefixed string field (see putString). */
    bool
    str(const char *name, std::string &out)
    {
        std::uint64_t len = 0;
        if (!u64(name, len) || len > (1u << 24))
            return false;
        out.resize(static_cast<std::size_t>(len));
        if (len && !is.read(out.data(),
                            static_cast<std::streamsize>(len)))
            return false;
        return is.get() == '\n';
    }

  private:
    std::istringstream is;
};

} // namespace

std::string
runCacheDir()
{
    const char *d = std::getenv("SCUSIM_CACHE_DIR");
    return d ? std::string(d) : std::string();
}

std::string
runCachePath(const std::string &dir, const std::string &key)
{
    char name[28];
    std::snprintf(name, sizeof name, "%016llx.run",
                  static_cast<unsigned long long>(keyHash(key)));
    return dir + "/" + name;
}

bool
runCacheStorable(const RunRecord &rec)
{
    // A graph-backed run is storable only when its key embeds the
    // graph's durable content fingerprint; a raw pointer key is
    // meaningless in another process. Transient failures depend on
    // host load, not the run (same rule as the in-process memo).
    if (rec.run.graph && rec.run.graphFp.empty())
        return false;
    if (rec.failure && isTransientFailure(*rec.failure))
        return false;
    return true;
}

std::uint64_t
runCacheQuarantinedCount()
{
    return quarantined.load(std::memory_order_relaxed);
}

std::string
encodeRunRecord(const RunRecord &rec)
{
    std::ostringstream os;
    os << "scusim-run-cache " << runCacheSchemaVersion << '\n';
    putString(os, "key", rec.run.key);
    putU64(os, "ok", rec.ok ? 1 : 0);
    putU64(os, "attempts", rec.attempts);
    putU64(os, "backoffMs", rec.backoffMs);
    putU64(os, "hasFailure", rec.failure.has_value() ? 1 : 0);
    putU64(os, "failure",
           rec.failure
               ? static_cast<std::uint64_t>(*rec.failure)
               : 0);
    putString(os, "error", rec.error);
    putString(os, "diagnostics", rec.diagnostics);
    const RunResult &r = rec.result;
    putU64(os, "totalCycles", r.totalCycles);
    putDouble(os, "seconds", r.seconds);
    putDouble(os, "gpuDynamicJ", r.energy.gpuDynamicJ);
    putDouble(os, "gpuStaticJ", r.energy.gpuStaticJ);
    putDouble(os, "memDynamicGpuJ", r.energy.memDynamicGpuJ);
    putDouble(os, "memDynamicScuJ", r.energy.memDynamicScuJ);
    putDouble(os, "memStaticJ", r.energy.memStaticJ);
    putDouble(os, "scuDynamicJ", r.energy.scuDynamicJ);
    putDouble(os, "scuStaticJ", r.energy.scuStaticJ);
    putU64(os, "gpuCompactionCycles", r.gpuCompactionCycles);
    putU64(os, "gpuProcessingCycles", r.gpuProcessingCycles);
    putU64(os, "scuBusyCycles", r.scuBusyCycles);
    putDouble(os, "gpuThreadInstrs", r.gpuThreadInstrs);
    putDouble(os, "coalescingEfficiency", r.coalescingEfficiency);
    putDouble(os, "txnsPerMemInstr", r.txnsPerMemInstr);
    putDouble(os, "bwUtilization", r.bwUtilization);
    putDouble(os, "l2HitRate", r.l2HitRate);
    putDouble(os, "dramLines", r.dramLines);
    putU64(os, "iterations", r.algMetrics.iterations);
    putU64(os, "gpuEdgeWork", r.algMetrics.gpuEdgeWork);
    putU64(os, "rawExpanded", r.algMetrics.rawExpanded);
    putU64(os, "scuFiltered", r.algMetrics.scuFiltered);
    putU64(os, "deviceCount", r.deviceCount);
    putU64(os, "icnMessages", r.icnMessages);
    putU64(os, "icnBytes", r.icnBytes);
    putU64(os, "numDeviceSlices", r.devices.size());
    for (const DeviceMetrics &dm : r.devices) {
        putU64(os, "devGpuEdgeWork", dm.gpuEdgeWork);
        putU64(os, "devRawExpanded", dm.rawExpanded);
        putU64(os, "devScuFiltered", dm.scuFiltered);
        putU64(os, "devIterations", dm.iterations);
        putU64(os, "devScuBusyCycles", dm.scuBusyCycles);
    }
    putU64(os, "validated", r.validated ? 1 : 0);
    os << "end\n";
    return os.str();
}

namespace
{

/**
 * decodeRunRecord with the failure reason: a well-formed record for
 * another key (hash collision) or schema is a plain miss, anything
 * else that fails to parse is corruption the caller may quarantine.
 */
DecodeOutcome
decodeRunRecordDetail(const std::string &text,
                      const std::string &expectKey, RunRecord &rec)
{
    FieldReader in(text);
    std::string version;
    if (!in.line("scusim-run-cache", version))
        return DecodeOutcome::Malformed;
    if (version != std::to_string(runCacheSchemaVersion))
        return DecodeOutcome::KeyMismatch;

    // Parse into a scratch record first so a truncated file cannot
    // leave @p rec half-filled.
    RunRecord tmp;
    std::string key;
    std::uint64_t u = 0;
    if (!in.str("key", key))
        return DecodeOutcome::Malformed;
    if (key != expectKey)
        return DecodeOutcome::KeyMismatch;
    if (!in.u64("ok", u) || u > 1)
        return DecodeOutcome::Malformed;
    tmp.ok = u != 0;
    if (!in.u64("attempts", u))
        return DecodeOutcome::Malformed;
    tmp.attempts = static_cast<unsigned>(u);
    if (!in.u64("backoffMs", u))
        return DecodeOutcome::Malformed;
    tmp.backoffMs = static_cast<unsigned>(u);
    std::uint64_t hasFailure = 0;
    if (!in.u64("hasFailure", hasFailure) || hasFailure > 1)
        return DecodeOutcome::Malformed;
    if (!in.u64("failure", u) ||
        u > static_cast<std::uint64_t>(FailureKind::ConnectionLost))
        return DecodeOutcome::Malformed;
    if (hasFailure)
        tmp.failure = static_cast<FailureKind>(u);
    if (!in.str("error", tmp.error) ||
        !in.str("diagnostics", tmp.diagnostics))
        return DecodeOutcome::Malformed;
    RunResult &r = tmp.result;
    if (!in.u64("totalCycles", r.totalCycles) ||
        !in.dbl("seconds", r.seconds) ||
        !in.dbl("gpuDynamicJ", r.energy.gpuDynamicJ) ||
        !in.dbl("gpuStaticJ", r.energy.gpuStaticJ) ||
        !in.dbl("memDynamicGpuJ", r.energy.memDynamicGpuJ) ||
        !in.dbl("memDynamicScuJ", r.energy.memDynamicScuJ) ||
        !in.dbl("memStaticJ", r.energy.memStaticJ) ||
        !in.dbl("scuDynamicJ", r.energy.scuDynamicJ) ||
        !in.dbl("scuStaticJ", r.energy.scuStaticJ) ||
        !in.u64("gpuCompactionCycles", r.gpuCompactionCycles) ||
        !in.u64("gpuProcessingCycles", r.gpuProcessingCycles) ||
        !in.u64("scuBusyCycles", r.scuBusyCycles) ||
        !in.dbl("gpuThreadInstrs", r.gpuThreadInstrs) ||
        !in.dbl("coalescingEfficiency", r.coalescingEfficiency) ||
        !in.dbl("txnsPerMemInstr", r.txnsPerMemInstr) ||
        !in.dbl("bwUtilization", r.bwUtilization) ||
        !in.dbl("l2HitRate", r.l2HitRate) ||
        !in.dbl("dramLines", r.dramLines))
        return DecodeOutcome::Malformed;
    if (!in.u64("iterations", u))
        return DecodeOutcome::Malformed;
    r.algMetrics.iterations = static_cast<unsigned>(u);
    if (!in.u64("gpuEdgeWork", r.algMetrics.gpuEdgeWork) ||
        !in.u64("rawExpanded", r.algMetrics.rawExpanded) ||
        !in.u64("scuFiltered", r.algMetrics.scuFiltered))
        return DecodeOutcome::Malformed;
    if (!in.u64("deviceCount", u) || u == 0 || u > 1024)
        return DecodeOutcome::Malformed;
    r.deviceCount = static_cast<unsigned>(u);
    if (!in.u64("icnMessages", r.icnMessages) ||
        !in.u64("icnBytes", r.icnBytes))
        return DecodeOutcome::Malformed;
    std::uint64_t numSlices = 0;
    if (!in.u64("numDeviceSlices", numSlices) || numSlices > 1024)
        return DecodeOutcome::Malformed;
    r.devices.resize(static_cast<std::size_t>(numSlices));
    for (DeviceMetrics &dm : r.devices) {
        if (!in.u64("devGpuEdgeWork", dm.gpuEdgeWork) ||
            !in.u64("devRawExpanded", dm.rawExpanded) ||
            !in.u64("devScuFiltered", dm.scuFiltered) ||
            !in.u64("devIterations", dm.iterations) ||
            !in.u64("devScuBusyCycles", dm.scuBusyCycles))
            return DecodeOutcome::Malformed;
    }
    if (!in.u64("validated", u) || u > 1)
        return DecodeOutcome::Malformed;
    r.validated = u != 0;
    if (!in.tok("end"))
        return DecodeOutcome::Malformed;

    rec.result = tmp.result;
    rec.ok = tmp.ok;
    rec.error = std::move(tmp.error);
    rec.failure = tmp.failure;
    rec.diagnostics = std::move(tmp.diagnostics);
    rec.attempts = tmp.attempts;
    rec.backoffMs = tmp.backoffMs;
    return DecodeOutcome::Hit;
}

} // namespace

bool
decodeRunRecord(const std::string &text,
                const std::string &expectKey, RunRecord &rec)
{
    return decodeRunRecordDetail(text, expectKey, rec) ==
           DecodeOutcome::Hit;
}

bool
loadCachedRun(const std::string &dir, const std::string &key,
              RunRecord &rec)
{
    const std::string path = runCachePath(dir, key);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return false;
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in.good() && !in.eof())
            return false;
        text = buf.str();
    }
    const DecodeOutcome outcome =
        decodeRunRecordDetail(text, key, rec);
    if (outcome == DecodeOutcome::Malformed) {
        // Quarantine the damaged file: the slot becomes a clean miss
        // that re-simulation can repopulate, and the evidence stays
        // on disk for inspection instead of being reparsed (and
        // warned about) on every future lookup. Concurrent readers
        // may race to the same rename; losing that race is fine.
        const std::string corrupt = path + ".corrupt";
        if (std::rename(path.c_str(), corrupt.c_str()) == 0) {
            quarantined.fetch_add(1, std::memory_order_relaxed);
            warn("run cache: quarantined corrupt record '%s' -> "
                 "'%s'", path.c_str(), corrupt.c_str());
        }
        return false;
    }
    return outcome == DecodeOutcome::Hit;
}

bool
storeCachedRun(const std::string &dir, const RunRecord &rec)
{
    if (!runCacheStorable(rec))
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("run cache: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
        return false;
    }
    const std::string path = runCachePath(dir, rec.run.key);
    // Process-unique temp name + rename: concurrent executors may
    // race to write the same record, but a reader only ever sees a
    // complete file (both writers produce identical bytes anyway).
    std::ostringstream tmpName;
    tmpName << path << ".tmp." << ::getpid();
    {
        std::ofstream out(tmpName.str(),
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("run cache: cannot write '%s'",
                 tmpName.str().c_str());
            return false;
        }
        out << encodeRunRecord(rec);
        if (!out.good()) {
            out.close();
            std::remove(tmpName.str().c_str());
            warn("run cache: short write to '%s'",
                 tmpName.str().c_str());
            return false;
        }
    }
    if (std::rename(tmpName.str().c_str(), path.c_str()) != 0) {
        std::remove(tmpName.str().c_str());
        warn("run cache: rename to '%s' failed", path.c_str());
        return false;
    }
    return true;
}

} // namespace scusim::harness
