/**
 * @file
 * Persistent cross-process run cache. When SCUSIM_CACHE_DIR is set,
 * the executor stores every completed RunRecord on disk keyed by its
 * canonical run key, so a repeated plan invocation — a re-run of a
 * bench binary, a CI retry, a figure regenerated after an unrelated
 * edit — serves its results from disk instead of simulating again.
 *
 * Format: one small text file per record, named by a 64-bit FNV-1a
 * hash of (schema version, run key). The file stores the full key, so
 * a hash collision reads as a miss rather than a wrong result, and a
 * schema-version constant, so records written by an incompatible
 * build are rejected instead of misparsed. Doubles round-trip as IEEE
 * bit patterns: a cache-served result is bit-identical to the
 * simulated one, which keeps the %.17g JSON/CSV artifacts
 * byte-identical — the CI cache job diffs exactly that.
 *
 * Writes go through a process-unique temp file and std::rename, so
 * concurrent executors never expose a torn record; any read that
 * fails to parse (truncation, corruption, stale schema) is treated
 * as a miss and the run is simply re-simulated. A malformed file is
 * additionally *quarantined* — renamed to "<name>.corrupt" with a
 * warning and a counter bump — so a damaged record costs one failed
 * parse ever instead of silently reading as a miss forever.
 */

#ifndef SCUSIM_HARNESS_RUN_CACHE_HH
#define SCUSIM_HARNESS_RUN_CACHE_HH

#include <cstdint>
#include <string>

#include "harness/executor.hh"

namespace scusim::harness
{

/**
 * Bump whenever the serialized RunRecord layout changes; old cache
 * files are then rejected (miss) instead of misparsed.
 */
constexpr unsigned runCacheSchemaVersion = 4;

/**
 * The cache directory from SCUSIM_CACHE_DIR, or "" when unset /
 * empty (caching disabled).
 */
std::string runCacheDir();

/** The file a record with @p key would live at under @p dir. */
std::string runCachePath(const std::string &dir,
                         const std::string &key);

/**
 * True when @p rec may be stored at all. Graph-backed runs are
 * storable only when keyed by a durable content fingerprint
 * (PlannedRun::graphFp, from the dataset store); a raw-pointer key
 * is meaningless across processes and is never written. Transient
 * failures (Timeout / Overloaded / ConnectionLost) depend on host
 * load, not the run (mirrors the in-process memo policy), so they
 * are never written either.
 */
bool runCacheStorable(const RunRecord &rec);

/**
 * Cache files quarantined (renamed to "<name>.corrupt") by this
 * process because they existed but failed to parse. A key-mismatch
 * read — a genuine hash collision — is a plain miss, not corruption,
 * and is never quarantined.
 */
std::uint64_t runCacheQuarantinedCount();

/**
 * Load the record for @p key from @p dir. On a hit, fills every
 * outcome field of @p rec (not rec.run) and returns true; any miss,
 * parse failure, schema or key mismatch returns false with @p rec
 * untouched.
 */
bool loadCachedRun(const std::string &dir, const std::string &key,
                   RunRecord &rec);

/**
 * Atomically persist @p rec under @p dir (created if needed).
 * Returns false (after a warn) on I/O failure — a full disk must
 * not fail the plan — and for records runCacheStorable rejects.
 */
bool storeCachedRun(const std::string &dir, const RunRecord &rec);

/** Serialize @p rec's outcome (testing / debugging aid). */
std::string encodeRunRecord(const RunRecord &rec);

/**
 * Parse @p text (as written by encodeRunRecord) into @p rec's
 * outcome fields; @p expectKey guards against hash collisions.
 * Returns false on any malformed input.
 */
bool decodeRunRecord(const std::string &text,
                     const std::string &expectKey, RunRecord &rec);

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_RUN_CACHE_HH
