#include "harness/runner.hh"

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include <fstream>

#include "alg/bfs.hh"
#include "alg/pagerank.hh"
#include "alg/serial.hh"
#include "alg/sharded.hh"
#include "alg/sssp.hh"
#include "common/logging.hh"
#include "common/sim_error.hh"
#include "graph/datasets.hh"
#include "graph/partition.hh"
#include "stats/timeseries.hh"
#include "store/store.hh"
#include "trace/chrome_export.hh"
#include "trace/profiler.hh"

namespace scusim::harness
{

std::string
to_string(Primitive p)
{
    switch (p) {
      case Primitive::Bfs:
        return "BFS";
      case Primitive::Sssp:
        return "SSSP";
      case Primitive::Pr:
        return "PR";
    }
    return "?";
}

const graph::CsrGraph &
cachedDataset(const std::string &name, double scale,
              std::uint64_t seed)
{
    // Executor workers hit this concurrently. Map nodes are stable,
    // so the map mutex only guards lookup/insert; the per-entry
    // once_flag lets different datasets synthesize in parallel while
    // same-key callers block until the graph is ready.
    struct Entry
    {
        std::once_flag once;
        graph::CsrGraph g;
        // Keeps the mmap (and its residency window) alive for as
        // long as `g` — which borrows the mapped sections — can be
        // handed out. Entries live for the process, so the mapping
        // does too.
        std::shared_ptr<store::MappedGraph> mapped;
    };
    static std::mutex m;
    static std::map<std::string, Entry> cache;
    std::string key = name + "@" + std::to_string(scale) + "#" +
                      std::to_string(seed);
    Entry *e;
    {
        std::lock_guard<std::mutex> lock(m);
        e = &cache[key];
    }
    std::call_once(e->once, [&] {
        SCUSIM_PROFILE_SCOPE("harness::dataset");
        // Store-backed path: pack once under SCUSIM_STORE_DIR, then
        // map the packed bytes read-only — the page cache shares them
        // with every other process mapping the same file. Any store
        // failure degrades (with a warning) to the in-memory build.
        if (!store::storeDir().empty()) {
            if (auto mg = store::openDataset(name, scale, seed)) {
                e->mapped = std::move(mg);
                e->g = e->mapped->graph();
                return;
            }
        }
        e->g = graph::makeDataset(name, scale, seed);
    });
    return e->g;
}

namespace
{

bool
validateBfs(const graph::CsrGraph &g, NodeId src,
            const std::vector<std::uint32_t> &got)
{
    SCUSIM_PROFILE_SCOPE("harness::validate");
    auto want = alg::serialBfs(g, src);
    return want == got;
}

bool
validateSssp(const graph::CsrGraph &g, NodeId src,
             const std::vector<std::uint32_t> &got)
{
    SCUSIM_PROFILE_SCOPE("harness::validate");
    auto want = alg::serialDijkstra(g, src);
    return want == got;
}

bool
validatePr(const graph::CsrGraph &g, const alg::AlgOptions &opt,
           const std::vector<float> &got)
{
    SCUSIM_PROFILE_SCOPE("harness::validate");
    auto want = alg::serialPageRank(g, 0.15, opt.prEpsilon,
                                    opt.prMaxIterations);
    for (std::size_t u = 0; u < got.size(); ++u) {
        double denom = std::max(1.0, std::fabs(want[u]));
        if (std::fabs(want[u] - got[u]) / denom > 1e-2)
            return false;
    }
    return true;
}

/**
 * Simulation-loop supervisor enforcing the run's wall-clock budget
 * and its cooperative-cancellation flag. This is the one place a run
 * consults the wall clock — it bounds host time, never simulated
 * behavior, so results stay deterministic: a run either completes
 * with its usual (reproducible) result or fails with Timeout.
 */
class WallClockSupervisor : public sim::Supervisor
{
  public:
    explicit WallClockSupervisor(const RunGuards &g)
        : guards(g),
          // simlint: allow(nondeterminism)
          begin(std::chrono::steady_clock::now())
    {
    }

    void
    checkpoint(Tick now) override
    {
        if (guards.cancel &&
            guards.cancel->load(std::memory_order_relaxed)) {
            throw SimError(
                FailureKind::Timeout,
                strprintf("run cancelled at tick %llu",
                          static_cast<unsigned long long>(now)));
        }
        if (guards.wallSeconds <= 0)
            return;
        // simlint: allow(nondeterminism)
        const auto wall = std::chrono::steady_clock::now();
        const auto elapsed =
            std::chrono::duration<double>(wall - begin);
        if (elapsed.count() >= guards.wallSeconds) {
            throw SimError(
                FailureKind::Timeout,
                strprintf("run exceeded its wall-clock budget of "
                          "%g s at tick %llu",
                          guards.wallSeconds,
                          static_cast<unsigned long long>(now)));
        }
    }

  private:
    RunGuards guards;
    std::chrono::steady_clock::time_point begin;
};

/** Pick a well-connected source: the first max-degree-ish node. */
NodeId
pickSource(const graph::CsrGraph &g)
{
    NodeId best = 0;
    EdgeId best_deg = 0;
    const NodeId probe =
        std::min<NodeId>(g.numNodes(), 1024);
    for (NodeId u = 0; u < probe; ++u) {
        if (g.degree(u) > best_deg) {
            best_deg = g.degree(u);
            best = u;
        }
    }
    return best;
}

} // namespace

RunResult
runPrimitive(const RunConfig &cfg, const graph::CsrGraph &g)
{
    SCUSIM_PROFILE_SCOPE("harness::runPrimitive");
    SystemConfig sc = SystemConfig::byName(
        cfg.systemName, cfg.mode != ScuMode::GpuOnly);
    if (cfg.scuOverride)
        sc.scu = *cfg.scuOverride;
    sc.deviceCount = cfg.deviceCount ? cfg.deviceCount : 1;
    System sys(sc);
    const unsigned numDev = sys.deviceCount();
    const bool sharded = cfg.sharded || numDev > 1;

    // Observability. The sink lives in this run's Simulation; the
    // trace-driven timeseries live in a standalone group that never
    // joins sys.statsRoot(), so the dumped stats tree stays
    // byte-identical whether or not tracing is on.
    std::unique_ptr<stats::StatGroup> tsRoot;
    std::vector<std::unique_ptr<stats::Timeseries>> series;
    if (cfg.trace.enabled) {
        sys.simulation().installTraceSink(
            std::make_unique<trace::TraceSink>(cfg.trace));
        sys.attachTrace();
    }
    if (cfg.trace.enabled && cfg.trace.timeseriesPeriod) {
        tsRoot = std::make_unique<stats::StatGroup>("timeseries");
        System *sp = &sys;
        auto addSeries = [&](std::string name, std::string desc,
                             std::function<double()> src,
                             stats::Timeseries::Mode mode) {
            series.push_back(std::make_unique<stats::Timeseries>(
                tsRoot.get(), std::move(name), std::move(desc),
                cfg.trace.timeseriesPeriod, std::move(src), mode));
            sys.simulation().addTimeseries(series.back().get());
        };
        addSeries(
            "filtered_nodes",
            "duplicate nodes filtered by the SCU so far",
            [sp] {
                double total = 0;
                if (sp->hasScu()) {
                    for (DeviceId d = 0; d < sp->deviceCount(); ++d)
                        total += static_cast<double>(
                            sp->scuDevice(d).totals().filtered);
                }
                return total;
            },
            stats::Timeseries::Mode::Cumulative);
        addSeries(
            "coalesced_accesses",
            "memory transactions reaching the L2 after coalescing",
            [sp] {
                double total = 0;
                for (DeviceId d = 0; d < sp->deviceCount(); ++d)
                    total += static_cast<double>(
                        sp->memory(d).l2().numAccesses());
                return total;
            },
            stats::Timeseries::Mode::Cumulative);
        addSeries(
            "dram_bytes",
            "DRAM bytes moved within each window",
            [sp] {
                double total = 0;
                for (DeviceId d = 0; d < sp->deviceCount(); ++d)
                    total += sp->memory(d).dramBytes();
                return total;
            },
            stats::Timeseries::Mode::Delta);
    }

    if (!cfg.faults.empty()) {
        auto inj = std::make_unique<sim::FaultInjector>(cfg.faults,
                                                        cfg.seed);
        for (DeviceId d = 0; d < numDev; ++d)
            sys.memory(d).setFaultInjector(inj.get());
        sys.simulation().installFaultInjector(std::move(inj));
    }
    if (cfg.guards.tickBudget || cfg.guards.stallWindow) {
        sys.simulation().setWatchdog(
            {cfg.guards.tickBudget, cfg.guards.stallWindow});
    }
    WallClockSupervisor supervisor(cfg.guards);
    if (cfg.guards.wallSeconds > 0 || cfg.guards.cancel)
        sys.simulation().setSupervisor(&supervisor);

    alg::AlgOptions opt = cfg.alg;
    opt.mode = cfg.mode;
    if (opt.source == 0)
        opt.source = pickSource(g);

    RunResult r;
    r.deviceCount = numDev;
    std::unique_ptr<graph::GraphPartition> part;
    std::vector<alg::AlgMetrics> perDev;
    if (sharded) {
        part = std::make_unique<graph::GraphPartition>(
            graph::GraphPartition::build(g, numDev));
    }
    switch (cfg.primitive) {
      case Primitive::Bfs: {
        alg::BfsResult out;
        if (sharded) {
            out = alg::shardedBfs(sys, *part, opt, &perDev);
        } else {
            alg::BfsRunner bfs(sys, g);
            out = bfs.run(opt);
        }
        r.algMetrics = out.metrics;
        r.validated = validateBfs(g, opt.source, out.dist);
        break;
      }
      case Primitive::Sssp: {
        alg::SsspResult out;
        if (sharded) {
            out = alg::shardedSssp(sys, g, *part, opt, &perDev);
        } else {
            alg::SsspRunner sssp(sys, g);
            out = sssp.run(opt);
        }
        r.algMetrics = out.metrics;
        r.validated = validateSssp(g, opt.source, out.dist);
        break;
      }
      case Primitive::Pr: {
        alg::PrResult out;
        if (sharded) {
            out = alg::shardedPr(sys, *part, opt, &perDev);
        } else {
            alg::PageRankRunner pr(sys, g);
            out = pr.run(opt);
        }
        r.algMetrics = out.metrics;
        r.validated = validatePr(g, opt, out.ranks);
        break;
      }
    }

    r.totalCycles = sys.simulation().now();
    r.seconds = sys.elapsedSeconds();

    const auto gpu_act = sys.gpuActivity();
    const auto &scu_act = sys.scuActivity();
    r.energy = sys.energyModel().breakdown(
        gpu_act, scu_act, r.seconds, sys.hasScu());

    if (numDev == 1) {
        const auto &gt = sys.gpuDevice().totals();
        r.gpuCompactionCycles = gt.compactionCycles;
        r.gpuProcessingCycles = gt.processingCycles;
        r.gpuThreadInstrs = static_cast<double>(
            gt.compaction.threadInstrs + gt.processing.threadInstrs);
        r.coalescingEfficiency = gt.processing.coalescingEfficiency();
        r.txnsPerMemInstr = gt.processing.txnsPerMemInstr();
        r.bwUtilization =
            sys.memory().bandwidthUtilization(r.totalCycles);
        r.l2HitRate = sys.memory().l2().hitRate();
        r.dramLines = sys.memory().dram().numReads() +
                      sys.memory().dram().numWrites();
        if (sys.hasScu())
            r.scuBusyCycles = sys.scuDevice().totals().busyCycles;
    } else {
        // Aggregate counters; ratios are recomputed from summed
        // numerators/denominators, and bandwidth utilization is the
        // mean over the N (identical-peak) memory systems.
        gpu::KernelStats comp, proc;
        double bw = 0, l2_weighted = 0, l2_accesses = 0;
        for (DeviceId d = 0; d < numDev; ++d) {
            const auto &gt = sys.gpuDevice(d).totals();
            comp.accumulate(gt.compaction);
            proc.accumulate(gt.processing);
            r.gpuCompactionCycles += gt.compactionCycles;
            r.gpuProcessingCycles += gt.processingCycles;
            bw += sys.memory(d).bandwidthUtilization(r.totalCycles);
            const auto &l2 = sys.memory(d).l2();
            const auto acc =
                static_cast<double>(l2.numAccesses());
            l2_accesses += acc;
            l2_weighted += l2.hitRate() * acc;
            r.dramLines += sys.memory(d).dram().numReads() +
                           sys.memory(d).dram().numWrites();
            if (sys.hasScu())
                r.scuBusyCycles += sys.scuDevice(d).totals().busyCycles;
        }
        r.gpuThreadInstrs = static_cast<double>(
            comp.threadInstrs + proc.threadInstrs);
        r.coalescingEfficiency = proc.coalescingEfficiency();
        r.txnsPerMemInstr = proc.txnsPerMemInstr();
        r.bwUtilization = bw / numDev;
        r.l2HitRate = l2_accesses ? l2_weighted / l2_accesses : 0;
    }

    if (sharded) {
        r.devices.resize(numDev);
        for (DeviceId d = 0; d < numDev; ++d) {
            DeviceMetrics &dm = r.devices[d];
            dm.gpuEdgeWork = perDev[d].gpuEdgeWork;
            dm.rawExpanded = perDev[d].rawExpanded;
            dm.scuFiltered = perDev[d].scuFiltered;
            dm.iterations = perDev[d].iterations;
            if (sys.hasScu())
                dm.scuBusyCycles = sys.scuDevice(d).totals().busyCycles;
        }
    }
    if (sys.hasInterconnect()) {
        r.icnMessages = sys.interconnect().messageCount();
        r.icnBytes = sys.interconnect().byteCount();
    }

    if (cfg.dumpStatsTo)
        sys.statsRoot().dumpAll(*cfg.dumpStatsTo);

    if (const trace::TraceSink *sink = sys.simulation().traceSink()) {
        // Flush any window boundary the loop has not crossed yet,
        // then write the run's artifacts.
        for (auto &ts : series)
            ts->sampleUpTo(sys.simulation().now());
        if (!cfg.trace.exportPath.empty())
            trace::writeChromeTrace(cfg.trace.exportPath, *sink);
        if (!cfg.trace.timeseriesPath.empty() && !series.empty()) {
            std::ofstream os(cfg.trace.timeseriesPath);
            if (!os) {
                warn("cannot write timeseries CSV '%s'",
                     cfg.trace.timeseriesPath.c_str());
            } else {
                std::vector<const stats::Timeseries *> ptrs;
                ptrs.reserve(series.size());
                for (const auto &ts : series)
                    ptrs.push_back(ts.get());
                stats::writeTimeseriesCsv(os, ptrs);
            }
        }
    }

    return r;
}

RunResult
runPrimitive(const RunConfig &cfg)
{
    return runPrimitive(
        cfg, cachedDataset(cfg.dataset, cfg.scale, cfg.seed));
}

} // namespace scusim::harness
