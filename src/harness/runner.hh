/**
 * @file
 * Experiment runner: builds a system, runs one graph primitive in
 * one execution mode, validates the functional result against the
 * serial reference and extracts every metric the paper's figures
 * report.
 */

#ifndef SCUSIM_HARNESS_RUNNER_HH
#define SCUSIM_HARNESS_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "alg/options.hh"
#include "energy/energy_model.hh"
#include "graph/csr.hh"
#include "harness/system.hh"
#include "sim/fault.hh"
#include "trace/trace.hh"

namespace scusim::harness
{

/** The three graph primitives of the evaluation. */
enum class Primitive { Bfs, Sssp, Pr };

std::string to_string(Primitive p);

/**
 * Per-run supervision budgets; zero / null disables the respective
 * guard. Tick budgets are enforced by the simulation's watchdog
 * (Runaway / Deadlock), the wall-clock budget and the cancellation
 * flag by a supervisor installed for the run (Timeout).
 */
struct RunGuards
{
    Tick tickBudget = 0;   ///< max absolute tick before Runaway
    Tick stallWindow = 0;  ///< no-progress ticks before Deadlock
    double wallSeconds = 0; ///< wall-clock budget before Timeout
    /** Cooperative cancellation: set to make the run stop (Timeout). */
    std::atomic<bool> *cancel = nullptr;

    bool
    any() const
    {
        return tickBudget || stallWindow || wallSeconds > 0 ||
               cancel;
    }
};

/** Everything needed to reproduce one run. */
struct RunConfig
{
    std::string systemName = "GTX980"; ///< "GTX980" or "TX1"
    ScuMode mode = ScuMode::GpuOnly;
    Primitive primitive = Primitive::Bfs;
    std::string dataset = "cond"; ///< Table 5 dataset name
    double scale = 0.25;          ///< dataset scale factor
    std::uint64_t seed = 1;
    alg::AlgOptions alg;
    /** Replace the preset SCU configuration (ablation studies). */
    std::optional<scu::ScuParams> scuOverride;
    /** Dump the full component statistics tree after the run. */
    std::ostream *dumpStatsTo = nullptr;
    /** Faults to inject into this run (empty = pristine). */
    sim::FaultPlan faults = {};
    /** Supervision budgets for this run. */
    RunGuards guards = {};
    /**
     * Observability configuration for this run (trace ring buffers,
     * Chrome JSON export, stat timeseries). Tracing never changes
     * what a run computes, so it is deliberately NOT part of the
     * run's memoization key (runKey): a memoized result can be
     * served without regenerating trace artifacts.
     */
    trace::TraceConfig trace = {};
    /**
     * Number of simulated devices. With more than one, the graph is
     * edge-cut partitioned and the primitive runs sharded, one
     * fragment per device, exchanging boundary messages over the
     * modeled interconnect.
     */
    unsigned deviceCount = 1;
    /**
     * Force the sharded driver even with deviceCount == 1 (the
     * 1-fragment equivalence gate; byte-identical to the plain path).
     */
    bool sharded = false;
};

/** Per-device slice of a sharded run's work and SCU activity. */
struct DeviceMetrics
{
    std::uint64_t gpuEdgeWork = 0;
    std::uint64_t rawExpanded = 0;
    std::uint64_t scuFiltered = 0;
    std::uint64_t iterations = 0; ///< steps this device actually ran
    Tick scuBusyCycles = 0;

    /** Fraction of raw expansions the device's SCU filtered out. */
    double
    filterHitRate() const
    {
        return rawExpanded ? static_cast<double>(scuFiltered) /
                                 static_cast<double>(rawExpanded)
                           : 0;
    }
};

/** Metrics of one run (the raw material of Figures 1 and 9-13). */
struct RunResult
{
    Tick totalCycles = 0;
    double seconds = 0;

    energy::EnergyBreakdown energy;

    Tick gpuCompactionCycles = 0; ///< Figure 1 numerator
    Tick gpuProcessingCycles = 0;
    Tick scuBusyCycles = 0;

    double gpuThreadInstrs = 0;   ///< filtering-reduction metric
    double coalescingEfficiency = 0; ///< processing kernels, Fig. 12
    double txnsPerMemInstr = 0;
    double bwUtilization = 0;     ///< Figure 13
    double l2HitRate = 0;
    double dramLines = 0;         ///< DRAM line transfers

    alg::AlgMetrics algMetrics;
    bool validated = false;

    unsigned deviceCount = 1;
    /** Per-device slices; filled only for sharded runs. */
    std::vector<DeviceMetrics> devices;
    std::uint64_t icnMessages = 0; ///< boundary messages moved
    std::uint64_t icnBytes = 0;    ///< interconnect payload bytes

    /** Fraction of GPU busy time spent in stream compaction. */
    double
    compactionShare() const
    {
        double total = static_cast<double>(gpuCompactionCycles +
                                           gpuProcessingCycles);
        return total > 0 ? gpuCompactionCycles / total : 0;
    }
};

/**
 * Fetch (and memoize) the synthetic stand-in of a Table 5 dataset at
 * the given scale. Benches share graphs across runs through this.
 */
const graph::CsrGraph &cachedDataset(const std::string &name,
                                     double scale,
                                     std::uint64_t seed = 1);

/** Run one primitive on a pre-built graph. */
RunResult runPrimitive(const RunConfig &cfg,
                       const graph::CsrGraph &g);

/** Run one primitive, synthesizing the configured dataset. */
RunResult runPrimitive(const RunConfig &cfg);

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_RUNNER_HH
