#include "harness/system.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace scusim::harness
{

std::string
to_string(ScuMode m)
{
    switch (m) {
      case ScuMode::GpuOnly:
        return "gpu-only";
      case ScuMode::ScuBasic:
        return "scu-basic";
      case ScuMode::ScuEnhanced:
        return "scu-enhanced";
    }
    return "?";
}

SystemConfig
SystemConfig::gtx980(bool with_scu)
{
    SystemConfig c;
    c.gpu = gpu::GpuParams::gtx980();
    c.scu = scu::ScuParams::forGtx980();
    c.energy = energy::EnergyParams::gtx980();
    c.withScu = with_scu;
    return c;
}

SystemConfig
SystemConfig::tx1(bool with_scu)
{
    SystemConfig c;
    c.gpu = gpu::GpuParams::tx1();
    c.scu = scu::ScuParams::forTx1();
    c.energy = energy::EnergyParams::tx1();
    c.withScu = with_scu;
    return c;
}

SystemConfig
SystemConfig::byName(const std::string &name, bool with_scu)
{
    if (name == "GTX980")
        return gtx980(with_scu);
    if (name == "TX1")
        return tx1(with_scu);
    fatal("unknown system '%s' (use GTX980 or TX1)", name.c_str());
}

bool
SystemConfig::isKnown(const std::string &name)
{
    return name == "GTX980" || name == "TX1";
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), clk(cfg.gpu.freqHz), root(""),
      emodel(cfg.energy)
{
    memsys = std::make_unique<mem::MemSystem>(cfg.gpu.memsys, clk,
                                              &root);
    gpuModel = std::make_unique<gpu::Gpu>(cfg.gpu, *memsys, sim,
                                          &root);
    if (cfg.withScu) {
        scuUnit = std::make_unique<scu::Scu>(cfg.scu, *memsys, sim,
                                             as, &root);
    }
}

scu::Scu &
System::scuDevice()
{
    panic_if(!scuUnit, "system configured without an SCU");
    return *scuUnit;
}

void
System::attachTrace()
{
    trace::TraceSink *sink = sim.traceSink();
    if (!sink)
        return;
    gpuModel->attachTrace(*sink);
    if (scuUnit)
        scuUnit->attachTrace(*sink);
    memsys->attachTrace(*sink);
}

energy::Activity
System::activitySnapshot() const
{
    energy::Activity a;
    a.threadInstrs =
        static_cast<double>(gpuModel->totals().compaction.threadInstrs +
                            gpuModel->totals().processing.threadInstrs);
    a.smActiveCycles = gpuModel->smActiveCycles();
    a.l1Accesses = gpuModel->l1Accesses();
    a.l2Accesses = memsys->l2().numAccesses();
    a.dramActivates = memsys->dram().numActivates();
    a.dramLines =
        memsys->dram().numReads() + memsys->dram().numWrites();
    if (scuUnit) {
        const auto &t = scuUnit->totals();
        a.scuElements = static_cast<double>(t.elements);
        a.scuTxns = static_cast<double>(
            t.readTxns + t.writeTxns + t.hashReadTxns +
            t.hashWriteTxns);
    }
    return a;
}

void
System::scuSection(const std::function<void()> &f)
{
    energy::Activity before = activitySnapshot();
    f();
    scuAct += activitySnapshot() - before;
}

} // namespace scusim::harness
