#include "harness/system.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace scusim::harness
{

std::string
to_string(ScuMode m)
{
    switch (m) {
      case ScuMode::GpuOnly:
        return "gpu-only";
      case ScuMode::ScuBasic:
        return "scu-basic";
      case ScuMode::ScuEnhanced:
        return "scu-enhanced";
    }
    return "?";
}

SystemConfig
SystemConfig::gtx980(bool with_scu)
{
    SystemConfig c;
    c.gpu = gpu::GpuParams::gtx980();
    c.scu = scu::ScuParams::forGtx980();
    c.energy = energy::EnergyParams::gtx980();
    c.withScu = with_scu;
    return c;
}

SystemConfig
SystemConfig::tx1(bool with_scu)
{
    SystemConfig c;
    c.gpu = gpu::GpuParams::tx1();
    c.scu = scu::ScuParams::forTx1();
    c.energy = energy::EnergyParams::tx1();
    c.withScu = with_scu;
    return c;
}

SystemConfig
SystemConfig::byName(const std::string &name, bool with_scu)
{
    if (name == "GTX980")
        return gtx980(with_scu);
    if (name == "TX1")
        return tx1(with_scu);
    fatal("unknown system '%s' (use GTX980 or TX1)", name.c_str());
}

bool
SystemConfig::isKnown(const std::string &name)
{
    return name == "GTX980" || name == "TX1";
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), clk(cfg.gpu.freqHz), root(""),
      emodel(cfg.energy)
{
    const unsigned n = cfg.deviceCount ? cfg.deviceCount : 1;
    devs.resize(n);
    for (unsigned d = 0; d < n; ++d) {
        Device &dev = devs[d];
        stats::StatGroup *parent = &root;
        if (n > 1) {
            dev.grp = std::make_unique<stats::StatGroup>(
                "dev" + std::to_string(d), &root);
            parent = dev.grp.get();
        }
        dev.as = std::make_unique<mem::AddressSpace>();
        dev.memsys = std::make_unique<mem::MemSystem>(cfg.gpu.memsys,
                                                      clk, parent);
        dev.gpuModel = std::make_unique<gpu::Gpu>(cfg.gpu, *dev.memsys,
                                                  sim, parent);
        if (cfg.withScu) {
            dev.scuUnit = std::make_unique<scu::Scu>(
                cfg.scu, *dev.memsys, sim, *dev.as, parent);
        }
    }
    if (n > 1) {
        icnLink = std::make_unique<mem::Interconnect>(cfg.icn, n, sim,
                                                      &root);
    }
}

mem::AddressSpace &
System::addressSpace(DeviceId d)
{
    panic_if(d >= devs.size(), "device %u out of range", d);
    return *devs[d].as;
}

mem::MemSystem &
System::memory(DeviceId d)
{
    panic_if(d >= devs.size(), "device %u out of range", d);
    return *devs[d].memsys;
}

gpu::Gpu &
System::gpuDevice(DeviceId d)
{
    panic_if(d >= devs.size(), "device %u out of range", d);
    return *devs[d].gpuModel;
}

scu::Scu &
System::scuDevice(DeviceId d)
{
    panic_if(d >= devs.size(), "device %u out of range", d);
    panic_if(!devs[d].scuUnit, "system configured without an SCU");
    return *devs[d].scuUnit;
}

mem::Interconnect &
System::interconnect()
{
    panic_if(!icnLink, "single-device system has no interconnect");
    return *icnLink;
}

void
System::attachTrace()
{
    trace::TraceSink *sink = sim.traceSink();
    if (!sink)
        return;
    const bool multi = devs.size() > 1;
    for (std::size_t d = 0; d < devs.size(); ++d) {
        const std::string prefix =
            multi ? "d" + std::to_string(d) + "." : "";
        devs[d].gpuModel->attachTrace(*sink, prefix);
        if (devs[d].scuUnit)
            devs[d].scuUnit->attachTrace(*sink, prefix);
        devs[d].memsys->attachTrace(*sink, prefix);
    }
    if (icnLink)
        icnLink->attachTrace(*sink);
}

energy::Activity
System::activitySnapshot(DeviceId d) const
{
    const Device &dev = devs[d];
    energy::Activity a;
    a.threadInstrs = static_cast<double>(
        dev.gpuModel->totals().compaction.threadInstrs +
        dev.gpuModel->totals().processing.threadInstrs);
    a.smActiveCycles = dev.gpuModel->smActiveCycles();
    a.l1Accesses = dev.gpuModel->l1Accesses();
    a.l2Accesses = dev.memsys->l2().numAccesses();
    a.dramActivates = dev.memsys->dram().numActivates();
    a.dramLines =
        dev.memsys->dram().numReads() + dev.memsys->dram().numWrites();
    if (dev.scuUnit) {
        const auto &t = dev.scuUnit->totals();
        a.scuElements = static_cast<double>(t.elements);
        a.scuTxns = static_cast<double>(
            t.readTxns + t.writeTxns + t.hashReadTxns +
            t.hashWriteTxns);
    }
    return a;
}

energy::Activity
System::activitySnapshot() const
{
    energy::Activity a;
    for (DeviceId d = 0; d < devs.size(); ++d)
        a += activitySnapshot(d);
    return a;
}

void
System::scuSection(DeviceId d, const std::function<void()> &f)
{
    energy::Activity before = activitySnapshot(d);
    f();
    scuAct += activitySnapshot(d) - before;
}

} // namespace scusim::harness
