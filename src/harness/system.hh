/**
 * @file
 * A complete simulated system: clock, address space, memory
 * hierarchy, GPU, optional SCU and energy model, wired together the
 * way Figure 5 shows. The harness and the algorithms only ever talk
 * to this class.
 */

#ifndef SCUSIM_HARNESS_SYSTEM_HH
#define SCUSIM_HARNESS_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>

#include "energy/energy_model.hh"
#include "gpu/gpu.hh"
#include "gpu/gpu_config.hh"
#include "mem/address_space.hh"
#include "mem/mem_system.hh"
#include "scu/scu.hh"
#include "scu/scu_config.hh"
#include "sim/clock.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

namespace scusim::harness
{

/** How much of the SCU a run uses. */
enum class ScuMode
{
    GpuOnly,     ///< baseline: everything on the SMs
    ScuBasic,    ///< Section 3: compaction offloaded
    ScuEnhanced, ///< Section 4: + filtering and grouping
};

std::string to_string(ScuMode m);

/** Configuration bundle for a full system. */
struct SystemConfig
{
    gpu::GpuParams gpu;
    scu::ScuParams scu;
    energy::EnergyParams energy;
    bool withScu = true;

    /** High-performance system (Tables 2/3). */
    static SystemConfig gtx980(bool with_scu = true);
    /** Low-power system (Tables 2/4). */
    static SystemConfig tx1(bool with_scu = true);

    /** Look up by name ("GTX980" / "TX1"). */
    static SystemConfig byName(const std::string &name,
                               bool with_scu = true);

    /** Whether byName() would accept @p name. */
    static bool isKnown(const std::string &name);
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);

    sim::Simulation &simulation() { return sim; }
    mem::AddressSpace &addressSpace() { return as; }
    mem::MemSystem &memory() { return *memsys; }
    gpu::Gpu &gpuDevice() { return *gpuModel; }
    bool hasScu() const { return scuUnit != nullptr; }
    scu::Scu &scuDevice();
    const energy::EnergyModel &energyModel() const { return emodel; }
    const sim::ClockDomain &clock() const { return clk; }
    const SystemConfig &config() const { return cfg_; }
    stats::StatGroup &statsRoot() { return root; }

    /**
     * Distribute the Simulation's installed trace sink to every
     * component (no-op without a sink). Call once, right after
     * Simulation::installTraceSink and before any work runs, so the
     * channel creation order — and thus the exported track order —
     * stays deterministic.
     */
    void attachTrace();

    /** Snapshot of every activity counter in the system. */
    energy::Activity activitySnapshot() const;

    /**
     * Run @p f (a cluster of SCU operations) and attribute the
     * activity delta it causes to the SCU side of the split.
     */
    void scuSection(const std::function<void()> &f);

    /** Activity attributed to SCU operations so far. */
    const energy::Activity &scuActivity() const { return scuAct; }

    /** Activity attributed to the GPU = total - SCU side. */
    energy::Activity
    gpuActivity() const
    {
        return activitySnapshot() - scuAct;
    }

    /** Seconds elapsed on the system timeline. */
    double
    elapsedSeconds() const
    {
        return clk.toSeconds(sim.now());
    }

  private:
    SystemConfig cfg_;
    sim::ClockDomain clk;
    stats::StatGroup root;
    sim::Simulation sim;
    mem::AddressSpace as;
    std::unique_ptr<mem::MemSystem> memsys;
    std::unique_ptr<gpu::Gpu> gpuModel;
    std::unique_ptr<scu::Scu> scuUnit;
    energy::EnergyModel emodel;
    energy::Activity scuAct;
};

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_SYSTEM_HH
