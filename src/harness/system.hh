/**
 * @file
 * A complete simulated system: clock, address space(s), memory
 * hierarchy, GPU, optional SCU and energy model, wired together the
 * way Figure 5 shows. The harness and the algorithms only ever talk
 * to this class.
 *
 * The system is device-indexed: `deviceCount` instances of
 * {SMs, SCU, L2, DRAM} share one Simulation timeline and one clock
 * domain, connected (when deviceCount > 1) by a modeled
 * inter-device Interconnect. With deviceCount == 1 (the default) the
 * layout — component parents, stat names, trace channel names,
 * address space contents — is exactly the historical single-device
 * one, which the equivalence gates in tests/sharded_test.cc pin down
 * byte-for-byte.
 */

#ifndef SCUSIM_HARNESS_SYSTEM_HH
#define SCUSIM_HARNESS_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "gpu/gpu.hh"
#include "gpu/gpu_config.hh"
#include "mem/address_space.hh"
#include "mem/interconnect.hh"
#include "mem/mem_system.hh"
#include "scu/scu.hh"
#include "scu/scu_config.hh"
#include "sim/clock.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

namespace scusim::harness
{

/** How much of the SCU a run uses. */
enum class ScuMode
{
    GpuOnly,     ///< baseline: everything on the SMs
    ScuBasic,    ///< Section 3: compaction offloaded
    ScuEnhanced, ///< Section 4: + filtering and grouping
};

std::string to_string(ScuMode m);

/** Configuration bundle for a full system. */
struct SystemConfig
{
    gpu::GpuParams gpu;
    scu::ScuParams scu;
    energy::EnergyParams energy;
    bool withScu = true;

    /** Simulated devices; each gets its own SMs/SCU/L2/DRAM. */
    unsigned deviceCount = 1;
    /** Inter-device link model (used when deviceCount > 1). */
    mem::InterconnectParams icn;

    /** High-performance system (Tables 2/3). */
    static SystemConfig gtx980(bool with_scu = true);
    /** Low-power system (Tables 2/4). */
    static SystemConfig tx1(bool with_scu = true);

    /** Look up by name ("GTX980" / "TX1"). */
    static SystemConfig byName(const std::string &name,
                               bool with_scu = true);

    /** Whether byName() would accept @p name. */
    static bool isKnown(const std::string &name);
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);

    sim::Simulation &simulation() { return sim; }

    unsigned
    deviceCount() const
    {
        return static_cast<unsigned>(devs.size());
    }

    mem::AddressSpace &addressSpace(DeviceId d = 0);
    mem::MemSystem &memory(DeviceId d = 0);
    gpu::Gpu &gpuDevice(DeviceId d = 0);
    bool hasScu() const { return devs[0].scuUnit != nullptr; }
    scu::Scu &scuDevice(DeviceId d = 0);

    bool hasInterconnect() const { return icnLink != nullptr; }
    mem::Interconnect &interconnect();

    const energy::EnergyModel &energyModel() const { return emodel; }
    const sim::ClockDomain &clock() const { return clk; }
    const SystemConfig &config() const { return cfg_; }
    stats::StatGroup &statsRoot() { return root; }

    /**
     * Distribute the Simulation's installed trace sink to every
     * component (no-op without a sink). Call once, right after
     * Simulation::installTraceSink and before any work runs, so the
     * channel creation order — and thus the exported track order —
     * stays deterministic. Single-device systems keep the historical
     * channel names; multi-device systems prefix each device's
     * channels with "d<i>." and add the "icn" channel last.
     */
    void attachTrace();

    /** Snapshot of every activity counter, summed over devices. */
    energy::Activity activitySnapshot() const;

    /** Snapshot of one device's activity counters. */
    energy::Activity activitySnapshot(DeviceId d) const;

    /**
     * Run @p f (a cluster of SCU operations on device @p d) and
     * attribute the activity delta it causes to the SCU side of the
     * split.
     */
    void scuSection(DeviceId d, const std::function<void()> &f);

    void
    scuSection(const std::function<void()> &f)
    {
        scuSection(0, f);
    }

    /** Activity attributed to SCU operations so far (all devices). */
    const energy::Activity &scuActivity() const { return scuAct; }

    /** Activity attributed to the GPU = total - SCU side. */
    energy::Activity
    gpuActivity() const
    {
        return activitySnapshot() - scuAct;
    }

    /** Seconds elapsed on the system timeline. */
    double
    elapsedSeconds() const
    {
        return clk.toSeconds(sim.now());
    }

  private:
    /** One simulated device's private components. */
    struct Device
    {
        /** Per-device stat group; null for single-device systems
         *  (components then parent directly to the root, preserving
         *  historical stat paths). */
        std::unique_ptr<stats::StatGroup> grp;
        std::unique_ptr<mem::AddressSpace> as;
        std::unique_ptr<mem::MemSystem> memsys;
        std::unique_ptr<gpu::Gpu> gpuModel;
        std::unique_ptr<scu::Scu> scuUnit;
    };

    SystemConfig cfg_;
    sim::ClockDomain clk;
    stats::StatGroup root;
    sim::Simulation sim;
    std::vector<Device> devs;
    std::unique_ptr<mem::Interconnect> icnLink;
    energy::EnergyModel emodel;
    energy::Activity scuAct;
};

} // namespace scusim::harness

#endif // SCUSIM_HARNESS_SYSTEM_HH
