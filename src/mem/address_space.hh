/**
 * @file
 * Simulated device address space. Every array the algorithms touch
 * (CSR arrays, frontiers, bitmasks, the SCU hash table) is given a
 * region here, so the timing model sees the true addresses and the
 * true layout-induced locality.
 */

#ifndef SCUSIM_MEM_ADDRESS_SPACE_HH
#define SCUSIM_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace scusim::mem
{

/** A named, contiguous allocation in the simulated address space. */
struct Region
{
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;

    Addr end() const { return base + bytes; }

    bool
    contains(Addr a) const
    {
        return a >= base && a < end();
    }
};

/**
 * Bump allocator over a 4 GB device memory, mirroring the boards the
 * paper models. Allocations are line-aligned so distinct arrays never
 * share a cache line (as cudaMalloc guarantees in practice).
 */
class AddressSpace
{
  public:
    explicit AddressSpace(std::uint64_t capacity_bytes = 4ULL << 30,
                          unsigned line_bytes = 128)
        : capacity(capacity_bytes), lineBytes(line_bytes)
    {
        panic_if(!isPowerOf2(line_bytes), "line size must be 2^n");
    }

    /** Allocate @p bytes under @p name; returns the base address. */
    Addr
    alloc(const std::string &name, std::uint64_t bytes)
    {
        Addr base = alignUp(cursor, lineBytes);
        fatal_if(base + bytes > capacity,
                 "simulated device memory exhausted allocating "
                 "'%s' (%llu bytes)", name.c_str(),
                 static_cast<unsigned long long>(bytes));
        cursor = base + bytes;
        regions.push_back(Region{name, base, bytes});
        return base;
    }

    /** Free everything allocated after (and including) @p watermark. */
    void
    releaseTo(Addr watermark)
    {
        while (!regions.empty() && regions.back().base >= watermark)
            regions.pop_back();
        cursor = watermark;
    }

    Addr watermark() const { return cursor; }
    std::uint64_t bytesAllocated() const { return cursor; }

    /** Region containing @p a, or nullptr. Linear scan (debug aid). */
    const Region *
    find(Addr a) const
    {
        for (const auto &r : regions) {
            if (r.contains(a))
                return &r;
        }
        return nullptr;
    }

    const std::vector<Region> &allRegions() const { return regions; }
    unsigned lineSize() const { return lineBytes; }

  private:
    std::uint64_t capacity;
    unsigned lineBytes;
    Addr cursor = lineBytes; // keep address 0 unused
    std::vector<Region> regions;
};

/**
 * Convenience wrapper tying a host-side vector to a simulated region:
 * the functional data lives in the host vector while timing uses the
 * simulated addresses.
 */
template <typename T>
class DeviceArray
{
  public:
    DeviceArray() = default;

    DeviceArray(AddressSpace &as, const std::string &name,
                std::size_t n)
        : data_(n), base_(as.alloc(name, n * sizeof(T)))
    {
    }

    void
    allocate(AddressSpace &as, const std::string &name, std::size_t n)
    {
        data_.assign(n, T{});
        base_ = as.alloc(name, n * sizeof(T));
    }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Simulated address of element @p i. */
    Addr
    addrOf(std::size_t i) const
    {
        return base_ + i * sizeof(T);
    }

    Addr base() const { return base_; }

    std::vector<T> &host() { return data_; }
    const std::vector<T> &host() const { return data_; }

  private:
    std::vector<T> data_;
    Addr base_ = 0;
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_ADDRESS_SPACE_HH
