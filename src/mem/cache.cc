#include "mem/cache.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/check.hh"

namespace scusim::mem
{

Cache::Cache(const CacheParams &params, MemLevel *downstream,
             stats::StatGroup *parent)
    : p(params), next(downstream),
      numSets(static_cast<unsigned>(
          p.sizeBytes / (static_cast<std::uint64_t>(p.lineBytes) *
                         p.ways))),
      grp(p.name, parent),
      hits(&grp, "hits", "accesses serviced by this level"),
      misses(&grp, "misses", "accesses forwarded downstream"),
      writebacks(&grp, "writebacks", "dirty evictions"),
      atomicOps(&grp, "atomics", "read-modify-write operations"),
      mshrStallCycles(&grp, "mshr_stall_cycles",
                      "cycles accesses waited for a free MSHR")
{
    panic_if(numSets == 0, "cache '%s' smaller than one set",
             p.name.c_str());
    panic_if(!isPowerOf2(p.lineBytes), "line size must be 2^n");
    sets.assign(numSets, std::vector<Line>(p.ways));
    bankFree.assign(std::max(1u, p.banks), 0);
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    // Hash the set index so power-of-two strides (CSR offsets, hash
    // table rows) do not pathologically alias.
    return static_cast<unsigned>(
        mixBits(line_addr / p.lineBytes) % numSets);
}

Tick
Cache::reserveBank(Tick issue, Addr line_addr, Tick occupancy)
{
    unsigned bank = static_cast<unsigned>(
        (line_addr / p.lineBytes) % bankFree.size());
    Tick start = std::max(issue, bankFree[bank]);
    bankFree[bank] = start + occupancy;
    return start;
}

Tick
Cache::acquireMshr(Tick start)
{
    // Purge already-completed misses.
    while (!outstanding.empty() && outstanding.top() <= start)
        outstanding.pop();
    if (outstanding.size() >= p.mshrs) {
        Tick free_at = outstanding.top();
        outstanding.pop();
        mshrStallCycles += static_cast<double>(free_at - start);
        start = free_at;
    }
    return start;
}

Tick
Cache::fill(Tick start, Addr line_addr, std::vector<Line> &set,
            std::uint64_t tag, unsigned set_idx, unsigned bytes)
{
    (void)set_idx;
    // Victim selection: LRU among the ways; lines in the protected
    // (way-locked) region are only victimized by protected fills.
    const bool filler_protected = isProtected(line_addr);
    Line *victim = nullptr;
    for (auto &l : set) {
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!filler_protected && isProtected(l.tag * p.lineBytes))
            continue;
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (!victim) {
        // Every way is pinned: service downstream without
        // allocating.
        MemResult down = next->access(start, line_addr,
                                      AccessKind::Read, p.lineBytes);
        sim::checkMemCompletion("cache downstream", start,
                                down.complete);
        outstanding.push(down.complete);
        return down.complete;
    }
    if (victim->valid && victim->dirty) {
        // Write back the victim. The requester does not wait for it;
        // it only consumes downstream bandwidth.
        Addr victim_addr = victim->tag * p.lineBytes;
        next->access(start, victim_addr, AccessKind::Write,
                     p.lineBytes);
        ++writebacks;
    }

    MemResult down = next->access(start, line_addr, AccessKind::Read,
                                  bytes);
    sim::checkMemCompletion("cache downstream", start, down.complete);
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = false;
    victim->lastUse = ++lruClock;

    Tick done = down.complete;
    outstanding.push(done);
    inflight[line_addr] = done;
    return done;
}

MemResult
Cache::access(Tick issue, Addr addr, AccessKind kind, unsigned bytes)
{
    (void)bytes;
    const Addr line_addr = alignDown(addr, p.lineBytes);
    const std::uint64_t tag = line_addr / p.lineBytes;
    const unsigned set_idx = setIndex(line_addr);
    auto &set = sets[set_idx];

    Tick occupancy = p.bankCycle +
        (kind == AccessKind::Atomic ? p.atomicExtra : 0);
    Tick start = reserveBank(issue, line_addr, occupancy);

    // Keep the in-flight merge table from growing without bound.
    if (++accessesSincePurge >= 8192) {
        accessesSincePurge = 0;
        std::erase_if(inflight, [issue](const auto &kv) {
            return kv.second <= issue;
        });
    }

    if (kind == AccessKind::Atomic)
        ++atomicOps;

    const bool is_write = kind == AccessKind::Write ||
                          kind == AccessKind::WriteNoAlloc;
    const bool is_read = kind == AccessKind::Read ||
                         kind == AccessKind::ReadNoAlloc;

    // Tag lookup.
    for (auto &l : set) {
        if (l.valid && l.tag == tag) {
            l.lastUse = ++lruClock;
            if (!is_read)
                l.dirty = true;
            ++hits;
            MemResult r;
            r.hit = true;
            // A hit on a line whose fill is still in flight waits for
            // the fill (secondary miss merged into the MSHR).
            Tick avail = start + p.hitLatency;
            auto it = inflight.find(line_addr);
            if (it != inflight.end()) {
                if (it->second > start)
                    avail = std::max(avail, it->second);
                else
                    inflight.erase(it);
            }
            r.complete = is_write ? start + 1 : avail;
            return r;
        }
    }

    // Miss.
    ++misses;

    if (kind == AccessKind::WriteNoAlloc) {
        // Streaming store: forward downstream, keep the cache clean.
        next->access(start, line_addr, AccessKind::WriteNoAlloc,
                     p.lineBytes);
        MemResult wr;
        wr.hit = false;
        wr.complete = start + 1;
        return wr;
    }

    if (kind == AccessKind::ReadNoAlloc) {
        // Streaming load: no allocation — the requester tolerates
        // the full downstream latency (deep request FIFOs).
        start = acquireMshr(start);
        MemResult down = next->access(start, line_addr,
                                      AccessKind::ReadNoAlloc,
                                      p.lineBytes);
        outstanding.push(down.complete);
        MemResult rr;
        rr.hit = false;
        rr.complete = down.complete + p.hitLatency;
        return rr;
    }

    if (kind == AccessKind::Write) {
        // Write-validate: a line-granular store allocates the line
        // without fetching it (GPU L2 behaviour); no read-for-
        // ownership traffic is generated.
        Line *victim = &set[0];
        for (auto &l : set) {
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (l.lastUse < victim->lastUse)
                victim = &l;
        }
        if (victim->valid && victim->dirty) {
            next->access(start, victim->tag * p.lineBytes,
                         AccessKind::Write, p.lineBytes);
            ++writebacks;
        }
        victim->tag = tag;
        victim->valid = true;
        victim->dirty = true;
        victim->lastUse = ++lruClock;
        MemResult wr;
        wr.hit = false;
        wr.complete = start + 1;
        return wr;
    }

    start = acquireMshr(start);
    Tick fill_done = fill(start, line_addr, set, tag, set_idx, bytes);

    // Mark dirtiness after the fill installed the line.
    if (!is_read) {
        for (auto &l : set) {
            if (l.valid && l.tag == tag) {
                l.dirty = true;
                break;
            }
        }
    }

    MemResult r;
    r.hit = false;
    r.complete = is_write ? start + 1 : fill_done + p.hitLatency;
    sim::checkMemCompletion(p.name.c_str(), issue, r.complete);
    return r;
}

void
Cache::invalidateAll(Tick now)
{
    for (auto &set : sets) {
        for (auto &l : set) {
            // Timing model only: dirty data is not lost functionally,
            // but the writeback traffic must be accounted.
            if (l.valid && l.dirty) {
                next->access(now, l.tag * p.lineBytes,
                             AccessKind::Write, p.lineBytes);
                ++writebacks;
            }
            l = Line{};
        }
    }
    inflight.clear();
}

} // namespace scusim::mem
