/**
 * @file
 * Set-associative, write-back, write-allocate cache timing model with
 * banked tag/data arrays, MSHR-limited miss parallelism and in-flight
 * miss merging. Used for the per-SM L1s and the shared, banked L2.
 *
 * The model is tag-only: functional data lives in host arrays (see
 * mem/address_space.hh); the cache tracks presence, dirtiness and
 * resource occupancy to produce completion ticks and activity counts.
 */

#ifndef SCUSIM_MEM_CACHE_HH
#define SCUSIM_MEM_CACHE_HH

#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"
#include "stats/stats.hh"

namespace scusim::mem
{

/** Configuration of one cache level. */
struct CacheParams
{
    std::string name = "l2";
    std::uint64_t sizeBytes = 2 << 20;
    unsigned lineBytes = 128;
    unsigned ways = 16;
    unsigned banks = 16;      ///< parallel tag/data banks
    Tick hitLatency = 28;     ///< cycles from issue to data on a hit
    Tick bankCycle = 1;       ///< bank occupancy per access
    Tick atomicExtra = 4;     ///< extra occupancy for read-modify-write
    unsigned mshrs = 128;     ///< max misses in flight
};

/**
 * One cache level. Misses propagate to the @p downstream level given
 * at construction.
 */
class Cache : public MemLevel
{
  public:
    Cache(const CacheParams &params, MemLevel *downstream,
          stats::StatGroup *parent);

    MemResult access(Tick issue, Addr addr, AccessKind kind,
                     unsigned bytes) override;

    /** Drop all lines (kernel-boundary behaviour for L1s). */
    void invalidateAll(Tick now);

    /**
     * Pin an address range (way-locking): lines inside it are never
     * victimized by fills from outside it. Used for the SCU's
     * in-memory hash tables, which are sized to stay L2 resident
     * (Table 2). Pass bytes = 0 to clear.
     */
    void
    setProtectedRegion(Addr base, std::uint64_t bytes)
    {
        protBase = base;
        protBytes = bytes;
    }

    const CacheParams &params() const { return p; }

    double numHits() const { return hits.value(); }
    double numMisses() const { return misses.value(); }

    double
    hitRate() const
    {
        double t = hits.value() + misses.value();
        return t > 0 ? hits.value() / t : 0;
    }

    /** Total accesses (reads+writes+atomics), for energy accounting. */
    double numAccesses() const { return hits.value() + misses.value(); }
    double numWritebacks() const { return writebacks.value(); }

  private:
    struct Line
    {
        std::uint64_t tag = static_cast<std::uint64_t>(-1);
        bool valid = false;
        bool dirty = false;
        Tick lastUse = 0;
    };

    /** Reserve a bank slot; returns the tick the access starts. */
    Tick reserveBank(Tick issue, Addr line_addr, Tick occupancy);

    /** Block until an MSHR is free; returns the adjusted start tick. */
    Tick acquireMshr(Tick start);

    /** Bring a line in from downstream; returns fill-complete tick. */
    Tick fill(Tick start, Addr line_addr, std::vector<Line> &set,
              std::uint64_t tag, unsigned set_idx, unsigned bytes);

    unsigned setIndex(Addr line_addr) const;

    CacheParams p;
    MemLevel *next;
    unsigned numSets;
    std::vector<std::vector<Line>> sets;
    std::vector<Tick> bankFree;

    /** Completion ticks of outstanding misses (MSHR occupancy). */
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        outstanding;
    /** In-flight line fills, for secondary-miss merging. */
    std::unordered_map<Addr, Tick> inflight;
    Tick lruClock = 0;
    std::uint64_t accessesSincePurge = 0;
    Addr protBase = 0;
    std::uint64_t protBytes = 0;

    bool
    isProtected(Addr a) const
    {
        return protBytes && a >= protBase &&
               a < protBase + protBytes;
    }

    stats::StatGroup grp;
    stats::Scalar hits, misses, writebacks, atomicOps;
    stats::Scalar mshrStallCycles;
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_CACHE_HH
