/**
 * @file
 * Intra-warp memory-access coalescing: the classic GPU mechanism that
 * merges the 32 lane addresses of one warp memory instruction into
 * the minimal set of cache-line transactions. The effectiveness of
 * this merge — transactions per warp instruction — is the coalescing
 * metric the paper's grouping operation improves (Figure 12).
 */

#ifndef SCUSIM_MEM_COALESCER_HH
#define SCUSIM_MEM_COALESCER_HH

#include <cstddef>
#include <span>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"
#include "sim/check.hh"

namespace scusim::mem
{

/**
 * Merge @p lane_addrs into unique line base addresses (first-touch
 * order preserved), appending to @p out.
 *
 * @return number of distinct lines (== transactions generated).
 */
inline std::size_t
coalesceLanes(std::span<const Addr> lane_addrs, unsigned line_bytes,
              std::vector<Addr> &out)
{
    const std::size_t first = out.size();
    for (Addr a : lane_addrs) {
        Addr line = alignDown(a, line_bytes);
        bool seen = false;
        for (std::size_t i = first; i < out.size(); ++i) {
            if (out[i] == line) {
                seen = true;
                break;
            }
        }
        if (!seen)
            out.push_back(line);
    }
    sim::checkCoalesceBounds(lane_addrs.size(), out.size() - first);
    return out.size() - first;
}

/**
 * Running coalescing-efficiency accumulator: tracks warp memory
 * instructions and the transactions they generated. An ideal fully
 * coalesced 4-byte access pattern produces 1 transaction per warp
 * (with 128 B lines and 32 lanes); fully divergent produces 32.
 */
struct CoalesceStats
{
    std::uint64_t warpMemInstrs = 0;
    std::uint64_t transactions = 0;
    std::uint64_t lanes = 0;

    void
    record(std::size_t lane_count, std::size_t txns)
    {
        ++warpMemInstrs;
        lanes += lane_count;
        transactions += txns;
    }

    /** Average transactions per warp memory instruction. */
    double
    txnsPerInstr() const
    {
        return warpMemInstrs
                   ? static_cast<double>(transactions) /
                         static_cast<double>(warpMemInstrs)
                   : 0;
    }

    /**
     * Coalescing efficiency in [0,1]: useful lanes per transaction
     * relative to the best case (all lanes in one line).
     */
    double
    efficiency() const
    {
        return transactions
                   ? static_cast<double>(lanes) /
                         (32.0 * static_cast<double>(transactions))
                   : 0;
    }

    void
    merge(const CoalesceStats &o)
    {
        warpMemInstrs += o.warpMemInstrs;
        transactions += o.transactions;
        lanes += o.lanes;
    }
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_COALESCER_HH
