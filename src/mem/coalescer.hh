/**
 * @file
 * Intra-warp memory-access coalescing: the classic GPU mechanism that
 * merges the 32 lane addresses of one warp memory instruction into
 * the minimal set of cache-line transactions. The effectiveness of
 * this merge — transactions per warp instruction — is the coalescing
 * metric the paper's grouping operation improves (Figure 12).
 */

#ifndef SCUSIM_MEM_COALESCER_HH
#define SCUSIM_MEM_COALESCER_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"
#include "sim/check.hh"

namespace scusim::mem
{

/**
 * Append the unique values of map(a) over @p addrs to @p out,
 * preserving first-touch order — the order lanes issue transactions
 * in, which feeds cache and DRAM timing, so it must never change.
 *
 * Dedup runs through a small open-addressed scratch set on the stack
 * (64 slots; a warp is at most 32 lanes, so the load factor stays
 * under one half) instead of rescanning the output vector per lane —
 * the old O(lanes²) inner loop was a measurable slice of Sm::tick.
 * Inputs wider than the table fall back to the linear rescan.
 *
 * @return number of unique values appended.
 */
template <typename MapFn>
inline std::size_t
appendMappedUnique(std::span<const Addr> addrs, MapFn &&map,
                   std::vector<Addr> &out)
{
    const std::size_t first = out.size();
    constexpr std::size_t kSlots = 64;
    if (addrs.size() <= kSlots / 2) {
        Addr table[kSlots];
        std::uint64_t used = 0;
        for (Addr a : addrs) {
            const Addr v = map(a);
            // Fibonacci multiply-shift to the table's 6 index bits.
            std::size_t h =
                static_cast<std::size_t>(
                    static_cast<std::uint64_t>(v) *
                    0x9E3779B97F4A7C15ull >>
                    58);
            bool dup = false;
            while ((used >> h) & 1) {
                if (table[h] == v) {
                    dup = true;
                    break;
                }
                h = (h + 1) & (kSlots - 1);
            }
            if (dup)
                continue;
            used |= std::uint64_t{1} << h;
            table[h] = v;
            out.push_back(v);
        }
        return out.size() - first;
    }
    for (Addr a : addrs) {
        const Addr v = map(a);
        bool seen = false;
        for (std::size_t i = first; i < out.size(); ++i) {
            if (out[i] == v) {
                seen = true;
                break;
            }
        }
        if (!seen)
            out.push_back(v);
    }
    return out.size() - first;
}

/** Append the distinct addresses of @p addrs (first-touch order). */
inline std::size_t
appendUniqueAddrs(std::span<const Addr> addrs, std::vector<Addr> &out)
{
    return appendMappedUnique(addrs, [](Addr a) { return a; }, out);
}

/**
 * Merge @p lane_addrs into unique line base addresses (first-touch
 * order preserved), appending to @p out.
 *
 * @return number of distinct lines (== transactions generated).
 */
inline std::size_t
coalesceLanes(std::span<const Addr> lane_addrs, unsigned line_bytes,
              std::vector<Addr> &out)
{
    const std::size_t txns = appendMappedUnique(
        lane_addrs,
        [line_bytes](Addr a) { return alignDown(a, line_bytes); },
        out);
    sim::checkCoalesceBounds(lane_addrs.size(), txns);
    return txns;
}

/**
 * Running coalescing-efficiency accumulator: tracks warp memory
 * instructions and the transactions they generated. An ideal fully
 * coalesced 4-byte access pattern produces 1 transaction per warp
 * (with 128 B lines and 32 lanes); fully divergent produces 32.
 */
struct CoalesceStats
{
    std::uint64_t warpMemInstrs = 0;
    std::uint64_t transactions = 0;
    std::uint64_t lanes = 0;

    void
    record(std::size_t lane_count, std::size_t txns)
    {
        ++warpMemInstrs;
        lanes += lane_count;
        transactions += txns;
    }

    /** Average transactions per warp memory instruction. */
    double
    txnsPerInstr() const
    {
        return warpMemInstrs
                   ? static_cast<double>(transactions) /
                         static_cast<double>(warpMemInstrs)
                   : 0;
    }

    /**
     * Coalescing efficiency in [0,1]: useful lanes per transaction
     * relative to the best case (all lanes in one line).
     */
    double
    efficiency() const
    {
        return transactions
                   ? static_cast<double>(lanes) /
                         (32.0 * static_cast<double>(transactions))
                   : 0;
    }

    void
    merge(const CoalesceStats &o)
    {
        warpMemInstrs += o.warpMemInstrs;
        transactions += o.transactions;
        lanes += o.lanes;
    }
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_COALESCER_HH
