/**
 * @file
 * Intra-warp memory-access coalescing: the classic GPU mechanism that
 * merges the 32 lane addresses of one warp memory instruction into
 * the minimal set of cache-line transactions. The effectiveness of
 * this merge — transactions per warp instruction — is the coalescing
 * metric the paper's grouping operation improves (Figure 12).
 */

#ifndef SCUSIM_MEM_COALESCER_HH
#define SCUSIM_MEM_COALESCER_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"
#include "sim/check.hh"

namespace scusim::mem
{

namespace detail
{

/**
 * Open-addressed membership set on the stack: 64 slots tracked by one
 * 64-bit occupancy word, good for up to 32 distinct values (load
 * factor under one half). This is the "64-bit membership word" dedup
 * the mask-based coalescing path runs per lane instead of rescanning
 * the output vector.
 */
class MembershipWord
{
  public:
    /** Insert @p v; false if it was already present. */
    bool
    insert(Addr v)
    {
        // Fibonacci multiply-shift to the table's 6 index bits.
        std::size_t h = static_cast<std::size_t>(
            static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ull >>
            58);
        while ((used >> h) & 1) {
            if (table[h] == v)
                return false;
            h = (h + 1) & (kSlots - 1);
        }
        used |= std::uint64_t{1} << h;
        table[h] = v;
        return true;
    }

    static constexpr std::size_t kSlots = 64;

  private:
    Addr table[kSlots];
    std::uint64_t used = 0;
};

} // namespace detail

/**
 * Append the unique values of map(lanes[i]) over the lanes selected
 * by @p active (bit i selects lanes[i]) to @p out, preserving
 * first-touch order — the order lanes issue transactions in, which
 * feeds cache and DRAM timing, so it must never change. Set bits past
 * lanes.size() are ignored, so callers with a dense span can pass an
 * all-ones mask.
 *
 * Two fast paths cover the common warp shapes: consecutive lanes that
 * map to the same value (a coalesced run) are killed by a
 * previous-value compare before any table work, and the remaining
 * dedup runs through a 64-bit membership word instead of rescanning
 * the output vector per lane. More than 32 active lanes fall back to
 * the linear rescan (the membership table wants load factor <= 1/2).
 *
 * @return number of unique values appended.
 */
template <typename MapFn>
inline std::size_t
appendMappedUnique(std::span<const Addr> lanes, std::uint64_t active,
                   MapFn &&map, std::vector<Addr> &out)
{
    const std::size_t first = out.size();
    if (lanes.size() < 64)
        active &= maskLow(static_cast<unsigned>(lanes.size()));
    bool have_prev = false;
    Addr prev = 0;
    if (popcount64(active) <= detail::MembershipWord::kSlots / 2) {
        detail::MembershipWord seen;
        for (std::uint64_t m = active; m; m &= m - 1) {
            const Addr v = map(lanes[ctz64(m)]);
            if (have_prev && v == prev)
                continue;
            have_prev = true;
            prev = v;
            if (seen.insert(v))
                out.push_back(v);
        }
        return out.size() - first;
    }
    // >32 active lanes: linear rescan fallback.
    for (std::uint64_t m = active; m; m &= m - 1) {
        const Addr v = map(lanes[ctz64(m)]);
        if (have_prev && v == prev)
            continue;
        have_prev = true;
        prev = v;
        bool dup = false;
        for (std::size_t i = first; i < out.size(); ++i) {
            if (out[i] == v) {
                dup = true;
                break;
            }
        }
        if (!dup)
            out.push_back(v);
    }
    return out.size() - first;
}

/**
 * Dense-span variant: every lane is active. Spans wider than 64 lanes
 * (no mask can address them) run the linear rescan directly.
 */
template <typename MapFn>
inline std::size_t
appendMappedUnique(std::span<const Addr> addrs, MapFn &&map,
                   std::vector<Addr> &out)
{
    if (addrs.size() <= 64) {
        return appendMappedUnique(
            addrs, maskLow(static_cast<unsigned>(addrs.size())),
            std::forward<MapFn>(map), out);
    }
    const std::size_t first = out.size();
    for (Addr a : addrs) {
        const Addr v = map(a);
        bool seen = false;
        for (std::size_t i = first; i < out.size(); ++i) {
            if (out[i] == v) {
                seen = true;
                break;
            }
        }
        if (!seen)
            out.push_back(v);
    }
    return out.size() - first;
}

/** Append the distinct active-lane addresses (first-touch order). */
inline std::size_t
appendUniqueAddrs(std::span<const Addr> lanes, std::uint64_t active,
                  std::vector<Addr> &out)
{
    return appendMappedUnique(lanes, active,
                              [](Addr a) { return a; }, out);
}

/** Append the distinct addresses of @p addrs (first-touch order). */
inline std::size_t
appendUniqueAddrs(std::span<const Addr> addrs, std::vector<Addr> &out)
{
    return appendMappedUnique(addrs, [](Addr a) { return a; }, out);
}

/**
 * Merge the active lanes of @p lane_addrs into unique line base
 * addresses (first-touch order preserved), appending to @p out.
 *
 * @return number of distinct lines (== transactions generated).
 */
inline std::size_t
coalesceLanes(std::span<const Addr> lane_addrs, std::uint64_t active,
              unsigned line_bytes, std::vector<Addr> &out)
{
    if (lane_addrs.size() < 64)
        active &=
            maskLow(static_cast<unsigned>(lane_addrs.size()));
    const std::size_t txns = appendMappedUnique(
        lane_addrs, active,
        [line_bytes](Addr a) { return alignDown(a, line_bytes); },
        out);
    sim::checkCoalesceBounds(popcount64(active), txns);
    return txns;
}

/** Dense-span variant of coalesceLanes: every lane is active. */
inline std::size_t
coalesceLanes(std::span<const Addr> lane_addrs, unsigned line_bytes,
              std::vector<Addr> &out)
{
    const std::size_t txns = appendMappedUnique(
        lane_addrs,
        [line_bytes](Addr a) { return alignDown(a, line_bytes); },
        out);
    sim::checkCoalesceBounds(lane_addrs.size(), txns);
    return txns;
}

/**
 * Running coalescing-efficiency accumulator: tracks warp memory
 * instructions and the transactions they generated. An ideal fully
 * coalesced 4-byte access pattern produces 1 transaction per warp
 * (with 128 B lines and 32 lanes); fully divergent produces 32.
 */
struct CoalesceStats
{
    std::uint64_t warpMemInstrs = 0;
    std::uint64_t transactions = 0;
    std::uint64_t lanes = 0;

    void
    record(std::size_t lane_count, std::size_t txns)
    {
        ++warpMemInstrs;
        lanes += lane_count;
        transactions += txns;
    }

    /** Average transactions per warp memory instruction. */
    double
    txnsPerInstr() const
    {
        return warpMemInstrs
                   ? static_cast<double>(transactions) /
                         static_cast<double>(warpMemInstrs)
                   : 0;
    }

    /**
     * Coalescing efficiency in [0,1]: useful lanes per transaction
     * relative to the best case (all lanes in one line).
     */
    double
    efficiency() const
    {
        return transactions
                   ? static_cast<double>(lanes) /
                         (32.0 * static_cast<double>(transactions))
                   : 0;
    }

    void
    merge(const CoalesceStats &o)
    {
        warpMemInstrs += o.warpMemInstrs;
        transactions += o.transactions;
        lanes += o.lanes;
    }
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_COALESCER_HH
