#include "mem/dram.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/check.hh"
#include "sim/fault.hh"

namespace scusim::mem
{

DramParams
DramParams::gddr5()
{
    DramParams p;
    p.name = "GDDR5";
    p.channels = 8;
    p.banksPerChannel = 16;
    p.rowBytes = 2048;
    p.peakBytesPerSec = 224e9;
    p.tCasNs = 14.0;
    p.tRcdNs = 14.0;
    p.tRpNs = 14.0;
    p.ioNs = 6.0;
    return p;
}

DramParams
DramParams::lpddr4()
{
    DramParams p;
    p.name = "LPDDR4";
    p.channels = 2;
    p.banksPerChannel = 8;
    p.rowBytes = 2048;
    p.peakBytesPerSec = 25.6e9;
    p.tCasNs = 28.0;
    p.tRcdNs = 28.0;
    p.tRpNs = 28.0;
    p.ioNs = 20.0;
    return p;
}

Dram::Dram(const DramParams &params, const sim::ClockDomain &clock,
           stats::StatGroup *parent)
    : p(params),
      tCas(clock.fromNs(p.tCasNs)),
      tRcd(clock.fromNs(p.tRcdNs)),
      tRp(clock.fromNs(p.tRpNs)),
      tIo(clock.fromNs(p.ioNs)),
      busCyclesPerLine(std::max<Tick>(1,
          clock.cyclesForBytes(p.lineBytes,
                               p.peakBytesPerSec / p.channels))),
      chans(p.channels),
      grp("dram", parent),
      reads(&grp, "reads", "line reads serviced"),
      writes(&grp, "writes", "line writes serviced"),
      rowHits(&grp, "row_hits", "row-buffer hits"),
      rowMisses(&grp, "row_misses", "row-buffer misses (activates)"),
      busBusyCycles(&grp, "bus_busy_cycles",
                    "aggregate channel data-bus busy cycles"),
      movedBytes(&grp, "bytes_moved", "bytes moved on the pins")
{
    for (auto &c : chans)
        c.banks.resize(p.banksPerChannel);
}

void
Dram::map(Addr addr, unsigned &channel, unsigned &bank,
          std::uint64_t &row) const
{
    // Line-interleave across channels for streaming bandwidth, then
    // row-granular interleave across banks so sequential streams get
    // long row hits and bank-level parallelism.
    std::uint64_t line = addr / p.lineBytes;
    channel = static_cast<unsigned>(line % p.channels);
    std::uint64_t addr_in_chan = (line / p.channels) * p.lineBytes;
    std::uint64_t row_global = addr_in_chan / p.rowBytes;
    bank = static_cast<unsigned>(row_global % p.banksPerChannel);
    row = row_global / p.banksPerChannel;
}

MemResult
Dram::access(Tick issue, Addr addr, AccessKind kind, unsigned bytes)
{
    // Sectored transfers: bus occupancy is proportional to the bytes
    // moved (GPU L2s fetch 32 B sectors; the hash fills only its set).
    const unsigned moved =
        std::min(std::max(bytes, 32u), p.lineBytes);
    const Tick bus_cycles = std::max<Tick>(
        1, busCyclesPerLine * moved / p.lineBytes);

    unsigned ci = 0, bi = 0;
    std::uint64_t row = 0;
    map(addr, ci, bi, row);
    Channel &ch = chans[ci];
    Bank &bk = ch.banks[bi];

    // An injected refresh storm parks the bank and closes its row —
    // the access below then pays a full precharge/activate on top of
    // the storm, exactly like a demand access colliding with refresh.
    if (faultInj) {
        const Tick storm = faultInj->dramRefreshDelay(issue);
        if (storm) {
            bk.readyAt = std::max(bk.readyAt, issue) + storm;
            bk.openRow = static_cast<std::uint64_t>(-1);
        }
    }

    const bool row_hit = (bk.openRow == row);

    // CAS latency is a pipeline latency, not occupancy: row-buffer
    // hits stream at burst rate. A row miss keeps the bank busy for
    // the precharge + activate window; activates overlap across
    // banks.
    const Tick ready = std::max(issue, bk.readyAt);
    const Tick access_lat = row_hit ? tCas : (tRp + tRcd + tCas);
    const Tick bank_busy =
        row_hit ? bus_cycles : (tRp + tRcd + bus_cycles);
    Tick data_start = std::max(ready + access_lat, ch.busFree);
    ch.busFree = data_start + bus_cycles;
    bk.readyAt = ready + bank_busy;
    bk.openRow = row;

    busBusyCycles += static_cast<double>(bus_cycles);
    movedBytes += static_cast<double>(moved);
    if (row_hit)
        ++rowHits;
    else
        ++rowMisses;

    MemResult res;
    res.hit = false;
    if (kind == AccessKind::Write ||
        kind == AccessKind::WriteNoAlloc) {
        ++writes;
        // Posted: the writer does not wait for the array access.
        res.complete = issue + 1;
    } else {
        ++reads;
        res.complete = data_start + bus_cycles + tIo;
    }
    sim::checkMemCompletion(p.name.c_str(), issue, res.complete);
    return res;
}

} // namespace scusim::mem
