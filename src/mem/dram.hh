/**
 * @file
 * DRAM timing and activity model in the spirit of DRAMSim2: channel
 * data buses with peak-bandwidth-accurate occupancy, per-bank row
 * buffers with activate/precharge penalties, and per-event activity
 * counters the energy model converts into joules (Micron-style).
 */

#ifndef SCUSIM_MEM_DRAM_HH
#define SCUSIM_MEM_DRAM_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"
#include "sim/clock.hh"
#include "stats/stats.hh"

namespace scusim::sim
{
class FaultInjector;
}

namespace scusim::mem
{

/** Timing/organization parameters of a DRAM device. */
struct DramParams
{
    std::string name = "GDDR5";
    unsigned channels = 8;          ///< independent channels
    unsigned banksPerChannel = 16;  ///< banks per channel
    unsigned rowBytes = 2048;       ///< row-buffer size
    unsigned lineBytes = 128;       ///< transfer granule (L2 line)
    double peakBytesPerSec = 224e9; ///< aggregate peak bandwidth
    double tCasNs = 14.0;           ///< column access (row hit)
    double tRcdNs = 14.0;           ///< activate-to-column
    double tRpNs = 14.0;            ///< precharge
    double ioNs = 6.0;              ///< pin/PHY crossing per access

    /** GTX980-class 4 GB GDDR5 @ 224 GB/s (Table 3). */
    static DramParams gddr5();
    /** TX1-class 4 GB LPDDR4 @ 25.6 GB/s (Table 4). */
    static DramParams lpddr4();
};

/**
 * The DRAM model. Implements MemLevel; every access is a full line
 * transfer. Thread-unsafe by design — the simulation is single
 * threaded.
 */
class Dram : public MemLevel
{
  public:
    Dram(const DramParams &params, const sim::ClockDomain &clock,
         stats::StatGroup *parent);

    MemResult access(Tick issue, Addr addr, AccessKind kind,
                     unsigned bytes) override;

    const DramParams &params() const { return p; }

    /**
     * Attach the run's fault injector (non-owning, null detaches) so
     * DramRefreshStorm faults can park a bank and close its row.
     */
    void setFaultInjector(sim::FaultInjector *inj) { faultInj = inj; }

    /** Total bytes moved on the pins (reads + writes). */
    double bytesMoved() const { return movedBytes.value(); }

    /** Row-buffer hit rate over all accesses. */
    double
    rowHitRate() const
    {
        double total = rowHits.value() + rowMisses.value();
        return total > 0 ? rowHits.value() / total : 0;
    }

    /** Activity counts consumed by the energy model. */
    double numActivates() const { return rowMisses.value(); }
    double numReads() const { return reads.value(); }
    double numWrites() const { return writes.value(); }

  private:
    struct Bank
    {
        std::uint64_t openRow = static_cast<std::uint64_t>(-1);
        Tick readyAt = 0;
    };

    struct Channel
    {
        Tick busFree = 0;
        std::vector<Bank> banks;
    };

    /** Decompose an address into channel/bank/row coordinates. */
    void map(Addr addr, unsigned &channel, unsigned &bank,
             std::uint64_t &row) const;

    DramParams p;
    Tick tCas, tRcd, tRp, tIo;
    Tick busCyclesPerLine;
    std::vector<Channel> chans;

    stats::StatGroup grp;
    stats::Scalar reads, writes, rowHits, rowMisses;
    stats::Scalar busBusyCycles;
    stats::Scalar movedBytes;
    sim::FaultInjector *faultInj = nullptr;
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_DRAM_HH
