#include "mem/interconnect.hh"

#include "common/logging.hh"
#include "sim/check.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "trace/trace.hh"

namespace scusim::mem
{

Interconnect::Interconnect(const InterconnectParams &params,
                           unsigned devices,
                           sim::Simulation &simulation,
                           stats::StatGroup *parent)
    : p(params), numDevices(devices), sim(simulation),
      links(static_cast<std::size_t>(devices) * devices),
      delivered(devices), grp("icn", parent),
      messages(&grp, "messages", "boundary messages moved"),
      bytesMoved(&grp, "bytes_moved", "payload bytes moved")
{
    fatal_if(devices < 2,
             "an interconnect needs at least two devices");
    fatal_if(p.bytesPerTick == 0,
             "interconnect bytesPerTick must be nonzero");
    for (Link &l : links)
        l.q.setCapacity(p.queueCapacity);
    sim.addClocked(this, "icn");
}

Interconnect::Link &
Interconnect::link(DeviceId s, DeviceId d)
{
    return links[static_cast<std::size_t>(s) * numDevices + d];
}

const Interconnect::Link &
Interconnect::link(DeviceId s, DeviceId d) const
{
    return links[static_cast<std::size_t>(s) * numDevices + d];
}

bool
Interconnect::canSend(DeviceId src, DeviceId dst) const
{
    return !link(src, dst).q.full();
}

void
Interconnect::send(const IcnMessage &m, Tick now)
{
    panic_if(m.src >= numDevices || m.dst >= numDevices,
             "interconnect message %u -> %u out of range", m.src,
             m.dst);
    Link &l = link(m.src, m.dst);
    panic_if(l.q.full(),
             "send into full link %u -> %u (credit bug)", m.src,
             m.dst);

    const Tick depart = std::max(now, l.nextFree);
    const Tick ser = std::max<Tick>(
        1, (m.bytes + p.bytesPerTick - 1) / p.bytesPerTick);
    l.nextFree = depart + ser;

    Tick extra = 0;
    if (auto *inj = sim.faultInjector())
        extra = inj->linkExtraDelay(now);
    const Tick arrive = depart + ser + p.latency + extra;
    sim::checkMemCompletion("interconnect", now, arrive);

    l.q.push(InFlight{m, arrive});
    ++msgCount;
    byteCnt += m.bytes;
    ++messages;
    bytesMoved += m.bytes;
    TRACE_EVENT_SPAN(traceChan, trace::Category::Mem,
                     "msg d" + std::to_string(m.src) + "->d" +
                         std::to_string(m.dst),
                     now, arrive, m.bytes);
    notifyWake();
}

std::vector<IcnMessage>
Interconnect::drain(DeviceId dst)
{
    std::vector<IcnMessage> out;
    out.swap(delivered[dst]);
    return out;
}

void
Interconnect::tick(Tick now)
{
    for (DeviceId s = 0; s < numDevices; ++s) {
        for (DeviceId d = 0; d < numDevices; ++d) {
            Link &l = link(s, d);
            while (!l.q.empty() && l.q.front().arrive <= now) {
                delivered[d].push_back(l.q.front().msg);
                l.q.pop();
                noteProgress();
            }
        }
    }
}

bool
Interconnect::busy(Tick now) const
{
    for (const Link &l : links) {
        if (!l.q.empty() && l.q.front().arrive <= now)
            return true;
    }
    return false;
}

Tick
Interconnect::nextWakeTick() const
{
    Tick wake = tickNever;
    for (const Link &l : links) {
        if (!l.q.empty())
            wake = std::min(wake, l.q.front().arrive);
    }
    return wake;
}

void
Interconnect::attachTrace(trace::TraceSink &sink)
{
    traceChan = sink.channel("icn");
}

} // namespace scusim::mem
