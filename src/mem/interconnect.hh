/**
 * @file
 * Modeled inter-device interconnect for sharded multi-device
 * simulation. Each ordered device pair owns one directed link: a
 * bounded FIFO of in-flight messages plus a serialization cursor, so
 * a message pays max(1, bytes/bytesPerTick) ticks of link occupancy
 * before a fixed propagation latency. Back-pressure is explicit —
 * canSend() exposes FIFO fullness and senders must stall — and the
 * FIFOs participate in the SCUSIM_CHECK credit accounting like every
 * other queue in the simulator.
 */

#ifndef SCUSIM_MEM_INTERCONNECT_HH
#define SCUSIM_MEM_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "common/fifo.hh"
#include "common/types.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace scusim::trace
{
class TraceSink;
class TraceChannel;
} // namespace scusim::trace

namespace scusim::sim
{
class Simulation;
}

namespace scusim::mem
{

/** Timing knobs of the inter-device link model. */
struct InterconnectParams
{
    /** Propagation latency per message, in core ticks. */
    Tick latency = 32;
    /** Serialization bandwidth: payload bytes moved per tick. */
    unsigned bytesPerTick = 16;
    /** Per-directed-link in-flight message capacity. */
    std::size_t queueCapacity = 256;
};

/** One boundary message between devices: two payload words. */
struct IcnMessage
{
    DeviceId src = 0;
    DeviceId dst = 0;
    std::uint32_t a = 0; ///< payload word 0 (e.g. global node id)
    std::uint32_t b = 0; ///< payload word 1 (e.g. level / cost / bits)
    unsigned bytes = 8;  ///< wire size charged to the link
};

/**
 * All-to-all message network between the simulated devices. Clocked:
 * delivery happens in tick() once a message's arrival tick is due, so
 * messages ride the same event-driven/polling schedulers (and
 * watchdog) as every other component.
 */
class Interconnect : public sim::Clocked
{
  public:
    Interconnect(const InterconnectParams &params, unsigned devices,
                 sim::Simulation &simulation,
                 stats::StatGroup *parent);

    /** Whether the (src, dst) link can accept a message now. */
    bool canSend(DeviceId src, DeviceId dst) const;

    /**
     * Enqueue @p m at @p now. The caller must have observed
     * canSend(); pushing into a full link panics (credit bug).
     */
    void send(const IcnMessage &m, Tick now);

    /** Take every message delivered to @p dst so far, in order. */
    std::vector<IcnMessage> drain(DeviceId dst);

    void tick(Tick now) override;
    bool busy(Tick now) const override;
    Tick nextWakeTick() const override;

    std::uint64_t messageCount() const { return msgCount; }
    std::uint64_t byteCount() const { return byteCnt; }

    void attachTrace(trace::TraceSink &sink);

    const InterconnectParams &params() const { return p; }
    unsigned deviceCount() const { return numDevices; }

  private:
    struct InFlight
    {
        IcnMessage msg;
        Tick arrive = 0;
    };

    /** One directed link's state. */
    struct Link
    {
        BoundedFifo<InFlight> q;
        Tick nextFree = 0; ///< when the serializer is available
    };

    Link &link(DeviceId s, DeviceId d);
    const Link &link(DeviceId s, DeviceId d) const;

    InterconnectParams p;
    unsigned numDevices;
    sim::Simulation &sim;
    std::vector<Link> links; ///< numDevices^2, src-major
    std::vector<std::vector<IcnMessage>> delivered; ///< per dst

    std::uint64_t msgCount = 0;
    std::uint64_t byteCnt = 0;

    stats::StatGroup grp;
    stats::Scalar messages;
    stats::Scalar bytesMoved;

    trace::TraceChannel *traceChan = nullptr;
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_INTERCONNECT_HH
