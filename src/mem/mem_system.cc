#include "mem/mem_system.hh"

#include "sim/check.hh"
#include "sim/fault.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"

namespace scusim::mem
{

MemSystem::MemSystem(const MemSystemParams &params,
                     const sim::ClockDomain &clock,
                     stats::StatGroup *parent)
    : clk(clock), icnLat(params.icnLatency),
      grp("memsys", parent),
      dramModel(params.dram, clock, &grp),
      l2Cache(params.l2, &dramModel, &grp),
      requests(&grp, "requests", "transactions entering the L2 side")
{
}

void
MemSystem::attachTrace(trace::TraceSink &sink,
                       const std::string &prefix)
{
    traceChan = sink.channel(prefix + "memsys");
}

MemResult
MemSystem::access(Tick issue, Addr addr, AccessKind kind,
                  unsigned bytes)
{
    SCUSIM_PROFILE_SCOPE("MemSystem::access");
    ++requests;
    // An injected interconnect stall delays the request crossing; the
    // response then completes late enough to trip the tick budget.
    Tick icnExtra = 0;
    if (faultInj)
        icnExtra = faultInj->icnExtraDelay(issue);
    MemResult r =
        l2Cache.access(issue + icnLat + icnExtra, addr, kind, bytes);
    if (kind != AccessKind::Write)
        r.complete += icnLat; // response network crossing
    // Posted writes are excluded: nothing waits on their completion
    // tick, so a perturbed one could never be observed.
    if (faultInj && kind != AccessKind::Write)
        r.complete = faultInj->adjustMemCompletion(issue, r.complete);
    sim::checkMemCompletion("memsys", issue, r.complete);
    TRACE_EVENT_SPAN(traceChan, trace::Category::Mem,
                     kind == AccessKind::Write ||
                             kind == AccessKind::WriteNoAlloc
                         ? "write"
                         : "read",
                     issue, r.complete, bytes);
    return r;
}

} // namespace scusim::mem
