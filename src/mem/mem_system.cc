#include "mem/mem_system.hh"

#include "sim/check.hh"
#include "sim/fault.hh"

namespace scusim::mem
{

MemSystem::MemSystem(const MemSystemParams &params,
                     const sim::ClockDomain &clock,
                     stats::StatGroup *parent)
    : clk(clock), icnLat(params.icnLatency),
      grp("memsys", parent),
      dramModel(params.dram, clock, &grp),
      l2Cache(params.l2, &dramModel, &grp),
      requests(&grp, "requests", "transactions entering the L2 side")
{
}

MemResult
MemSystem::access(Tick issue, Addr addr, AccessKind kind,
                  unsigned bytes)
{
    ++requests;
    MemResult r = l2Cache.access(issue + icnLat, addr, kind, bytes);
    if (kind != AccessKind::Write)
        r.complete += icnLat; // response network crossing
    // Posted writes are excluded: nothing waits on their completion
    // tick, so a perturbed one could never be observed.
    if (faultInj && kind != AccessKind::Write)
        r.complete = faultInj->adjustMemCompletion(issue, r.complete);
    sim::checkMemCompletion("memsys", issue, r.complete);
    return r;
}

} // namespace scusim::mem
