/**
 * @file
 * The shared memory side of the GPU: interconnect + banked L2 + DRAM,
 * exposed to the SMs and the SCU as a single MemLevel (Figure 5 of
 * the paper: both SMs and SCU sit on the interconnection network in
 * front of the L2/memory-controller complex).
 */

#ifndef SCUSIM_MEM_MEM_SYSTEM_HH
#define SCUSIM_MEM_MEM_SYSTEM_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/request.hh"
#include "sim/clock.hh"
#include "stats/stats.hh"

namespace scusim::sim
{
class FaultInjector;
}

namespace scusim::trace
{
class TraceChannel;
class TraceSink;
} // namespace scusim::trace

namespace scusim::mem
{

/** Parameters of the shared memory system. */
struct MemSystemParams
{
    CacheParams l2;
    DramParams dram;
    Tick icnLatency = 8; ///< one-way interconnect latency, cycles
};

/**
 * Interconnect + L2 + DRAM. Also the keeper of system-level traffic
 * statistics used for Figure 13 (bandwidth utilization).
 */
class MemSystem : public MemLevel
{
  public:
    MemSystem(const MemSystemParams &params,
              const sim::ClockDomain &clock,
              stats::StatGroup *parent);

    MemResult access(Tick issue, Addr addr, AccessKind kind,
                     unsigned bytes) override;

    /**
     * Attach the run's fault injector (non-owning, null detaches).
     * Lets MemDelay / MemReorder faults perturb completion ticks,
     * IcnDelay faults stall the interconnect crossing, and
     * DramRefreshStorm faults park a DRAM bank (forwarded to Dram).
     */
    void
    setFaultInjector(sim::FaultInjector *inj)
    {
        faultInj = inj;
        dramModel.setFaultInjector(inj);
    }

    /** Bind this component's trace channel ("memsys",
     *  device-prefixed on multi-device systems). */
    void attachTrace(trace::TraceSink &sink,
                     const std::string &prefix = "");

    Cache &l2() { return l2Cache; }
    Dram &dram() { return dramModel; }
    const sim::ClockDomain &clock() const { return clk; }

    /** DRAM bytes moved so far (reads + writes, line granular). */
    double dramBytes() const { return dramModel.bytesMoved(); }

    /** Peak DRAM bandwidth in bytes/sec. */
    double
    peakBandwidth() const
    {
        return dramModel.params().peakBytesPerSec;
    }

    /**
     * Fraction of peak bandwidth consumed over @p elapsed cycles.
     * This is the Figure 13 metric.
     */
    double
    bandwidthUtilization(Tick elapsed) const
    {
        double secs = clk.toSeconds(elapsed);
        if (secs <= 0)
            return 0;
        return dramBytes() / (peakBandwidth() * secs);
    }

  private:
    sim::ClockDomain clk;
    Tick icnLat;
    stats::StatGroup grp;
    Dram dramModel;
    Cache l2Cache;
    stats::Scalar requests;
    sim::FaultInjector *faultInj = nullptr;
    trace::TraceChannel *traceChan = nullptr;
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_MEM_SYSTEM_HH
