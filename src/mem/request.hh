/**
 * @file
 * Basic memory-access vocabulary shared by the GPU, SCU and caches.
 */

#ifndef SCUSIM_MEM_REQUEST_HH
#define SCUSIM_MEM_REQUEST_HH

#include "common/bits.hh"
#include "common/types.hh"

namespace scusim::mem
{

/** Kind of memory access, as seen by a cache level. */
enum class AccessKind
{
    Read,        ///< demand load
    Write,       ///< posted store (write-validate allocate)
    Atomic,      ///< read-modify-write at the L2, as on NVIDIA GPUs
    ReadNoAlloc, ///< streaming load: hits served, misses bypass
    WriteNoAlloc ///< streaming store: written through, no allocate
};

/** Outcome of a timed access at some level of the hierarchy. */
struct MemResult
{
    Tick complete = 0;  ///< absolute tick at which data is available
    bool hit = false;   ///< serviced without going to the next level
};

/**
 * An abstract level of the memory hierarchy. Caches stack on top of
 * each other and, at the bottom, on DRAM, through this interface.
 *
 * Timing follows a resource-reservation model: the access is fully
 * accounted at issue time, reserving bank/bus occupancy and returning
 * the absolute completion tick. Queueing delay appears naturally as
 * completion ticks pushed into the future.
 */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Perform a timed access.
     *
     * @param issue tick the request arrives at this level
     * @param addr byte address (need not be line aligned)
     * @param kind read / write / atomic
     * @param bytes bytes touched (clamped to one line by callers)
     * @return completion tick and hit/miss outcome
     */
    virtual MemResult access(Tick issue, Addr addr, AccessKind kind,
                             unsigned bytes) = 0;
};

} // namespace scusim::mem

#endif // SCUSIM_MEM_REQUEST_HH
