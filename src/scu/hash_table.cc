#include "scu/hash_table.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/check.hh"

namespace scusim::scu
{

HashTableBase::HashTableBase(const HashConfig &config,
                             mem::AddressSpace &as,
                             const std::string &name)
    : cfg(config), sets(config.numSets()),
      base(as.alloc(name, config.sizeBytes))
{
    panic_if(sets == 0, "hash table '%s' has zero sets",
             name.c_str());
}

UniqueFilterTable::UniqueFilterTable(const HashConfig &cfg,
                                     mem::AddressSpace &as,
                                     const std::string &name)
    : HashTableBase(cfg, as, name),
      entries(sets * cfg.ways, emptyKey)
{
}

bool
UniqueFilterTable::probe(std::uint32_t key, ProbeTraffic &traffic)
{
    const std::uint64_t s = setOf(key);
    traffic.setAddr = setAddr(s);
    auto *way0 = &entries[s * cfg.ways];

    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (way0[w] == key) {
            // Duplicate found: discard the element, no update.
            traffic.wrote = false;
            return false;
        }
    }
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (way0[w] == emptyKey) {
            way0[w] = key;
            traffic.wrote = true;
            return true;
        }
    }
    // Collision: overwrite a victim. Future duplicates of the
    // evicted element become false negatives — accepted trade-off.
    way0[victimWay(key)] = key;
    traffic.wrote = true;
    return true;
}

void
UniqueFilterTable::reset()
{
    std::fill(entries.begin(), entries.end(), emptyKey);
}

BestCostFilterTable::BestCostFilterTable(const HashConfig &cfg,
                                         mem::AddressSpace &as,
                                         const std::string &name)
    : HashTableBase(cfg, as, name), entries(sets * cfg.ways)
{
}

bool
BestCostFilterTable::probe(std::uint32_t key, std::uint32_t cost,
                           ProbeTraffic &traffic)
{
    const std::uint64_t s = setOf(key);
    traffic.setAddr = setAddr(s);
    auto *way0 = &entries[s * cfg.ways];

    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (way0[w].key == key) {
            if (cost < way0[w].cost) {
                way0[w].cost = cost;
                traffic.wrote = true;
                return true;
            }
            traffic.wrote = false;
            return false; // same element, no better cost
        }
    }
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (way0[w].key == static_cast<std::uint32_t>(-1)) {
            way0[w] = {key, cost};
            traffic.wrote = true;
            return true;
        }
    }
    way0[victimWay(key)] = {key, cost};
    traffic.wrote = true;
    return true;
}

void
BestCostFilterTable::reset()
{
    std::fill(entries.begin(), entries.end(), Entry{});
}

GroupingTable::GroupingTable(const HashConfig &cfg,
                             unsigned group_size,
                             mem::AddressSpace &as,
                             const std::string &name)
    : HashTableBase(cfg, as, name), grpSize(group_size),
      entries(sets * cfg.ways)
{
    for (auto &g : entries)
        g.elems.reserve(grpSize);
}

void
GroupingTable::probe(std::uint64_t line_key, std::uint32_t elem_idx,
                     std::vector<std::uint32_t> &emit_order,
                     ProbeTraffic &traffic)
{
    const std::uint64_t s = setOf(line_key);
    traffic.setAddr = setAddr(s);
    traffic.wrote = true; // grouping always updates its entry
    auto *way0 = &entries[s * cfg.ways];

    for (unsigned w = 0; w < cfg.ways; ++w) {
        Group &g = way0[w];
        if (g.lineKey == line_key) {
            if (g.elems.size() >= grpSize) {
                // Full group: emit it and restart with this element.
                emit_order.insert(emit_order.end(), g.elems.begin(),
                                  g.elems.end());
                g.elems.clear();
            }
            g.elems.push_back(elem_idx);
            sim::checkOccupancy("grouping-table group",
                                g.elems.size(), grpSize);
            return;
        }
    }
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Group &g = way0[w];
        if (g.elems.empty()) {
            g.lineKey = line_key;
            g.elems.push_back(elem_idx);
            return;
        }
    }
    // Evict a victim group: its members are written out together.
    Group &victim = way0[victimWay(line_key)];
    emit_order.insert(emit_order.end(), victim.elems.begin(),
                      victim.elems.end());
    victim.elems.clear();
    victim.lineKey = line_key;
    victim.elems.push_back(elem_idx);
    sim::checkOccupancy("grouping-table group", victim.elems.size(),
                        grpSize);
}

void
GroupingTable::flush(std::vector<std::uint32_t> &emit_order)
{
    for (auto &g : entries) {
        if (!g.elems.empty()) {
            emit_order.insert(emit_order.end(), g.elems.begin(),
                              g.elems.end());
            g.elems.clear();
        }
        g.lineKey = static_cast<std::uint64_t>(-1);
    }
}

void
GroupingTable::reset()
{
    for (auto &g : entries) {
        g.lineKey = static_cast<std::uint64_t>(-1);
        g.elems.clear();
    }
}

} // namespace scusim::scu
