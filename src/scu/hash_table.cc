#include "scu/hash_table.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "sim/check.hh"

namespace scusim::scu
{

namespace
{

/** Even/odd parity bit of a 64-bit payload. */
std::uint8_t
parityOf(std::uint64_t v)
{
    return static_cast<std::uint8_t>(std::popcount(v) & 1);
}

/**
 * Verify one way's stored parity against its actual contents. Models
 * the ECC/parity check a hardware hash table performs on each probe;
 * a mismatch means the entry changed outside the probe path (a
 * fault).
 */
void
checkEntryParity([[maybe_unused]] const char *what,
                 [[maybe_unused]] unsigned way, std::uint8_t shadow,
                 std::uint64_t payload)
{
    sim_check(shadow == parityOf(payload),
              "%s parity mismatch in way %u: entry was corrupted "
              "outside the probe path",
              what, way);
}

} // namespace

HashTableBase::HashTableBase(const HashConfig &config,
                             mem::AddressSpace &as,
                             const std::string &name)
    : cfg(config), sets(config.numSets()),
      base(as.alloc(name, config.sizeBytes)), occ(sets, 0),
      waysMask(maskLow(config.ways))
{
    panic_if(sets == 0, "hash table '%s' has zero sets",
             name.c_str());
    panic_if(cfg.ways > 64,
             "hash table '%s' has %u ways; occupancy words hold 64",
             name.c_str(), cfg.ways);
}

UniqueFilterTable::UniqueFilterTable(const HashConfig &cfg,
                                     mem::AddressSpace &as,
                                     const std::string &name)
    : HashTableBase(cfg, as, name),
      entries(sets * cfg.ways, emptyKey)
{
    if constexpr (sim::checksEnabled)
        parity.assign(entries.size(), parityOf(emptyKey));
}

bool
UniqueFilterTable::probe(std::uint32_t key, ProbeTraffic &traffic)
{
    const std::uint64_t s = setOf(key);
    traffic.setAddr = setAddr(s);
    auto *way0 = &entries[s * cfg.ways];

    if constexpr (sim::checksEnabled) {
        for (unsigned w = 0; w < cfg.ways; ++w) {
            checkEntryParity("unique filter table", w,
                             parity[s * cfg.ways + w], way0[w]);
        }
    }

    // Match only the occupied ways (ctz walks them in the same
    // ascending order the full-width scan used to).
    for (std::uint64_t m = occ[s]; m; m &= m - 1) {
        if (way0[ctz64(m)] == key) {
            // Duplicate found: discard the element, no update.
            traffic.wrote = false;
            return false;
        }
    }
    const std::uint64_t empties = ~occ[s] & waysMask;
    const unsigned victim =
        empties ? ctz64(empties) : victimWay(key);
    // Empty way, or a collision: overwrite a victim. Future
    // duplicates of an evicted element become false negatives —
    // accepted trade-off.
    way0[victim] = key;
    markOccupied(s, victim);
    if constexpr (sim::checksEnabled)
        parity[s * cfg.ways + victim] = parityOf(key);
    traffic.wrote = true;
    return true;
}

void
UniqueFilterTable::corruptForKey(std::uint32_t key, Rng &rng)
{
    const std::uint64_t s = setOf(key);
    const std::uint64_t idx = s * cfg.ways + rng.below(cfg.ways);
    entries[idx] ^= std::uint32_t{1} << rng.below(32);
}

void
UniqueFilterTable::reset()
{
    std::fill(entries.begin(), entries.end(), emptyKey);
    clearOccupancy();
    if constexpr (sim::checksEnabled)
        parity.assign(entries.size(), parityOf(emptyKey));
}

namespace
{

/** 64-bit payload of a best-cost entry for parity computation. */
std::uint64_t
entryPayload(std::uint32_t key, std::uint32_t cost)
{
    return (static_cast<std::uint64_t>(key) << 32) | cost;
}

} // namespace

BestCostFilterTable::BestCostFilterTable(const HashConfig &cfg,
                                         mem::AddressSpace &as,
                                         const std::string &name)
    : HashTableBase(cfg, as, name), entries(sets * cfg.ways)
{
    if constexpr (sim::checksEnabled) {
        parity.assign(entries.size(),
                      parityOf(entryPayload(Entry{}.key,
                                            Entry{}.cost)));
    }
}

bool
BestCostFilterTable::probe(std::uint32_t key, std::uint32_t cost,
                           ProbeTraffic &traffic)
{
    const std::uint64_t s = setOf(key);
    traffic.setAddr = setAddr(s);
    auto *way0 = &entries[s * cfg.ways];

    if constexpr (sim::checksEnabled) {
        for (unsigned w = 0; w < cfg.ways; ++w) {
            checkEntryParity("best-cost filter table", w,
                             parity[s * cfg.ways + w],
                             entryPayload(way0[w].key,
                                          way0[w].cost));
        }
    }

    auto record = [&](unsigned w) {
        if constexpr (sim::checksEnabled) {
            parity[s * cfg.ways + w] =
                parityOf(entryPayload(way0[w].key, way0[w].cost));
        }
    };

    for (std::uint64_t m = occ[s]; m; m &= m - 1) {
        const unsigned w = ctz64(m);
        if (way0[w].key == key) {
            if (cost < way0[w].cost) {
                way0[w].cost = cost;
                record(w);
                traffic.wrote = true;
                return true;
            }
            traffic.wrote = false;
            return false; // same element, no better cost
        }
    }
    const std::uint64_t empties = ~occ[s] & waysMask;
    const unsigned victim =
        empties ? ctz64(empties) : victimWay(key);
    way0[victim] = {key, cost};
    markOccupied(s, victim);
    record(victim);
    traffic.wrote = true;
    return true;
}

void
BestCostFilterTable::corruptForKey(std::uint32_t key, Rng &rng)
{
    const std::uint64_t s = setOf(key);
    Entry &e = entries[s * cfg.ways + rng.below(cfg.ways)];
    const std::uint64_t bit = rng.below(64);
    if (bit < 32)
        e.cost ^= std::uint32_t{1} << bit;
    else
        e.key ^= std::uint32_t{1} << (bit - 32);
}

void
BestCostFilterTable::reset()
{
    std::fill(entries.begin(), entries.end(), Entry{});
    clearOccupancy();
    if constexpr (sim::checksEnabled) {
        parity.assign(entries.size(),
                      parityOf(entryPayload(Entry{}.key,
                                            Entry{}.cost)));
    }
}

GroupingTable::GroupingTable(const HashConfig &cfg,
                             unsigned group_size,
                             mem::AddressSpace &as,
                             const std::string &name)
    : HashTableBase(cfg, as, name), grpSize(group_size),
      entries(sets * cfg.ways)
{
    for (auto &g : entries)
        g.elems.reserve(grpSize);
}

void
GroupingTable::probe(std::uint64_t line_key, std::uint32_t elem_idx,
                     std::vector<std::uint32_t> &emit_order,
                     ProbeTraffic &traffic)
{
    const std::uint64_t s = setOf(line_key);
    traffic.setAddr = setAddr(s);
    traffic.wrote = true; // grouping always updates its entry
    auto *way0 = &entries[s * cfg.ways];

    for (std::uint64_t m = occ[s]; m; m &= m - 1) {
        Group &g = way0[ctz64(m)];
        if (g.lineKey == line_key) {
            if (g.elems.size() >= grpSize) {
                // Full group: emit it and restart with this element.
                emit_order.insert(emit_order.end(), g.elems.begin(),
                                  g.elems.end());
                g.elems.clear();
            }
            g.elems.push_back(elem_idx);
            sim::checkOccupancy("grouping-table group",
                                g.elems.size(), grpSize);
            return;
        }
    }
    const std::uint64_t empties = ~occ[s] & waysMask;
    if (empties) {
        const unsigned w = ctz64(empties);
        Group &g = way0[w];
        g.lineKey = line_key;
        g.elems.push_back(elem_idx);
        markOccupied(s, w);
        return;
    }
    // Evict a victim group: its members are written out together.
    // The way is immediately reused, so its occupancy bit stands.
    Group &victim = way0[victimWay(line_key)];
    emit_order.insert(emit_order.end(), victim.elems.begin(),
                      victim.elems.end());
    victim.elems.clear();
    victim.lineKey = line_key;
    victim.elems.push_back(elem_idx);
    sim::checkOccupancy("grouping-table group", victim.elems.size(),
                        grpSize);
}

void
GroupingTable::flush(std::vector<std::uint32_t> &emit_order)
{
    for (auto &g : entries) {
        if (!g.elems.empty()) {
            emit_order.insert(emit_order.end(), g.elems.begin(),
                              g.elems.end());
            g.elems.clear();
        }
        g.lineKey = static_cast<std::uint64_t>(-1);
    }
    clearOccupancy();
}

void
GroupingTable::reset()
{
    for (auto &g : entries) {
        g.lineKey = static_cast<std::uint64_t>(-1);
        g.elems.clear();
    }
    clearOccupancy();
}

} // namespace scusim::scu
