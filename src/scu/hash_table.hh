/**
 * @file
 * The SCU's reconfigurable in-memory hash tables (Section 4). The
 * tables live in simulated device memory (cached by the L2 — "using
 * existing memory does not require any additional hardware") and
 * implement the paper's three configurations:
 *
 *  - unique-element filtering (BFS): 4 B entries holding element ids;
 *    a matching probe marks the element as a duplicate, a collision
 *    overwrites (so false negatives are possible but harmless);
 *  - unique-best-cost filtering (SSSP): 8 B entries holding (id,
 *    cost); a probe with a better cost keeps the element and updates
 *    the stored cost;
 *  - grouping (SSSP): 32 B entries accumulating up to 8 elements
 *    whose destination nodes share one cache line; eviction emits the
 *    group so its elements land contiguously in the compacted array.
 */

#ifndef SCUSIM_SCU_HASH_TABLE_HH
#define SCUSIM_SCU_HASH_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/address_space.hh"
#include "scu/scu_config.hh"
#include "sim/check.hh"

namespace scusim::scu
{

/** Memory traffic produced by one probe, for the timing model. */
struct ProbeTraffic
{
    Addr setAddr = 0;   ///< line-granular address of the probed set
    bool wrote = false; ///< whether the probe updated the entry
};

/** Shared set/way bookkeeping for the three table flavors. */
class HashTableBase
{
  public:
    HashTableBase(const HashConfig &cfg, mem::AddressSpace &as,
                  const std::string &name);
    virtual ~HashTableBase() = default;

    std::uint64_t numSets() const { return sets; }
    unsigned numWays() const { return cfg.ways; }
    Addr baseAddr() const { return base; }
    const HashConfig &config() const { return cfg; }

    /** Device address of set @p s. */
    Addr
    setAddr(std::uint64_t s) const
    {
        sim_check(s < sets, "hash set index %llu out of %llu sets",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(sets));
        return base + s * static_cast<std::uint64_t>(cfg.ways) *
                          cfg.entryBytes;
    }

    /** Set index of key @p k. */
    std::uint64_t
    setOf(std::uint64_t k) const
    {
        return mixBits(k) % sets;
    }

    /** Victim way when the set is full (cheap hardware policy). */
    unsigned
    victimWay(std::uint64_t k) const
    {
        return static_cast<unsigned>((mixBits(k) >> 32) % cfg.ways);
    }

    /** Clear all entries (start of a new compaction pass). */
    virtual void reset() = 0;

  protected:
    HashConfig cfg;
    std::uint64_t sets;
    Addr base;

    /**
     * Per-set way-occupancy words: bit w of occ[s] is set while way w
     * of set s holds a live entry. Match loops iterate set bits via
     * ctz (ascending way order — the same order the old full-width
     * scans visited), and the first-empty-way choice is
     * ctz(~occ & waysMask); both skip the per-way compare against the
     * empty sentinel entirely. ways <= 64 is enforced at
     * construction.
     */
    std::vector<std::uint64_t> occ;
    /** maskLow(cfg.ways): the valid way bits of one occupancy word. */
    std::uint64_t waysMask = 0;

    void markOccupied(std::uint64_t s, unsigned w)
    {
        occ[s] |= std::uint64_t{1} << w;
    }
    void clearOccupancy() { std::fill(occ.begin(), occ.end(), 0); }
};

/** Unique-element filter (BFS configuration, Section 4.2). */
class UniqueFilterTable : public HashTableBase
{
  public:
    UniqueFilterTable(const HashConfig &cfg, mem::AddressSpace &as,
                      const std::string &name = "scu_hash_bfs");

    /**
     * Probe with element id @p key.
     * @return true if the element is to be kept (first sighting),
     *         false if it is a detected duplicate.
     */
    bool probe(std::uint32_t key, ProbeTraffic &traffic);

    /**
     * Fault-injection hook: flip one random bit in a random way of
     * the set @p key maps to, without updating the shadow parity.
     * The next probe touching that set detects the mismatch (checked
     * builds; in unchecked builds the corruption goes unnoticed,
     * which is exactly the silent-corruption scenario the parity
     * models).
     */
    void corruptForKey(std::uint32_t key, Rng &rng);

    void reset() override;

  private:
    static constexpr std::uint32_t emptyKey =
        static_cast<std::uint32_t>(-1);
    std::vector<std::uint32_t> entries; ///< sets x ways ids
    /** Shadow per-entry parity bit (checked builds only). */
    std::vector<std::uint8_t> parity;
};

/** Unique-best-cost filter (SSSP configuration, Section 4.2). */
class BestCostFilterTable : public HashTableBase
{
  public:
    BestCostFilterTable(const HashConfig &cfg, mem::AddressSpace &as,
                        const std::string &name = "scu_hash_sssp");

    /**
     * Probe with element id @p key carrying path cost @p cost.
     * @return true to keep (first sighting or better cost).
     */
    bool probe(std::uint32_t key, std::uint32_t cost,
               ProbeTraffic &traffic);

    /** Fault-injection hook; see UniqueFilterTable::corruptForKey. */
    void corruptForKey(std::uint32_t key, Rng &rng);

    void reset() override;

  private:
    struct Entry
    {
        std::uint32_t key = static_cast<std::uint32_t>(-1);
        std::uint32_t cost = 0;
    };
    std::vector<Entry> entries;
    /** Shadow per-entry parity bit (checked builds only). */
    std::vector<std::uint8_t> parity;
};

/** Grouping table (Section 4.3). */
class GroupingTable : public HashTableBase
{
  public:
    GroupingTable(const HashConfig &cfg, unsigned group_size,
                  mem::AddressSpace &as,
                  const std::string &name = "scu_hash_group");

    /**
     * Probe with the destination memory-block id @p line_key for the
     * input element at position @p elem_idx. Evicted groups append
     * their element indices to @p emit_order (they will be stored
     * together in the compacted array).
     */
    void probe(std::uint64_t line_key, std::uint32_t elem_idx,
               std::vector<std::uint32_t> &emit_order,
               ProbeTraffic &traffic);

    /** Emit all resident groups (end of the operation). */
    void flush(std::vector<std::uint32_t> &emit_order);

    unsigned groupSize() const { return grpSize; }

    void reset() override;

  private:
    struct Group
    {
        std::uint64_t lineKey = static_cast<std::uint64_t>(-1);
        std::vector<std::uint32_t> elems;
    };
    unsigned grpSize;
    std::vector<Group> entries;
};

} // namespace scusim::scu

#endif // SCUSIM_SCU_HASH_TABLE_HH
