#include "scu/pipeline.hh"

#include <algorithm>
#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/check.hh"

namespace scusim::scu
{

namespace
{
constexpr Addr noLine = static_cast<Addr>(-1);
} // namespace

ScuPipeline::ScuPipeline(const ScuParams &params, mem::MemSystem &m,
                         Tick start)
    : p(params), mem(m), startTick(start + params.opSetupCycles),
      txnIssue(startTick), memReady(startTick),
      lastGatherLine(noLine), lastWriteLine(noLine),
      lastHashLine(noLine)
{
    lastLine.fill(noLine);
}

std::size_t
ScuPipeline::inflightLimit() const
{
    // The Data Fetch FIFO (38 KB, Table 1) tracks outstanding read
    // requests at 4 B per descriptor: the unit tolerates full memory
    // latency with thousands of requests in flight. (The coalescing
    // unit's 32-entry figure is its merge CAM, modeled by the
    // line-merge checks.) The L2 MSHRs bound realized parallelism.
    return static_cast<std::size_t>(p.fifoRequestBytes / 4);
}

Tick
ScuPipeline::portTick(std::uint64_t issued) const
{
    // Each port sustains pipelineWidth transactions per cycle, so a
    // width-4 SCU can keep four elements per cycle moving even when
    // every element needs its own hash probe.
    return startTick + issued / std::max(1u, p.pipelineWidth);
}

void
ScuPipeline::issueRead(Addr line_addr, unsigned bytes)
{
    Tick t = std::max(txnIssue, portTick(readsIssued));
    ++readsIssued;
    while (!inflight.empty() && inflight.top() <= t)
        inflight.pop();
    if (inflight.size() >= inflightLimit()) {
        t = std::max(t, inflight.top());
        inflight.pop();
    }
    // Streaming data has no reuse: bypass L2 allocation so the
    // in-memory hash tables stay cache resident.
    auto r = mem.access(t, line_addr, mem::AccessKind::ReadNoAlloc,
                        bytes);
    inflight.push(r.complete);
    traffic.maxInflight =
        std::max<std::uint64_t>(traffic.maxInflight, inflight.size());
    sim::checkOccupancy("scu inflight window", inflight.size(),
                        inflightLimit());
    memReady = std::max(memReady, r.complete);
    txnIssue = t;
    ++traffic.readTxns;
}

void
ScuPipeline::seqRead(Stream s, Addr addr, unsigned bytes)
{
    const unsigned line_bytes = mem.l2().params().lineBytes;
    Addr line = alignDown(addr, line_bytes);
    Addr end_line = alignDown(addr + bytes - 1, line_bytes);
    auto &last = lastLine[static_cast<unsigned>(s)];
    for (Addr l = line; l <= end_line; l += line_bytes) {
        if (l != last) {
            issueRead(l, line_bytes);
            last = l;
        }
    }
}

void
ScuPipeline::gatherRead(Addr addr, unsigned bytes)
{
    // Gathers fetch 32 B sectors: sparse accesses must not pay for
    // (or occupy the bus with) a full line of mostly-unused data.
    constexpr unsigned sector = 32;
    Addr first = alignDown(addr, sector);
    Addr last_sector = alignDown(addr + bytes - 1, sector);
    for (Addr sctr = first; sctr <= last_sector; sctr += sector) {
        if (sctr != lastGatherLine) {
            issueRead(sctr, sector);
            lastGatherLine = sctr;
        }
    }
}

void
ScuPipeline::seqWrite(Addr addr, unsigned bytes)
{
    const unsigned line_bytes = mem.l2().params().lineBytes;
    Addr line = alignDown(addr, line_bytes);
    Addr end_line = alignDown(addr + bytes - 1, line_bytes);
    for (Addr l = line; l <= end_line; l += line_bytes) {
        if (l != lastWriteLine) {
            // Posted write through the Data Store's own port; it
            // reserves memory occupancy but nothing waits on it.
            // Allocating write: the compacted output is consumed by
            // the GPU right after the operation, so it flows through
            // the (shared) L2.
            Tick t = portTick(storesIssued);
            ++storesIssued;
            mem.access(t, l, mem::AccessKind::Write, line_bytes);
            ++traffic.writeTxns;
            lastWriteLine = l;
        }
    }
}

void
ScuPipeline::hashAccess(Addr addr, bool write, unsigned read_bytes)
{
    // One probe event per element: the filtering/grouping unit reads
    // the set and, if needed, updates the entry in the same pipelined
    // probe, so the port advances once regardless. Transfers are
    // sector granular (the probed set, not a whole line).
    const unsigned line_bytes = mem.l2().params().lineBytes;
    Addr line = alignDown(addr, line_bytes);
    Tick t = portTick(hashIssued);
    ++hashIssued;
    if (line != lastHashLine) {
        auto r = mem.access(t, line, mem::AccessKind::Read,
                            read_bytes);
        memReady = std::max(memReady, r.complete);
        ++traffic.hashReadTxns;
        lastHashLine = line;
    }
    if (write) {
        mem.access(t, line, mem::AccessKind::Write, 32);
        ++traffic.hashWriteTxns;
    }
}

Tick
ScuPipeline::finish()
{
    const Tick throughput =
        startTick + divCeil(traffic.elements,
                            std::max(1u, p.pipelineWidth));
    const Tick ports =
        std::max({portTick(readsIssued), portTick(storesIssued),
                  portTick(hashIssued)});
    if (std::getenv("SCUSIM_TRACE_OPS") && traffic.elements > 4096) {
        inform("scu-op elems=%llu thr=%llu memReady=%llu "
               "ports=%llu (r=%llu s=%llu h=%llu) start=%llu",
               (unsigned long long)traffic.elements,
               (unsigned long long)(throughput - startTick),
               (unsigned long long)(memReady - startTick),
               (unsigned long long)(ports - startTick),
               (unsigned long long)readsIssued,
               (unsigned long long)storesIssued,
               (unsigned long long)hashIssued,
               (unsigned long long)startTick);
    }
    return std::max({throughput, memReady, txnIssue, ports}) +
           p.opDrainCycles;
}

} // namespace scusim::scu
