/**
 * @file
 * Timing model of one SCU operation in flight. Mirrors the hardware
 * pipeline of Figures 7/8: the Address Generator produces element
 * slots at the configured pipeline width; the Data Fetch unit issues
 * reads through a read Coalescing Unit (sequential-stream merging,
 * bounded in-flight window); the Data Store write-combines the
 * sequential output; the Filtering/Grouping unit issues its own hash
 * probes through a second coalescing unit.
 *
 * The model is throughput-oriented: thanks to the deep request FIFO
 * (38 KB, Table 1) the unit is limited by pipeline width, by the
 * in-flight request window and by memory bandwidth — not by single
 * access latency. The operation's completion tick is the max of the
 * compute-throughput time and the last memory completion, plus a
 * drain constant.
 */

#ifndef SCUSIM_SCU_PIPELINE_HH
#define SCUSIM_SCU_PIPELINE_HH

#include <array>
#include <queue>

#include "common/types.hh"
#include "mem/mem_system.hh"
#include "scu/scu_config.hh"

namespace scusim::scu
{

/** Identifiers of the sequential input streams an operation reads. */
enum class Stream : unsigned
{
    Data = 0,    ///< sparse/source data vector
    Bitmask = 1, ///< valid-flag vector
    Indexes = 2, ///< gather index vector
    Count = 3,   ///< replication/expansion count vector
    Order = 4,   ///< grouping order vector
    NumStreams = 5
};

/** Traffic counters of one operation. */
struct PipelineTraffic
{
    std::uint64_t readTxns = 0;
    std::uint64_t writeTxns = 0;
    std::uint64_t hashReadTxns = 0;
    std::uint64_t hashWriteTxns = 0;
    std::uint64_t elements = 0;
    std::uint64_t maxInflight = 0; ///< in-flight read window peak
};

class ScuPipeline
{
  public:
    ScuPipeline(const ScuParams &params, mem::MemSystem &mem,
                Tick start);

    /** Account @p n element slots through the pipeline. */
    void
    elements(std::uint64_t n = 1)
    {
        traffic.elements += n;
    }

    /**
     * Read @p bytes at @p addr from sequential stream @p s; only a
     * line change issues a transaction (the read coalescing unit
     * merges the rest).
     */
    void seqRead(Stream s, Addr addr, unsigned bytes = 4);

    /**
     * Random-access read (gather). Consecutive addresses within the
     * merge window still coalesce via the line check.
     */
    void gatherRead(Addr addr, unsigned bytes = 4);

    /** Write-combined store to the (sequential) output array. */
    void seqWrite(Addr addr, unsigned bytes = 4);

    /**
     * One filtering/grouping hash probe at set address @p addr,
     * reading @p read_bytes (the probed set) and optionally writing
     * the updated entry (one 32 B sector).
     */
    void hashAccess(Addr addr, bool write, unsigned read_bytes = 64);

    /** Complete the operation; returns the end tick. */
    Tick finish();

    const PipelineTraffic &counters() const { return traffic; }

  private:
    /** Issue one read transaction respecting the in-flight window. */
    void issueRead(Addr line_addr, unsigned bytes);

    /** Issue tick of the n-th transaction of a width-scaled port. */
    Tick portTick(std::uint64_t issued) const;

    /** Outstanding-read budget from the request FIFO capacity. */
    std::size_t inflightLimit() const;

    const ScuParams &p;
    mem::MemSystem &mem;
    Tick startTick;

    /** Last read-issue tick (for in-flight window accounting). */
    Tick txnIssue;
    /** Per-port issued-transaction counters. */
    std::uint64_t readsIssued = 0;
    std::uint64_t storesIssued = 0;
    std::uint64_t hashIssued = 0;
    /** Latest read-data completion seen. */
    Tick memReady;
    /** Per-stream last line, for sequential merge. */
    std::array<Addr, static_cast<unsigned>(Stream::NumStreams)>
        lastLine;
    Addr lastGatherLine;
    Addr lastWriteLine;
    Addr lastHashLine;

    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        inflight;

    PipelineTraffic traffic;
};

} // namespace scusim::scu

#endif // SCUSIM_SCU_PIPELINE_HH
