#include "scu/scu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"

namespace scusim::scu
{

namespace
{

/** Scratch metadata regions (filter bitmask / grouping order). */
constexpr std::uint64_t keepRegionBytes = 32ULL << 20;
constexpr std::uint64_t orderRegionBytes = 128ULL << 20;

bool
compare(std::uint32_t v, CompareOp op, std::uint32_t ref)
{
    switch (op) {
      case CompareOp::Eq:
        return v == ref;
      case CompareOp::Ne:
        return v != ref;
      case CompareOp::Lt:
        return v < ref;
      case CompareOp::Le:
        return v <= ref;
      case CompareOp::Gt:
        return v > ref;
      case CompareOp::Ge:
        return v >= ref;
    }
    panic("bad CompareOp");
}

} // namespace

Scu::Scu(const ScuParams &params, mem::MemSystem &mem,
         sim::Simulation &simulation, mem::AddressSpace &as,
         stats::StatGroup *parent)
    : p(params), memSys(mem), sim(simulation),
      uniqueTable(std::make_unique<UniqueFilterTable>(
          p.filterBfsHash, as)),
      uniqueTable2(std::make_unique<UniqueFilterTable>(
          p.filterBfsHash, as, "scu_hash_bfs2")),
      costTable(std::make_unique<BestCostFilterTable>(
          p.filterSsspHash, as)),
      groupTable(std::make_unique<GroupingTable>(
          p.groupHash, p.groupSize, as)),
      grp(p.name, parent),
      opsExecuted(&grp, "ops", "SCU operations executed"),
      elementsProcessed(&grp, "elements", "pipeline element slots"),
      duplicatesFiltered(&grp, "filtered",
                         "duplicates removed by filtering"),
      busyCycles(&grp, "busy_cycles", "cycles the SCU was active")
{
    metaKeepBase = as.alloc("scu_meta_keep", keepRegionBytes);
    metaOrderBase = as.alloc("scu_meta_order", orderRegionBytes);
}

void
Scu::resetFilterTables()
{
    uniqueTable->reset();
    uniqueTable2->reset();
    costTable->reset();
    groupTable->reset();
}

void
Scu::attachTrace(trace::TraceSink &sink, const std::string &prefix)
{
    traceChan = sink.channel(prefix + "scu");
}

void
Scu::sealOp(const char *op, ScuPipeline &pipe, ScuOpStats &st)
{
    SCUSIM_PROFILE_SCOPE("Scu::op");
    st.end = pipe.finish();
    sim.advanceTo(st.end);

    const auto &t = pipe.counters();
    st.readTxns = t.readTxns;
    st.writeTxns = t.writeTxns;

    TRACE_EVENT_SPAN(traceChan, trace::Category::ScuOp, op, st.start,
                     st.end, t.elements);
    TRACE_EVENT_COUNTER(traceChan, trace::Category::Fifo,
                        "inflight_reads_peak", st.end, t.maxInflight);

    ++agg.ops;
    agg.elements += t.elements;
    agg.readTxns += t.readTxns;
    agg.writeTxns += t.writeTxns;
    agg.hashReadTxns += t.hashReadTxns;
    agg.hashWriteTxns += t.hashWriteTxns;
    agg.filtered += st.filtered;
    agg.busyCycles += st.cycles();

    ++opsExecuted;
    elementsProcessed += static_cast<double>(t.elements);
    duplicatesFiltered += static_cast<double>(st.filtered);
    busyCycles += static_cast<double>(st.cycles());
}

void
Scu::emitStream(const std::vector<std::uint32_t> &produced,
                const OpOptions &opt, Elems &out, std::size_t &out_n,
                ScuPipeline &pipe, ScuOpStats &st)
{
    const std::size_t n = produced.size();

    // --- Step-1 metadata generation -----------------------------
    if (opt.filterMode != FilterMode::None) {
        panic_if(!opt.keepOut,
                 "filtering requested without a keepOut sink");
        panic_if(opt.filterMode == FilterMode::BestCost &&
                     opt.costs.size() < n,
                 "BestCost filtering needs a cost per element "
                 "(%zu < %zu)", opt.costs.size(), n);
        // Reconfiguring the hash for this operation (Section 4.1)
        // pins its region in the L2 (way-locking) so streaming
        // traffic cannot thrash it — the Table 2 sizes are chosen to
        // fit the L2 for exactly this reason.
        if (opt.filterMode == FilterMode::Unique) {
            auto &t = opt.useSecondaryUnique ? *uniqueTable2
                                             : *uniqueTable;
            memSys.l2().setProtectedRegion(t.baseAddr(),
                                           t.config().sizeBytes);
        } else {
            memSys.l2().setProtectedRegion(
                costTable->baseAddr(),
                costTable->config().sizeBytes);
        }
        opt.keepOut->assign(n, 1);
        for (std::size_t k = 0; k < n; ++k) {
            ProbeTraffic traffic;
            bool keep;
            // Armed HashCorrupt faults strike the set the next probe
            // touches, so the parity check is guaranteed to see the
            // flipped bit (checked builds).
            sim::FaultInjector *inj = sim.faultInjector();
            if (opt.filterMode == FilterMode::Unique) {
                auto &table = opt.useSecondaryUnique
                                  ? *uniqueTable2
                                  : *uniqueTable;
                if (inj && inj->fireHashCorrupt(sim.now()))
                    table.corruptForKey(produced[k], inj->rng());
                keep = table.probe(produced[k], traffic);
            } else {
                if (inj && inj->fireHashCorrupt(sim.now()))
                    costTable->corruptForKey(produced[k],
                                             inj->rng());
                keep = costTable->probe(produced[k], opt.costs[k],
                                        traffic);
            }
            const unsigned set_bytes = std::min(
                128u, (opt.filterMode == FilterMode::Unique
                           ? p.filterBfsHash.ways *
                                 p.filterBfsHash.entryBytes
                           : p.filterSsspHash.ways *
                                 p.filterSsspHash.entryBytes));
            pipe.hashAccess(traffic.setAddr, traffic.wrote,
                            set_bytes);
            ++st.hashProbes;
            if (!keep) {
                (*opt.keepOut)[k] = 0;
                ++st.filtered;
            }
            // The generated bitmask streams out to memory.
            pipe.seqWrite(metaKeepBase + (k % keepRegionBytes), 1);
        }
    }

    if (opt.makeGroups) {
        panic_if(!opt.orderOut,
                 "grouping requested without an orderOut sink");
        opt.orderOut->clear();
        opt.orderOut->reserve(n);
        memSys.l2().setProtectedRegion(
            groupTable->baseAddr(), groupTable->config().sizeBytes);
        const std::uint64_t per_line = nodesPerLine();
        for (std::size_t k = 0; k < n; ++k) {
            ProbeTraffic traffic;
            groupTable->probe(produced[k] / per_line,
                              static_cast<std::uint32_t>(k),
                              *opt.orderOut, traffic);
            pipe.hashAccess(traffic.setAddr, traffic.wrote,
                            std::min(128u, p.groupHash.ways *
                                               p.groupHash.entryBytes));
            ++st.hashProbes;
            pipe.seqWrite(
                metaOrderBase + (4 * k) % orderRegionBytes, 4);
        }
        groupTable->flush(*opt.orderOut);
        panic_if(opt.orderOut->size() != n,
                 "grouping lost elements (%zu != %zu)",
                 opt.orderOut->size(), n);
    }

    // --- Step-2 (or basic) output --------------------------------
    if (!opt.writeOutput) {
        st.elemsOut = 0;
        return;
    }

    auto emit = [&](std::size_t k) {
        if (opt.keep) {
            // Step 2 reads the previously generated bitmask.
            pipe.seqRead(Stream::Bitmask,
                         metaKeepBase + (k % keepRegionBytes), 1);
            if (!(*opt.keep)[k])
                return;
        }
        panic_if(out_n >= out.size(),
                 "SCU output overflow (%zu elements)", out.size());
        out[out_n] = produced[k];
        pipe.seqWrite(out.addrOf(out_n), 4);
        ++out_n;
        ++st.elemsOut;
    };

    if (opt.order) {
        panic_if(opt.order->size() != n,
                 "order vector size mismatch (%zu != %zu)",
                 opt.order->size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            // Step 2 reads the order vector sequentially.
            pipe.seqRead(Stream::Order,
                         metaOrderBase + (4 * i) % orderRegionBytes,
                         4);
            emit((*opt.order)[i]);
        }
    } else {
        for (std::size_t k = 0; k < n; ++k)
            emit(k);
    }
}

ScuOpStats
Scu::bitmaskConstructor(const Elems &in, std::size_t n, CompareOp op,
                        std::uint32_t ref, Flags &out)
{
    panic_if(out.size() < n, "bitmask output too small");
    ScuOpStats st;
    st.start = sim.now();
    ScuPipeline pipe(p, memSys, st.start);
    st.elemsIn = n;
    for (std::size_t i = 0; i < n; ++i) {
        pipe.elements(1);
        pipe.seqRead(Stream::Data, in.addrOf(i), 4);
        out[i] = compare(in[i], op, ref) ? 1 : 0;
        pipe.seqWrite(out.addrOf(i), 1);
        ++st.elemsOut;
    }
    sealOp("bitmask-constructor", pipe, st);
    return st;
}

ScuOpStats
Scu::dataCompaction(const Elems &in, std::size_t n, const Flags *mask,
                    Elems &out, std::size_t &out_n,
                    const OpOptions &opt)
{
    ScuOpStats st;
    st.start = sim.now();
    ScuPipeline pipe(p, memSys, st.start);
    st.elemsIn = n;

    std::vector<std::uint32_t> produced;
    produced.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pipe.elements(1);
        pipe.seqRead(Stream::Data, in.addrOf(i), 4);
        if (mask) {
            pipe.seqRead(Stream::Bitmask, mask->addrOf(i), 1);
            if (!(*mask)[i])
                continue;
        }
        produced.push_back(in[i]);
    }
    emitStream(produced, opt, out, out_n, pipe, st);
    sealOp("data-compaction", pipe, st);
    return st;
}

ScuOpStats
Scu::accessCompaction(const Elems &data, const Elems &indexes,
                      std::size_t n, const Flags *mask, Elems &out,
                      std::size_t &out_n, const OpOptions &opt)
{
    ScuOpStats st;
    st.start = sim.now();
    ScuPipeline pipe(p, memSys, st.start);
    st.elemsIn = n;

    std::vector<std::uint32_t> produced;
    produced.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pipe.elements(1);
        pipe.seqRead(Stream::Indexes, indexes.addrOf(i), 4);
        if (mask) {
            pipe.seqRead(Stream::Bitmask, mask->addrOf(i), 1);
            if (!(*mask)[i])
                continue;
        }
        const std::uint32_t idx = indexes[i];
        panic_if(idx >= data.size(),
                 "access compaction index out of range");
        pipe.gatherRead(data.addrOf(idx), 4);
        produced.push_back(data[idx]);
    }
    emitStream(produced, opt, out, out_n, pipe, st);
    sealOp("access-compaction", pipe, st);
    return st;
}

ScuOpStats
Scu::replicationCompaction(const Elems &in, const Elems &count,
                           std::size_t n, const Flags *mask,
                           Elems &out, std::size_t &out_n,
                           const OpOptions &opt)
{
    ScuOpStats st;
    st.start = sim.now();
    ScuPipeline pipe(p, memSys, st.start);
    st.elemsIn = n;

    std::vector<std::uint32_t> produced;
    for (std::size_t i = 0; i < n; ++i) {
        pipe.seqRead(Stream::Data, in.addrOf(i), 4);
        pipe.seqRead(Stream::Count, count.addrOf(i), 4);
        if (mask) {
            pipe.seqRead(Stream::Bitmask, mask->addrOf(i), 1);
            if (!(*mask)[i]) {
                pipe.elements(1);
                continue;
            }
        }
        const std::uint32_t c = count[i];
        pipe.elements(std::max<std::uint32_t>(1, c));
        for (std::uint32_t j = 0; j < c; ++j)
            produced.push_back(in[i]);
    }
    emitStream(produced, opt, out, out_n, pipe, st);
    sealOp("replication-compaction", pipe, st);
    return st;
}

ScuOpStats
Scu::accessExpansionCompaction(const Elems &data, const Elems &indexes,
                               const Elems &count, std::size_t n,
                               const Flags *mask, Elems &out,
                               std::size_t &out_n,
                               const OpOptions &opt)
{
    ScuOpStats st;
    st.start = sim.now();
    ScuPipeline pipe(p, memSys, st.start);
    st.elemsIn = n;

    std::vector<std::uint32_t> produced;
    for (std::size_t i = 0; i < n; ++i) {
        pipe.seqRead(Stream::Indexes, indexes.addrOf(i), 4);
        pipe.seqRead(Stream::Count, count.addrOf(i), 4);
        if (mask) {
            pipe.seqRead(Stream::Bitmask, mask->addrOf(i), 1);
            if (!(*mask)[i]) {
                pipe.elements(1);
                continue;
            }
        }
        const std::uint32_t first = indexes[i];
        const std::uint32_t c = count[i];
        panic_if(static_cast<std::uint64_t>(first) + c > data.size(),
                 "access expansion range out of bounds");
        pipe.elements(std::max<std::uint32_t>(1, c));
        for (std::uint32_t j = 0; j < c; ++j) {
            // Within one node's run the reads are consecutive, so
            // the coalescing unit merges them line by line.
            pipe.gatherRead(data.addrOf(first + j), 4);
            produced.push_back(data[first + j]);
        }
    }
    emitStream(produced, opt, out, out_n, pipe, st);
    sealOp("access-expansion-compaction", pipe, st);
    return st;
}

} // namespace scusim::scu
