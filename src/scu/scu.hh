/**
 * @file
 * The Stream Compaction Unit — the paper's core contribution. A
 * small programmable unit attached to the GPU interconnect that
 * executes the five generic compaction operations of Figure 6:
 *
 *   - Bitmask Constructor
 *   - Data Compaction
 *   - Access Compaction
 *   - Replication Compaction
 *   - Access Expansion Compaction
 *
 * plus the enhanced-SCU capabilities of Section 4: duplicate
 * filtering (unique / unique-best-cost) and grouping of elements
 * whose destination nodes share a cache line, both via in-memory
 * hash tables. Enhanced operation is the two-step process of
 * Section 4.1: a first pass generates the filter bitmask and/or the
 * grouping order vector; a second pass performs the compaction
 * consuming them. Every operation is executed functionally and is
 * charged on the shared simulation timeline through the pipeline
 * timing model.
 *
 * This class is the "simple API" the paper exposes to applications.
 */

#ifndef SCUSIM_SCU_SCU_HH
#define SCUSIM_SCU_SCU_HH

#include <memory>
#include <span>
#include <vector>

#include "mem/address_space.hh"
#include "mem/mem_system.hh"
#include "scu/hash_table.hh"
#include "scu/pipeline.hh"
#include "scu/scu_config.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

namespace scusim::trace
{
class TraceChannel;
class TraceSink;
} // namespace scusim::trace

namespace scusim::scu
{

/** Comparison operator of the Bitmask Constructor. */
enum class CompareOp { Eq, Ne, Lt, Le, Gt, Ge };

/** Filtering flavor of the enhanced SCU (Section 4.2). */
enum class FilterMode { None, Unique, BestCost };

/** Result of one SCU operation. */
struct ScuOpStats
{
    Tick start = 0;
    Tick end = 0;
    std::uint64_t elemsIn = 0;    ///< input elements scanned
    std::uint64_t elemsOut = 0;   ///< elements written/kept
    std::uint64_t filtered = 0;   ///< duplicates removed by the hash
    std::uint64_t readTxns = 0;
    std::uint64_t writeTxns = 0;
    std::uint64_t hashProbes = 0;

    Tick cycles() const { return end - start; }
};

/**
 * Options applied to a compaction operation. The defaults run the
 * basic (Section 3) operation; the step-1 / step-2 fields implement
 * the enhanced flow of Section 4.1.
 */
struct OpOptions
{
    /** Step 1 sets this false: the pass only generates metadata. */
    bool writeOutput = true;

    /** Step 1: run filtering, recording keep flags per produced
     *  element into keepOut. */
    FilterMode filterMode = FilterMode::None;
    std::vector<std::uint8_t> *keepOut = nullptr;
    /**
     * Unique filtering probes the secondary hash region. The in-
     * memory hash is reconfigurable per operation (Section 4.1), so
     * a traversal can keep two persistent tables alive — one for the
     * expansion stream, one for the contraction stream.
     */
    bool useSecondaryUnique = false;
    /** BestCost filtering: cost parallel to the produced stream. */
    std::span<const std::uint32_t> costs;

    /** Step 1: run grouping, recording the emit order (indices into
     *  the produced stream) into orderOut. */
    bool makeGroups = false;
    std::vector<std::uint32_t> *orderOut = nullptr;

    /** Step 2: previously generated keep flags / grouping order. */
    const std::vector<std::uint8_t> *keep = nullptr;
    const std::vector<std::uint32_t> *order = nullptr;
};

/** Whole-run SCU activity, for energy accounting and Figure 11. */
struct ScuTotals
{
    std::uint64_t ops = 0;
    std::uint64_t elements = 0;
    std::uint64_t readTxns = 0;
    std::uint64_t writeTxns = 0;
    std::uint64_t hashReadTxns = 0;
    std::uint64_t hashWriteTxns = 0;
    std::uint64_t filtered = 0;
    Tick busyCycles = 0;
};

class Scu
{
  public:
    using Elems = mem::DeviceArray<std::uint32_t>;
    using Flags = mem::DeviceArray<std::uint8_t>;

    Scu(const ScuParams &params, mem::MemSystem &mem,
        sim::Simulation &simulation, mem::AddressSpace &as,
        stats::StatGroup *parent);

    /**
     * Bitmask Constructor: out[i] = (in[i] <op> ref) for i < n.
     */
    ScuOpStats bitmaskConstructor(const Elems &in, std::size_t n,
                                  CompareOp op, std::uint32_t ref,
                                  Flags &out);

    /**
     * Data Compaction: append in[i] to @p out for every i < n with
     * mask[i] != 0 (mask optional: null keeps everything),
     * preserving order.
     */
    ScuOpStats dataCompaction(const Elems &in, std::size_t n,
                              const Flags *mask, Elems &out,
                              std::size_t &out_n,
                              const OpOptions &opt = {});

    /**
     * Access Compaction: append data[indexes[i]] for every i < n
     * with mask[i] != 0.
     */
    ScuOpStats accessCompaction(const Elems &data,
                                const Elems &indexes, std::size_t n,
                                const Flags *mask, Elems &out,
                                std::size_t &out_n,
                                const OpOptions &opt = {});

    /**
     * Replication Compaction: append count[i] copies of in[i] for
     * every i < n with mask[i] != 0.
     */
    ScuOpStats replicationCompaction(const Elems &in,
                                     const Elems &count,
                                     std::size_t n, const Flags *mask,
                                     Elems &out, std::size_t &out_n,
                                     const OpOptions &opt = {});

    /**
     * Access Expansion Compaction: append
     * data[indexes[i] .. indexes[i]+count[i]) for every i < n with
     * mask[i] != 0. This is the frontier-expansion workhorse.
     */
    ScuOpStats accessExpansionCompaction(const Elems &data,
                                         const Elems &indexes,
                                         const Elems &count,
                                         std::size_t n,
                                         const Flags *mask,
                                         Elems &out,
                                         std::size_t &out_n,
                                         const OpOptions &opt = {});

    /** Reset the filtering/grouping hash tables between passes. */
    void resetFilterTables();

    /** Bind this unit's trace channel ("scu", device-prefixed). */
    void attachTrace(trace::TraceSink &sink,
                     const std::string &prefix = "");

    const ScuParams &params() const { return p; }
    const ScuTotals &totals() const { return agg; }

    UniqueFilterTable &uniqueFilter() { return *uniqueTable; }
    UniqueFilterTable &secondaryFilter() { return *uniqueTable2; }
    BestCostFilterTable &costFilter() { return *costTable; }
    GroupingTable &groupingTable() { return *groupTable; }

    /** Elements per L2 line of 4 B node records (grouping key). */
    std::uint64_t
    nodesPerLine() const
    {
        return memSys.l2().params().lineBytes / 4;
    }

  private:
    /**
     * Shared back-half of every compaction: the produced stream
     * @p produced is filtered/grouped/ordered per @p opt and written
     * to @p out through @p pipe.
     */
    void emitStream(const std::vector<std::uint32_t> &produced,
                    const OpOptions &opt, Elems &out,
                    std::size_t &out_n, ScuPipeline &pipe,
                    ScuOpStats &st);

    /** Close out operation @p op: timing, totals, simulation time. */
    void sealOp(const char *op, ScuPipeline &pipe, ScuOpStats &st);

    const ScuParams p;
    mem::MemSystem &memSys;
    sim::Simulation &sim;

    std::unique_ptr<UniqueFilterTable> uniqueTable;
    std::unique_ptr<UniqueFilterTable> uniqueTable2;
    std::unique_ptr<BestCostFilterTable> costTable;
    std::unique_ptr<GroupingTable> groupTable;

    /** Device regions backing the generated metadata vectors. */
    Addr metaKeepBase = 0;
    Addr metaOrderBase = 0;

    ScuTotals agg;

    stats::StatGroup grp;
    stats::Scalar opsExecuted;
    stats::Scalar elementsProcessed;
    stats::Scalar duplicatesFiltered;
    stats::Scalar busyCycles;
    trace::TraceChannel *traceChan = nullptr;
};

} // namespace scusim::scu

#endif // SCUSIM_SCU_SCU_HH
