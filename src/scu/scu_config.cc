#include "scu/scu_config.hh"

namespace scusim::scu
{

ScuParams
ScuParams::forGtx980()
{
    ScuParams p;
    p.name = "scu";
    p.pipelineWidth = 4;
    p.filterBfsHash = {1 << 20, 16, 4};                 // 1 MB
    p.filterSsspHash = {(3 << 20) / 2, 16, 8};          // 1.5 MB
    p.groupHash = {(12 << 20) / 10, 16, 32};            // 1.2 MB
    return p;
}

ScuParams
ScuParams::forTx1()
{
    ScuParams p;
    p.name = "scu";
    p.pipelineWidth = 1;
    p.filterBfsHash = {132 << 10, 16, 4};               // 132 KB
    p.filterSsspHash = {192 << 10, 16, 8};              // 192 KB
    p.groupHash = {144 << 10, 16, 32};                  // 144 KB
    return p;
}

} // namespace scusim::scu
