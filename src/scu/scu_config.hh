/**
 * @file
 * SCU configuration: the hardware parameters of Table 1 and the
 * per-GPU scalability parameters of Table 2 (pipeline width and the
 * reconfigurable in-memory hash table geometries).
 */

#ifndef SCUSIM_SCU_SCU_CONFIG_HH
#define SCUSIM_SCU_SCU_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace scusim::scu
{

/** Geometry of one configuration of the in-memory hash table. */
struct HashConfig
{
    std::uint64_t sizeBytes = 1 << 20;
    unsigned ways = 16;
    unsigned entryBytes = 4; ///< 4 B unique / 8 B best-cost / 32 B group

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) *
                            entryBytes);
    }
};

/** Full SCU configuration (Tables 1 and 2). */
struct ScuParams
{
    std::string name = "scu";

    /** Elements processed per cycle (Table 2: 4 GTX980, 1 TX1). */
    unsigned pipelineWidth = 4;

    /** Vector-parameter buffering (Table 1: 5 KB). */
    std::uint64_t vectorBufferBytes = 5 << 10;
    /** Data Fetch FIFO request buffer (Table 1: 38 KB). */
    std::uint64_t fifoRequestBytes = 38 << 10;
    /** Filtering/grouping request buffer (Table 1: 18 KB). */
    std::uint64_t hashRequestBytes = 18 << 10;

    /** Coalescing unit: in-flight requests and merge window. */
    unsigned coalesceInflight = 32;
    unsigned mergeWindow = 4;

    /** Elements per grouping hash entry (Section 4.3: 8 of 4 B). */
    unsigned groupSize = 8;

    /** Cycles to configure the Address Generator for one operation. */
    Tick opSetupCycles = 64;
    /** Pipeline drain cycles at the end of one operation. */
    Tick opDrainCycles = 32;

    HashConfig filterBfsHash;  ///< unique-element filtering
    HashConfig filterSsspHash; ///< unique-best-cost filtering
    HashConfig groupHash;      ///< grouping

    /** Table 2, GTX980 column. */
    static ScuParams forGtx980();
    /** Table 2, TX1 column. */
    static ScuParams forTx1();
};

} // namespace scusim::scu

#endif // SCUSIM_SCU_SCU_CONFIG_HH
