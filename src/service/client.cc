#include "service/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/plan.hh"
#include "harness/run_cache.hh"
#include "store/format.hh"
#include "store/mapped_graph.hh"

namespace scusim::service
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Remaining milliseconds before @p deadline; >= 0, clamped. */
long
remainingMs(const Clock::time_point &deadline, bool bounded)
{
    if (!bounded)
        return 60'000; // poll slice when the caller set no deadline
    // simlint: allow(nondeterminism)
    const auto now = std::chrono::steady_clock::now();
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - now);
    return left.count() < 0 ? 0 : static_cast<long>(left.count());
}

/** RAII socket so every early return closes the fd. */
struct Sock
{
    int fd = -1;
    ~Sock()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/**
 * Connect to @p path within the remaining deadline. Returns false
 * with a reason on failure.
 */
bool
connectTo(Sock &s, const std::string &path,
          const Clock::time_point &deadline, bool bounded,
          std::string &why)
{
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        why = "invalid socket path";
        return false;
    }
    s.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (s.fd < 0) {
        why = std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // Unix-socket connect() either succeeds or fails immediately
    // (the backlog is the only wait, bounded by the kernel).
    int r;
    do {
        r = ::connect(s.fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr));
    } while (r < 0 && errno == EINTR);
    if (r != 0) {
        why = std::strerror(errno);
        return false;
    }
    if (remainingMs(deadline, bounded) == 0) {
        why = "deadline expired";
        return false;
    }
    return true;
}

/** Send all of @p bytes, poll-bounded by the deadline. */
bool
sendAll(int fd, const std::string &bytes,
        const Clock::time_point &deadline, bool bounded,
        std::string &why)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off,
                   MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            const long left = remainingMs(deadline, bounded);
            if (left == 0) {
                why = "deadline expired during send";
                return false;
            }
            pollfd p{fd, POLLOUT, 0};
            ::poll(&p, 1, static_cast<int>(std::min(left, 100L)));
            continue;
        }
        why = n == 0 ? "connection closed" : std::strerror(errno);
        return false;
    }
    return true;
}

enum class RecvStatus { Ok, Deadline, Lost };

/** Receive one frame, poll-bounded by the deadline. */
RecvStatus
recvFrame(int fd, Frame &out, const Clock::time_point &deadline,
          bool bounded, std::string &why)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        FrameStatus st = parseFrame(buf, out, &why);
        if (st == FrameStatus::Ok)
            return RecvStatus::Ok;
        if (st == FrameStatus::Malformed) {
            why = "malformed reply: " + why;
            return RecvStatus::Lost;
        }
        const long left = remainingMs(deadline, bounded);
        if (left == 0) {
            why = "deadline expired awaiting reply";
            return RecvStatus::Deadline;
        }
        pollfd p{fd, POLLIN, 0};
        int pr;
        do {
            pr = ::poll(&p, 1,
                        static_cast<int>(std::min(left, 250L)));
        } while (pr < 0 && errno == EINTR);
        if (pr <= 0)
            continue;
        const ssize_t n =
            ::recv(fd, chunk, sizeof chunk, MSG_DONTWAIT);
        if (n > 0) {
            buf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK))
            continue;
        why = n == 0 ? "daemon closed the connection"
                     : std::strerror(errno);
        return RecvStatus::Lost;
    }
}

/** Sleep for @p ms, but never past the deadline. */
void
boundedSleep(unsigned ms, const Clock::time_point &deadline,
             bool bounded)
{
    long left = bounded ? remainingMs(deadline, bounded)
                        : static_cast<long>(ms);
    const long want = std::min<long>(static_cast<long>(ms), left);
    if (want > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(want));
}

} // namespace

harness::RunRecord
ServiceClient::submit(const harness::RunConfig &cfg,
                      const std::string &storeFile) const
{
    harness::RunRecord rec;
    rec.run.cfg = cfg;

    auto bail = [&](FailureKind kind, const std::string &msg) {
        rec.ok = false;
        rec.failure = kind;
        rec.error = msg;
        return rec;
    };

    // Store-backed submission: derive the durable identity from the
    // local header so client and daemon compute the same run key
    // independently — the daemon re-derives it from its own read of
    // the file, and the key-checked Result decode below catches any
    // disagreement.
    if (!storeFile.empty()) {
        if (storeFile.find_first_of(" \t\r\n") != std::string::npos)
            return bail(FailureKind::Invariant,
                        "store file path contains whitespace, which "
                        "the wire format cannot carry");
        store::ScugHeader h;
        std::string err;
        if (!store::readStoreHeader(storeFile, h, &err))
            return bail(FailureKind::Invariant, err);
        rec.run.cfg.dataset = store::fingerprintLabel(h.fingerprint);
        rec.run.graphFp = store::fingerprintHex(h.fingerprint);
    }
    rec.run.key =
        harness::runKey(rec.run.cfg, nullptr, rec.run.graphFp);
    rec.run.label = harness::runLabel(rec.run.cfg);

    const bool bounded = opts.deadlineSeconds > 0;
    // simlint: allow(nondeterminism)
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        opts.deadlineSeconds));

    auto fail = [&](FailureKind kind, const std::string &msg) {
        rec.ok = false;
        rec.failure = kind;
        rec.error = msg;
        return rec;
    };

    std::string lastWhy = "no attempt made";
    FailureKind lastKind = FailureKind::ConnectionLost;
    for (unsigned attempt = 0; attempt <= opts.maxRetries;
         ++attempt) {
        rec.attempts = attempt + 1;
        if (attempt > 0) {
            const unsigned delay = harness::retryBackoffMs(
                cfg.seed, attempt, opts.backoffBaseMs,
                opts.backoffCapMs);
            rec.backoffMs += delay;
            boundedSleep(delay, deadline, bounded);
        }
        if (bounded && remainingMs(deadline, bounded) == 0)
            return fail(FailureKind::Timeout,
                        "client deadline expired (last: " + lastWhy +
                            ")");

        std::string why;
        Sock s;
        if (!connectTo(s, opts.socketPath, deadline, bounded, why)) {
            lastWhy = "connect: " + why;
            lastKind = FailureKind::ConnectionLost;
            continue;
        }

        RunRequest req;
        req.cfg = rec.run.cfg;
        req.storeFile = storeFile;
        req.deadlineMs =
            bounded ? static_cast<std::uint64_t>(
                          remainingMs(deadline, bounded))
                    : 0;
        const std::string frame =
            encodeFrame(FrameType::Submit, encodeRunRequest(req));
        if (!sendAll(s.fd, frame, deadline, bounded, why)) {
            lastWhy = "send: " + why;
            lastKind = FailureKind::ConnectionLost;
            continue;
        }

        Frame reply;
        const RecvStatus st =
            recvFrame(s.fd, reply, deadline, bounded, why);
        if (st == RecvStatus::Deadline)
            return fail(FailureKind::Timeout, why);
        if (st == RecvStatus::Lost) {
            lastWhy = why;
            lastKind = FailureKind::ConnectionLost;
            continue;
        }

        if (reply.type == FrameType::Result) {
            // Accept only a record for *our* run key: byte-identity
            // with a local run is the whole point of the service.
            if (harness::decodeRunRecord(reply.payload, rec.run.key,
                                         rec))
                return rec;
            lastWhy = "result failed to decode for this run key";
            lastKind = FailureKind::ConnectionLost;
            continue;
        }
        if (reply.type == FrameType::Reject) {
            RejectInfo info;
            if (!decodeReject(reply.payload, info))
                return fail(FailureKind::ConnectionLost,
                            "undecodable reject reply");
            if (isTransientFailure(info.kind) &&
                attempt < opts.maxRetries) {
                lastWhy = info.message;
                lastKind = info.kind;
                continue;
            }
            return fail(info.kind, info.message);
        }
        return fail(FailureKind::ConnectionLost,
                    "unexpected reply frame type");
    }
    return fail(lastKind, "retries exhausted: " + lastWhy);
}

bool
ServiceClient::health(HealthInfo &out, std::string *err) const
{
    const bool bounded = opts.deadlineSeconds > 0;
    // simlint: allow(nondeterminism)
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        opts.deadlineSeconds));
    std::string why;
    auto bail = [&](const std::string &w) {
        if (err)
            *err = w;
        return false;
    };
    Sock s;
    if (!connectTo(s, opts.socketPath, deadline, bounded, why))
        return bail("connect: " + why);
    if (!sendAll(s.fd, encodeFrame(FrameType::Health, ""), deadline,
                 bounded, why))
        return bail("send: " + why);
    Frame reply;
    if (recvFrame(s.fd, reply, deadline, bounded, why) !=
        RecvStatus::Ok)
        return bail(why);
    if (reply.type != FrameType::HealthReply)
        return bail("unexpected reply frame type");
    if (!decodeHealth(reply.payload, out))
        return bail("undecodable health reply");
    return true;
}

} // namespace scusim::service
