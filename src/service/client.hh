/**
 * @file
 * Supervised client of the scusimd simulation service. The contract
 * mirrors the executor's own robustness discipline:
 *
 *  - every socket operation is poll-bounded by the caller's deadline,
 *    so a dead or wedged daemon produces a typed failure, never a
 *    hang;
 *  - transient failures — an Overloaded shed, a connection that died
 *    before the reply — are retried with the *same* deterministic
 *    seed-derived exponential backoff the executor applies to
 *    transient run failures (harness::retryBackoffMs), so client
 *    retry traffic is reproducible;
 *  - the remaining deadline travels with each submission and maps
 *    onto executor-level wall supervision server-side, outside the
 *    run key, so deadline-diverse clients share one cache entry;
 *  - a reply is accepted only if it decodes as a RunRecord for the
 *    locally computed run key — a confused daemon cannot hand back
 *    the wrong run's result.
 *
 * Failures come back as ordinary failed RunRecords (FailureKind
 * Overloaded / ConnectionLost / Timeout / ...), which the bench
 * layer already renders as FAIL(kind) cells.
 */

#ifndef SCUSIM_SERVICE_CLIENT_HH
#define SCUSIM_SERVICE_CLIENT_HH

#include <string>

#include "harness/executor.hh"
#include "service/protocol.hh"

namespace scusim::service
{

/** Client configuration. */
struct ClientOptions
{
    /** Unix-domain socket the daemon listens on. */
    std::string socketPath;
    /** Extra attempts granted to Overloaded / ConnectionLost. */
    unsigned maxRetries = 3;
    /** Backoff policy (see harness::retryBackoffMs). */
    unsigned backoffBaseMs = 25;
    unsigned backoffCapMs = 2000;
    /**
     * Overall wall-clock deadline per submit() in seconds, covering
     * every retry and backoff sleep. 0 means no deadline (the server
     * still applies its own per-run wall budget).
     */
    double deadlineSeconds = 0;
};

class ServiceClient
{
  public:
    explicit ServiceClient(ClientOptions opts) : opts(std::move(opts)) {}

    /**
     * Submit @p cfg and block — poll-bounded, never indefinitely —
     * for the outcome. Returns a RunRecord exactly as runPlan()
     * would: run identity filled in, outcome fields from the
     * daemon's encodeRunRecord bytes on success, or a typed local
     * failure (Overloaded when shed and retries ran out,
     * ConnectionLost when the daemon vanished, Timeout when the
     * deadline expired first).
     *
     * A non-empty @p storeFile asks the daemon to run on that packed
     * `.scug` dataset (a path on the daemon's filesystem) instead of
     * synthesizing cfg.dataset. The client reads the store header
     * locally to canonicalize the dataset label to "scug:<fp>" — the
     * durable content fingerprint — so client and daemon agree on
     * the run key without either trusting the other's bytes.
     */
    harness::RunRecord submit(const harness::RunConfig &cfg,
                              const std::string &storeFile = "") const;

    /** Probe daemon vitals. False on any connection/protocol error. */
    bool health(HealthInfo &out, std::string *err = nullptr) const;

    const ClientOptions &options() const { return opts; }

  private:
    ClientOptions opts;
};

} // namespace scusim::service

#endif // SCUSIM_SERVICE_CLIENT_HH
