#include "service/protocol.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace scusim::service
{

namespace
{

void
putLe32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void
putLe16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

std::uint32_t
getLe32(const std::string &buf, std::size_t at)
{
    auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(buf[at + i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint16_t
getLe16(const std::string &buf, std::size_t at)
{
    auto b = [&](std::size_t i) {
        return static_cast<std::uint16_t>(
            static_cast<unsigned char>(buf[at + i]));
    };
    return static_cast<std::uint16_t>(b(0) | (b(1) << 8));
}

bool
knownFrameType(std::uint16_t t)
{
    switch (static_cast<FrameType>(t)) {
      case FrameType::Submit:
      case FrameType::Health:
      case FrameType::Result:
      case FrameType::Reject:
      case FrameType::HealthReply:
        return true;
    }
    return false;
}

void
putField(std::ostream &os, const char *name, const std::string &v)
{
    os << name << ' ' << v << '\n';
}

void
putU64(std::ostream &os, const char *name, std::uint64_t v)
{
    os << name << ' ' << v << '\n';
}

/** Doubles travel as IEEE-754 bit patterns (see run_cache.hh). */
void
putDouble(std::ostream &os, const char *name, double v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    os << name << " x" << buf << '\n';
}

/**
 * Line-oriented strict reader: every field must appear, in order,
 * with a parseable value. Payload strings never contain newlines
 * (dataset / system names are identifiers), so "name value\n" lines
 * suffice — no length-prefixing needed on this path.
 */
class FieldReader
{
  public:
    explicit FieldReader(const std::string &text) : is(text) {}

    bool
    line(const char *name, std::string &value)
    {
        std::string got;
        if (!(is >> got) || got != name)
            return false;
        if (!(is >> value))
            return false;
        return is.get() == '\n';
    }

    bool
    u64(const char *name, std::uint64_t &v)
    {
        std::string s;
        if (!line(name, s) || s.empty())
            return false;
        char *end = nullptr;
        v = std::strtoull(s.c_str(), &end, 10);
        return end && *end == '\0';
    }

    bool
    dbl(const char *name, double &v)
    {
        std::string s;
        if (!line(name, s) || s.size() != 17 || s[0] != 'x')
            return false;
        char *end = nullptr;
        const std::uint64_t bits =
            std::strtoull(s.c_str() + 1, &end, 16);
        if (!end || *end != '\0')
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    bool
    tok(const char *name)
    {
        std::string got;
        return (is >> got) && got == name;
    }

    /** Rest of the stream, newlines included (free-text fields). */
    std::string
    rest()
    {
        std::string out;
        std::getline(is, out, '\0');
        return out;
    }

  private:
    std::istringstream is;
};

} // namespace

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    std::string out;
    out.reserve(frameHeaderBytes + payload.size());
    putLe32(out, frameMagic);
    putLe16(out, protocolVersion);
    putLe16(out, static_cast<std::uint16_t>(type));
    putLe32(out, static_cast<std::uint32_t>(payload.size()));
    out += payload;
    return out;
}

FrameStatus
parseFrame(std::string &buf, Frame &out, std::string *why)
{
    auto malformed = [&](const char *reason) {
        if (why)
            *why = reason;
        return FrameStatus::Malformed;
    };
    if (buf.size() < frameHeaderBytes) {
        // Reject a bad magic as soon as the first bytes disagree —
        // a peer speaking the wrong protocol should not be able to
        // stall a connection slot by trickling garbage.
        const std::size_t have = std::min<std::size_t>(4, buf.size());
        for (std::size_t i = 0; i < have; ++i) {
            if (static_cast<unsigned char>(buf[i]) !=
                ((frameMagic >> (8 * i)) & 0xFF))
                return malformed("bad magic");
        }
        return FrameStatus::NeedMore;
    }
    if (getLe32(buf, 0) != frameMagic)
        return malformed("bad magic");
    if (getLe16(buf, 4) != protocolVersion)
        return malformed("unsupported protocol version");
    const std::uint16_t type = getLe16(buf, 6);
    if (!knownFrameType(type))
        return malformed("unknown frame type");
    const std::uint32_t len = getLe32(buf, 8);
    if (len > maxFramePayload)
        return malformed("oversized frame");
    if (buf.size() < frameHeaderBytes + len)
        return FrameStatus::NeedMore;
    out.type = static_cast<FrameType>(type);
    out.payload = buf.substr(frameHeaderBytes, len);
    buf.erase(0, frameHeaderBytes + len);
    return FrameStatus::Ok;
}

std::string
encodeRunRequest(const RunRequest &req)
{
    std::ostringstream os;
    os << "scusim-request " << protocolVersion << '\n';
    const harness::RunConfig &c = req.cfg;
    putField(os, "system", c.systemName);
    putField(os, "primitive", harness::to_string(c.primitive));
    putField(os, "mode", harness::to_string(c.mode));
    putField(os, "dataset", c.dataset);
    putDouble(os, "scale", c.scale);
    putU64(os, "seed", c.seed);
    putU64(os, "source", c.alg.source);
    putU64(os, "maxIterations", c.alg.maxIterations);
    putU64(os, "prMaxIterations", c.alg.prMaxIterations);
    putDouble(os, "prEpsilon", c.alg.prEpsilon);
    putU64(os, "ssspDelta", c.alg.ssspDelta);
    putU64(os, "deviceCount", c.deviceCount);
    putU64(os, "sharded", c.sharded ? 1 : 0);
    putU64(os, "tickBudget", c.guards.tickBudget);
    putU64(os, "stallWindow", c.guards.stallWindow);
    // "-" marks the empty path: the strict ordered reader needs a
    // token on every line.
    putField(os, "storeFile",
             req.storeFile.empty() ? "-" : req.storeFile);
    putU64(os, "deadlineMs", req.deadlineMs);
    os << "end\n";
    return os.str();
}

bool
decodeRunRequest(const std::string &text, RunRequest &req,
                 std::string &err)
{
    auto fail = [&](const char *what) {
        err = what;
        return false;
    };
    FieldReader in(text);
    std::string s;
    if (!in.line("scusim-request", s) ||
        s != std::to_string(protocolVersion))
        return fail("bad request header");

    RunRequest tmp;
    harness::RunConfig &c = tmp.cfg;
    std::uint64_t u = 0;
    if (!in.line("system", c.systemName))
        return fail("bad system");
    if (!in.line("primitive", s) ||
        !parsePrimitive(s, c.primitive))
        return fail("bad primitive");
    if (!in.line("mode", s) || !parseScuMode(s, c.mode))
        return fail("bad mode");
    if (!in.line("dataset", c.dataset))
        return fail("bad dataset");
    if (!in.dbl("scale", c.scale) || !(c.scale > 0) ||
        c.scale > 1.0)
        return fail("bad scale");
    if (!in.u64("seed", c.seed))
        return fail("bad seed");
    if (!in.u64("source", u) || u > 0xFFFFFFFFull)
        return fail("bad source");
    c.alg.source = static_cast<NodeId>(u);
    if (!in.u64("maxIterations", u) || u > 0xFFFFFFFFull)
        return fail("bad maxIterations");
    c.alg.maxIterations = static_cast<unsigned>(u);
    if (!in.u64("prMaxIterations", u) || u > 0xFFFFFFFFull)
        return fail("bad prMaxIterations");
    c.alg.prMaxIterations = static_cast<unsigned>(u);
    if (!in.dbl("prEpsilon", c.alg.prEpsilon))
        return fail("bad prEpsilon");
    if (!in.u64("ssspDelta", u) || u > 0xFFFFFFFFull)
        return fail("bad ssspDelta");
    c.alg.ssspDelta = static_cast<std::uint32_t>(u);
    if (!in.u64("deviceCount", u) || u == 0 || u > 1024)
        return fail("bad deviceCount");
    c.deviceCount = static_cast<unsigned>(u);
    if (!in.u64("sharded", u) || u > 1)
        return fail("bad sharded");
    c.sharded = u != 0;
    if (!in.u64("tickBudget", c.guards.tickBudget))
        return fail("bad tickBudget");
    if (!in.u64("stallWindow", c.guards.stallWindow))
        return fail("bad stallWindow");
    if (!in.line("storeFile", s))
        return fail("bad storeFile");
    tmp.storeFile = (s == "-") ? std::string() : s;
    if (!in.u64("deadlineMs", tmp.deadlineMs))
        return fail("bad deadlineMs");
    if (!in.tok("end"))
        return fail("missing terminator");

    // Keep the run's SCU mode and its algorithm-level mode in sync
    // the way runPrimitive expects.
    c.alg.mode = c.mode;
    req = tmp;
    return true;
}

std::string
encodeReject(const RejectInfo &info)
{
    std::ostringstream os;
    os << "kind " << to_string(info.kind) << '\n'
       << info.message;
    return os.str();
}

bool
decodeReject(const std::string &text, RejectInfo &info)
{
    FieldReader in(text);
    std::string kind;
    if (!in.line("kind", kind))
        return false;
    static const FailureKind kinds[] = {
        FailureKind::Panic,     FailureKind::Invariant,
        FailureKind::Deadlock,  FailureKind::Runaway,
        FailureKind::Timeout,   FailureKind::Overloaded,
        FailureKind::ConnectionLost,
    };
    bool found = false;
    for (FailureKind k : kinds) {
        if (kind == to_string(k)) {
            info.kind = k;
            found = true;
        }
    }
    if (!found)
        return false;
    info.message = in.rest();
    return true;
}

std::string
encodeHealth(const HealthInfo &h)
{
    std::ostringstream os;
    putU64(os, "ok", h.ok);
    putU64(os, "connections", h.connections);
    putU64(os, "requestsAccepted", h.requestsAccepted);
    putU64(os, "requestsCompleted", h.requestsCompleted);
    putU64(os, "requestsFailed", h.requestsFailed);
    putU64(os, "overloadShed", h.overloadShed);
    putU64(os, "framesRejected", h.framesRejected);
    putU64(os, "disconnectCancels", h.disconnectCancels);
    putU64(os, "journalRecovered", h.journalRecovered);
    putU64(os, "cacheQuarantined", h.cacheQuarantined);
    putU64(os, "queueDepth", h.queueDepth);
    putU64(os, "inFlight", h.inFlight);
    putU64(os, "draining", h.draining);
    os << "end\n";
    return os.str();
}

bool
decodeHealth(const std::string &text, HealthInfo &h)
{
    FieldReader in(text);
    HealthInfo tmp;
    if (!in.u64("ok", tmp.ok) ||
        !in.u64("connections", tmp.connections) ||
        !in.u64("requestsAccepted", tmp.requestsAccepted) ||
        !in.u64("requestsCompleted", tmp.requestsCompleted) ||
        !in.u64("requestsFailed", tmp.requestsFailed) ||
        !in.u64("overloadShed", tmp.overloadShed) ||
        !in.u64("framesRejected", tmp.framesRejected) ||
        !in.u64("disconnectCancels", tmp.disconnectCancels) ||
        !in.u64("journalRecovered", tmp.journalRecovered) ||
        !in.u64("cacheQuarantined", tmp.cacheQuarantined) ||
        !in.u64("queueDepth", tmp.queueDepth) ||
        !in.u64("inFlight", tmp.inFlight) ||
        !in.u64("draining", tmp.draining) || !in.tok("end"))
        return false;
    h = tmp;
    return true;
}

bool
parsePrimitive(const std::string &s, harness::Primitive &p)
{
    if (s == "BFS")
        p = harness::Primitive::Bfs;
    else if (s == "SSSP")
        p = harness::Primitive::Sssp;
    else if (s == "PR")
        p = harness::Primitive::Pr;
    else
        return false;
    return true;
}

bool
parseScuMode(const std::string &s, harness::ScuMode &m)
{
    if (s == "gpu-only")
        m = harness::ScuMode::GpuOnly;
    else if (s == "scu-basic")
        m = harness::ScuMode::ScuBasic;
    else if (s == "scu-enhanced")
        m = harness::ScuMode::ScuEnhanced;
    else
        return false;
    return true;
}

std::uint64_t
stableHash(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace scusim::service
