/**
 * @file
 * Wire protocol of the scusim simulation service. Frames are
 * length-prefixed and versioned: a fixed 12-byte little-endian
 * header (magic, protocol version, frame type, payload length)
 * followed by the payload bytes. Payloads are line-oriented text in
 * the run-cache tradition, so a served result is the *exact*
 * encodeRunRecord() byte string the run cache stores — daemon-served
 * warm runs are byte-identical to locally simulated ones by
 * construction.
 *
 * Robustness contract: parseFrame() never throws and never reads
 * past the buffered bytes; a malformed header or an oversized length
 * classifies as Malformed so the server can reject the connection
 * without trusting any of its bytes. Request payloads parse strictly
 * — unknown fields, bad enums and out-of-range values are errors,
 * not guesses.
 */

#ifndef SCUSIM_SERVICE_PROTOCOL_HH
#define SCUSIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/sim_error.hh"
#include "harness/runner.hh"

namespace scusim::service
{

/** "SCUS" little-endian; the first four bytes of every frame. */
constexpr std::uint32_t frameMagic = 0x53554353;

/** Bump on any incompatible frame or payload layout change. */
constexpr std::uint16_t protocolVersion = 2;

/** Frame header bytes on the wire. */
constexpr std::size_t frameHeaderBytes = 12;

/**
 * Upper bound on a frame payload. Requests and results are a few
 * hundred bytes; anything near this limit is a confused or hostile
 * peer, and rejecting it bounds per-connection buffering.
 */
constexpr std::uint32_t maxFramePayload = 1u << 20;

/** Frame types. Requests are < 0x80, replies >= 0x80. */
enum class FrameType : std::uint16_t
{
    Submit = 1, ///< RunRequest payload; answered by Result or Reject
    Health = 2, ///< empty payload; answered by HealthReply
    Result = 0x81,      ///< encodeRunRecord() payload
    Reject = 0x82,      ///< RejectInfo payload (typed failure)
    HealthReply = 0x83, ///< HealthInfo payload
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Submit;
    std::string payload;
};

/** Serialize a complete frame (header + payload). */
std::string encodeFrame(FrameType type, const std::string &payload);

/** Outcome of parsing the front of a connection buffer. */
enum class FrameStatus
{
    Ok,       ///< one frame decoded and consumed from the buffer
    NeedMore, ///< prefix is valid so far; wait for more bytes
    Malformed ///< bad magic/version/type/length: drop the peer
};

/**
 * Try to decode one frame from the front of @p buf. On Ok the
 * consumed bytes are erased and @p out is filled; on Malformed a
 * human-readable reason lands in @p why (when non-null) and @p buf
 * is left untouched for diagnosis.
 */
FrameStatus parseFrame(std::string &buf, Frame &out,
                       std::string *why = nullptr);

/**
 * A plan submission. Only the deterministic run identity travels on
 * the wire — systems, primitive, dataset, scale, seed, algorithm
 * options, sharding and tick/stall budgets, which all participate in
 * the run key. The client's wall-clock *deadline* is carried
 * separately and maps onto executor-level supervision server-side,
 * so two clients asking for the same run with different deadlines
 * still share one cache entry.
 */
struct RunRequest
{
    harness::RunConfig cfg;
    /** Remaining client deadline in ms; 0 = no deadline. */
    std::uint64_t deadlineMs = 0;
    /**
     * Optional server-side `.scug` store file to run on instead of
     * synthesizing cfg.dataset. The path names a file on the
     * *daemon's* filesystem (daemon and CLI share a host); it never
     * participates in the run key — identity comes from the store
     * file's content fingerprint, which both sides derive
     * independently (the dataset label becomes "scug:<fp>").
     * Whitespace in paths is not representable on this line-oriented
     * wire and is rejected at submit time. Empty = dataset run.
     */
    std::string storeFile;
};

std::string encodeRunRequest(const RunRequest &req);

/**
 * Strictly parse @p text into @p req. Returns false with a reason in
 * @p err on any malformed field; @p req is untouched on failure.
 */
bool decodeRunRequest(const std::string &text, RunRequest &req,
                      std::string &err);

/** A typed rejection: the failure the client should record. */
struct RejectInfo
{
    FailureKind kind = FailureKind::Overloaded;
    std::string message;
};

std::string encodeReject(const RejectInfo &info);
bool decodeReject(const std::string &text, RejectInfo &info);

/** Health probe reply: the daemon's externally visible vitals. */
struct HealthInfo
{
    std::uint64_t ok = 1;
    std::uint64_t connections = 0;
    std::uint64_t requestsAccepted = 0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t requestsFailed = 0;
    std::uint64_t overloadShed = 0;
    std::uint64_t framesRejected = 0;
    std::uint64_t disconnectCancels = 0;
    std::uint64_t journalRecovered = 0;
    std::uint64_t cacheQuarantined = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t draining = 0;
};

std::string encodeHealth(const HealthInfo &h);
bool decodeHealth(const std::string &text, HealthInfo &h);

/** Parsers for the enum axes carried by RunRequest. */
bool parsePrimitive(const std::string &s, harness::Primitive &p);
bool parseScuMode(const std::string &s, harness::ScuMode &m);

/** FNV-1a of @p s: stable file names for journal entries. */
std::uint64_t stableHash(const std::string &s);

} // namespace scusim::service

#endif // SCUSIM_SERVICE_PROTOCOL_HH
