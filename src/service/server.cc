#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/run_cache.hh"
#include "store/format.hh"
#include "store/store.hh"

namespace scusim::service
{

namespace
{

/** Retry-on-EINTR wrapper for the few syscalls that need it. */
template <typename Fn>
int
retryIntr(Fn fn)
{
    int r;
    do {
        r = fn();
    } while (r < 0 && errno == EINTR);
    return r;
}

} // namespace

/** One accepted client connection (reads: I/O thread; writes: any). */
struct Server::Connection
{
    std::uint64_t id = 0;
    /** Guarded by wMutex: writers and the closing I/O thread race. */
    int fd = -1;
    std::mutex wMutex;
    /** Bytes received but not yet framed (I/O thread only). */
    std::string rbuf;
    /** Requests this connection is waiting on (I/O thread only). */
    std::vector<std::shared_ptr<Request>> pending;
};

/** One admitted plan submission. */
struct Server::Request
{
    RunRequest req;
    std::string key;
    std::string label;
    /** Fingerprint hex of the store file; "" for dataset runs. */
    std::string graphFp;
    /** Null for journal-recovery requests (no client to answer). */
    std::shared_ptr<Connection> conn;
    /** Cooperative cancellation consumed by the run supervisor. */
    std::atomic<bool> cancel{false};
    /** Keep the journal entry on cancellation (shutdown, not drop). */
    std::atomic<bool> keepJournal{false};
    std::atomic<bool> done{false};
    double wallBudget = 0;
    std::string journalPath;
    std::chrono::steady_clock::time_point accepted;
};

Server::Server(ServerOptions o) : opts(std::move(o))
{
    statsRoot = std::make_unique<stats::StatGroup>("scusimd");
    auto addFormula = [&](const char *name, const char *desc,
                          std::atomic<std::uint64_t> *v) {
        formulas.push_back(std::make_unique<stats::Formula>(
            statsRoot.get(), name, desc, [v] {
                return static_cast<double>(
                    v->load(std::memory_order_relaxed));
            }));
    };
    addFormula("connections", "client connections accepted",
               &statConnections);
    addFormula("requestsAccepted", "plan submissions admitted",
               &statAccepted);
    addFormula("requestsCompleted", "runs finished successfully",
               &statCompleted);
    addFormula("requestsFailed", "runs finished with a failure",
               &statFailed);
    addFormula("overloadShed", "submissions shed by admission",
               &statShed);
    addFormula("framesRejected", "malformed frames or requests",
               &statFramesRejected);
    addFormula("disconnectCancels",
               "runs cancelled because their client vanished",
               &statDisconnectCancels);
    addFormula("journalRecovered",
               "journal entries re-executed after restart",
               &statJournalRecovered);
    addFormula("queueDepth", "submissions waiting for a worker",
               &statQueueDepth);
    formulas.push_back(std::make_unique<stats::Formula>(
        statsRoot.get(), "cacheQuarantined",
        "run-cache files quarantined as corrupt", [] {
            return static_cast<double>(
                harness::runCacheQuarantinedCount());
        }));
    latencyMs = std::make_unique<stats::Distribution>(
        statsRoot.get(), "latencyMs",
        "request latency accept->reply (ms)", 0, 10000, 20);
    const Tick period = opts.statsPeriod ? opts.statsPeriod : 1;
    queueDepthSeries = std::make_unique<stats::Timeseries>(
        statsRoot.get(), "queueDepthSeries",
        "admission queue depth per completed request", period,
        [this] {
            return static_cast<double>(
                statQueueDepth.load(std::memory_order_relaxed));
        },
        stats::Timeseries::Mode::Cumulative);
    shedSeries = std::make_unique<stats::Timeseries>(
        statsRoot.get(), "shedSeries",
        "overload sheds per completed request", period,
        [this] {
            return static_cast<double>(
                statShed.load(std::memory_order_relaxed));
        },
        stats::Timeseries::Mode::Delta);
}

Server::~Server()
{
    if (started.load(std::memory_order_relaxed))
        stop();
}

bool
Server::start()
{
    if (opts.socketPath.empty() ||
        opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        warn("scusimd: invalid socket path '%s'",
             opts.socketPath.c_str());
        return false;
    }
    if (!opts.journalDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.journalDir, ec);
        if (ec) {
            warn("scusimd: cannot create journal dir '%s': %s",
                 opts.journalDir.c_str(), ec.message().c_str());
            return false;
        }
    }

    listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0) {
        warn("scusimd: socket(): %s", std::strerror(errno));
        return false;
    }
    ::unlink(opts.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        warn("scusimd: cannot listen on '%s': %s",
             opts.socketPath.c_str(), std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    const int fl = ::fcntl(listenFd, F_GETFL);
    ::fcntl(listenFd, F_SETFL, fl | O_NONBLOCK);

    if (::pipe(wakeFd) != 0) {
        warn("scusimd: pipe(): %s", std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    for (int fd : wakeFd) {
        const int f = ::fcntl(fd, F_GETFL);
        ::fcntl(fd, F_SETFL, f | O_NONBLOCK);
    }

    recoverJournal();

    stopWorkers = false;
    draining.store(false, std::memory_order_relaxed);
    ioRunning.store(true, std::memory_order_relaxed);
    started.store(true, std::memory_order_relaxed);
    const unsigned workers = opts.workers ? opts.workers : 1;
    for (unsigned i = 0; i < workers; ++i)
        workerThreads.emplace_back([this] { workerLoop(); });
    ioThread = std::thread([this] { ioLoop(); });
    inform("scusimd: serving on %s (%u workers, queue %zu)",
           opts.socketPath.c_str(), workers, opts.maxQueueDepth);
    return true;
}

void
Server::requestShutdown()
{
    // Only async-signal-safe calls here: a SIGTERM handler invokes
    // this directly.
    if (wakeFd[1] >= 0) {
        const char c = 's';
        [[maybe_unused]] ssize_t n = ::write(wakeFd[1], &c, 1);
    }
}

bool
Server::running() const
{
    return ioRunning.load(std::memory_order_relaxed);
}

void
Server::stop()
{
    if (!started.load(std::memory_order_relaxed))
        return;
    requestShutdown();
    if (ioThread.joinable())
        ioThread.join();
    {
        std::lock_guard<std::mutex> lock(qMutex);
        stopWorkers = true;
    }
    qCv.notify_all();
    for (auto &t : workerThreads)
        t.join();
    workerThreads.clear();
    for (auto &[fd, conn] : conns) {
        std::lock_guard<std::mutex> lock(conn->wMutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    conns.clear();
    for (int &fd : wakeFd) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    ::unlink(opts.socketPath.c_str());
    started.store(false, std::memory_order_relaxed);

    if (!opts.timeseriesPath.empty()) {
        std::ofstream os(opts.timeseriesPath);
        if (os) {
            std::lock_guard<std::mutex> lock(statsMutex);
            stats::writeTimeseriesCsv(
                os, {queueDepthSeries.get(), shedSeries.get()});
        } else {
            warn("scusimd: cannot write timeseries '%s'",
                 opts.timeseriesPath.c_str());
        }
    }
    std::ostringstream os;
    dumpStats(os);
    inform("scusimd: final stats\n%s", os.str().c_str());
}

HealthInfo
Server::healthSnapshot() const
{
    HealthInfo h;
    h.ok = 1;
    h.connections = statConnections.load(std::memory_order_relaxed);
    h.requestsAccepted = statAccepted.load(std::memory_order_relaxed);
    h.requestsCompleted =
        statCompleted.load(std::memory_order_relaxed);
    h.requestsFailed = statFailed.load(std::memory_order_relaxed);
    h.overloadShed = statShed.load(std::memory_order_relaxed);
    h.framesRejected =
        statFramesRejected.load(std::memory_order_relaxed);
    h.disconnectCancels =
        statDisconnectCancels.load(std::memory_order_relaxed);
    h.journalRecovered =
        statJournalRecovered.load(std::memory_order_relaxed);
    h.cacheQuarantined = harness::runCacheQuarantinedCount();
    h.queueDepth = statQueueDepth.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(qMutex);
        h.inFlight = inFlight;
    }
    h.draining = draining.load(std::memory_order_relaxed) ? 1 : 0;
    return h;
}

void
Server::dumpStats(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(statsMutex);
    statsRoot->dumpAll(os);
}

// ---------------------------------------------------------------- I/O

void
Server::ioLoop()
{
    // simlint: allow(nondeterminism)
    auto drainDeadline = std::chrono::steady_clock::now();
    bool drainArmed = false;

    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({wakeFd[0], POLLIN, 0});
        const bool accepting =
            listenFd >= 0 && !draining.load(std::memory_order_relaxed);
        if (accepting)
            fds.push_back({listenFd, POLLIN, 0});
        std::vector<std::shared_ptr<Connection>> polled;
        for (auto &[fd, conn] : conns) {
            fds.push_back({fd, POLLIN, 0});
            polled.push_back(conn);
        }

        retryIntr([&] {
            return ::poll(fds.data(),
                          static_cast<nfds_t>(fds.size()), 100);
        });

        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wakeFd[0], buf, sizeof buf) > 0) {
            }
            if (!draining.load(std::memory_order_relaxed)) {
                beginDrain();
                // simlint: allow(nondeterminism)
                drainDeadline = std::chrono::steady_clock::now() +
                                std::chrono::duration_cast<
                                    std::chrono::steady_clock::duration>(
                                    std::chrono::duration<double>(
                                        opts.drainSeconds));
                drainArmed = true;
            }
        }

        std::size_t base = accepting ? 2 : 1;
        if (accepting && (fds[1].revents & POLLIN))
            acceptClients();
        for (std::size_t i = 0; i < polled.size(); ++i) {
            const short re = fds[base + i].revents;
            if (re & (POLLIN | POLLHUP | POLLERR))
                serviceConnection(polled[i]);
        }

        if (drainArmed) {
            std::size_t busy;
            {
                std::lock_guard<std::mutex> lock(qMutex);
                busy = inFlight + queue.size();
            }
            // simlint: allow(nondeterminism)
            const auto tNow = std::chrono::steady_clock::now();
            const bool expired = tNow >= drainDeadline;
            if (!busy || expired) {
                finishDrain(expired && busy);
                break;
            }
        }
    }
    ioRunning.store(false, std::memory_order_relaxed);
}

void
Server::acceptClients()
{
    for (;;) {
        const int fd = retryIntr([&] {
            return ::accept(listenFd, nullptr, nullptr);
        });
        if (fd < 0)
            break;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->id = nextConnId++;
        conns.emplace(fd, conn);
        statConnections.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::serviceConnection(const std::shared_ptr<Connection> &conn)
{
    // Drain all available bytes without blocking the I/O thread.
    char buf[4096];
    bool eof = false;
    for (;;) {
        int fd;
        {
            std::lock_guard<std::mutex> lock(conn->wMutex);
            fd = conn->fd;
        }
        if (fd < 0) {
            eof = true;
            break;
        }
        const ssize_t n = retryIntr([&] {
            return static_cast<int>(
                ::recv(fd, buf, sizeof buf, MSG_DONTWAIT));
        });
        if (n > 0) {
            conn->rbuf.append(buf, static_cast<std::size_t>(n));
            if (conn->rbuf.size() >
                maxFramePayload + frameHeaderBytes) {
                statFramesRejected.fetch_add(
                    1, std::memory_order_relaxed);
                sendReject(conn, FailureKind::Invariant,
                           "oversized frame buffer");
                closeConnection(conn);
                return;
            }
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        eof = true;
        break;
    }

    for (;;) {
        Frame f;
        std::string why;
        const FrameStatus st = parseFrame(conn->rbuf, f, &why);
        if (st == FrameStatus::NeedMore)
            break;
        if (st == FrameStatus::Malformed) {
            statFramesRejected.fetch_add(1,
                                         std::memory_order_relaxed);
            warn("scusimd: dropping connection %llu: %s",
                 static_cast<unsigned long long>(conn->id),
                 why.c_str());
            sendReject(conn, FailureKind::Invariant,
                       "malformed frame: " + why);
            closeConnection(conn);
            return;
        }
        dispatchFrame(conn, f);
    }

    if (eof)
        handleDisconnect(conn);
}

void
Server::dispatchFrame(const std::shared_ptr<Connection> &conn,
                      const Frame &frame)
{
    switch (frame.type) {
      case FrameType::Submit:
        handleSubmit(conn, frame);
        return;
      case FrameType::Health:
        sendFrame(conn, FrameType::HealthReply,
                  encodeHealth(healthSnapshot()));
        return;
      case FrameType::Result:
      case FrameType::Reject:
      case FrameType::HealthReply:
        // Reply types have no business arriving at the server;
        // treat them like any other protocol violation.
        statFramesRejected.fetch_add(1, std::memory_order_relaxed);
        sendReject(conn, FailureKind::Invariant,
                   "reply frame sent to server");
        closeConnection(conn);
        return;
    }
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Frame &frame)
{
    RunRequest req;
    std::string err;
    if (!decodeRunRequest(frame.payload, req, err)) {
        // A malformed *request* in a well-formed frame: the framing
        // is intact, so reject the request but keep the connection.
        statFramesRejected.fetch_add(1, std::memory_order_relaxed);
        sendReject(conn, FailureKind::Invariant,
                   "bad request: " + err);
        return;
    }

    if (draining.load(std::memory_order_relaxed)) {
        statShed.fetch_add(1, std::memory_order_relaxed);
        sendReject(conn, FailureKind::Overloaded,
                   "daemon shutting down");
        return;
    }

    double budget = opts.defaultWallBudget;
    if (req.deadlineMs)
        budget = std::min(
            budget, static_cast<double>(req.deadlineMs) / 1000.0);

    {
        std::lock_guard<std::mutex> lock(qMutex);
        const bool depthFull = queue.size() >= opts.maxQueueDepth;
        const bool budgetFull =
            opts.maxPendingWallSeconds > 0 &&
            pendingWallSeconds + budget > opts.maxPendingWallSeconds;
        if (depthFull || budgetFull) {
            statShed.fetch_add(1, std::memory_order_relaxed);
            sendReject(conn, FailureKind::Overloaded,
                       depthFull ? "admission queue full"
                                 : "pending wall budget exhausted");
            return;
        }
    }

    auto r = std::make_shared<Request>();
    r->req = req;
    if (!prepareRequest(r, err)) {
        sendReject(conn, FailureKind::Invariant,
                   "bad store file: " + err);
        return;
    }
    r->conn = conn;
    r->wallBudget = budget;
    // simlint: allow(nondeterminism)
    r->accepted = std::chrono::steady_clock::now();

    // Journal before admitting: from this instant a kill -9 cannot
    // lose the request — the restarted daemon re-executes it.
    if (!journalWrite(r)) {
        sendReject(conn, FailureKind::Overloaded,
                   "journal write failed");
        return;
    }

    // Prune answered requests so long-lived connections do not
    // accumulate bookkeeping.
    auto &pending = conn->pending;
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [](const auto &p) {
                                     return p->done.load(
                                         std::memory_order_relaxed);
                                 }),
                  pending.end());
    pending.push_back(r);

    {
        std::lock_guard<std::mutex> lock(qMutex);
        queue.push_back(r);
        pendingWallSeconds += budget;
        statQueueDepth.store(queue.size(),
                             std::memory_order_relaxed);
    }
    statAccepted.fetch_add(1, std::memory_order_relaxed);
    qCv.notify_one();
}

void
Server::handleDisconnect(const std::shared_ptr<Connection> &conn)
{
    for (const auto &r : conn->pending) {
        if (!r->done.load(std::memory_order_relaxed)) {
            r->cancel.store(true, std::memory_order_relaxed);
            statDisconnectCancels.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    conn->pending.clear();
    closeConnection(conn);
}

void
Server::closeConnection(const std::shared_ptr<Connection> &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn->wMutex);
        if (conn->fd >= 0) {
            conns.erase(conn->fd);
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
}

bool
Server::sendFrame(const std::shared_ptr<Connection> &conn,
                  FrameType type, const std::string &payload)
{
    if (!conn)
        return false;
    const std::string bytes = encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(conn->wMutex);
    if (conn->fd < 0)
        return false;
    std::size_t off = 0;
    // simlint: allow(nondeterminism)
    const auto sendStart = std::chrono::steady_clock::now();
    const auto give_up =
        sendStart +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.sendTimeoutSeconds));
    while (off < bytes.size()) {
        const ssize_t n = retryIntr([&] {
            return static_cast<int>(
                ::send(conn->fd, bytes.data() + off,
                       bytes.size() - off,
                       MSG_DONTWAIT | MSG_NOSIGNAL));
        });
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // simlint: allow(nondeterminism)
            if (std::chrono::steady_clock::now() >= give_up) {
                // A peer that stopped reading must not wedge a
                // worker: give up and let the I/O thread reap the
                // half-closed connection.
                ::shutdown(conn->fd, SHUT_RDWR);
                return false;
            }
            pollfd p{conn->fd, POLLOUT, 0};
            retryIntr([&] { return ::poll(&p, 1, 100); });
            continue;
        }
        return false;
    }
    return true;
}

void
Server::sendReject(const std::shared_ptr<Connection> &conn,
                   FailureKind kind, const std::string &message)
{
    RejectInfo info;
    info.kind = kind;
    info.message = message;
    sendFrame(conn, FrameType::Reject, encodeReject(info));
}

// ------------------------------------------------------------ workers

void
Server::workerLoop()
{
    for (;;) {
        std::shared_ptr<Request> req;
        {
            std::unique_lock<std::mutex> lock(qMutex);
            qCv.wait(lock, [this] {
                return stopWorkers || !queue.empty();
            });
            if (stopWorkers)
                return;
            req = queue.front();
            queue.pop_front();
            ++inFlight;
            statQueueDepth.store(queue.size(),
                                 std::memory_order_relaxed);
        }
        executeRequest(req);
        {
            std::lock_guard<std::mutex> lock(qMutex);
            --inFlight;
            pendingWallSeconds -= req->wallBudget;
            if (pendingWallSeconds < 0)
                pendingWallSeconds = 0;
        }
    }
}

void
Server::executeRequest(const std::shared_ptr<Request> &req)
{
    if (req->cancel.load(std::memory_order_relaxed)) {
        // The client vanished (or shutdown cancelled the run) before
        // a worker picked it up.
        noteRequestDone(req, false, true);
        return;
    }

    harness::PlannedRun run;
    run.key = req->key;
    run.label = req->label;
    run.cfg = req->req.cfg;

    // Store-backed request: map (or reuse) the interned store file
    // and hand the run its borrowed graph plus the durable
    // fingerprint the key already embeds — the run cache can then
    // store the outcome like any dataset run.
    std::shared_ptr<store::MappedGraph> mg;
    if (!req->req.storeFile.empty()) {
        std::string err;
        mg = internStore(req->req.storeFile, req->graphFp, err);
        if (!mg) {
            noteRequestDone(req, false, false);
            if (req->conn)
                sendReject(req->conn, FailureKind::Invariant,
                           "store file: " + err);
            return;
        }
        run.graph = &mg->graph();
        run.graphFp = req->graphFp;
    }

    harness::ExecutorOptions eo;
    eo.jobs = 1; // the service worker pool is the parallelism
    eo.maxRetries = opts.maxRetries;
    eo.backoffBaseMs = opts.backoffBaseMs;
    eo.backoffCapMs = opts.backoffCapMs;
    eo.guards.wallSeconds = req->wallBudget;
    eo.guards.cancel = &req->cancel;
    eo.cancel = &req->cancel;

    harness::PlanResults results =
        harness::runPlan(std::vector<harness::PlannedRun>{run}, eo);
    const harness::RunRecord &rec = results.records().front();

    const bool cancelled =
        req->cancel.load(std::memory_order_relaxed) && !rec.ok;
    noteRequestDone(req, rec.ok, cancelled);
    if (!cancelled && req->conn)
        sendFrame(req->conn, FrameType::Result,
                  harness::encodeRunRecord(rec));
}

bool
Server::prepareRequest(const std::shared_ptr<Request> &req,
                       std::string &err)
{
    if (!req->req.storeFile.empty()) {
        // Re-derive identity from the daemon's own read of the
        // header — never from the client's claimed dataset label.
        store::ScugHeader h;
        if (!store::readStoreHeader(req->req.storeFile, h, &err))
            return false;
        req->req.cfg.dataset =
            store::fingerprintLabel(h.fingerprint);
        req->graphFp = store::fingerprintHex(h.fingerprint);
    }
    req->key =
        harness::runKey(req->req.cfg, nullptr, req->graphFp);
    req->label = harness::runLabel(req->req.cfg);
    return true;
}

std::shared_ptr<store::MappedGraph>
Server::internStore(const std::string &path, const std::string &fp,
                    std::string &err)
{
    // Serializing first opens under the map mutex is deliberate: two
    // workers racing on a cold store would both pay the full
    // fingerprint verification otherwise, and opens are rare.
    std::lock_guard<std::mutex> lock(internMutex);
    auto it = internedStores.find(fp);
    if (it != internedStores.end())
        return it->second;
    store::OpenOptions oo;
    oo.budgetBytes = store::storeBudget();
    auto mg = store::MappedGraph::open(path, oo, &err);
    if (!mg)
        return nullptr;
    if (store::fingerprintHex(mg->fingerprint()) != fp) {
        err = "store file changed between admission and execution";
        return nullptr;
    }
    auto sp =
        std::shared_ptr<store::MappedGraph>(std::move(mg));
    internedStores.emplace(fp, sp);
    return sp;
}

void
Server::noteRequestDone(const std::shared_ptr<Request> &req,
                        bool ok, bool cancelled)
{
    req->done.store(true, std::memory_order_relaxed);
    if (!(cancelled && req->keepJournal.load(std::memory_order_relaxed)))
        journalRemove(req);
    if (cancelled)
        return;
    if (ok)
        statCompleted.fetch_add(1, std::memory_order_relaxed);
    else
        statFailed.fetch_add(1, std::memory_order_relaxed);
    // simlint: allow(nondeterminism)
    const auto now = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now -
                                                  req->accepted)
            .count();
    const std::uint64_t seq =
        statDoneSeq.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(statsMutex);
    latencyMs->sample(ms);
    queueDepthSeries->sampleUpTo(seq);
    shedSeries->sampleUpTo(seq);
}

// ------------------------------------------------------------ shutdown

void
Server::beginDrain()
{
    draining.store(true, std::memory_order_relaxed);
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    // Shed the queue: each waiting client gets a typed Overloaded
    // reply now, and the journal keeps the request for the next
    // daemon instance to re-serve.
    std::deque<std::shared_ptr<Request>> shed;
    {
        std::lock_guard<std::mutex> lock(qMutex);
        shed.swap(queue);
        statQueueDepth.store(0, std::memory_order_relaxed);
    }
    for (const auto &r : shed) {
        r->keepJournal.store(true, std::memory_order_relaxed);
        r->cancel.store(true, std::memory_order_relaxed);
        r->done.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(qMutex);
            pendingWallSeconds -= r->wallBudget;
            if (pendingWallSeconds < 0)
                pendingWallSeconds = 0;
        }
        statShed.fetch_add(1, std::memory_order_relaxed);
        if (r->conn)
            sendReject(r->conn, FailureKind::Overloaded,
                       "daemon shutting down; request journaled");
    }
    inform("scusimd: draining (%zu queued shed, journal kept)",
           shed.size());
}

void
Server::finishDrain(bool force)
{
    if (force) {
        // The drain budget expired: cancel what is still running but
        // keep the journal entries so a restart finishes the work.
        std::lock_guard<std::mutex> lock(qMutex);
        warn("scusimd: drain budget expired with %zu runs in "
             "flight; cancelling",
             inFlight);
    }
    std::vector<std::shared_ptr<Connection>> all;
    for (auto &[fd, conn] : conns)
        all.push_back(conn);
    for (const auto &conn : all) {
        for (const auto &r : conn->pending) {
            if (!r->done.load(std::memory_order_relaxed)) {
                r->keepJournal.store(true, std::memory_order_relaxed);
                r->cancel.store(true, std::memory_order_relaxed);
            }
        }
    }
}

// ------------------------------------------------------------- journal

std::string
Server::journalPathFor(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.req",
                  static_cast<unsigned long long>(stableHash(key)));
    return opts.journalDir + "/" + name;
}

bool
Server::journalWrite(const std::shared_ptr<Request> &req)
{
    if (opts.journalDir.empty())
        return true;
    req->journalPath = journalPathFor(req->key);
    std::ostringstream tmpName;
    tmpName << req->journalPath << ".tmp." << ::getpid();
    {
        std::ofstream out(tmpName.str(),
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("scusimd: cannot write journal '%s'",
                 tmpName.str().c_str());
            return false;
        }
        out << "scusimd-journal " << journalSchemaVersion << '\n'
            << encodeRunRequest(req->req);
        if (!out.good()) {
            out.close();
            std::remove(tmpName.str().c_str());
            warn("scusimd: short journal write '%s'",
                 tmpName.str().c_str());
            return false;
        }
    }
    if (std::rename(tmpName.str().c_str(),
                    req->journalPath.c_str()) != 0) {
        std::remove(tmpName.str().c_str());
        warn("scusimd: journal rename to '%s' failed",
             req->journalPath.c_str());
        return false;
    }
    return true;
}

void
Server::journalRemove(const std::shared_ptr<Request> &req)
{
    if (!req->journalPath.empty())
        std::remove(req->journalPath.c_str());
}

void
Server::recoverJournal()
{
    if (opts.journalDir.empty())
        return;
    std::vector<std::string> entries;
    std::error_code ec;
    for (const auto &e : std::filesystem::directory_iterator(
             opts.journalDir, ec)) {
        if (e.path().extension() == ".req")
            entries.push_back(e.path().string());
    }
    if (ec)
        return;
    std::sort(entries.begin(), entries.end());
    for (const std::string &path : entries) {
        std::string text;
        {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            text = buf.str();
        }
        std::istringstream is(text);
        std::string word, ver;
        RunRequest req;
        std::string err = "bad journal header";
        bool ok = (is >> word >> ver) &&
                  word == "scusimd-journal" &&
                  ver == std::to_string(journalSchemaVersion) &&
                  is.get() == '\n';
        if (ok) {
            std::string rest;
            std::getline(is, rest, '\0');
            ok = decodeRunRequest(rest, req, err);
        }
        if (!ok) {
            // Same quarantine discipline as the run cache: corrupt
            // entries are renamed aside, not reparsed forever.
            warn("scusimd: quarantining corrupt journal entry "
                 "'%s' (%s)",
                 path.c_str(), err.c_str());
            std::rename(path.c_str(), (path + ".corrupt").c_str());
            continue;
        }
        auto r = std::make_shared<Request>();
        r->req = req;
        if (!prepareRequest(r, err)) {
            // A journaled store-backed request whose file vanished
            // or rotted offline: same quarantine treatment.
            warn("scusimd: quarantining journal entry '%s' whose "
                 "store file is unusable (%s)",
                 path.c_str(), err.c_str());
            std::rename(path.c_str(), (path + ".corrupt").c_str());
            continue;
        }
        r->conn = nullptr; // no client: execute for the cache only
        r->wallBudget = opts.defaultWallBudget;
        r->journalPath = path;
        // simlint: allow(nondeterminism)
        r->accepted = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(qMutex);
            queue.push_back(r);
            pendingWallSeconds += r->wallBudget;
            statQueueDepth.store(queue.size(),
                                 std::memory_order_relaxed);
        }
        statJournalRecovered.fetch_add(1,
                                       std::memory_order_relaxed);
        inform("scusimd: recovered journaled request %s",
               r->label.c_str());
    }
}

} // namespace scusim::service
