/**
 * @file
 * The scusimd resident simulation service. A long-lived server
 * accepts plan submissions over a Unix-domain socket and multiplexes
 * them onto the existing run tiers — the in-process memo, the
 * interned-dataset cache and the persistent SCUSIM_CACHE_DIR run
 * cache — so a fleet of clients shares one warm simulator instead of
 * each process re-parsing, re-building and re-simulating.
 *
 * The robustness envelope is the point of this layer:
 *
 *  - malformed, oversized or truncated frames are rejected and the
 *    offending connection dropped, never the daemon;
 *  - a bounded admission queue (depth and pending-wall-budget caps)
 *    sheds load with a typed Overloaded reply instead of queueing
 *    without bound or hanging the client;
 *  - every run executes under the PR 3 supervision machinery
 *    (tick/stall/wall budgets, cancellation checkpoints), so a
 *    runaway plan kills that run, not the server;
 *  - a client that vanishes mid-run has its work cancelled through
 *    the same cooperative-cancellation hooks;
 *  - accepted-but-unfinished requests live in a schema-versioned
 *    on-disk journal (atomic tmp+rename writes); a daemon killed at
 *    any instant — SIGTERM drain or kill -9 — restarts, re-executes
 *    the journal and serves the results byte-identically via the
 *    run cache.
 */

#ifndef SCUSIM_SERVICE_SERVER_HH
#define SCUSIM_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hh"
#include "stats/stats.hh"
#include "stats/timeseries.hh"
#include "store/mapped_graph.hh"

namespace scusim::service
{

/** Journal entry layout version; bump on incompatible change. */
constexpr unsigned journalSchemaVersion = 2;

/** Server configuration. */
struct ServerOptions
{
    /** Unix-domain socket path (required; < 100 chars). */
    std::string socketPath;
    /** Worker threads executing admitted runs. */
    unsigned workers = 2;
    /** Admission queue bound; deeper submissions are shed. */
    std::size_t maxQueueDepth = 64;
    /**
     * Cap on the summed wall budgets of queued + in-flight runs in
     * seconds; exceeding it sheds even when the queue has slots.
     * 0 disables the budget cap.
     */
    double maxPendingWallSeconds = 0;
    /** Per-run wall-clock budget cap (client deadlines clamp to it). */
    double defaultWallBudget = 300;
    /** Transient-failure retries per run (executor policy). */
    unsigned maxRetries = 1;
    unsigned backoffBaseMs = 25;
    unsigned backoffCapMs = 2000;
    /** Crash journal directory; empty disables journaling. */
    std::string journalDir;
    /** Max seconds to wait for in-flight runs on shutdown. */
    double drainSeconds = 30;
    /** Seconds a reply write may block before the peer is dropped. */
    double sendTimeoutSeconds = 10;
    /** Timeseries window in completed requests. */
    unsigned statsPeriod = 1;
    /** Write the queue-depth/shed timeseries CSV here on stop(). */
    std::string timeseriesPath;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket, recover the journal and spawn the I/O and
     * worker threads. Returns false (after a warn) when the socket
     * cannot be created.
     */
    bool start();

    /**
     * Request a graceful shutdown: stop accepting, shed the queue
     * with journaled Overloaded replies, drain in-flight runs (up to
     * drainSeconds). Async-signal-safe — a signal handler may call
     * it directly.
     */
    void requestShutdown();

    /** Block until shutdown completes; then join all threads. */
    void stop();

    /** Whether the I/O thread is still serving. */
    bool running() const;

    /** Current externally visible vitals (health probe contents). */
    HealthInfo healthSnapshot() const;

    /** Dump the scusimd stat group (counters, latency, series). */
    void dumpStats(std::ostream &os) const;

    const ServerOptions &options() const { return opts; }

  private:
    struct Connection;
    struct Request;

    void ioLoop();
    void workerLoop();
    void acceptClients();
    void serviceConnection(const std::shared_ptr<Connection> &conn);
    void dispatchFrame(const std::shared_ptr<Connection> &conn,
                       const Frame &frame);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Frame &frame);
    void handleDisconnect(const std::shared_ptr<Connection> &conn);
    void closeConnection(const std::shared_ptr<Connection> &conn);
    bool sendFrame(const std::shared_ptr<Connection> &conn,
                   FrameType type, const std::string &payload);
    void sendReject(const std::shared_ptr<Connection> &conn,
                    FailureKind kind, const std::string &message);
    void executeRequest(const std::shared_ptr<Request> &req);
    /**
     * Canonicalize a request's identity (store-backed submissions
     * get their dataset label and key re-derived from the daemon's
     * own read of the store header) and fill key/label. False with a
     * reason when the store file is unreadable or damaged.
     */
    bool prepareRequest(const std::shared_ptr<Request> &req,
                        std::string &err);
    /**
     * The daemon's interned-dataset tier for store files: one shared
     * read-only mapping per content fingerprint, held for the daemon
     * lifetime, verified (full fingerprint check) on first open.
     * Every worker — and, through the page cache, every other
     * process mapping the same file — shares the bytes.
     */
    std::shared_ptr<store::MappedGraph>
    internStore(const std::string &path, const std::string &fp,
                std::string &err);
    void beginDrain();
    void finishDrain(bool force);
    void recoverJournal();
    std::string journalPathFor(const std::string &key) const;
    bool journalWrite(const std::shared_ptr<Request> &req);
    void journalRemove(const std::shared_ptr<Request> &req);
    void noteRequestDone(const std::shared_ptr<Request> &req,
                         bool ok, bool cancelled);

    ServerOptions opts;

    int listenFd = -1;
    int wakeFd[2] = {-1, -1}; ///< self-pipe for shutdown signalling

    std::thread ioThread;
    std::vector<std::thread> workerThreads;

    // Admission queue and in-flight accounting (qMutex).
    mutable std::mutex qMutex;
    std::condition_variable qCv;
    std::deque<std::shared_ptr<Request>> queue;
    std::size_t inFlight = 0;
    double pendingWallSeconds = 0;
    bool stopWorkers = false;

    // Connections are owned by the I/O thread; the map itself is
    // only ever touched there.
    std::map<int, std::shared_ptr<Connection>> conns;
    std::uint64_t nextConnId = 1;

    // Interned store-file mappings, keyed by fingerprint hex
    // (internMutex).
    std::mutex internMutex;
    std::map<std::string, std::shared_ptr<store::MappedGraph>>
        internedStores;

    std::atomic<bool> draining{false};
    std::atomic<bool> ioRunning{false};
    std::atomic<bool> started{false};

    // Raw vitals as atomics (updated lock-free from any thread); the
    // StatGroup view reads them through Formulas at dump time.
    std::atomic<std::uint64_t> statConnections{0};
    std::atomic<std::uint64_t> statAccepted{0};
    std::atomic<std::uint64_t> statCompleted{0};
    std::atomic<std::uint64_t> statFailed{0};
    std::atomic<std::uint64_t> statShed{0};
    std::atomic<std::uint64_t> statFramesRejected{0};
    std::atomic<std::uint64_t> statDisconnectCancels{0};
    std::atomic<std::uint64_t> statJournalRecovered{0};
    std::atomic<std::uint64_t> statQueueDepth{0};
    std::atomic<std::uint64_t> statDoneSeq{0};

    // Latency distribution and the request-indexed timeseries
    // (statsMutex; sampled once per completed request).
    mutable std::mutex statsMutex;
    std::unique_ptr<stats::StatGroup> statsRoot;
    std::unique_ptr<stats::Distribution> latencyMs;
    std::unique_ptr<stats::Timeseries> queueDepthSeries;
    std::unique_ptr<stats::Timeseries> shedSeries;
    std::vector<std::unique_ptr<stats::Formula>> formulas;
};

} // namespace scusim::service

#endif // SCUSIM_SERVICE_SERVER_HH
