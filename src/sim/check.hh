/**
 * @file
 * Compile-time-gated runtime invariant layer for the simulator's
 * hardware-modeling contracts. Enabled with -DSCUSIM_CHECK=ON (and
 * automatically in every sanitizer build); compiled out entirely
 * otherwise, so Release timing runs pay nothing.
 *
 * The checks encode contracts that, when silently violated, corrupt
 * results rather than crash: events scheduled into the past fire at
 * the wrong tick, a memory completion before its issue travels
 * backwards in time through every downstream latency computation,
 * a ClockedObject ticked non-monotonically is usually a component
 * shared between two Simulations (a determinism bug under the
 * parallel executor), and an overfull SCU hash group corrupts the
 * grouping traffic model. A violated check panics (aborts), which is
 * what the tier-1 death tests in tests/check_test.cc assert.
 */

#ifndef SCUSIM_SIM_CHECK_HH
#define SCUSIM_SIM_CHECK_HH

#include <cstddef>

#include "common/logging.hh"
#include "common/types.hh"

#ifdef SCUSIM_CHECK
#define SCUSIM_CHECK_ENABLED 1
#else
#define SCUSIM_CHECK_ENABLED 0
#endif

/**
 * Assert a simulator invariant. Active only in checked builds, but
 * the condition must always compile so checks cannot bitrot.
 */
#if SCUSIM_CHECK_ENABLED
#define sim_check(cond, ...) panic_if(!(cond), __VA_ARGS__)
#else
#define sim_check(cond, ...)                                            \
    do {                                                                \
        if (false) {                                                    \
            (void)(cond);                                               \
        }                                                               \
    } while (0)
#endif

namespace scusim::sim
{

/** Whether the invariant layer is compiled in (for tests to skip). */
constexpr bool checksEnabled = SCUSIM_CHECK_ENABLED != 0;

/**
 * Event-queue contract: an event must never be scheduled before the
 * queue's service horizon (the latest tick already serviced) — it
 * would fire late, at a tick the rest of the system has moved past.
 */
inline void
checkScheduleTick(Tick when, Tick horizon)
{
    sim_check(when >= horizon,
              "event scheduled into the past: when=%llu < "
              "service horizon %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(horizon));
}

/**
 * Memory-timing contract: an access completes at or after the tick
 * it was issued. @p who names the level for the diagnostic.
 */
inline void
checkMemCompletion([[maybe_unused]] const char *who, Tick issue,
                   Tick complete)
{
    sim_check(complete >= issue,
              "%s: completion tick %llu precedes issue tick %llu",
              who, static_cast<unsigned long long>(complete),
              static_cast<unsigned long long>(issue));
}

/**
 * Clocked contract: tick() is driven with non-decreasing time. A
 * violation almost always means one component is registered with two
 * Simulations at once.
 */
inline void
checkTickMonotonic([[maybe_unused]] const char *what, Tick now,
                   Tick last)
{
    sim_check(now >= last,
              "%s ticked backwards: now=%llu < last tick %llu",
              what, static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(last));
}

/**
 * Bounded-structure contract: occupancy never exceeds capacity
 * (SCU hash groups, FIFOs sized from Table 2).
 */
inline void
checkOccupancy([[maybe_unused]] const char *what,
               std::size_t occupancy, std::size_t capacity)
{
    sim_check(occupancy <= capacity,
              "%s overfull: %zu entries in capacity %zu", what,
              occupancy, capacity);
}

} // namespace scusim::sim

#endif // SCUSIM_SIM_CHECK_HH
