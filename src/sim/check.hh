/**
 * @file
 * Compile-time-gated runtime invariant layer for the simulator's
 * hardware-modeling contracts. Enabled with -DSCUSIM_CHECK=ON (and
 * automatically in every sanitizer build); compiled out entirely
 * otherwise, so Release timing runs pay nothing.
 *
 * The checks encode contracts that, when silently violated, corrupt
 * results rather than crash: events scheduled into the past fire at
 * the wrong tick, a memory completion before its issue travels
 * backwards in time through every downstream latency computation,
 * a ClockedObject ticked non-monotonically is usually a component
 * shared between two Simulations (a determinism bug under the
 * parallel executor), and an overfull SCU hash group corrupts the
 * grouping traffic model. A violated check panics (aborts), which is
 * what the tier-1 death tests in tests/check_test.cc assert.
 */

#ifndef SCUSIM_SIM_CHECK_HH
#define SCUSIM_SIM_CHECK_HH

#include <cstddef>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

#ifdef SCUSIM_CHECK
#define SCUSIM_CHECK_ENABLED 1
#else
#define SCUSIM_CHECK_ENABLED 0
#endif

/**
 * Assert a simulator invariant. Active only in checked builds, but
 * the condition must always compile so checks cannot bitrot. A
 * violation is classified FailureKind::Invariant: it aborts
 * standalone (death tests) and throws SimError under the executor's
 * error trap (see common/sim_error.hh).
 */
#if SCUSIM_CHECK_ENABLED
#define sim_check(cond, ...)                                            \
    do {                                                                \
        if (!(cond))                                                    \
            sim_invariant(__VA_ARGS__);                                 \
    } while (0)
#else
#define sim_check(cond, ...)                                            \
    do {                                                                \
        if (false) {                                                    \
            (void)(cond);                                               \
        }                                                               \
    } while (0)
#endif

namespace scusim::sim
{

/** Whether the invariant layer is compiled in (for tests to skip). */
constexpr bool checksEnabled = SCUSIM_CHECK_ENABLED != 0;

/**
 * Event-queue contract: an event must never be scheduled before the
 * queue's service horizon (the latest tick already serviced) — it
 * would fire late, at a tick the rest of the system has moved past.
 */
inline void
checkScheduleTick(Tick when, Tick horizon)
{
    sim_check(when >= horizon,
              "event scheduled into the past: when=%llu < "
              "service horizon %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(horizon));
}

/**
 * Memory-timing contract: an access completes at or after the tick
 * it was issued. @p who names the level for the diagnostic.
 */
inline void
checkMemCompletion([[maybe_unused]] const char *who, Tick issue,
                   Tick complete)
{
    sim_check(complete >= issue,
              "%s: completion tick %llu precedes issue tick %llu",
              who, static_cast<unsigned long long>(complete),
              static_cast<unsigned long long>(issue));
}

/**
 * Clocked contract: tick() is driven with non-decreasing time. A
 * violation almost always means one component is registered with two
 * Simulations at once.
 */
inline void
checkTickMonotonic([[maybe_unused]] const char *what, Tick now,
                   Tick last)
{
    sim_check(now >= last,
              "%s ticked backwards: now=%llu < last tick %llu",
              what, static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(last));
}

/**
 * Bounded-structure contract: occupancy never exceeds capacity
 * (SCU hash groups, FIFOs sized from Table 2).
 */
inline void
checkOccupancy([[maybe_unused]] const char *what,
               std::size_t occupancy, std::size_t capacity)
{
    sim_check(occupancy <= capacity,
              "%s overfull: %zu entries in capacity %zu", what,
              occupancy, capacity);
}

/**
 * FIFO credit-accounting contract: the number of elements popped
 * never exceeds the number pushed, and the difference equals the
 * queue's occupancy. A drift means a producer and a consumer
 * disagree about back-pressure credits — the hardware analogue loses
 * or duplicates flow-control credits and hangs.
 */
inline void
checkFifoCredits([[maybe_unused]] const char *what,
                 std::uint64_t pushes, std::uint64_t pops,
                 std::size_t occupancy)
{
    sim_check(pops <= pushes && pushes - pops == occupancy,
              "%s credit drift: %llu pushes - %llu pops != %zu "
              "occupancy",
              what, static_cast<unsigned long long>(pushes),
              static_cast<unsigned long long>(pops), occupancy);
}

/**
 * Coalescing-window contract: merging a warp's lane addresses can
 * produce at most one transaction per lane, and at least one when
 * any lane is active. Outside those bounds the coalescer fabricated
 * or lost traffic, corrupting every bandwidth-derived metric.
 */
inline void
checkCoalesceBounds(std::size_t lanes, std::size_t txns)
{
    sim_check(txns <= lanes && (lanes == 0 || txns >= 1),
              "coalescer window out of bounds: %zu lanes merged "
              "into %zu transactions",
              lanes, txns);
}

} // namespace scusim::sim

#endif // SCUSIM_SIM_CHECK_HH
