/**
 * @file
 * Clock domain: converts between core cycles and wall-clock seconds.
 * The whole simulated system (SMs, SCU, L2) runs in the GPU core
 * domain, as in the paper ("We match the SCU frequency to the one of
 * the target GPU"); DRAM timing is expressed in core cycles too.
 */

#ifndef SCUSIM_SIM_CLOCK_HH
#define SCUSIM_SIM_CLOCK_HH

#include "common/types.hh"

namespace scusim::sim
{

/** A clock domain with a fixed frequency. */
class ClockDomain
{
  public:
    explicit ClockDomain(double freq_hz = 1e9) : freq(freq_hz) {}

    double frequency() const { return freq; }

    /** Convert a cycle count to seconds. */
    double
    toSeconds(Tick cycles) const
    {
        return static_cast<double>(cycles) / freq;
    }

    /** Convert nanoseconds to (rounded-up) cycles. */
    Tick
    fromNs(double ns) const
    {
        double cycles = ns * 1e-9 * freq;
        auto t = static_cast<Tick>(cycles);
        return (static_cast<double>(t) < cycles) ? t + 1 : t;
    }

    /** Cycles needed to move @p bytes at @p bytes_per_sec. */
    Tick
    cyclesForBytes(double bytes, double bytes_per_sec) const
    {
        double secs = bytes / bytes_per_sec;
        double cycles = secs * freq;
        auto t = static_cast<Tick>(cycles);
        return (static_cast<double>(t) < cycles) ? t + 1 : t;
    }

  private:
    double freq;
};

} // namespace scusim::sim

#endif // SCUSIM_SIM_CLOCK_HH
