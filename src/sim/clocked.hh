/**
 * @file
 * Interface for cycle-stepped components (SMs, the SCU pipeline).
 */

#ifndef SCUSIM_SIM_CLOCKED_HH
#define SCUSIM_SIM_CLOCKED_HH

#include <cstddef>

#include "common/types.hh"
#include "sim/check.hh"

namespace scusim::sim
{

class Simulation;

/**
 * A component advanced once per simulated cycle while it has work.
 * When every Clocked object is idle the simulation fast-forwards to
 * the earliest nextWakeTick() (e.g. an outstanding memory response).
 *
 * Scheduling contract: the owning Simulation caches each component's
 * earliest-busy tick (from busy()/nextWakeTick()) and re-derives it
 * after every tick() it delivers. State changes that arrive *outside*
 * tick() — new work handed to an idle component, e.g. a kernel launch
 * — must call notifyWake() so the event-driven scheduler re-arms;
 * run()/step() also re-derive every component's wake on entry, so a
 * missed notification between calls cannot strand a component.
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle at absolute time @p now. */
    virtual void tick(Tick now) = 0;

    /** True if the component can make progress at tick @p now. */
    virtual bool busy(Tick now) const = 0;

    /**
     * Earliest future tick at which the component will become busy
     * again (tickNever if it is fully drained). Only consulted when
     * busy() is false.
     */
    virtual Tick nextWakeTick() const { return tickNever; }

    /**
     * Invariant bookkeeping called by the Simulation before every
     * tick(): time must be non-decreasing per component. A violation
     * usually means the object is registered with two Simulations —
     * the classic source of nondeterminism under the parallel
     * executor. No-op in unchecked builds.
     */
    void
    noteTick(Tick now)
    {
#if SCUSIM_CHECK_ENABLED
        checkTickMonotonic("Clocked object", now, lastTickSeen);
        lastTickSeen = now;
#else
        (void)now;
#endif
    }

    /**
     * Work units completed so far (instructions issued, warps
     * retired, ...). The Simulation's deadlock watchdog compares the
     * sum across components between ticks: busy components whose
     * progress counters stand still are hung, not working.
     */
    std::uint64_t progressCount() const { return progressed; }

    /**
     * Tell the owning Simulation this component's busy state may
     * have changed outside tick() (new work arrived while idle), so
     * the event-driven scheduler must re-derive its wake tick. No-op
     * when the component is not registered with a Simulation (unit
     * tests) or under the polling scheduler. Defined in
     * simulation.cc (needs the Simulation definition).
     */
    void notifyWake();

  protected:
    /** Record @p n units of forward progress (subclasses' tick()). */
    void noteProgress(std::uint64_t n = 1) { progressed += n; }

  private:
    friend class Simulation;

    /** Latest tick this component was advanced at (checked builds). */
    Tick lastTickSeen = 0;
    std::uint64_t progressed = 0;
    /** Owning scheduler backpointer, set by Simulation::addClocked. */
    Simulation *schedOwner = nullptr;
    /** This component's index in the owning Simulation. */
    std::size_t schedIndex = 0;
};

} // namespace scusim::sim

#endif // SCUSIM_SIM_CLOCKED_HH
