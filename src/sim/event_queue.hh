/**
 * @file
 * Tick-ordered event queue. Used for completion callbacks and for
 * periodic instrumentation (e.g. bandwidth sampling).
 */

#ifndef SCUSIM_SIM_EVENT_QUEUE_HH
#define SCUSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/check.hh"

namespace scusim::sim
{

/**
 * A priority queue of (tick, callback) pairs. Events scheduled for
 * the same tick fire in schedule order (stable via sequence numbers).
 */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    /**
     * Schedule @p cb to run at absolute tick @p when. Scheduling
     * before the service horizon is a simulator bug (checked builds
     * panic): the event would fire late, at the wrong tick.
     */
    void
    schedule(Tick when, Callback cb)
    {
        checkScheduleTick(when, horizon);
        events.push(Entry{when, seq++, std::move(cb)});
    }

    bool empty() const { return events.empty(); }

    /** Tick of the earliest pending event, or tickNever. */
    Tick
    nextTick() const
    {
        return events.empty() ? tickNever : events.top().when;
    }

    /**
     * Run every event scheduled at or before @p now.
     * @return number of events serviced.
     */
    std::size_t
    serviceUpTo(Tick now)
    {
        std::size_t n = 0;
        while (!events.empty() && events.top().when <= now) {
            // Copy out before pop so the callback may schedule more.
            Entry e = events.top();
            events.pop();
            // The horizon tracks the event being serviced, not @p
            // now: a callback at tick t may legally schedule into
            // (t, now] and have the new event fire in this pass.
            if (e.when > horizon)
                horizon = e.when;
            e.cb(e.when);
            ++n;
        }
        servicedCount += n;
        if (now > horizon)
            horizon = now;
        return n;
    }

    std::size_t size() const { return events.size(); }

    /** Total events serviced over the queue's lifetime (progress). */
    std::uint64_t serviced() const { return servicedCount; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t order;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when
                                    : a.order > b.order;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    std::uint64_t seq = 0;
    std::uint64_t servicedCount = 0;
    /** Latest tick passed to serviceUpTo(); schedule floor. */
    Tick horizon = 0;
};

} // namespace scusim::sim

#endif // SCUSIM_SIM_EVENT_QUEUE_HH
