#include "sim/fault.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace scusim::sim
{

const char *
to_string(FaultKind k)
{
    switch (k) {
      case FaultKind::PanicAt:
        return "panic-at";
      case FaultKind::MemDelay:
        return "mem-delay";
      case FaultKind::MemReorder:
        return "mem-reorder";
      case FaultKind::FifoStall:
        return "fifo-stall";
      case FaultKind::ComponentFreeze:
        return "component-freeze";
      case FaultKind::HashCorrupt:
        return "hash-corrupt";
      case FaultKind::IcnDelay:
        return "icn-delay";
      case FaultKind::DramRefreshStorm:
        return "dram-refresh-storm";
      case FaultKind::NumFaultKinds:
        break;
    }
    return "?";
}

FaultKind
faultKindFromString(const std::string &name)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(FaultKind::NumFaultKinds); ++i) {
        const auto k = static_cast<FaultKind>(i);
        if (name == to_string(k))
            return k;
    }
    std::string known;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(FaultKind::NumFaultKinds); ++i) {
        if (i)
            known += "|";
        known += to_string(static_cast<FaultKind>(i));
    }
    fatal("unknown fault kind '%s' (expected %s)", name.c_str(),
          known.c_str());
}

FaultSpec
parseFaultSpec(const std::string &spec)
{
    // "<kind>@<tick>[x<magnitude>][t<target>]", e.g.
    // "mem-delay@1000x100000" or "fifo-stall@0t2".
    const std::size_t atPos = spec.find('@');
    fatal_if(atPos == std::string::npos,
             "malformed fault spec '%s' (expected "
             "<kind>@<tick>[x<magnitude>][t<target>])",
             spec.c_str());

    FaultSpec s;
    s.kind = faultKindFromString(spec.substr(0, atPos));

    std::string rest = spec.substr(atPos + 1);
    const std::size_t tPos = rest.rfind('t');
    if (tPos != std::string::npos) {
        s.target = static_cast<unsigned>(
            std::strtoul(rest.c_str() + tPos + 1, nullptr, 0));
        rest.resize(tPos);
    }
    const std::size_t xPos = rest.find('x');
    if (xPos != std::string::npos) {
        s.magnitude =
            std::strtoull(rest.c_str() + xPos + 1, nullptr, 0);
        rest.resize(xPos);
    }
    fatal_if(rest.empty() ||
                 rest.find_first_not_of("0123456789") !=
                     std::string::npos,
             "malformed fault tick in '%s'", spec.c_str());
    s.at = std::strtoull(rest.c_str(), nullptr, 10);
    return s;
}

std::string
FaultPlan::fingerprint() const
{
    std::ostringstream os;
    for (const auto &s : faults) {
        os << to_string(s.kind) << "@" << s.at << "x" << s.magnitude
           << "t" << s.target << ";";
    }
    return os.str();
}

FaultInjector::FaultInjector(FaultPlan p, std::uint64_t seed)
    : plan(std::move(p)), randGen(seed),
      spent(plan.faults.size(), false)
{
}

std::uint64_t
FaultInjector::fired(FaultKind k) const
{
    return firedCount[static_cast<std::size_t>(k)];
}

void
FaultInjector::checkPanic(Tick now)
{
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::PanicAt || spent[i] || now < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        panic("injected panic at tick %llu (armed for %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(s.at));
    }
}

Tick
FaultInjector::adjustMemCompletion(Tick issue, Tick complete)
{
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (spent[i] || issue < s.at)
            continue;
        if (s.kind == FaultKind::MemDelay) {
            spent[i] = true;
            ++firedCount[static_cast<std::size_t>(s.kind)];
            complete += s.magnitude;
        } else if (s.kind == FaultKind::MemReorder) {
            spent[i] = true;
            ++firedCount[static_cast<std::size_t>(s.kind)];
            complete = issue > s.magnitude ? issue - s.magnitude : 0;
        }
    }
    return complete;
}

bool
FaultInjector::smStalled(unsigned sm, Tick now) const
{
    for (const auto &s : plan.faults) {
        if (s.kind != FaultKind::FifoStall || s.target != sm ||
            now < s.at)
            continue;
        // magnitude 0 stalls forever; otherwise for `magnitude`
        // ticks starting at `at`.
        if (s.magnitude == 0 || now < s.at + s.magnitude)
            return true;
    }
    return false;
}

bool
FaultInjector::frozen(unsigned index, Tick now) const
{
    for (const auto &s : plan.faults) {
        if (s.kind == FaultKind::ComponentFreeze &&
            s.target == index && now >= s.at)
            return true;
    }
    return false;
}

bool
FaultInjector::fireHashCorrupt(Tick now)
{
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::HashCorrupt || spent[i] ||
            now < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        return true;
    }
    return false;
}

Tick
FaultInjector::icnExtraDelay(Tick issue)
{
    Tick extra = 0;
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::IcnDelay || s.target != 0 ||
            spent[i] || issue < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        extra += s.magnitude;
    }
    return extra;
}

Tick
FaultInjector::linkExtraDelay(Tick issue)
{
    Tick extra = 0;
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::IcnDelay || s.target != 1 ||
            spent[i] || issue < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        extra += s.magnitude;
    }
    return extra;
}

Tick
FaultInjector::dramRefreshDelay(Tick issue)
{
    Tick extra = 0;
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::DramRefreshStorm || spent[i] ||
            issue < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        extra += s.magnitude;
    }
    return extra;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    os << "faults:";
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        os << " " << to_string(s.kind) << "@" << s.at
           << (spent[i] ? "(fired)" : "(armed)");
    }
    return os.str();
}

} // namespace scusim::sim
