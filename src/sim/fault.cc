#include "sim/fault.hh"

#include <sstream>

#include "common/logging.hh"

namespace scusim::sim
{

const char *
to_string(FaultKind k)
{
    switch (k) {
      case FaultKind::PanicAt:
        return "panic-at";
      case FaultKind::MemDelay:
        return "mem-delay";
      case FaultKind::MemReorder:
        return "mem-reorder";
      case FaultKind::FifoStall:
        return "fifo-stall";
      case FaultKind::ComponentFreeze:
        return "component-freeze";
      case FaultKind::HashCorrupt:
        return "hash-corrupt";
      case FaultKind::NumFaultKinds:
        break;
    }
    return "?";
}

std::string
FaultPlan::fingerprint() const
{
    std::ostringstream os;
    for (const auto &s : faults) {
        os << to_string(s.kind) << "@" << s.at << "x" << s.magnitude
           << "t" << s.target << ";";
    }
    return os.str();
}

FaultInjector::FaultInjector(FaultPlan p, std::uint64_t seed)
    : plan(std::move(p)), randGen(seed),
      spent(plan.faults.size(), false)
{
}

std::uint64_t
FaultInjector::fired(FaultKind k) const
{
    return firedCount[static_cast<std::size_t>(k)];
}

void
FaultInjector::checkPanic(Tick now)
{
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::PanicAt || spent[i] || now < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        panic("injected panic at tick %llu (armed for %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(s.at));
    }
}

Tick
FaultInjector::adjustMemCompletion(Tick issue, Tick complete)
{
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (spent[i] || issue < s.at)
            continue;
        if (s.kind == FaultKind::MemDelay) {
            spent[i] = true;
            ++firedCount[static_cast<std::size_t>(s.kind)];
            complete += s.magnitude;
        } else if (s.kind == FaultKind::MemReorder) {
            spent[i] = true;
            ++firedCount[static_cast<std::size_t>(s.kind)];
            complete = issue > s.magnitude ? issue - s.magnitude : 0;
        }
    }
    return complete;
}

bool
FaultInjector::smStalled(unsigned sm, Tick now) const
{
    for (const auto &s : plan.faults) {
        if (s.kind != FaultKind::FifoStall || s.target != sm ||
            now < s.at)
            continue;
        // magnitude 0 stalls forever; otherwise for `magnitude`
        // ticks starting at `at`.
        if (s.magnitude == 0 || now < s.at + s.magnitude)
            return true;
    }
    return false;
}

bool
FaultInjector::frozen(unsigned index, Tick now) const
{
    for (const auto &s : plan.faults) {
        if (s.kind == FaultKind::ComponentFreeze &&
            s.target == index && now >= s.at)
            return true;
    }
    return false;
}

bool
FaultInjector::fireHashCorrupt(Tick now)
{
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        if (s.kind != FaultKind::HashCorrupt || spent[i] ||
            now < s.at)
            continue;
        spent[i] = true;
        ++firedCount[static_cast<std::size_t>(s.kind)];
        return true;
    }
    return false;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    os << "faults:";
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec &s = plan.faults[i];
        os << " " << to_string(s.kind) << "@" << s.at
           << (spent[i] ? "(fired)" : "(armed)");
    }
    return os.str();
}

} // namespace scusim::sim
