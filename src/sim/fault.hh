/**
 * @file
 * Deterministic fault injection. A FaultPlan arms a set of faults; a
 * FaultInjector (owned by the Simulation, seeded from the run's RNG
 * seed — never from the wall clock) fires them at deterministic
 * points so the same plan + seed reproduces the same failure
 * bit-for-bit. The point of the subsystem is to *exercise* the
 * defensive stack above it: every FaultKind must be detected and
 * classified as the matching FailureKind by the watchdog, the
 * checked-build invariants or the panic path — never silently
 * averaged into results.
 *
 * Designed detection mapping (asserted by tests/fault_test.cc):
 *
 *   PanicAt          -> FailureKind::Panic     (injected panic())
 *   MemDelay         -> FailureKind::Runaway   (tick budget exceeded)
 *   MemReorder       -> FailureKind::Invariant (completion < issue)
 *   FifoStall        -> FailureKind::Deadlock  (SM busy, no progress)
 *   ComponentFreeze  -> FailureKind::Deadlock  (component never ticks)
 *   HashCorrupt      -> FailureKind::Invariant (entry parity mismatch)
 *   IcnDelay         -> FailureKind::Runaway   (tick budget exceeded)
 *   DramRefreshStorm -> FailureKind::Runaway   (tick budget exceeded)
 */

#ifndef SCUSIM_SIM_FAULT_HH
#define SCUSIM_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace scusim::sim
{

/** The fault classes the injector can arm. */
enum class FaultKind
{
    PanicAt,         ///< panic() once the clock reaches `at`
    MemDelay,        ///< inflate one memory completion by `magnitude`
    MemReorder,      ///< pull one completion `magnitude` before issue
    FifoStall,       ///< freeze SM `target`'s issue FIFO from `at` on
    ComponentFreeze, ///< stop ticking Clocked component `target`
    HashCorrupt,     ///< flip a bit in an SCU hash-table entry
    IcnDelay,        ///< stall one interconnect crossing `magnitude` ticks
    DramRefreshStorm,///< refresh storm: park a DRAM bank `magnitude` ticks
    NumFaultKinds,
};

const char *to_string(FaultKind k);

/** Inverse of to_string; fatal()s on an unknown name (user input). */
FaultKind faultKindFromString(const std::string &name);

/** One armed fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::PanicAt;
    /** Tick at or after which the fault fires (0 = first chance). */
    Tick at = 0;
    /** Kind-specific size: delay/reorder ticks. */
    std::uint64_t magnitude = 0;
    /** Kind-specific target: SM id / Clocked registration index. */
    unsigned target = 0;
};

/**
 * Parse the fingerprint syntax "<kind>@<tick>[x<magnitude>][t<target>]"
 * — the same shape FaultPlan::fingerprint() emits and the bench
 * binaries accept via --inject. fatal()s on malformed input.
 */
FaultSpec parseFaultSpec(const std::string &spec);

/** A (possibly empty) set of faults to arm for one run. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    FaultPlan &
    add(FaultSpec s)
    {
        faults.push_back(s);
        return *this;
    }

    /** Canonical serialization, for run keys (plan identity). */
    std::string fingerprint() const;
};

/**
 * Fires the armed faults of one run. The components consult the
 * injector through Simulation::faultInjector(); a null injector (the
 * common case) costs one pointer test per hook.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    /** PanicAt hook: panics once `now` reaches the armed tick. */
    void checkPanic(Tick now);

    /**
     * MemDelay/MemReorder hook: returns the (possibly adjusted)
     * completion tick for a read issued at @p issue. Each armed
     * memory fault fires exactly once. MemReorder clamps at 0 so
     * the corruption is a detectable time reversal, not an unsigned
     * wrap-around that happens to pass the check.
     */
    Tick adjustMemCompletion(Tick issue, Tick complete);

    /** FifoStall hook: whether SM @p sm must not issue at @p now. */
    bool smStalled(unsigned sm, Tick now) const;

    /** ComponentFreeze hook: whether Clocked @p index is frozen. */
    bool frozen(unsigned index, Tick now) const;

    /**
     * HashCorrupt hook: true exactly once, on the first filter-table
     * probe at or after the armed tick — the caller then corrupts
     * the entry the probe is about to inspect, guaranteeing the
     * parity check sees the flip.
     */
    bool fireHashCorrupt(Tick now);

    /**
     * IcnDelay hook (MemSystem): extra interconnect latency for a
     * request issued at @p issue. Each armed fault fires exactly
     * once, on the first crossing at or after its tick. Only specs
     * with target 0 (the GPU<->memory crossing) fire here; target 1
     * addresses the inter-device link (linkExtraDelay).
     */
    Tick icnExtraDelay(Tick issue);

    /**
     * IcnDelay hook (Interconnect): extra delivery latency for an
     * inter-device message sent at @p issue. Fires IcnDelay specs
     * armed with target 1, one-shot each.
     */
    Tick linkExtraDelay(Tick issue);

    /**
     * DramRefreshStorm hook (Dram): extra ticks the addressed bank
     * stays unavailable for a request issued at @p issue; the caller
     * also closes the open row, as a real refresh would. One-shot.
     */
    Tick dramRefreshDelay(Tick issue);

    /** Deterministic randomness for corruption targets. */
    Rng &rng() { return randGen; }

    /** How many times faults of @p k have fired (diagnostics). */
    std::uint64_t fired(FaultKind k) const;

    /** One-line summary of armed and fired faults. */
    std::string summary() const;

  private:
    FaultPlan plan;
    Rng randGen;
    std::array<std::uint64_t,
               static_cast<std::size_t>(FaultKind::NumFaultKinds)>
        firedCount{};
    std::vector<bool> spent; ///< one-shot bookkeeping per spec
};

} // namespace scusim::sim

#endif // SCUSIM_SIM_FAULT_HH
