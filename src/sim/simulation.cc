#include "sim/simulation.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/sim_error.hh"
#include "sim/fault.hh"
#include "stats/timeseries.hh"
#include "trace/trace.hh"

namespace scusim::sim
{

namespace
{

/** Process-wide scheduler override: -1 unset, else SchedulerMode. */
std::atomic<int> schedOverride{-1};

} // namespace

SchedulerMode
Simulation::defaultScheduler()
{
    const int o = schedOverride.load(std::memory_order_relaxed);
    if (o >= 0)
        return static_cast<SchedulerMode>(o);
    if (const char *s = std::getenv("SCUSIM_SCHEDULER")) {
        const std::string v = s;
        if (v == "polling")
            return SchedulerMode::Polling;
        if (!v.empty() && v != "event")
            warn("ignoring unknown SCUSIM_SCHEDULER='%s' "
                 "(want 'event' or 'polling')",
                 s);
    }
    return SchedulerMode::EventDriven;
}

void
Simulation::overrideDefaultScheduler(SchedulerMode m)
{
    schedOverride.store(static_cast<int>(m),
                        std::memory_order_relaxed);
}

void
Simulation::clearDefaultSchedulerOverride()
{
    schedOverride.store(-1, std::memory_order_relaxed);
}

Simulation::Simulation() : schedMode(defaultScheduler()) {}
Simulation::~Simulation() = default;

void
Simulation::addClocked(Clocked *c, std::string name)
{
    panic_if(c->schedOwner && c->schedOwner != this,
             "Clocked object registered with two Simulations");
    c->schedOwner = this;
    c->schedIndex = clockedList.size();
    if (name.empty())
        name = "clocked#" + std::to_string(clockedList.size());
    clockedList.push_back(c);
    clockedNames.push_back(std::move(name));
    armed.push_back(tickNever);
}

void
Clocked::notifyWake()
{
    if (schedOwner)
        schedOwner->wakeComponent(schedIndex);
}

void
Simulation::installFaultInjector(std::unique_ptr<FaultInjector> inj)
{
    injector = std::move(inj);
}

void
Simulation::installTraceSink(std::unique_ptr<trace::TraceSink> sink)
{
    tracer = std::move(sink);
    simChan = tracer ? tracer->channel("sim") : nullptr;
}

void
Simulation::addTimeseries(stats::Timeseries *ts)
{
    if (ts)
        timeseries.push_back(ts);
}

void
Simulation::sampleTimeseries(Tick now)
{
    for (stats::Timeseries *ts : timeseries)
        ts->sampleUpTo(now);
}

std::string
Simulation::diagnosticDump() const
{
    std::ostringstream os;
    os << "tick " << currentTick << "\n";
    for (std::size_t i = 0; i < clockedList.size(); ++i) {
        const Clocked *c = clockedList[i];
        os << clockedNames[i] << ": busy="
           << (c->busy(currentTick) ? "yes" : "no");
        Tick wake = c->nextWakeTick();
        os << " wake=";
        if (wake == tickNever)
            os << "never";
        else
            os << wake;
        os << " progress=" << c->progressCount();
        if (injector &&
            injector->frozen(static_cast<unsigned>(i), currentTick))
            os << " [frozen by fault injector]";
        os << "\n";
    }
    os << "events: pending=" << eq.size() << " next=";
    if (eq.nextTick() == tickNever)
        os << "never";
    else
        os << eq.nextTick();
    os << " serviced=" << eq.serviced();
    if (injector)
        os << "\n" << injector->summary();
    // On a hang the most recent trace events are the closest thing to
    // a flight recorder — attach the tail of every ring buffer.
    if (tracer)
        os << "\n" << tracer->tailDump();
    return os.str();
}

void
Simulation::arm(std::size_t idx, Tick t)
{
    armed[idx] = t;
    if (t != tickNever)
        wakeHeap.emplace(t, idx);
}

void
Simulation::wakeComponent(std::size_t idx)
{
    if (schedMode == SchedulerMode::Polling)
        return; // the polling scan re-asks everyone anyway
    const Clocked *c = clockedList[idx];
    const Tick t =
        c->busy(currentTick) ? currentTick : c->nextWakeTick();
    if (t != armed[idx])
        arm(idx, t);
}

void
Simulation::rearmAll()
{
    for (std::size_t i = 0; i < clockedList.size(); ++i)
        wakeComponent(i);
}

Tick
Simulation::nextInterestingTick()
{
    if (schedMode == SchedulerMode::Polling) {
        Tick t = eq.nextTick();
        for (const auto *c : clockedList) {
            if (c->busy(currentTick))
                return currentTick;
            t = std::min(t, c->nextWakeTick());
        }
        return t;
    }
    // Event-driven: the earliest armed component (dropping stale
    // lazy-deleted heap entries) or event, whichever comes first. A
    // component armed at or before "now" is busy now — same answer
    // the polling scan would give.
    Tick t = eq.nextTick();
    for (std::size_t idx : nextDue) {
        const Tick a = armed[idx];
        if (a == tickNever)
            continue; // superseded
        if (a <= currentTick)
            return currentTick;
        t = std::min(t, a);
    }
    while (!wakeHeap.empty() &&
           wakeHeap.top().first != armed[wakeHeap.top().second])
        wakeHeap.pop();
    if (!wakeHeap.empty()) {
        const Tick wake = wakeHeap.top().first;
        if (wake <= currentTick)
            return currentTick;
        t = std::min(t, wake);
    }
    return t;
}

std::uint64_t
Simulation::progressStamp() const
{
    std::uint64_t stamp = eq.serviced();
    for (const auto *c : clockedList)
        stamp += c->progressCount();
    return stamp;
}

void
Simulation::stepOnce()
{
    eq.serviceUpTo(currentTick);
    if (schedMode == SchedulerMode::Polling) {
        for (std::size_t j = 0; j < clockedList.size(); ++j) {
            Clocked *c = clockedList[j];
            // A frozen component keeps claiming to be busy but is
            // never ticked — exactly the hang mode the deadlock
            // watchdog exists to catch.
            if (injector &&
                injector->frozen(static_cast<unsigned>(j),
                                 currentTick))
                continue;
            if (c->busy(currentTick)) {
                c->noteTick(currentTick);
                c->tick(currentTick);
            }
        }
        ++currentTick;
        return;
    }

    // Event-driven: collect every component due at or before now
    // (consuming its armed entry), then service them in registration
    // order — the order the polling loop ticks them in, which matters
    // because components share the analytic memory system within a
    // tick.
    readyScratch.clear();
    // Components the previous tick re-armed straight for this one
    // (the steady busy state) — consumed without a heap round trip.
    for (std::size_t idx : nextDue) {
        if (armed[idx] != tickNever && armed[idx] <= currentTick) {
            armed[idx] = tickNever;
            readyScratch.push_back(idx);
        }
    }
    nextDue.clear();
    while (!wakeHeap.empty() &&
           wakeHeap.top().first <= currentTick) {
        const auto [t, idx] = wakeHeap.top();
        wakeHeap.pop();
        if (armed[idx] != t)
            continue; // superseded by a later arm
        armed[idx] = tickNever;
        readyScratch.push_back(idx);
    }
    // Registration order, as the polling loop ticks them. nextDue is
    // appended in service order, so the scratch is almost always
    // already sorted and the check is the common whole cost.
    if (!std::is_sorted(readyScratch.begin(), readyScratch.end()))
        std::sort(readyScratch.begin(), readyScratch.end());
    for (std::size_t idx : readyScratch) {
        Clocked *c = clockedList[idx];
        if (injector &&
            injector->frozen(static_cast<unsigned>(idx),
                             currentTick)) {
            // Still busy, never ticked: stay due every tick so the
            // loop keeps spinning until the deadlock watchdog fires,
            // exactly as under polling.
            armed[idx] = currentTick + 1;
            nextDue.push_back(idx);
            continue;
        }
        if (c->busy(currentTick)) {
            c->noteTick(currentTick);
            c->tick(currentTick);
        }
        const Tick next = c->busy(currentTick + 1)
                              ? currentTick + 1
                              : c->nextWakeTick();
        if (next == currentTick + 1) {
            armed[idx] = next;
            nextDue.push_back(idx);
        } else {
            arm(idx, next);
        }
    }
    ++currentTick;
}

void
Simulation::step(Tick n)
{
    rearmAll();
    for (Tick i = 0; i < n; ++i)
        stepOnce();
    if (!timeseries.empty())
        sampleTimeseries(currentTick);
}

Tick
Simulation::run(Tick max_ticks)
{
    const Tick start = currentTick;
    const Tick budget = wd.tickBudget;
    std::uint64_t lastStamp = progressStamp();
    Tick stallStart = currentTick;
    std::uint64_t iters = 0;
    // Components may have gained work since the last run()/step()
    // without a notifyWake (e.g. constructed busy); re-derive every
    // wake once so the heap starts accurate.
    rearmAll();
    while (true) {
        if (injector)
            injector->checkPanic(currentTick);
        if (supervisor && (iters++ & 1023) == 0)
            supervisor->checkpoint(currentTick);
        Tick next = nextInterestingTick();
        if (next == tickNever)
            break;
        if (next > currentTick) {
            // Idle gap: jump straight to the next event / wake-up.
            currentTick = next;
        }
        stepOnce();
        if (!timeseries.empty())
            sampleTimeseries(currentTick);
        const bool over_budget =
            budget ? currentTick > budget
                   : currentTick - start > max_ticks;
        if (over_budget) {
            reportFailure(
                FailureKind::Runaway,
                strprintf(
                    "simulation exceeded %llu ticks without draining",
                    static_cast<unsigned long long>(
                        budget ? budget : max_ticks)),
                diagnosticDump());
        }
        if (wd.stallWindow) {
            std::uint64_t stamp = progressStamp();
            if (stamp != lastStamp) {
                lastStamp = stamp;
                stallStart = currentTick;
            } else if (currentTick - stallStart >= wd.stallWindow) {
                reportFailure(
                    FailureKind::Deadlock,
                    strprintf("no component progress for %llu ticks "
                              "while busy (deadlock)",
                              static_cast<unsigned long long>(
                                  wd.stallWindow)),
                    diagnosticDump());
            }
        }
    }
    TRACE_EVENT_SPAN(simChan, trace::Category::Sim, "run", start,
                     currentTick, iters);
    return currentTick - start;
}

void
Simulation::advanceTo(Tick t)
{
    if (t <= currentTick)
        return;
    if (injector)
        injector->checkPanic(currentTick);
    if (wd.tickBudget && t > wd.tickBudget) {
        reportFailure(
            FailureKind::Runaway,
            strprintf("simulation exceeded %llu ticks without "
                      "draining (analytic completion at %llu)",
                      static_cast<unsigned long long>(wd.tickBudget),
                      static_cast<unsigned long long>(t)),
            diagnosticDump());
    }
    eq.serviceUpTo(t);
    currentTick = t;
    if (!timeseries.empty())
        sampleTimeseries(currentTick);
    if (supervisor)
        supervisor->checkpoint(currentTick);
}

} // namespace scusim::sim
