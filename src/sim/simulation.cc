#include "sim/simulation.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/sim_error.hh"
#include "sim/fault.hh"
#include "stats/timeseries.hh"
#include "trace/trace.hh"

namespace scusim::sim
{

Simulation::Simulation() = default;
Simulation::~Simulation() = default;

void
Simulation::addClocked(Clocked *c, std::string name)
{
    if (name.empty())
        name = "clocked#" + std::to_string(clockedList.size());
    clockedList.push_back(c);
    clockedNames.push_back(std::move(name));
}

void
Simulation::installFaultInjector(std::unique_ptr<FaultInjector> inj)
{
    injector = std::move(inj);
}

void
Simulation::installTraceSink(std::unique_ptr<trace::TraceSink> sink)
{
    tracer = std::move(sink);
    simChan = tracer ? tracer->channel("sim") : nullptr;
}

void
Simulation::addTimeseries(stats::Timeseries *ts)
{
    if (ts)
        timeseries.push_back(ts);
}

void
Simulation::sampleTimeseries(Tick now)
{
    for (stats::Timeseries *ts : timeseries)
        ts->sampleUpTo(now);
}

std::string
Simulation::diagnosticDump() const
{
    std::ostringstream os;
    os << "tick " << currentTick << "\n";
    for (std::size_t i = 0; i < clockedList.size(); ++i) {
        const Clocked *c = clockedList[i];
        os << clockedNames[i] << ": busy="
           << (c->busy(currentTick) ? "yes" : "no");
        Tick wake = c->nextWakeTick();
        os << " wake=";
        if (wake == tickNever)
            os << "never";
        else
            os << wake;
        os << " progress=" << c->progressCount();
        if (injector &&
            injector->frozen(static_cast<unsigned>(i), currentTick))
            os << " [frozen by fault injector]";
        os << "\n";
    }
    os << "events: pending=" << eq.size() << " next=";
    if (eq.nextTick() == tickNever)
        os << "never";
    else
        os << eq.nextTick();
    os << " serviced=" << eq.serviced();
    if (injector)
        os << "\n" << injector->summary();
    // On a hang the most recent trace events are the closest thing to
    // a flight recorder — attach the tail of every ring buffer.
    if (tracer)
        os << "\n" << tracer->tailDump();
    return os.str();
}

Tick
Simulation::nextInterestingTick() const
{
    Tick t = eq.nextTick();
    for (const auto *c : clockedList) {
        if (c->busy(currentTick))
            return currentTick;
        t = std::min(t, c->nextWakeTick());
    }
    return t;
}

std::uint64_t
Simulation::progressStamp() const
{
    std::uint64_t stamp = eq.serviced();
    for (const auto *c : clockedList)
        stamp += c->progressCount();
    return stamp;
}

void
Simulation::step(Tick n)
{
    for (Tick i = 0; i < n; ++i) {
        eq.serviceUpTo(currentTick);
        for (std::size_t j = 0; j < clockedList.size(); ++j) {
            Clocked *c = clockedList[j];
            // A frozen component keeps claiming to be busy but is
            // never ticked — exactly the hang mode the deadlock
            // watchdog exists to catch.
            if (injector &&
                injector->frozen(static_cast<unsigned>(j),
                                 currentTick))
                continue;
            if (c->busy(currentTick)) {
                c->noteTick(currentTick);
                c->tick(currentTick);
            }
        }
        ++currentTick;
    }
    if (!timeseries.empty())
        sampleTimeseries(currentTick);
}

Tick
Simulation::run(Tick max_ticks)
{
    const Tick start = currentTick;
    const Tick budget = wd.tickBudget;
    std::uint64_t lastStamp = progressStamp();
    Tick stallStart = currentTick;
    std::uint64_t iters = 0;
    while (true) {
        if (injector)
            injector->checkPanic(currentTick);
        if (supervisor && (iters++ & 1023) == 0)
            supervisor->checkpoint(currentTick);
        Tick next = nextInterestingTick();
        if (next == tickNever)
            break;
        if (next > currentTick) {
            // Idle gap: jump straight to the next event / wake-up.
            currentTick = next;
        }
        step(1);
        const bool over_budget =
            budget ? currentTick > budget
                   : currentTick - start > max_ticks;
        if (over_budget) {
            reportFailure(
                FailureKind::Runaway,
                strprintf(
                    "simulation exceeded %llu ticks without draining",
                    static_cast<unsigned long long>(
                        budget ? budget : max_ticks)),
                diagnosticDump());
        }
        if (wd.stallWindow) {
            std::uint64_t stamp = progressStamp();
            if (stamp != lastStamp) {
                lastStamp = stamp;
                stallStart = currentTick;
            } else if (currentTick - stallStart >= wd.stallWindow) {
                reportFailure(
                    FailureKind::Deadlock,
                    strprintf("no component progress for %llu ticks "
                              "while busy (deadlock)",
                              static_cast<unsigned long long>(
                                  wd.stallWindow)),
                    diagnosticDump());
            }
        }
    }
    TRACE_EVENT_SPAN(simChan, trace::Category::Sim, "run", start,
                     currentTick, iters);
    return currentTick - start;
}

void
Simulation::advanceTo(Tick t)
{
    if (t <= currentTick)
        return;
    if (injector)
        injector->checkPanic(currentTick);
    if (wd.tickBudget && t > wd.tickBudget) {
        reportFailure(
            FailureKind::Runaway,
            strprintf("simulation exceeded %llu ticks without "
                      "draining (analytic completion at %llu)",
                      static_cast<unsigned long long>(wd.tickBudget),
                      static_cast<unsigned long long>(t)),
            diagnosticDump());
    }
    eq.serviceUpTo(t);
    currentTick = t;
    if (!timeseries.empty())
        sampleTimeseries(currentTick);
    if (supervisor)
        supervisor->checkpoint(currentTick);
}

} // namespace scusim::sim
