#include "sim/simulation.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scusim::sim
{

Tick
Simulation::nextInterestingTick() const
{
    Tick t = eq.nextTick();
    for (const auto *c : clockedList) {
        if (c->busy(currentTick))
            return currentTick;
        t = std::min(t, c->nextWakeTick());
    }
    return t;
}

void
Simulation::step(Tick n)
{
    for (Tick i = 0; i < n; ++i) {
        eq.serviceUpTo(currentTick);
        for (auto *c : clockedList) {
            if (c->busy(currentTick)) {
                c->noteTick(currentTick);
                c->tick(currentTick);
            }
        }
        ++currentTick;
    }
}

Tick
Simulation::run(Tick max_ticks)
{
    const Tick start = currentTick;
    while (true) {
        Tick next = nextInterestingTick();
        if (next == tickNever)
            break;
        if (next > currentTick) {
            // Idle gap: jump straight to the next event / wake-up.
            currentTick = next;
        }
        step(1);
        panic_if(currentTick - start > max_ticks,
                 "simulation exceeded %llu ticks without draining",
                 static_cast<unsigned long long>(max_ticks));
    }
    return currentTick - start;
}

} // namespace scusim::sim
