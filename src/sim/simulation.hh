/**
 * @file
 * Top-level simulation driver: owns the notion of "now", steps all
 * registered Clocked components, fast-forwards across idle gaps and
 * — when supervised — watches its own progress: a run that exceeds
 * its tick budget is reported as a *runaway*, a run whose busy
 * components stop making progress as a *deadlock*, both with a
 * per-component diagnostic dump instead of a bare fatal.
 */

#ifndef SCUSIM_SIM_SIMULATION_HH
#define SCUSIM_SIM_SIMULATION_HH

#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace scusim::stats
{
class Timeseries;
} // namespace scusim::stats

namespace scusim::trace
{
class TraceChannel;
class TraceSink;
} // namespace scusim::trace

namespace scusim::sim
{

class FaultInjector;

/**
 * How the simulation loop finds work. EventDriven (the default) keeps
 * a min-heap of per-component wake ticks and services only the
 * components whose wake has arrived; Polling is the reference
 * implementation that re-asks every Clocked component for busy()/
 * nextWakeTick() on every serviced tick. Both produce byte-identical
 * stats — the scheduler-equivalence test enforces it — so Polling
 * exists only as the equivalence oracle and the perf baseline.
 */
enum class SchedulerMode { EventDriven, Polling };

/** Progress-watchdog thresholds; 0 disables the respective check. */
struct WatchdogConfig
{
    /** Absolute tick ceiling of the run (runaway detection). */
    Tick tickBudget = 0;
    /**
     * Ticks a busy simulation may spin without any component or
     * event progress before it is declared deadlocked.
     */
    Tick stallWindow = 0;
};

/**
 * Periodic callback hook of the harness into the simulation loop —
 * the wall-clock budget and cooperative cancellation live behind it
 * so the sim layer itself never reads the wall clock. A checkpoint
 * that cannot let the run continue throws SimError(Timeout).
 */
class Supervisor
{
  public:
    virtual ~Supervisor() = default;

    /** Called periodically from run()/advanceTo(). */
    virtual void checkpoint(Tick now) = 0;
};

/**
 * The simulation loop. Components register once; run() advances time
 * until every component is drained and no events remain.
 */
class Simulation
{
  public:
    Simulation();
    ~Simulation();
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    Tick now() const { return currentTick; }

    /** This simulation's scheduler (fixed per instance at creation,
     *  unless overridden with setScheduler before the first run). */
    SchedulerMode scheduler() const { return schedMode; }

    /** Force this instance's scheduler (tests / benches). */
    void setScheduler(SchedulerMode m) { schedMode = m; }

    /**
     * The mode new Simulations start in: the process-wide override
     * (below) if set, else SCUSIM_SCHEDULER from the environment
     * ("polling" or "event"), else EventDriven.
     */
    static SchedulerMode defaultScheduler();

    /** Process-wide scheduler override for new Simulations
     *  (benches comparing both modes); clear with the second form. */
    static void overrideDefaultScheduler(SchedulerMode m);
    static void clearDefaultSchedulerOverride();

    /** Register a cycle-stepped component (name for diagnostics). */
    void addClocked(Clocked *c, std::string name = "");

    EventQueue &events() { return eq; }

    /** Arm the progress watchdog for this run. */
    void setWatchdog(const WatchdogConfig &w) { wd = w; }

    /** Install the harness supervisor (null detaches). */
    void setSupervisor(Supervisor *s) { supervisor = s; }

    /** Install a fault injector for this run (takes ownership). */
    void installFaultInjector(std::unique_ptr<FaultInjector> inj);

    /** The run's fault injector, or null (the common case). */
    FaultInjector *faultInjector() const { return injector.get(); }

    /**
     * Install the run's trace sink (takes ownership; null detaches).
     * Components fetch their channels through traceSink() during
     * System::attachTrace, so install before wiring.
     */
    void installTraceSink(std::unique_ptr<trace::TraceSink> sink);

    /** The run's trace sink, or null (the common case). */
    trace::TraceSink *traceSink() const { return tracer.get(); }

    /**
     * Register a windowed timeseries to be sampled as simulated time
     * advances (both the cycle-stepped loop and analytic advanceTo
     * jumps). The series must outlive the sampling — the harness owns
     * trace-driven series for the duration of the run.
     */
    void addTimeseries(stats::Timeseries *ts);

    /**
     * Per-component diagnostic snapshot: busy state, next wake tick
     * and progress counter per Clocked component, plus event-queue
     * depth. Attached to watchdog failures.
     */
    std::string diagnosticDump() const;

    /**
     * Advance until all components are idle with no future wake-ups
     * and the event queue is empty.
     * @param max_ticks safety bound when no watchdog tick budget is
     *                  armed; exceeding either is reported as a
     *                  runaway (FailureKind::Runaway).
     * @return ticks elapsed during this call.
     */
    Tick run(Tick max_ticks = static_cast<Tick>(1) << 40);

    /** Advance exactly @p n ticks (events + clocked components). */
    void step(Tick n = 1);

    /**
     * Jump the clock forward to @p t (no-op if in the past). Used by
     * components that compute their completion time analytically
     * (the SCU pipeline) while the cycle-stepped components are
     * drained. Pending events up to @p t are serviced; the watchdog
     * tick budget and the supervisor are consulted, so an
     * analytically-runaway completion tick is caught too.
     */
    void advanceTo(Tick t);

  private:
    friend class Clocked; // notifyWake -> wakeComponent

    /** Earliest tick at which anything can happen, or tickNever. */
    Tick nextInterestingTick();

    /** Monotone counter of everything that counts as progress. */
    std::uint64_t progressStamp() const;

    /** Record every timeseries window boundary at or before @p now. */
    void sampleTimeseries(Tick now);

    /**
     * Set component @p idx's cached wake tick to @p t and push the
     * matching heap entry (tickNever disarms). Entries superseded by
     * a later arm stay in the heap and are dropped lazily when their
     * tick no longer matches armed[idx].
     */
    void arm(std::size_t idx, Tick t);

    /** Re-derive component @p idx's wake from busy()/nextWakeTick(). */
    void wakeComponent(std::size_t idx);

    /** Re-derive every component's wake tick (run()/step() entry). */
    void rearmAll();

    /** Service exactly one tick (events + due components). */
    void stepOnce();

    Tick currentTick = 0;
    EventQueue eq;
    std::vector<Clocked *> clockedList;
    std::vector<std::string> clockedNames;
    WatchdogConfig wd;
    Supervisor *supervisor = nullptr;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<trace::TraceSink> tracer;
    trace::TraceChannel *simChan = nullptr;
    std::vector<stats::Timeseries *> timeseries;

    SchedulerMode schedMode;
    /** Earliest tick each component can be busy (tickNever = idle). */
    std::vector<Tick> armed;
    /** Lazy-deletion min-heap over (armed tick, component index). */
    std::priority_queue<std::pair<Tick, std::size_t>,
                        std::vector<std::pair<Tick, std::size_t>>,
                        std::greater<>>
        wakeHeap;
    /** Indices due at the current tick (scratch, sorted). */
    std::vector<std::size_t> readyScratch;
    /**
     * Fast-path arming for the steady busy state: a component due
     * again at exactly the next tick is appended here instead of
     * round-tripping the heap. Entries are validated against armed[]
     * on consumption, like lazy-deleted heap entries.
     */
    std::vector<std::size_t> nextDue;
};

} // namespace scusim::sim

#endif // SCUSIM_SIM_SIMULATION_HH
