/**
 * @file
 * Top-level simulation driver: owns the notion of "now", steps all
 * registered Clocked components and fast-forwards across idle gaps.
 */

#ifndef SCUSIM_SIM_SIMULATION_HH
#define SCUSIM_SIM_SIMULATION_HH

#include <vector>

#include "common/types.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace scusim::sim
{

/**
 * The simulation loop. Components register once; run() advances time
 * until every component is drained and no events remain.
 */
class Simulation
{
  public:
    Tick now() const { return currentTick; }

    /** Register a cycle-stepped component. */
    void addClocked(Clocked *c) { clockedList.push_back(c); }

    EventQueue &events() { return eq; }

    /**
     * Advance until all components are idle with no future wake-ups
     * and the event queue is empty.
     * @param max_ticks safety bound; exceeding it is a simulator bug
     *                  (runaway model).
     * @return ticks elapsed during this call.
     */
    Tick run(Tick max_ticks = static_cast<Tick>(1) << 40);

    /** Advance exactly @p n ticks (events + clocked components). */
    void step(Tick n = 1);

    /**
     * Jump the clock forward to @p t (no-op if in the past). Used by
     * components that compute their completion time analytically
     * (the SCU pipeline) while the cycle-stepped components are
     * drained. Pending events up to @p t are serviced.
     */
    void
    advanceTo(Tick t)
    {
        if (t > currentTick) {
            eq.serviceUpTo(t);
            currentTick = t;
        }
    }

  private:
    /** Earliest tick at which anything can happen, or tickNever. */
    Tick nextInterestingTick() const;

    Tick currentTick = 0;
    EventQueue eq;
    std::vector<Clocked *> clockedList;
};

} // namespace scusim::sim

#endif // SCUSIM_SIM_SIMULATION_HH
