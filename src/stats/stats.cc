#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>

namespace scusim::stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    panic_if(!parent, "stat '%s' created without a parent group",
             statName.c_str());
    parent->registerStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << v << " # " << desc() << "\n";
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           std::size_t buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo(min), hi(max),
      bucketWidth((max - min) / static_cast<double>(buckets)),
      counts(buckets, 0)
{
    panic_if(max <= min || buckets == 0,
             "bad Distribution bounds [%f, %f) x %zu", min, max, buckets);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (total == 0) {
        minSeen = maxSeen = v;
    } else {
        minSeen = std::min(minSeen, v);
        maxSeen = std::max(maxSeen, v);
    }
    total += count;
    sampleSum += v * static_cast<double>(count);
    if (v < lo) {
        underflow += count;
    } else if (v >= hi) {
        overflow += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / bucketWidth);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        counts[idx] += count;
    }
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << total
       << " # " << desc() << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    os << prefix << name() << "::min " << minSeen << "\n";
    os << prefix << name() << "::max " << maxSeen << "\n";
    if (underflow)
        os << prefix << name() << "::underflow " << underflow << "\n";
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (!counts[i])
            continue;
        double b0 = lo + bucketWidth * static_cast<double>(i);
        os << prefix << name() << "::[" << b0 << ","
           << (b0 + bucketWidth) << ") " << counts[i] << "\n";
    }
    if (overflow)
        os << prefix << name() << "::overflow " << overflow << "\n";
}

void
Distribution::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    underflow = overflow = total = 0;
    sampleSum = minSeen = maxSeen = 0;
}

StatGroup::StatGroup(std::string name_, StatGroup *parent_)
    : name(std::move(name_)), parent(parent_)
{
    if (parent)
        parent->registerChild(this);
}

StatGroup::~StatGroup()
{
    if (parent)
        parent->unregisterChild(this);
}

std::string
StatGroup::path() const
{
    if (!parent)
        return name;
    std::string p = parent->path();
    return p.empty() ? name : p + "." + name;
}

void
StatGroup::registerStat(StatBase *s)
{
    statList.push_back(s);
}

void
StatGroup::registerChild(StatGroup *g)
{
    children.push_back(g);
}

void
StatGroup::unregisterChild(StatGroup *g)
{
    std::erase(children, g);
}

void
StatGroup::dumpAll(std::ostream &os) const
{
    std::string prefix = path();
    if (!prefix.empty())
        prefix += ".";
    for (const auto *s : statList)
        s->dump(os, prefix);
    for (const auto *c : children)
        c->dumpAll(os);
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
    for (auto *c : children)
        c->resetAll();
}

double
StatGroup::lookup(const std::string &dotted) const
{
    auto dot = dotted.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : statList) {
            if (s->name() == dotted) {
                if (const auto *sc = dynamic_cast<const Scalar *>(s))
                    return sc->value();
                if (const auto *f = dynamic_cast<const Formula *>(s))
                    return f->value();
                if (const auto *d =
                        dynamic_cast<const Distribution *>(s))
                    return d->mean();
                panic("stat '%s' has no scalar value", dotted.c_str());
            }
        }
    } else {
        std::string head = dotted.substr(0, dot);
        std::string tail = dotted.substr(dot + 1);
        for (const auto *c : children) {
            if (c->groupName() == head)
                return c->lookup(tail);
        }
    }
    panic("stat path '%s' not found under '%s'", dotted.c_str(),
          path().c_str());
}

} // namespace scusim::stats
