/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's stats
 * package: named scalar counters, averages, distributions and derived
 * formulas, grouped hierarchically and dumpable as text.
 *
 * Every timing component in the simulator owns a StatGroup and
 * registers its counters there; the harness walks the hierarchy to
 * produce per-run reports and to extract the metrics behind each of
 * the paper's figures.
 */

#ifndef SCUSIM_STATS_STATS_HH
#define SCUSIM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace scusim::stats
{

class StatGroup;

/** Base class of all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Render "name value # desc" line(s) into @p os. */
    virtual void dump(std::ostream &os, const std::string &prefix)
        const = 0;

    /** Reset to the zero state. */
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** Monotonically increasing (or directly set) scalar statistic. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc)) {}

    Scalar &operator++() { ++v; return *this; }
    Scalar &operator+=(double d) { v += d; return *this; }
    Scalar &operator=(double d) { v = d; return *this; }

    double value() const { return v; }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void reset() override { v = 0; }

  private:
    double v = 0;
};

/**
 * Derived statistic evaluated lazily at dump time, e.g. ratios of two
 * scalars. The functor must stay valid for the group's lifetime.
 */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          eval(std::move(fn)) {}

    double value() const { return eval ? eval() : 0; }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void reset() override {}

  private:
    std::function<double()> eval;
};

/**
 * Fixed-bucket histogram over [min, max) with linear buckets plus
 * underflow/overflow; tracks sample count, sum and min/max for
 * average reporting.
 */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, std::size_t buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return total; }
    double sum() const { return sampleSum; }
    double mean() const { return total ? sampleSum / total : 0; }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void reset() override;

  private:
    double lo, hi, bucketWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0, overflow = 0, total = 0;
    double sampleSum = 0;
    double minSeen = 0, maxSeen = 0;
};

/**
 * A named group of statistics, optionally nested inside a parent
 * group. Components derive from or own a StatGroup.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name; }

    /** Full dotted path from the root group. */
    std::string path() const;

    /** Dump this group's stats and all children, sorted by name. */
    void dumpAll(std::ostream &os) const;

    /** Reset this group's stats and all children. */
    void resetAll();

    /** Look up a scalar/formula value by dotted relative path. */
    double lookup(const std::string &dotted) const;

  private:
    friend class StatBase;
    void registerStat(StatBase *s);
    void registerChild(StatGroup *g);
    void unregisterChild(StatGroup *g);

    std::string name;
    StatGroup *parent;
    std::vector<StatBase *> statList;
    std::vector<StatGroup *> children;
};

} // namespace scusim::stats

#endif // SCUSIM_STATS_STATS_HH
