#include "stats/timeseries.hh"

#include <cstdio>
#include <ostream>

namespace scusim::stats
{

Timeseries::Timeseries(StatGroup *parent, std::string name,
                       std::string desc, Tick period,
                       std::function<double()> source, Mode mode)
    : StatBase(parent, std::move(name), std::move(desc)),
      period_(period), next(period), source(std::move(source)),
      mode(mode)
{
    panic_if(period_ == 0, "Timeseries '%s' with a zero period",
             this->name().c_str());
    panic_if(!this->source, "Timeseries '%s' without a source",
             this->name().c_str());
}

void
Timeseries::sampleUpTo(Tick now)
{
    while (next <= now) {
        const double raw = source();
        data.push_back(
            {next, mode == Mode::Delta ? raw - lastRaw : raw});
        lastRaw = raw;
        next += period_;
    }
}

void
Timeseries::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << data.size() << " # "
       << desc() << "\n";
    if (!data.empty()) {
        os << prefix << name() << "::last_tick " << data.back().tick
           << "\n";
        os << prefix << name() << "::last " << data.back().value
           << "\n";
    }
}

void
Timeseries::reset()
{
    data.clear();
    next = period_;
    lastRaw = 0;
}

void
writeTimeseriesCsv(std::ostream &os,
                   const std::vector<const Timeseries *> &series)
{
    os << "series,tick,value\n";
    char buf[64];
    for (const Timeseries *ts : series) {
        if (!ts)
            continue;
        for (const Timeseries::Sample &s : ts->samples()) {
            std::snprintf(buf, sizeof(buf), "%.17g", s.value);
            os << ts->name() << "," << s.tick << "," << buf << "\n";
        }
    }
}

} // namespace scusim::stats
