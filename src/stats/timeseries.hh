/**
 * @file
 * Windowed stat timeseries: samples a counter every N simulated ticks
 * so time-resolved behaviour (filtering effectiveness across BFS
 * iterations, DRAM bandwidth per window, ...) can be plotted instead
 * of collapsed into an end-of-run aggregate.
 *
 * A Timeseries is a StatBase like any other, but the harness keeps
 * trace-driven instances in a *standalone* group that is not part of
 * the System's dumped stats tree, so enabling tracing never perturbs
 * the determinism gate's byte-identical dump comparison.
 *
 * Sampling is driven by the Simulation (see Simulation::addTimeseries):
 * as simulated time advances past each window boundary, the source
 * functor is read. A fast-forward that jumps several windows at once
 * records the boundary values it can still observe — the cumulative
 * value at the jump for Cumulative series, the whole delta attributed
 * to the first crossed window for Delta series.
 */

#ifndef SCUSIM_STATS_TIMESERIES_HH
#define SCUSIM_STATS_TIMESERIES_HH

#include <functional>
#include <iosfwd>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace scusim::stats
{

class Timeseries : public StatBase
{
  public:
    enum class Mode
    {
        Cumulative, ///< record the source value at each boundary
        Delta,      ///< record the change since the previous boundary
    };

    /**
     * @param period window length in ticks (must be > 0)
     * @param source functor returning the current counter value; must
     *               stay valid for the lifetime of the series
     */
    Timeseries(StatGroup *parent, std::string name, std::string desc,
               Tick period, std::function<double()> source,
               Mode mode = Mode::Cumulative);

    Tick period() const { return period_; }

    /** Next window boundary still to be sampled. */
    Tick nextSampleTick() const { return next; }

    /** Record every window boundary at or before @p now. */
    void sampleUpTo(Tick now);

    struct Sample
    {
        Tick tick;
        double value;
    };

    const std::vector<Sample> &samples() const { return data; }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void reset() override;

  private:
    Tick period_;
    Tick next;
    std::function<double()> source;
    Mode mode;
    double lastRaw = 0;
    std::vector<Sample> data;
};

/**
 * Long-format CSV (`series,tick,value` rows) for a set of series —
 * trivially pivotable by pandas or a spreadsheet.
 */
void writeTimeseriesCsv(std::ostream &os,
                        const std::vector<const Timeseries *> &series);

} // namespace scusim::stats

#endif // SCUSIM_STATS_TIMESERIES_HH
