#include "store/format.hh"

#include <cstdio>
#include <cstring>

namespace scusim::store
{

namespace
{

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool
fail(std::string *why, const char *what)
{
    if (why)
        *why = what;
    return false;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::string
encodeHeader(const ScugHeader &h)
{
    std::string out;
    out.reserve(scugHeaderBytes);
    out.append(h.magic, sizeof h.magic);
    putU32(out, h.schema);
    putU32(out, h.flags);
    putU64(out, h.numNodes);
    putU64(out, h.numEdges);
    putU64(out, h.offsetsOff);
    putU64(out, h.offsetsBytes);
    putU64(out, h.dstOff);
    putU64(out, h.dstBytes);
    putU64(out, h.weightOff);
    putU64(out, h.weightBytes);
    putU64(out, h.fingerprint);
    return out;
}

bool
decodeHeader(const void *data, std::size_t len, ScugHeader &h,
             std::uint64_t fileBytes, std::string *why)
{
    if (len < scugHeaderBytes)
        return fail(why, "file shorter than a store header");
    const auto *p = static_cast<const unsigned char *>(data);
    ScugHeader t;
    std::memcpy(t.magic, p, sizeof t.magic);
    if (std::memcmp(t.magic, scugMagic, sizeof scugMagic) != 0)
        return fail(why, "bad magic (not a .scug store file)");
    t.schema = getU32(p + 8);
    if (t.schema != scugSchemaVersion)
        return fail(why, "unsupported store schema version");
    t.flags = getU32(p + 12);
    t.numNodes = getU64(p + 16);
    t.numEdges = getU64(p + 24);
    t.offsetsOff = getU64(p + 32);
    t.offsetsBytes = getU64(p + 40);
    t.dstOff = getU64(p + 48);
    t.dstBytes = getU64(p + 56);
    t.weightOff = getU64(p + 64);
    t.weightBytes = getU64(p + 72);
    t.fingerprint = getU64(p + 80);

    // Section geometry must be internally consistent before any
    // pointer math trusts it: counts match section sizes, sections
    // are page-aligned, ordered, non-overlapping and in-file.
    if (t.offsetsBytes != (t.numNodes + 1) * sizeof(std::uint64_t))
        return fail(why, "offset section size != (n+1)*8");
    if (t.dstBytes != t.numEdges * sizeof(std::uint32_t))
        return fail(why, "destination section size != m*4");
    if (t.weightBytes != t.numEdges * sizeof(std::uint32_t))
        return fail(why, "weight section size != m*4");
    if (t.offsetsOff % scugPageBytes || t.dstOff % scugPageBytes ||
        t.weightOff % scugPageBytes)
        return fail(why, "unaligned section offset");
    if (t.offsetsOff < scugPageBytes ||
        t.dstOff < t.offsetsOff + t.offsetsBytes ||
        t.weightOff < t.dstOff + t.dstBytes)
        return fail(why, "overlapping or misordered sections");
    if (fileBytes &&
        (t.weightOff + t.weightBytes > fileBytes ||
         t.dstOff + t.dstBytes > fileBytes ||
         t.offsetsOff + t.offsetsBytes > fileBytes))
        return fail(why, "sections extend past end of file");
    if (t.numNodes > 0xFFFFFFFFull)
        return fail(why, "node count exceeds NodeId range");

    h = t;
    return true;
}

std::string
fingerprintHex(std::uint64_t fp)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::string
fingerprintLabel(std::uint64_t fp)
{
    return "scug:" + fingerprintHex(fp);
}

} // namespace scusim::store
