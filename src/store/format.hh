/**
 * @file
 * On-disk layout of the `.scug` binary CSR container — the dataset
 * store's one file format. A fixed little-endian header names the
 * schema, the graph's shape and the byte ranges of three page-aligned
 * sections (row offsets, edge destinations, edge weights), plus a
 * FNV-1a content fingerprint over the section bytes. The fingerprint
 * is the graph's *durable identity*: it survives renames, copies and
 * machines, so run caches and services can key results by it instead
 * of by a process-local pointer.
 *
 * Layout:
 *
 *     [0, headerBytes)        ScugHeader, zero-padded to one page
 *     [offsetsOff, +bytes)    (numNodes + 1) x u64 row offsets
 *     [dstOff, +bytes)        numEdges x u32 edge destinations
 *     [weightOff, +bytes)     numEdges x u32 edge weights
 *
 * Every section starts on a pageBytes boundary so a loader can mmap
 * it directly and hand the bytes to CsrGraph::viewing without a
 * copy. All integers are little-endian on disk; the in-memory header
 * struct is only byte-compatible on little-endian hosts (the decode
 * helpers do the honest conversion everywhere).
 */

#ifndef SCUSIM_STORE_FORMAT_HH
#define SCUSIM_STORE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace scusim::store
{

/** First 8 bytes of every store file. */
constexpr char scugMagic[8] = {'S', 'C', 'U', 'G',
                               'C', 'S', 'R', '\n'};

/** Bump on any incompatible header or section layout change. */
constexpr std::uint32_t scugSchemaVersion = 1;

/** Section alignment; also the reserved header size. */
constexpr std::uint64_t scugPageBytes = 4096;

/** Header flag: the weight section is present and meaningful. */
constexpr std::uint32_t scugFlagWeights = 1u << 0;

/**
 * Fixed-layout header, stored little-endian in the file's first
 * page. Field order is the wire order; do not reorder without a
 * schema bump.
 */
struct ScugHeader
{
    char magic[8] = {};
    std::uint32_t schema = scugSchemaVersion;
    std::uint32_t flags = 0;
    std::uint64_t numNodes = 0;
    std::uint64_t numEdges = 0;
    std::uint64_t offsetsOff = 0;   ///< row-offset section start
    std::uint64_t offsetsBytes = 0;
    std::uint64_t dstOff = 0;       ///< destination section start
    std::uint64_t dstBytes = 0;
    std::uint64_t weightOff = 0;    ///< weight section start
    std::uint64_t weightBytes = 0;
    /** FNV-1a over the three sections' bytes, in file order. */
    std::uint64_t fingerprint = 0;
};

/** Serialized header size (packed little-endian wire bytes). */
constexpr std::size_t scugHeaderBytes = 8 + 4 + 4 + 9 * 8;

static_assert(scugHeaderBytes <= scugPageBytes,
              "header must fit its reserved page");

/** Round @p v up to the next pageBytes boundary. */
constexpr std::uint64_t
pageAlign(std::uint64_t v)
{
    return (v + scugPageBytes - 1) & ~(scugPageBytes - 1);
}

/** Incremental FNV-1a, seeded with the offset basis. */
constexpr std::uint64_t fnvOffsetBasis = 0xCBF29CE484222325ull;

/** Fold @p len bytes at @p data into the running hash @p h. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t h = fnvOffsetBasis);

/** Serialize @p h into exactly scugHeaderBytes wire bytes. */
std::string encodeHeader(const ScugHeader &h);

/**
 * Parse the wire bytes at @p data (>= scugHeaderBytes of them) into
 * @p h. Returns false with a reason in @p why on bad magic, wrong
 * schema, or internally inconsistent section geometry (overlapping
 * or unaligned sections, counts that do not match section sizes).
 * @p fileBytes bounds the sections; pass 0 to skip the bounds check.
 */
bool decodeHeader(const void *data, std::size_t len, ScugHeader &h,
                  std::uint64_t fileBytes, std::string *why);

/** 16-hex-digit lowercase rendering of a fingerprint. */
std::string fingerprintHex(std::uint64_t fp);

/** Canonical dataset label of a store-backed graph: "scug:<hex>". */
std::string fingerprintLabel(std::uint64_t fp);

} // namespace scusim::store

#endif // SCUSIM_STORE_FORMAT_HH
