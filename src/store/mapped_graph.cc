#include "store/mapped_graph.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace scusim::store
{

namespace
{

/** RAII fd so every early return closes it. */
struct Fd
{
    int fd = -1;
    ~Fd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

bool
fail(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
    return false;
}

/**
 * Fold the bytes of [off, off+len) of @p is into @p h by streaming
 * reads — deliberately NOT through the mapping, so verifying a
 * larger-than-RAM store never grows the resident set past one
 * chunk.
 */
bool
hashRange(std::ifstream &is, std::uint64_t off, std::uint64_t len,
          std::uint64_t &h)
{
    static constexpr std::size_t chunkBytes = 1u << 20;
    std::vector<char> chunk(std::min<std::uint64_t>(len, chunkBytes));
    is.seekg(static_cast<std::streamoff>(off));
    while (len) {
        const auto want = static_cast<std::streamsize>(
            std::min<std::uint64_t>(len, chunk.size()));
        if (!is.read(chunk.data(), want))
            return false;
        h = fnv1a(chunk.data(), static_cast<std::size_t>(want), h);
        len -= static_cast<std::uint64_t>(want);
    }
    return true;
}

/**
 * Read @p count little-endian elements at file offset @p off into
 * @p out (the heap-copy decode path).
 */
template <typename T>
bool
readSection(std::ifstream &is, std::uint64_t off,
            std::uint64_t count, std::vector<T> &out)
{
    out.resize(static_cast<std::size_t>(count));
    if (!count)
        return true;
    is.seekg(static_cast<std::streamoff>(off));
    if constexpr (std::endian::native == std::endian::little) {
        return static_cast<bool>(
            is.read(reinterpret_cast<char *>(out.data()),
                    static_cast<std::streamsize>(count * sizeof(T))));
    }
    for (auto &v : out) {
        unsigned char buf[sizeof(T)];
        if (!is.read(reinterpret_cast<char *>(buf), sizeof buf))
            return false;
        std::uint64_t raw = 0;
        for (std::size_t b = 0; b < sizeof(T); ++b)
            raw |= static_cast<std::uint64_t>(buf[b]) << (8 * b);
        v = static_cast<T>(raw);
    }
    return true;
}

/** Align @p p down / up to the host page the kernel advises on. */
std::uintptr_t
pageDown(std::uintptr_t p)
{
    const auto page =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    return p & ~(page - 1);
}

std::uintptr_t
pageUp(std::uintptr_t p)
{
    const auto page =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    return (p + page - 1) & ~(page - 1);
}

/** madvise a [lo, hi) address range, page-rounded; best-effort. */
std::uint64_t
advise(std::uintptr_t lo, std::uintptr_t hi, int what)
{
    if (hi <= lo)
        return 0;
    const std::uintptr_t alo = pageDown(lo);
    const std::uintptr_t ahi = pageUp(hi);
    ::madvise(reinterpret_cast<void *>(alo), ahi - alo, what);
    return ahi - alo;
}

} // namespace

MappedGraph::WindowPager::WindowPager(const MappedGraph &owner,
                                      std::uint64_t budgetBytes)
    : mg(owner), budget(budgetBytes)
{
    // Destinations and weights page in together: 8 bytes per edge.
    constexpr std::uint64_t bytesPerEdge =
        sizeof(NodeId) + sizeof(Weight);
    edgeSpan = std::max<std::uint64_t>(budget / bytesPerEdge,
                                       scugPageBytes / sizeof(NodeId));
    // Start the kernel in streaming mode for the edge sections.
    const auto base =
        reinterpret_cast<std::uintptr_t>(mg.mapBase);
    advise(base + mg.hdr.dstOff,
           base + mg.hdr.dstOff + mg.hdr.dstBytes, MADV_SEQUENTIAL);
    advise(base + mg.hdr.weightOff,
           base + mg.hdr.weightOff + mg.hdr.weightBytes,
           MADV_SEQUENTIAL);
}

void
MappedGraph::WindowPager::noteRow(EdgeId begin, EdgeId end)
{
    if (begin >= end)
        return;
    if (begin >= winLo.load(std::memory_order_relaxed) &&
        end <= winHi.load(std::memory_order_relaxed))
        return; // resident fast path: no lock, no syscall
    std::lock_guard<std::mutex> lock(slideMutex);
    if (begin >= winLo.load(std::memory_order_relaxed) &&
        end <= winHi.load(std::memory_order_relaxed))
        return; // another thread slid the window here first
    advanceTo(begin, end);
}

void
MappedGraph::WindowPager::advanceTo(EdgeId firstEdge,
                                    EdgeId lastEdge)
{
    const EdgeId m = mg.hdr.numEdges;
    // Forward lookahead: the window starts at the requested row and
    // extends edgeSpan edges toward where a CSR scan goes next. A
    // row wider than the budget still maps in full — correctness
    // over the advisory budget.
    EdgeId lo = firstEdge;
    EdgeId hi = std::min<EdgeId>(
        m, std::max<EdgeId>(lastEdge, firstEdge + edgeSpan));

    const auto base =
        reinterpret_cast<std::uintptr_t>(mg.mapBase);
    const EdgeId oldLo = winLo.load(std::memory_order_relaxed);
    const EdgeId oldHi = winHi.load(std::memory_order_relaxed);

    std::uint64_t drop = 0, fetch = 0;
    for (const auto &sec :
         {std::pair<std::uint64_t, std::uint64_t>{
              mg.hdr.dstOff, sizeof(NodeId)},
          {mg.hdr.weightOff, sizeof(Weight)}}) {
        const std::uintptr_t s = base + sec.first;
        // Drop what the old window covered and the new one does not
        // (both halves, so backward jumps trim too).
        if (oldHi > oldLo) {
            if (oldLo < lo)
                drop += advise(s + oldLo * sec.second,
                               s + std::min(oldHi, lo) * sec.second,
                               MADV_DONTNEED);
            if (oldHi > hi)
                drop += advise(s + std::max(oldLo, hi) * sec.second,
                               s + oldHi * sec.second,
                               MADV_DONTNEED);
        }
        fetch += advise(s + lo * sec.second, s + hi * sec.second,
                        MADV_WILLNEED);
    }
    dropped.fetch_add(drop, std::memory_order_relaxed);
    prefetched.fetch_add(fetch, std::memory_order_relaxed);
    advances.fetch_add(1, std::memory_order_relaxed);
    winLo.store(lo, std::memory_order_relaxed);
    winHi.store(hi, std::memory_order_relaxed);
}

WindowStats
MappedGraph::WindowPager::stats() const
{
    WindowStats s;
    s.advances = advances.load(std::memory_order_relaxed);
    s.prefetchedBytes = prefetched.load(std::memory_order_relaxed);
    s.droppedBytes = dropped.load(std::memory_order_relaxed);
    s.windowBytes = budget;
    return s;
}

WindowStats
MappedGraph::windowStats() const
{
    return pager ? pager->stats() : WindowStats{};
}

MappedGraph::~MappedGraph()
{
    // The pager may be mid-madvise on another thread only if a view
    // outlived this object — a caller contract violation; views die
    // with their MappedGraph.
    pager.reset();
    if (mapBase)
        ::munmap(mapBase, static_cast<std::size_t>(mapBytes));
}

std::unique_ptr<MappedGraph>
MappedGraph::open(const std::string &path, const OpenOptions &opts,
                  std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        fail(err, "cannot open '" + path + "'");
        return nullptr;
    }
    is.seekg(0, std::ios::end);
    const auto fileBytes =
        static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);

    char hdrBuf[scugHeaderBytes];
    if (!is.read(hdrBuf, sizeof hdrBuf)) {
        fail(err, "'" + path + "': truncated header");
        return nullptr;
    }
    ScugHeader h;
    std::string why;
    if (!decodeHeader(hdrBuf, sizeof hdrBuf, h, fileBytes, &why)) {
        fail(err, "'" + path + "': " + why);
        return nullptr;
    }

    if (opts.verifyFingerprint) {
        std::uint64_t fp = fnvOffsetBasis;
        if (!hashRange(is, h.offsetsOff, h.offsetsBytes, fp) ||
            !hashRange(is, h.dstOff, h.dstBytes, fp) ||
            !hashRange(is, h.weightOff, h.weightBytes, fp)) {
            fail(err, "'" + path + "': truncated sections");
            return nullptr;
        }
        if (fp != h.fingerprint) {
            fail(err, "'" + path +
                          "': content fingerprint mismatch (file "
                          "says " +
                          fingerprintHex(h.fingerprint) +
                          ", sections hash to " +
                          fingerprintHex(fp) + ")");
            return nullptr;
        }
    }

    auto mg = std::unique_ptr<MappedGraph>(new MappedGraph());
    mg->filePath = path;
    mg->hdr = h;

    // Zero-copy path: map the whole file read-only and adopt the
    // section bytes. Only byte-compatible on little-endian hosts;
    // elsewhere (or on any mmap failure) fall through to the heap
    // copy.
    bool mapped = false;
    if (!opts.forceCopy &&
        std::endian::native == std::endian::little) {
        Fd f;
        f.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (f.fd >= 0) {
            void *base =
                ::mmap(nullptr, static_cast<std::size_t>(fileBytes),
                       PROT_READ, MAP_SHARED, f.fd, 0);
            if (base != MAP_FAILED) {
                mg->mapBase = base;
                mg->mapBytes = fileBytes;
                mg->mapMode = MapMode::Mmap;
                mapped = true;
            }
        }
        if (!mapped)
            warn("store: mmap of '%s' failed, degrading to a heap "
                 "copy", path.c_str());
    }

    if (mapped) {
        const auto *base =
            static_cast<const unsigned char *>(mg->mapBase);
        const auto *off = reinterpret_cast<const EdgeId *>(
            base + h.offsetsOff);
        const auto *dst = reinterpret_cast<const NodeId *>(
            base + h.dstOff);
        const auto *w = reinterpret_cast<const Weight *>(
            base + h.weightOff);
        if (opts.budgetBytes && h.numEdges)
            mg->pager = std::make_unique<WindowPager>(
                *mg, opts.budgetBytes);
        mg->view = graph::CsrGraph::viewing(
            static_cast<NodeId>(h.numNodes),
            {off, static_cast<std::size_t>(h.numNodes) + 1},
            {dst, static_cast<std::size_t>(h.numEdges)},
            {w, static_cast<std::size_t>(h.numEdges)},
            mg->pager.get());
    } else {
        if (!readSection(is, h.offsetsOff, h.numNodes + 1,
                         mg->heapOffsets) ||
            !readSection(is, h.dstOff, h.numEdges, mg->heapDst) ||
            !readSection(is, h.weightOff, h.numEdges, mg->heapW)) {
            fail(err, "'" + path + "': truncated sections");
            return nullptr;
        }
        mg->mapMode = MapMode::HeapCopy;
        mg->view = graph::CsrGraph::viewing(
            static_cast<NodeId>(h.numNodes), mg->heapOffsets,
            mg->heapDst, mg->heapW, nullptr);
    }
    return mg;
}

bool
readStoreHeader(const std::string &path, ScugHeader &h,
                std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return fail(err, "cannot open '" + path + "'");
    is.seekg(0, std::ios::end);
    const auto fileBytes =
        static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);
    char buf[scugHeaderBytes];
    if (!is.read(buf, sizeof buf))
        return fail(err, "'" + path + "': truncated header");
    std::string why;
    if (!decodeHeader(buf, sizeof buf, h, fileBytes, &why))
        return fail(err, "'" + path + "': " + why);
    return true;
}

} // namespace scusim::store
