/**
 * @file
 * MappedGraph: opens a `.scug` store file and exposes it as a
 * zero-copy CsrGraph view. The three page-aligned sections are
 * mmap'd read-only and adopted directly into CsrGraph::viewing — N
 * processes mapping the same file share one physical copy through
 * the page cache. Where mmap is unavailable (or explicitly declined)
 * the loader degrades gracefully to a private heap copy with the
 * same validation; results are byte-identical either way.
 *
 * Out-of-core mode: when a resident-budget is set (the
 * SCUSIM_STORE_BUDGET environment variable, parsed by
 * store/store.hh), the mapping stays fully *addressable* — virtual
 * address space is free on 64-bit — but a RowPager slides a
 * budget-sized residency window across the edge/weight sections as
 * the CSR scans of the runner touch rows: pages ahead of the scan
 * are prefetched (madvise WILLNEED + SEQUENTIAL lookahead), pages
 * behind it are dropped (madvise DONTNEED), so a graph larger than
 * RAM traverses with the process's resident set bounded by the
 * budget. The pager never changes what an accessor returns — paged
 * and in-memory traversals are byte-identical by construction.
 */

#ifndef SCUSIM_STORE_MAPPED_GRAPH_HH
#define SCUSIM_STORE_MAPPED_GRAPH_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "graph/csr.hh"
#include "store/format.hh"

namespace scusim::store
{

/** How a MappedGraph gets its bytes. */
enum class MapMode
{
    Mmap,     ///< sections mmap'd read-only, zero copy
    HeapCopy, ///< private heap copy (mmap unavailable/declined)
};

/** Options for opening a store file. */
struct OpenOptions
{
    /**
     * Resident-set budget in bytes for the edge + weight sections;
     * 0 = no windowing (the kernel manages residency). Non-zero
     * enables the out-of-core windowed pager (mmap mode only).
     */
    std::uint64_t budgetBytes = 0;
    /** Skip the (one sequential read) fingerprint verification. */
    bool verifyFingerprint = true;
    /** Force the heap-copy path even where mmap works. */
    bool forceCopy = false;
};

/** Residency-window telemetry of the out-of-core pager. */
struct WindowStats
{
    std::uint64_t advances = 0;     ///< window slides performed
    std::uint64_t prefetchedBytes = 0;
    std::uint64_t droppedBytes = 0; ///< madvise(DONTNEED) volume
    std::uint64_t windowBytes = 0;  ///< configured budget
};

/**
 * An open store file. Owns the mapping (or the heap copy) and the
 * CsrGraph view into it; keep it alive as long as any copy of
 * graph() is in use.
 */
class MappedGraph
{
  public:
    ~MappedGraph();

    MappedGraph(const MappedGraph &) = delete;
    MappedGraph &operator=(const MappedGraph &) = delete;

    /**
     * Open @p path. Returns null with a reason in @p err on any
     * failure: missing file, bad magic/schema, truncation,
     * fingerprint mismatch. Never throws, never panics — a damaged
     * store must degrade its caller to the non-store path.
     */
    static std::unique_ptr<MappedGraph>
    open(const std::string &path, const OpenOptions &opts = {},
         std::string *err = nullptr);

    /** The zero-copy (or heap-copy) view; aliases this mapping. */
    const graph::CsrGraph &graph() const { return view; }

    const ScugHeader &header() const { return hdr; }
    std::uint64_t fingerprint() const { return hdr.fingerprint; }
    const std::string &path() const { return filePath; }
    MapMode mode() const { return mapMode; }
    bool windowed() const { return pager != nullptr; }

    /** Snapshot of the pager's telemetry (zeros when !windowed()). */
    WindowStats windowStats() const;

  private:
    MappedGraph() = default;

    /**
     * The out-of-core residency window. noteRow is called from
     * CsrGraph accessors on every row hand-out, possibly from many
     * executor threads at once: the in-window fast path is two
     * relaxed atomic loads, the slide path serializes on a mutex.
     */
    class WindowPager final : public graph::RowPager
    {
      public:
        WindowPager(const MappedGraph &owner,
                    std::uint64_t budgetBytes);
        void noteRow(EdgeId begin, EdgeId end) override;
        WindowStats stats() const;

      private:
        void advanceTo(EdgeId firstEdge, EdgeId lastEdge);

        const MappedGraph &mg;
        std::uint64_t budget;    ///< bytes across both sections
        std::uint64_t edgeSpan;  ///< edges a window covers
        std::atomic<EdgeId> winLo{0};
        std::atomic<EdgeId> winHi{0};
        std::mutex slideMutex;
        std::atomic<std::uint64_t> advances{0};
        std::atomic<std::uint64_t> prefetched{0};
        std::atomic<std::uint64_t> dropped{0};
    };

    std::string filePath;
    ScugHeader hdr;
    MapMode mapMode = MapMode::HeapCopy;

    // Mmap mode: one mapping of the whole file.
    void *mapBase = nullptr;
    std::uint64_t mapBytes = 0;

    // Heap-copy mode: decoded private arrays.
    std::vector<EdgeId> heapOffsets;
    std::vector<NodeId> heapDst;
    std::vector<Weight> heapW;

    std::unique_ptr<WindowPager> pager;
    graph::CsrGraph view;
};

/**
 * Parse only the header of @p path (no mapping, no fingerprint
 * verification): the cheap identity probe clients use to compute a
 * run key before shipping the path to a daemon.
 */
bool readStoreHeader(const std::string &path, ScugHeader &h,
                     std::string *err = nullptr);

} // namespace scusim::store

#endif // SCUSIM_STORE_MAPPED_GRAPH_HH
