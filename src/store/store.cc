#include "store/store.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include <sys/stat.h>

#include "common/logging.hh"
#include "graph/datasets.hh"
#include "graph/loader.hh"
#include "store/writer.hh"

namespace scusim::store
{

namespace
{

std::atomic<std::uint64_t> quarantined{0};

/**
 * Quarantine a damaged store file the run-cache way: rename it to
 * "<name>.corrupt" so the slot becomes a clean miss a repack can
 * fill, while the evidence stays on disk. Concurrent processes may
 * race to the same rename; losing is fine.
 */
void
quarantine(const std::string &path, const std::string &why)
{
    const std::string corrupt = path + ".corrupt";
    if (std::rename(path.c_str(), corrupt.c_str()) == 0) {
        quarantined.fetch_add(1, std::memory_order_relaxed);
        warn("store: quarantined corrupt file '%s' -> '%s' (%s)",
             path.c_str(), corrupt.c_str(), why.c_str());
    }
}

/** Filename-safe %.17g: '.'->'p', '-'->'m' ("0.25" -> "0p25"). */
std::string
scaleToken(double scale)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", scale);
    std::string s = buf;
    for (char &c : s) {
        if (c == '.')
            c = 'p';
        else if (c == '-')
            c = 'm';
        else if (c == '+')
            c = 'q';
    }
    return s;
}

/**
 * Open @p path windowed by the configured budget; on damage,
 * quarantine and report false so the caller can repack. Absent
 * files are a plain miss (no quarantine).
 */
std::shared_ptr<MappedGraph>
tryOpen(const std::string &path, bool *existedButBroken)
{
    if (existedButBroken)
        *existedButBroken = false;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return nullptr;
    OpenOptions oo;
    oo.budgetBytes = storeBudget();
    std::string err;
    auto mg = MappedGraph::open(path, oo, &err);
    if (mg)
        return std::shared_ptr<MappedGraph>(std::move(mg));
    quarantine(path, err);
    if (existedButBroken)
        *existedButBroken = true;
    return nullptr;
}

} // namespace

std::string
storeDir()
{
    const char *d = std::getenv("SCUSIM_STORE_DIR");
    return d ? std::string(d) : std::string();
}

std::uint64_t
parseByteSize(const std::string &s)
{
    if (s.empty())
        return 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str())
        return 0;
    std::uint64_t mult = 1;
    if (*end) {
        switch (std::tolower(static_cast<unsigned char>(*end))) {
          case 'k':
            mult = 1ull << 10;
            break;
          case 'm':
            mult = 1ull << 20;
            break;
          case 'g':
            mult = 1ull << 30;
            break;
          default:
            return 0;
        }
        if (end[1] != '\0')
            return 0;
    }
    return static_cast<std::uint64_t>(v) * mult;
}

std::uint64_t
storeBudget()
{
    const char *b = std::getenv("SCUSIM_STORE_BUDGET");
    return b ? parseByteSize(b) : 0;
}

std::string
datasetStorePath(const std::string &dir, const std::string &name,
                 double scale, std::uint64_t seed)
{
    return dir + "/" + name + "_s" + scaleToken(scale) + "_r" +
           std::to_string(seed) + ".scug";
}

std::string
graphFileStorePath(const std::string &dir,
                   const std::string &srcPath)
{
    // Path identity, not content identity: re-hashing the source on
    // every lookup would defeat the point. Size + mtime catch
    // in-place edits; the packed file's fingerprint is the durable
    // content identity downstream layers key on.
    std::uint64_t h = fnv1a(srcPath.data(), srcPath.size());
    struct ::stat st = {};
    if (::stat(srcPath.c_str(), &st) == 0) {
        h = fnv1a(&st.st_size, sizeof st.st_size, h);
        h = fnv1a(&st.st_mtime, sizeof st.st_mtime, h);
    }
    return dir + "/file_" + fingerprintHex(h) + ".scug";
}

std::uint64_t
storeQuarantinedCount()
{
    return quarantined.load(std::memory_order_relaxed);
}

std::shared_ptr<MappedGraph>
openDataset(const std::string &name, double scale,
            std::uint64_t seed)
{
    const std::string dir = storeDir();
    if (dir.empty())
        return nullptr;
    const std::string path =
        datasetStorePath(dir, name, scale, seed);
    if (auto mg = tryOpen(path, nullptr))
        return mg;
    // Miss (or quarantined damage): build once, pack atomically,
    // map the packed bytes. Concurrent packers write identical
    // bytes through process-unique temp files, so the race is
    // benign.
    graph::CsrGraph g = graph::makeDataset(name, scale, seed);
    const PackResult pr = writeStore(g, path);
    if (!pr.ok) {
        warn("store: cannot pack dataset '%s' at '%s': %s",
             name.c_str(), path.c_str(), pr.error.c_str());
        return nullptr;
    }
    auto mg = tryOpen(path, nullptr);
    if (!mg)
        warn("store: freshly packed '%s' failed to open",
             path.c_str());
    return mg;
}

std::shared_ptr<MappedGraph>
openGraphFile(const std::string &path, bool dedup)
{
    const std::string dir = storeDir();
    if (dir.empty())
        return nullptr;
    const std::string dst = graphFileStorePath(dir, path);
    if (auto mg = tryOpen(dst, nullptr))
        return mg;
    graph::CsrGraph g = graph::loadGraphFile(path, dedup);
    const PackResult pr = writeStore(g, dst);
    if (!pr.ok) {
        warn("store: cannot pack graph file '%s' at '%s': %s",
             path.c_str(), dst.c_str(), pr.error.c_str());
        return nullptr;
    }
    auto mg = tryOpen(dst, nullptr);
    if (!mg)
        warn("store: freshly packed '%s' failed to open",
             dst.c_str());
    return mg;
}

std::shared_ptr<MappedGraph>
openStoreFile(const std::string &path)
{
    OpenOptions oo;
    oo.budgetBytes = storeBudget();
    std::string err;
    auto mg = MappedGraph::open(path, oo, &err);
    if (!mg) {
        warn("store: %s", err.c_str());
        return nullptr;
    }
    return std::shared_ptr<MappedGraph>(std::move(mg));
}

} // namespace scusim::store
