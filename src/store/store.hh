/**
 * @file
 * The dataset store registry: where store files live, how big the
 * out-of-core residency window is, and the pack-on-miss entry points
 * the rest of the system goes through.
 *
 *  - SCUSIM_STORE_DIR: directory of `.scug` files; empty/unset
 *    disables the store entirely (every caller falls back to the
 *    in-memory path).
 *  - SCUSIM_STORE_BUDGET: resident-set budget for the edge sections,
 *    e.g. "64k", "16M", "1G" (plain bytes without a suffix). Unset
 *    or 0 = fully mapped, kernel-managed residency.
 *
 * Synthetic datasets are keyed by (name, scale, seed) — the same
 * triple that makes makeDataset deterministic — so the store file is
 * built once ever and mapped read-only by every later process.
 * Graph files (loadGraphFile inputs) are keyed by their path
 * identity (path, size, mtime): the packed container then carries
 * the content fingerprint that finally gives file-backed runs a
 * durable cache identity.
 *
 * A store file that exists but fails to open (torn by a mid-write
 * crash of a non-atomic writer, bit rot, stale schema) is
 * quarantined — renamed to "<name>.corrupt" with a warning — and
 * repacked, mirroring the run-cache policy: damage costs one failed
 * open ever, not a permanent silent fallback.
 */

#ifndef SCUSIM_STORE_STORE_HH
#define SCUSIM_STORE_STORE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "store/mapped_graph.hh"

namespace scusim::store
{

/** SCUSIM_STORE_DIR, or "" when unset/empty (store disabled). */
std::string storeDir();

/** SCUSIM_STORE_BUDGET in bytes, or 0 when unset/unparsable. */
std::uint64_t storeBudget();

/** Parse "4096", "64k", "16M", "1G" into bytes; 0 on bad input. */
std::uint64_t parseByteSize(const std::string &s);

/** The file a (name, scale, seed) dataset lives at under @p dir. */
std::string datasetStorePath(const std::string &dir,
                             const std::string &name, double scale,
                             std::uint64_t seed);

/** The file a packed copy of graph file @p srcPath lives at. */
std::string graphFileStorePath(const std::string &dir,
                               const std::string &srcPath);

/** Store files quarantined (renamed "<name>.corrupt") so far. */
std::uint64_t storeQuarantinedCount();

/**
 * Open the store-backed copy of dataset (name, scale, seed) under
 * storeDir(), synthesizing and packing it first if missing
 * (makeDataset's store-backed path). The returned handle owns the
 * mapping; windowing follows storeBudget(). Null (after a warn) on
 * any failure — callers degrade to the in-memory path.
 */
std::shared_ptr<MappedGraph> openDataset(const std::string &name,
                                         double scale,
                                         std::uint64_t seed);

/**
 * Open the store-backed copy of graph file @p path (any format
 * loadGraphFile accepts), packing it first if missing or stale
 * (loadGraphFile's store-backed path). Null (after a warn) on any
 * failure.
 */
std::shared_ptr<MappedGraph> openGraphFile(const std::string &path,
                                           bool dedup = false);

/**
 * Open an explicit `.scug` file with the configured budget,
 * quarantining and failing (null + warn) on damage. The daemon's
 * --dataset-file path.
 */
std::shared_ptr<MappedGraph> openStoreFile(const std::string &path);

} // namespace scusim::store

#endif // SCUSIM_STORE_STORE_HH
