#include "store/writer.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "store/format.hh"

namespace scusim::store
{

namespace
{

/**
 * Serialize @p count little-endian elements of @p src into @p os
 * while folding the exact bytes written into @p h. On little-endian
 * hosts the element memory already is the wire format, so whole
 * spans stream through untouched; the per-element path is the
 * big-endian fallback.
 */
template <typename T>
void
writeSection(std::ostream &os, const T *src, std::size_t count,
             std::uint64_t &h)
{
    if constexpr (std::endian::native == std::endian::little) {
        const auto bytes = count * sizeof(T);
        os.write(reinterpret_cast<const char *>(src),
                 static_cast<std::streamsize>(bytes));
        h = fnv1a(src, bytes, h);
        return;
    }
    for (std::size_t i = 0; i < count; ++i) {
        unsigned char buf[sizeof(T)];
        auto v = static_cast<std::uint64_t>(src[i]);
        for (std::size_t b = 0; b < sizeof(T); ++b)
            buf[b] = static_cast<unsigned char>((v >> (8 * b)) &
                                                0xFF);
        os.write(reinterpret_cast<const char *>(buf), sizeof buf);
        h = fnv1a(buf, sizeof buf, h);
    }
}

/** Zero-pad @p os from @p at up to the next page boundary. */
void
padToPage(std::ostream &os, std::uint64_t at)
{
    static const char zeros[256] = {};
    std::uint64_t want = pageAlign(at) - at;
    while (want) {
        const auto chunk =
            static_cast<std::streamsize>(std::min<std::uint64_t>(
                want, sizeof zeros));
        os.write(zeros, chunk);
        want -= static_cast<std::uint64_t>(chunk);
    }
}

} // namespace

std::uint64_t
graphFingerprint(const graph::CsrGraph &g)
{
    std::uint64_t h = fnvOffsetBasis;
    if constexpr (std::endian::native == std::endian::little) {
        const auto off = g.adjacencyOffsets();
        const auto dst = g.edgeArray();
        const auto w = g.weightArray();
        h = fnv1a(off.data(), off.size_bytes(), h);
        h = fnv1a(dst.data(), dst.size_bytes(), h);
        h = fnv1a(w.data(), w.size_bytes(), h);
        return h;
    }
    // Big-endian fallback: hash the little-endian wire rendering so
    // the fingerprint names the same graph on every host.
    std::ostringstream ss;
    const auto off = g.adjacencyOffsets();
    writeSection(ss, off.data(), off.size(), h);
    const auto dst = g.edgeArray();
    writeSection(ss, dst.data(), dst.size(), h);
    const auto w = g.weightArray();
    writeSection(ss, w.data(), w.size(), h);
    return h;
}

PackResult
writeStore(const graph::CsrGraph &g, const std::string &path)
{
    PackResult res;

    ScugHeader h;
    std::memcpy(h.magic, scugMagic, sizeof h.magic);
    h.flags = scugFlagWeights;
    h.numNodes = g.numNodes();
    h.numEdges = g.numEdges();
    h.offsetsBytes = (h.numNodes + 1) * sizeof(std::uint64_t);
    h.dstBytes = h.numEdges * sizeof(std::uint32_t);
    h.weightBytes = h.numEdges * sizeof(std::uint32_t);
    h.offsetsOff = scugPageBytes;
    h.dstOff = pageAlign(h.offsetsOff + h.offsetsBytes);
    h.weightOff = pageAlign(h.dstOff + h.dstBytes);

    std::error_code ec;
    const auto parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::filesystem::create_directories(parent, ec);
        if (ec) {
            res.error = "cannot create '" + parent.string() +
                        "': " + ec.message();
            return res;
        }
    }

    std::ostringstream tmpName;
    tmpName << path << ".tmp." << ::getpid();
    {
        std::ofstream out(tmpName.str(),
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            res.error = "cannot write '" + tmpName.str() + "'";
            return res;
        }

        // Sections first conceptually — the fingerprint is over
        // their bytes — but the header leads the file, so hash while
        // streaming and patch the header in afterwards via a second
        // pass over the first page.
        std::uint64_t fp = fnvOffsetBasis;
        std::string headerPage(scugPageBytes, '\0');
        out.write(headerPage.data(),
                  static_cast<std::streamsize>(headerPage.size()));

        const auto off = g.adjacencyOffsets();
        writeSection(out, off.data(), off.size(), fp);
        padToPage(out, h.offsetsOff + h.offsetsBytes);
        const auto dst = g.edgeArray();
        writeSection(out, dst.data(), dst.size(), fp);
        padToPage(out, h.dstOff + h.dstBytes);
        const auto w = g.weightArray();
        writeSection(out, w.data(), w.size(), fp);

        h.fingerprint = fp;
        const std::string hdr = encodeHeader(h);
        out.seekp(0);
        out.write(hdr.data(),
                  static_cast<std::streamsize>(hdr.size()));

        if (!out.good()) {
            out.close();
            std::remove(tmpName.str().c_str());
            res.error = "short write to '" + tmpName.str() + "'";
            return res;
        }
        res.fileBytes = h.weightOff + h.weightBytes;
        res.fingerprint = fp;
    }

    if (std::rename(tmpName.str().c_str(), path.c_str()) != 0) {
        std::remove(tmpName.str().c_str());
        res.error = "rename to '" + path + "' failed";
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace scusim::store
