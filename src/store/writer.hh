/**
 * @file
 * StoreWriter: packs a CsrGraph into a `.scug` container. Writes go
 * through a process-unique temp file and std::rename (the run-cache
 * pattern), so concurrent packers never expose a torn file and a
 * crash mid-write leaves only a stale `.tmp.<pid>` to sweep, never a
 * half-written store that a loader could trust. Two packers racing
 * on the same (deterministic) graph produce identical bytes, so
 * whoever renames last changes nothing.
 */

#ifndef SCUSIM_STORE_WRITER_HH
#define SCUSIM_STORE_WRITER_HH

#include <cstdint>
#include <string>

#include "graph/csr.hh"

namespace scusim::store
{

/** Outcome of a pack. */
struct PackResult
{
    bool ok = false;
    std::uint64_t fingerprint = 0; ///< content identity of the file
    std::uint64_t fileBytes = 0;
    std::string error; ///< why, when !ok
};

/**
 * Pack @p g into @p path atomically. Existing files are replaced
 * (rename semantics); the parent directory is created if needed.
 * Never throws — I/O failures come back in the result, because a
 * full disk must degrade a caller to the non-store path, not kill
 * it.
 */
PackResult writeStore(const graph::CsrGraph &g,
                      const std::string &path);

/**
 * Fingerprint @p g exactly as writeStore would record it, without
 * touching the filesystem (the store-path key for an in-memory
 * graph).
 */
std::uint64_t graphFingerprint(const graph::CsrGraph &g);

} // namespace scusim::store

#endif // SCUSIM_STORE_WRITER_HH
