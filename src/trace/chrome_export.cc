#include "trace/chrome_export.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "common/logging.hh"

namespace scusim::trace
{

namespace
{

/** JSON string escaping, matching the artifact writers in harness. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Device (Chrome pid) a component channel belongs to. */
struct Device
{
    int pid;
    std::string name;
};

Device
deviceFor(const std::string &channel)
{
    if (channel.rfind("sm", 0) == 0 || channel == "gpu")
        return {1, "gpu"};
    if (channel.rfind("scu", 0) == 0)
        return {2, "scu"};
    if (channel.rfind("mem", 0) == 0 || channel.rfind("dram", 0) == 0 ||
        channel.rfind("l2", 0) == 0)
        return {3, "mem"};
    if (channel == "icn")
        return {4, "icn"};
    // Multi-device channels arrive prefixed "d<k>."; each simulated
    // device gets its own pid block so its gpu/scu/mem lanes stay
    // distinct in the viewer.
    if (channel.size() > 2 && channel[0] == 'd') {
        std::size_t i = 1;
        while (i < channel.size() && channel[i] >= '0' &&
               channel[i] <= '9')
            ++i;
        if (i > 1 && i < channel.size() && channel[i] == '.') {
            const int k = std::atoi(channel.substr(1, i - 1).c_str());
            const Device base = deviceFor(channel.substr(i + 1));
            return {10 + 4 * k + base.pid,
                    "d" + std::to_string(k) + "." + base.name};
        }
    }
    return {0, "sim"};
}

void
writeEvent(std::ostream &os, bool &first, const std::string &body)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {" << body << "}";
}

std::string
common(const TraceEvent &e, int pid, int tid)
{
    return "\"name\": \"" + jsonEscape(e.name) + "\", \"cat\": \"" +
           to_string(e.cat) + "\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(tid) +
           ", \"ts\": " + std::to_string(e.start);
}

} // namespace

void
writeChromeTrace(std::ostream &os, const TraceSink &sink)
{
    const auto chans = sink.channels();

    os << "{\n  \"displayTimeUnit\": \"ms\",\n";
    os << "  \"otherData\": {\"source\": \"scusim\", "
          "\"time_unit\": \"simulated ticks\"},\n";
    os << "  \"traceEvents\": [\n";

    bool first = true;

    // Stable pid/tid assignment: pids are fixed per device, tids are
    // the channel's rank within its device in creation order (which
    // is the deterministic component wiring order).
    std::map<int, int> nextTid;
    std::map<int, std::string> pidName;
    std::vector<int> tids(chans.size());
    for (std::size_t i = 0; i < chans.size(); ++i) {
        const Device dev = deviceFor(chans[i]->name());
        tids[i] = nextTid[dev.pid]++;
        pidName[dev.pid] = dev.name;
    }

    for (const auto &[pid, name] : pidName)
        writeEvent(os, first,
                   "\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
                       std::to_string(pid) +
                       ", \"args\": {\"name\": \"" +
                       jsonEscape(name) + "\"}");

    for (std::size_t i = 0; i < chans.size(); ++i) {
        const Device dev = deviceFor(chans[i]->name());
        writeEvent(os, first,
                   "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
                       std::to_string(dev.pid) +
                       ", \"tid\": " + std::to_string(tids[i]) +
                       ", \"args\": {\"name\": \"" +
                       jsonEscape(chans[i]->name()) + "\"}");
    }

    for (std::size_t i = 0; i < chans.size(); ++i) {
        const Device dev = deviceFor(chans[i]->name());
        for (const TraceEvent &e : chans[i]->snapshot()) {
            std::string body = common(e, dev.pid, tids[i]);
            switch (e.type) {
              case EventType::Span:
                body += ", \"ph\": \"X\", \"dur\": " +
                        std::to_string(e.dur) +
                        ", \"args\": {\"arg\": " + std::to_string(e.arg) +
                        "}";
                break;
              case EventType::Instant:
                body += ", \"ph\": \"i\", \"s\": \"t\", "
                        "\"args\": {\"arg\": " +
                        std::to_string(e.arg) + "}";
                break;
              case EventType::Counter:
                body += ", \"ph\": \"C\", \"args\": {\"value\": " +
                        std::to_string(e.arg) + "}";
                break;
            }
            writeEvent(os, first, body);
        }
    }

    os << "\n  ]\n}\n";
}

bool
writeChromeTrace(const std::string &path, const TraceSink &sink)
{
    std::ofstream f(path);
    if (!f) {
        warn("cannot open trace output '%s'", path.c_str());
        return false;
    }
    writeChromeTrace(f, sink);
    return true;
}

} // namespace scusim::trace
