/**
 * @file
 * Chrome trace-event JSON exporter: turns a TraceSink into a file
 * chrome://tracing and Perfetto load directly. One pid per simulated
 * device (sim loop, GPU, SCU, memory system), one tid per component
 * channel, simulated ticks as microsecond timestamps.
 */

#ifndef SCUSIM_TRACE_CHROME_EXPORT_HH
#define SCUSIM_TRACE_CHROME_EXPORT_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace scusim::trace
{

/** Write the Chrome trace-event JSON document for @p sink. */
void writeChromeTrace(std::ostream &os, const TraceSink &sink);

/**
 * Write the trace to @p path, creating or truncating the file.
 * Returns false (with a warning) when the file cannot be opened.
 */
bool writeChromeTrace(const std::string &path, const TraceSink &sink);

} // namespace scusim::trace

#endif // SCUSIM_TRACE_CHROME_EXPORT_HH
