#include "trace/profiler.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <ostream>

namespace scusim::trace
{

Profiler &
Profiler::instance()
{
    static Profiler p;
    return p;
}

bool
Profiler::envEnabled()
{
    const char *v = std::getenv("SCUSIM_PROFILE");
    return v && *v && std::strcmp(v, "0") != 0;
}

void
Profiler::add(ProfilePhase *p)
{
    // Registration is rare (once per instrumented site, at first
    // execution); a spin lock keeps the header dependency-light.
    int expected = 0;
    while (!registering.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire))
        expected = 0;
    phases.push_back(p);
    registering.store(0, std::memory_order_release);
}

std::vector<Profiler::PhaseStats>
Profiler::snapshot() const
{
    int expected = 0;
    while (!registering.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire))
        expected = 0;
    std::vector<ProfilePhase *> copy = phases;
    registering.store(0, std::memory_order_release);

    // Several sites may share one label (e.g. each validator scopes
    // itself as "harness::validate"); merge them into one row.
    std::vector<PhaseStats> out;
    for (ProfilePhase *p : copy) {
        const std::uint64_t calls = p->totalCalls();
        if (!calls)
            continue;
        auto it = std::find_if(out.begin(), out.end(),
                               [&](const PhaseStats &s) {
                                   return s.name == p->name();
                               });
        if (it == out.end()) {
            out.push_back({p->name(), p->totalNs(), calls});
        } else {
            it->ns += p->totalNs();
            it->calls += calls;
        }
    }
    return out;
}

void
Profiler::reset()
{
    int expected = 0;
    while (!registering.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire))
        expected = 0;
    for (ProfilePhase *p : phases)
        p->reset();
    registering.store(0, std::memory_order_release);
}

void
Profiler::report(std::ostream &os) const
{
    std::vector<PhaseStats> stats = snapshot();
    std::sort(stats.begin(), stats.end(),
              [](const PhaseStats &a, const PhaseStats &b) {
                  return a.ns != b.ns ? a.ns > b.ns : a.name < b.name;
              });

    std::uint64_t totalNs = 0;
    std::size_t nameWidth = 5;
    for (const PhaseStats &s : stats) {
        totalNs += s.ns;
        nameWidth = std::max(nameWidth, s.name.size());
    }

    os << "profile: per-phase wall-clock breakdown\n";
    os << "  " << std::left << std::setw(static_cast<int>(nameWidth))
       << "phase" << std::right << std::setw(12) << "ms"
       << std::setw(8) << "%" << std::setw(14) << "calls"
       << std::setw(12) << "ns/call" << "\n";
    for (const PhaseStats &s : stats) {
        const double ms = static_cast<double>(s.ns) / 1e6;
        const double pct =
            totalNs ? 100.0 * static_cast<double>(s.ns) /
                          static_cast<double>(totalNs)
                    : 0.0;
        os << "  " << std::left << std::setw(static_cast<int>(nameWidth))
           << s.name << std::right << std::setw(12) << std::fixed
           << std::setprecision(2) << ms << std::setw(7)
           << std::setprecision(1) << pct << "%" << std::setw(14)
           << s.calls << std::setw(12) << s.ns / s.calls << "\n";
    }
    if (stats.empty())
        os << "  (no phases recorded)\n";
}

ProfilePhase::ProfilePhase(const char *name) : name_(name)
{
    Profiler::instance().add(this);
}

} // namespace scusim::trace
