/**
 * @file
 * Host-side wall-clock profiler for the simulator's own hot paths
 * (Sm::tick, the SCU pipeline, MemSystem::access, harness phases).
 * Measures where *wall-clock* time goes, never simulated time: the
 * timers feed a report table only, so the simulation's determinism is
 * untouched (hence the nondeterminism-lint allowances below).
 *
 * Usage: drop SCUSIM_PROFILE_SCOPE("Sm::tick") at the top of a scope.
 * The macro interns a process-wide phase accumulator (atomic adds, so
 * the parallel executor's workers can share it) and times the scope
 * with a steady clock when profiling is enabled. Disabled — the
 * default — the cost is one relaxed atomic load and a branch.
 *
 * Enable with SCUSIM_PROFILE=1 in the environment (picked up by
 * runPlan, which prints the per-phase breakdown after each plan) or
 * programmatically via Profiler::instance().setEnabled(true).
 */

#ifndef SCUSIM_TRACE_PROFILER_HH
#define SCUSIM_TRACE_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace scusim::trace
{

class ProfilePhase;

/** Process-wide registry of profiling phases. */
class Profiler
{
  public:
    static Profiler &instance();

    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** True when the SCUSIM_PROFILE environment variable asks for
     *  profiling ("" / "0" mean off). */
    static bool envEnabled();

    struct PhaseStats
    {
        std::string name;
        std::uint64_t ns;
        std::uint64_t calls;
    };

    /** Accumulated stats of every registered phase, registration
     *  order (skips phases never hit). */
    std::vector<PhaseStats> snapshot() const;

    /** Zero every accumulator (phases stay registered). */
    void reset();

    /** Per-phase breakdown table, widest consumer first. */
    void report(std::ostream &os) const;

  private:
    friend class ProfilePhase;
    void add(ProfilePhase *p);

    std::atomic<bool> enabled_{false};
    mutable std::atomic<int> registering{0}; ///< spin lock for phases
    std::vector<ProfilePhase *> phases;
};

/**
 * One named accumulator, defined as a function-local static by
 * SCUSIM_PROFILE_SCOPE so registration happens exactly once.
 */
class ProfilePhase
{
  public:
    explicit ProfilePhase(const char *name);

    void
    add(std::uint64_t ns)
    {
        nsTotal.fetch_add(ns, std::memory_order_relaxed);
        calls.fetch_add(1, std::memory_order_relaxed);
    }

    const char *name() const { return name_; }
    std::uint64_t totalNs() const { return nsTotal.load(std::memory_order_relaxed); }
    std::uint64_t totalCalls() const { return calls.load(std::memory_order_relaxed); }

    void
    reset()
    {
        nsTotal.store(0, std::memory_order_relaxed);
        calls.store(0, std::memory_order_relaxed);
    }

  private:
    const char *name_;
    std::atomic<std::uint64_t> nsTotal{0};
    std::atomic<std::uint64_t> calls{0};
};

/** RAII timer charging its lifetime to a phase when profiling is on. */
class ScopedProfiler
{
  public:
    explicit ScopedProfiler(ProfilePhase &p)
        : phase(Profiler::instance().enabled() ? &p : nullptr)
    {
        if (phase)
            begin = std::chrono::steady_clock::now(); // simlint: allow(nondeterminism)
    }

    ~ScopedProfiler()
    {
        if (!phase)
            return;
        const auto end = std::chrono::steady_clock::now(); // simlint: allow(nondeterminism)
        phase->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - begin)
                .count()));
    }

    ScopedProfiler(const ScopedProfiler &) = delete;
    ScopedProfiler &operator=(const ScopedProfiler &) = delete;

  private:
    ProfilePhase *phase;
    std::chrono::steady_clock::time_point begin;
};

} // namespace scusim::trace

#define SCUSIM_PROFILE_CAT2(a, b) a##b
#define SCUSIM_PROFILE_CAT(a, b) SCUSIM_PROFILE_CAT2(a, b)

/**
 * Time the rest of the enclosing scope under phase @p name (a string
 * literal). Safe in multi-threaded code; negligible when disabled.
 */
#define SCUSIM_PROFILE_SCOPE(name)                                      \
    static ::scusim::trace::ProfilePhase SCUSIM_PROFILE_CAT(            \
        scusim_profile_phase_, __LINE__)(name);                         \
    ::scusim::trace::ScopedProfiler SCUSIM_PROFILE_CAT(                 \
        scusim_profile_scope_,                                          \
        __LINE__)(SCUSIM_PROFILE_CAT(scusim_profile_phase_, __LINE__))

#endif // SCUSIM_TRACE_PROFILER_HH
