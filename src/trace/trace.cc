#include "trace/trace.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace scusim::trace
{

const char *
to_string(Category c)
{
    switch (c) {
      case Category::Kernel: return "kernel";
      case Category::ScuOp: return "scu-op";
      case Category::Mem: return "mem";
      case Category::Fifo: return "fifo";
      case Category::Sim: return "sim";
    }
    return "?";
}

namespace
{

constexpr Category allCategories[] = {
    Category::Kernel, Category::ScuOp, Category::Mem, Category::Fifo,
    Category::Sim,
};

} // namespace

std::uint32_t
parseCategoryMask(const std::string &spec)
{
    if (spec.empty() || spec == "none" || spec == "0")
        return 0;
    if (spec == "all" || spec == "1")
        return maskAll;
    if (spec.find_first_not_of("0123456789xX") == std::string::npos)
        return static_cast<std::uint32_t>(
            std::stoul(spec, nullptr, 0));

    std::uint32_t mask = 0;
    std::istringstream is(spec);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        bool known = false;
        for (Category c : allCategories) {
            if (tok == to_string(c)) {
                mask |= static_cast<std::uint32_t>(c);
                known = true;
                break;
            }
        }
        fatal_if(!known,
                 "unknown trace category '%s' (expected "
                 "kernel|scu-op|mem|fifo|sim|all|none or a bit mask)",
                 tok.c_str());
    }
    return mask;
}

TraceConfig
TraceConfig::fromEnv()
{
    TraceConfig cfg;
    const char *mask = std::getenv("SCUSIM_TRACE_MASK");
    if (!mask)
        return cfg;
    cfg.mask = parseCategoryMask(mask);
    cfg.enabled = cfg.mask != 0;
    if (!cfg.enabled)
        return cfg;
    cfg.timeseriesPeriod = 8192;
    if (const char *period = std::getenv("SCUSIM_TRACE_PERIOD"))
        cfg.timeseriesPeriod = std::strtoull(period, nullptr, 0);
    return cfg;
}

TraceChannel::TraceChannel(std::string name, std::size_t capacity,
                           std::uint32_t mask)
    : name_(std::move(name)), mask_(mask), capacity(capacity ? capacity : 1)
{
    ring.reserve(this->capacity);
}

void
TraceChannel::push(TraceEvent e)
{
    if (ring.size() < capacity) {
        ring.push_back(std::move(e));
    } else {
        ring[head] = std::move(e);
        head = (head + 1) % capacity;
    }
    ++total;
}

void
TraceChannel::span(Category c, std::string name, Tick start, Tick end,
                   std::uint64_t arg)
{
    if (!wants(c))
        return;
    push({start, end >= start ? end - start : 0, EventType::Span, c,
          std::move(name), arg});
}

void
TraceChannel::instant(Category c, std::string name, Tick at,
                      std::uint64_t arg)
{
    if (!wants(c))
        return;
    push({at, 0, EventType::Instant, c, std::move(name), arg});
}

void
TraceChannel::counter(Category c, std::string name, Tick at,
                      std::uint64_t value)
{
    if (!wants(c))
        return;
    push({at, 0, EventType::Counter, c, std::move(name), value});
}

std::vector<TraceEvent>
TraceChannel::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

std::size_t
TraceChannel::size() const
{
    return ring.size();
}

std::uint64_t
TraceChannel::dropped() const
{
    return total - ring.size();
}

TraceSink::TraceSink(const TraceConfig &cfg) : cfg_(cfg) {}

TraceChannel *
TraceSink::channel(const std::string &component)
{
    for (auto &c : chans)
        if (c->name() == component)
            return c.get();
    chans.push_back(std::make_unique<TraceChannel>(
        component, cfg_.ringCapacity, cfg_.mask));
    return chans.back().get();
}

std::vector<const TraceChannel *>
TraceSink::channels() const
{
    std::vector<const TraceChannel *> out;
    out.reserve(chans.size());
    for (const auto &c : chans)
        out.push_back(c.get());
    return out;
}

std::string
TraceSink::tailDump(std::size_t maxPerChannel) const
{
    std::ostringstream os;
    os << "trace tails (newest last";
    os << ", ring capacity " << cfg_.ringCapacity << "):\n";
    for (const auto &c : chans) {
        os << "  " << c->name() << ": " << c->recorded()
           << " recorded, " << c->dropped() << " dropped\n";
        const auto events = c->snapshot();
        const std::size_t first =
            events.size() > maxPerChannel ? events.size() - maxPerChannel
                                          : 0;
        for (std::size_t i = first; i < events.size(); ++i) {
            const TraceEvent &e = events[i];
            os << "    [" << e.start;
            if (e.type == EventType::Span)
                os << "+" << e.dur;
            os << "] " << to_string(e.cat) << " " << e.name << " ("
               << e.arg << ")\n";
        }
    }
    return os.str();
}

} // namespace scusim::trace
