/**
 * @file
 * Deterministic trace-event layer. Every Clocked component (and a few
 * non-Clocked models such as the SCU front end) can own a
 * TraceChannel — a fixed-capacity ring buffer of typed events stamped
 * with simulated ticks. Channels live in a TraceSink owned by the
 * Simulation, so one run's events never leak into another run under
 * the parallel executor.
 *
 * Emission discipline, in order of cost:
 *  - Build with SCUSIM_TRACE off (the default): the TRACE_EVENT_*
 *    macros compile to nothing, so Release timing runs pay zero.
 *  - Built with -DSCUSIM_TRACE=ON but no sink installed: the channel
 *    pointer at each site is null and the macro is one branch.
 *  - Sink installed but category masked off: one branch and one AND.
 *  - Enabled: a bounded ring-buffer write, no allocation past the
 *    ring itself (event names use SSO-sized strings in practice).
 *
 * Events record completed spans (start + duration) rather than
 * separate begin/end markers: a ring that overflowed mid-span can
 * never strand an unmatched "begin", so the Chrome exporter stays
 * well-formed no matter how small the ring is.
 */

#ifndef SCUSIM_TRACE_TRACE_HH
#define SCUSIM_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

#ifdef SCUSIM_TRACE
#define SCUSIM_TRACE_ENABLED 1
#else
#define SCUSIM_TRACE_ENABLED 0
#endif

namespace scusim::trace
{

/**
 * Event categories, one bit each, selected at runtime through
 * TraceConfig::mask (see parseCategoryMask for the spellings).
 */
enum class Category : std::uint32_t
{
    Kernel = 1u << 0, ///< GPU kernel / phase begin-end spans
    ScuOp = 1u << 1,  ///< SCU operation lifecycle spans
    Mem = 1u << 2,    ///< memory request issue/complete spans
    Fifo = 1u << 3,   ///< FIFO / queue high-water marks
    Sim = 1u << 4,    ///< simulation-loop housekeeping
};

/** Mask enabling every category. */
constexpr std::uint32_t maskAll = 0xffffffffu;

/** Human-readable category name, used as the Chrome "cat" field. */
const char *to_string(Category c);

/**
 * Parse a category mask: "all", "none", a comma-separated list of
 * category names ("kernel,scu-op,mem,fifo,sim"), or a plain decimal /
 * 0x-hex bit mask. fatal()s on unknown names.
 */
std::uint32_t parseCategoryMask(const std::string &spec);

/** How a trace layer is configured for one run. */
struct TraceConfig
{
    /** Master switch; off means no sink is installed at all. */
    bool enabled = false;

    /** Runtime category mask; events in masked-off categories are
     *  dropped at the emission site. */
    std::uint32_t mask = maskAll;

    /** Ring capacity, in events, of each per-component channel. */
    std::size_t ringCapacity = 4096;

    /** Sampling period of the stat timeseries, in ticks; 0 keeps the
     *  timeseries machinery off entirely. */
    Tick timeseriesPeriod = 0;

    /** Chrome trace-event JSON output path; empty means don't write. */
    std::string exportPath;

    /** Timeseries CSV output path; empty means don't write. */
    std::string timeseriesPath;

    /**
     * Build a config from the environment: tracing is enabled when
     * SCUSIM_TRACE_MASK is set to anything but "" / "0" / "none"
     * (value parsed by parseCategoryMask), and the timeseries period
     * comes from SCUSIM_TRACE_PERIOD (default 8192 ticks). Paths are
     * left empty; the executor fills per-run artifact paths.
     */
    static TraceConfig fromEnv();
};

/** Shape of one recorded event. */
enum class EventType : std::uint8_t
{
    Span,    ///< something with a duration: [start, start + dur)
    Instant, ///< a point event at `start`
    Counter, ///< a sampled value (`arg`) at `start`
};

/** One trace record. Ticks, not wall-clock. */
struct TraceEvent
{
    Tick start = 0;
    Tick dur = 0;
    EventType type = EventType::Instant;
    Category cat = Category::Sim;
    std::string name;
    std::uint64_t arg = 0;
};

/**
 * Per-component ring buffer. Overflow overwrites the oldest event, so
 * the tail (the part the watchdog wants on a hang) always survives.
 */
class TraceChannel
{
  public:
    TraceChannel(std::string name, std::size_t capacity,
                 std::uint32_t mask);

    const std::string &name() const { return name_; }

    /** Does the runtime mask let @p c through on this channel? */
    bool
    wants(Category c) const
    {
        return (mask_ & static_cast<std::uint32_t>(c)) != 0;
    }

    void span(Category c, std::string name, Tick start, Tick end,
              std::uint64_t arg = 0);
    void instant(Category c, std::string name, Tick at,
                 std::uint64_t arg = 0);
    void counter(Category c, std::string name, Tick at,
                 std::uint64_t value);

    /** Events currently held, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Events currently held (<= capacity). */
    std::size_t size() const;

    /** Total events ever accepted, including overwritten ones. */
    std::uint64_t recorded() const { return total; }

    /** Events lost to ring overflow. */
    std::uint64_t dropped() const;

  private:
    void push(TraceEvent e);

    std::string name_;
    std::uint32_t mask_;
    std::vector<TraceEvent> ring;
    std::size_t capacity;
    std::size_t head = 0;    ///< next slot to write
    std::uint64_t total = 0; ///< lifetime event count
};

/**
 * The per-run collection of channels. Channel creation order is the
 * (deterministic) component wiring order, which the exporter reuses
 * for stable pid/tid assignment.
 */
class TraceSink
{
  public:
    explicit TraceSink(const TraceConfig &cfg);

    const TraceConfig &config() const { return cfg_; }

    /** Get-or-create the channel for component @p component. */
    TraceChannel *channel(const std::string &component);

    /** All channels in creation order. */
    std::vector<const TraceChannel *> channels() const;

    /**
     * The last @p maxPerChannel events of every channel, formatted
     * for the watchdog's diagnostic dump.
     */
    std::string tailDump(std::size_t maxPerChannel = 8) const;

  private:
    TraceConfig cfg_;
    std::vector<std::unique_ptr<TraceChannel>> chans;
};

} // namespace scusim::trace

/**
 * Emission macros. `chan` is a TraceChannel* that may be null (the
 * common case: no sink installed). Compiled out entirely unless the
 * build sets -DSCUSIM_TRACE=ON; the dead branch keeps every argument
 * type-checked so call sites cannot bitrot.
 */
#if SCUSIM_TRACE_ENABLED

#define TRACE_EVENT_SPAN(chan, cat, name, start, end, arg)              \
    do {                                                                \
        if ((chan) && (chan)->wants(cat))                               \
            (chan)->span((cat), (name), (start), (end), (arg));         \
    } while (0)

#define TRACE_EVENT_INSTANT(chan, cat, name, at, arg)                   \
    do {                                                                \
        if ((chan) && (chan)->wants(cat))                               \
            (chan)->instant((cat), (name), (at), (arg));                \
    } while (0)

#define TRACE_EVENT_COUNTER(chan, cat, name, at, value)                 \
    do {                                                                \
        if ((chan) && (chan)->wants(cat))                               \
            (chan)->counter((cat), (name), (at), (value));              \
    } while (0)

#else // !SCUSIM_TRACE_ENABLED

#define TRACE_EVENT_SPAN(chan, cat, name, start, end, arg)              \
    do {                                                                \
        if (false) {                                                    \
            (void)(chan); (void)(cat); (void)(name);                    \
            (void)(start); (void)(end); (void)(arg);                    \
        }                                                               \
    } while (0)

#define TRACE_EVENT_INSTANT(chan, cat, name, at, arg)                   \
    do {                                                                \
        if (false) {                                                    \
            (void)(chan); (void)(cat); (void)(name);                    \
            (void)(at); (void)(arg);                                    \
        }                                                               \
    } while (0)

#define TRACE_EVENT_COUNTER(chan, cat, name, at, value)                 \
    do {                                                                \
        if (false) {                                                    \
            (void)(chan); (void)(cat); (void)(name);                    \
            (void)(at); (void)(value);                                  \
        }                                                               \
    } while (0)

#endif // SCUSIM_TRACE_ENABLED

#endif // SCUSIM_TRACE_TRACE_HH
