/**
 * @file
 * Algorithm tests: serial references against hand-checked values
 * (Figure 2c), and the simulated BFS / SSSP / PageRank validated
 * against the references across every execution mode, dataset class
 * and GPU system (parameterized sweeps).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "alg/bfs.hh"
#include "alg/pagerank.hh"
#include "alg/serial.hh"
#include "alg/sssp.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "harness/runner.hh"
#include "harness/system.hh"

using namespace scusim;
using namespace scusim::alg;
using harness::ScuMode;

// ----------------------------------------------------------------
// Serial references (Figure 2c ground truth).
// ----------------------------------------------------------------

TEST(Serial, BfsOnReferenceGraph)
{
    auto g = graph::referenceGraph();
    auto d = serialBfs(g, 0);
    // Figure 2c: BFS distances 0 1 1 1 2 2 2 from node A.
    EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 1, 1, 2, 2, 2}));
}

TEST(Serial, DijkstraOnReferenceGraph)
{
    auto g = graph::referenceGraph();
    auto d = serialDijkstra(g, 0);
    // Figure 2c: SSSP distances 0 2 3 1 3 3 3 from node A.
    // (A->C direct costs 3; A->D->C costs 2, so C is 2.)
    EXPECT_EQ(d[0], 0u);
    EXPECT_EQ(d[1], 2u);
    EXPECT_EQ(d[2], 2u);
    EXPECT_EQ(d[3], 1u);
    EXPECT_EQ(d[4], 3u);
    EXPECT_EQ(d[5], 3u);
    EXPECT_EQ(d[6], 3u);
}

TEST(Serial, BfsUnreachableIsInf)
{
    auto g = graph::CsrGraph::fromEdgeList(graph::path(3));
    auto d = serialBfs(g, 1);
    EXPECT_EQ(d[0], infDist);
    EXPECT_EQ(d[1], 0u);
    EXPECT_EQ(d[2], 1u);
}

TEST(Serial, PageRankSumsAndConverges)
{
    Rng rng(3);
    auto g = graph::CsrGraph::fromEdgeList(
        graph::erdosRenyi(200, 2000, rng));
    auto pr = serialPageRank(g, 0.15, 1e-8, 500);
    // Power iteration on a graph without dangling-mass correction:
    // ranks are positive and bounded.
    for (double v : pr) {
        EXPECT_GT(v, 0.0);
        EXPECT_LT(v, 200.0);
    }
}

// ----------------------------------------------------------------
// Simulated primitives vs references: full mode/system sweep.
// ----------------------------------------------------------------

namespace
{

struct SweepParam
{
    const char *dataset;
    const char *system;
    ScuMode mode;
};

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::string m = harness::to_string(info.param.mode);
    std::replace(m.begin(), m.end(), '-', '_');
    return std::string(info.param.dataset) + "_" +
           info.param.system + "_" + m;
}

} // namespace

class PrimitiveSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    harness::RunConfig
    config(harness::Primitive p) const
    {
        harness::RunConfig cfg;
        cfg.dataset = GetParam().dataset;
        cfg.systemName = GetParam().system;
        cfg.mode = GetParam().mode;
        cfg.primitive = p;
        cfg.scale = 0.01;
        return cfg;
    }
};

TEST_P(PrimitiveSweep, BfsMatchesSerial)
{
    auto r = harness::runPrimitive(config(harness::Primitive::Bfs));
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.algMetrics.iterations, 0u);
}

TEST_P(PrimitiveSweep, SsspMatchesDijkstra)
{
    auto r = harness::runPrimitive(config(harness::Primitive::Sssp));
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.algMetrics.iterations, 0u);
}

TEST_P(PrimitiveSweep, PageRankMatchesSerial)
{
    auto r = harness::runPrimitive(config(harness::Primitive::Pr));
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.algMetrics.gpuEdgeWork, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSystems, PrimitiveSweep,
    ::testing::Values(
        SweepParam{"cond", "GTX980", ScuMode::GpuOnly},
        SweepParam{"cond", "GTX980", ScuMode::ScuBasic},
        SweepParam{"cond", "GTX980", ScuMode::ScuEnhanced},
        SweepParam{"cond", "TX1", ScuMode::GpuOnly},
        SweepParam{"cond", "TX1", ScuMode::ScuBasic},
        SweepParam{"cond", "TX1", ScuMode::ScuEnhanced},
        SweepParam{"ca", "TX1", ScuMode::ScuEnhanced},
        SweepParam{"delaunay", "TX1", ScuMode::ScuEnhanced},
        SweepParam{"human", "TX1", ScuMode::ScuEnhanced},
        SweepParam{"kron", "GTX980", ScuMode::ScuEnhanced},
        SweepParam{"msdoor", "TX1", ScuMode::ScuBasic}),
    sweepName);

// ----------------------------------------------------------------
// Behavioural properties of the modes.
// ----------------------------------------------------------------

TEST(AlgBehaviour, EnhancedFiltersDuplicates)
{
    harness::RunConfig cfg;
    cfg.dataset = "human"; // duplicate-heavy class
    cfg.systemName = "TX1";
    cfg.primitive = harness::Primitive::Bfs;
    cfg.scale = 0.01;

    cfg.mode = ScuMode::ScuBasic;
    auto basic = harness::runPrimitive(cfg);
    cfg.mode = ScuMode::ScuEnhanced;
    auto enh = harness::runPrimitive(cfg);

    EXPECT_EQ(basic.algMetrics.scuFiltered, 0u);
    EXPECT_GT(enh.algMetrics.scuFiltered, 0u);
    EXPECT_LT(enh.algMetrics.gpuEdgeWork,
              basic.algMetrics.gpuEdgeWork);
}

TEST(AlgBehaviour, GpuOnlySpendsTimeInCompaction)
{
    harness::RunConfig cfg;
    cfg.dataset = "cond";
    cfg.systemName = "TX1";
    cfg.primitive = harness::Primitive::Bfs;
    cfg.scale = 0.02;
    cfg.mode = ScuMode::GpuOnly;
    auto r = harness::runPrimitive(cfg);
    // Figure 1's claim: a substantial share of GPU time is stream
    // compaction.
    EXPECT_GT(r.compactionShare(), 0.2);
    EXPECT_LT(r.compactionShare(), 0.95);
}

TEST(AlgBehaviour, ScuModesRunNoGpuCompaction)
{
    harness::RunConfig cfg;
    cfg.dataset = "cond";
    cfg.systemName = "TX1";
    cfg.primitive = harness::Primitive::Bfs;
    cfg.scale = 0.02;
    cfg.mode = ScuMode::ScuBasic;
    auto r = harness::runPrimitive(cfg);
    EXPECT_EQ(r.gpuCompactionCycles, 0u);
    EXPECT_GT(r.scuBusyCycles, 0u);
}

TEST(AlgBehaviour, PrUsesNoFilteringOrGrouping)
{
    harness::RunConfig cfg;
    cfg.dataset = "cond";
    cfg.systemName = "TX1";
    cfg.primitive = harness::Primitive::Pr;
    cfg.scale = 0.02;
    cfg.mode = ScuMode::ScuEnhanced;
    auto r = harness::runPrimitive(cfg);
    // Section 4.6: the enhanced capabilities are not used for PR.
    EXPECT_EQ(r.algMetrics.scuFiltered, 0u);
}

TEST(AlgBehaviour, SsspGroupingImprovesCoalescing)
{
    harness::RunConfig cfg;
    cfg.dataset = "cond";
    cfg.systemName = "TX1";
    cfg.primitive = harness::Primitive::Sssp;
    cfg.scale = 0.05;

    cfg.mode = ScuMode::ScuBasic;
    auto basic = harness::runPrimitive(cfg);
    cfg.mode = ScuMode::ScuEnhanced;
    auto enh = harness::runPrimitive(cfg);
    // Figure 12: grouping raises the coalescing of the remaining
    // GPU kernels.
    EXPECT_GT(enh.coalescingEfficiency,
              basic.coalescingEfficiency * 1.02);
}

TEST(AlgBehaviour, SourceSelectionRespected)
{
    const auto &g = harness::cachedDataset("cond", 0.01, 1);
    harness::SystemConfig sc = harness::SystemConfig::tx1(false);
    harness::System sys(sc);
    BfsRunner bfs(sys, g);
    AlgOptions opt;
    opt.mode = ScuMode::GpuOnly;
    opt.source = 5;
    auto out = bfs.run(opt);
    EXPECT_EQ(out.dist[5], 0u);
    EXPECT_EQ(out.dist, serialBfs(g, 5));
}

TEST(AlgBehaviour, BfsOnDisconnectedGraph)
{
    // Two components: traversal must terminate and label only one.
    graph::EdgeList el;
    el.numNodes = 6;
    el.edges = {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}};
    auto g = graph::CsrGraph::fromEdgeList(std::move(el));

    harness::SystemConfig sc = harness::SystemConfig::tx1(true);
    harness::System sys(sc);
    BfsRunner bfs(sys, g);
    AlgOptions opt;
    opt.mode = ScuMode::ScuEnhanced;
    opt.source = 0;
    auto out = bfs.run(opt);
    EXPECT_EQ(out.dist[2], 2u);
    EXPECT_EQ(out.dist[3], infDist);
}

TEST(AlgBehaviour, SsspDeltaSweepStaysCorrect)
{
    const auto &g = harness::cachedDataset("cond", 0.01, 1);
    auto want = serialDijkstra(g, 1);
    for (std::uint32_t delta : {1u, 8u, 64u, 100000u}) {
        harness::SystemConfig sc = harness::SystemConfig::tx1(true);
        harness::System sys(sc);
        SsspRunner sssp(sys, g);
        AlgOptions opt;
        opt.mode = ScuMode::ScuEnhanced;
        opt.source = 1;
        opt.ssspDelta = delta;
        auto out = sssp.run(opt);
        EXPECT_EQ(out.dist, want) << "delta=" << delta;
    }
}

TEST(AlgBehaviour, PrStopsOnConvergence)
{
    // A tiny strongly-regular graph converges quickly.
    auto g = graph::CsrGraph::fromEdgeList(graph::grid2d(8, 8));
    harness::SystemConfig sc = harness::SystemConfig::tx1(false);
    harness::System sys(sc);
    PageRankRunner pr(sys, g);
    AlgOptions opt;
    opt.mode = ScuMode::GpuOnly;
    opt.prMaxIterations = 100;
    opt.prEpsilon = 1e-3;
    auto out = pr.run(opt);
    EXPECT_TRUE(out.converged);
    EXPECT_LT(out.metrics.iterations, 100u);
}
