/**
 * @file
 * Death tests for the SCUSIM_CHECK invariant layer (sim/check.hh).
 * Each test drives a real component into a contract violation and
 * asserts the checked build panics. In unchecked builds the layer is
 * compiled out, so every test skips (the checks' *absence* there is
 * itself part of the contract: Release timing runs pay nothing).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/request.hh"
#include "scu/hash_table.hh"
#include "sim/check.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

using namespace scusim;

namespace
{

#define SKIP_UNLESS_CHECKED()                                           \
    do {                                                                \
        if (!sim::checksEnabled)                                        \
            GTEST_SKIP() << "SCUSIM_CHECK not compiled in";             \
    } while (0)

TEST(CheckDeath, EventQueueRejectsSchedulingIntoThePast)
{
    SKIP_UNLESS_CHECKED();
    sim::EventQueue q;
    q.serviceUpTo(100);
    // At the horizon is legal (an event for the current tick)...
    q.schedule(100, [](Tick) {});
    // ...but strictly before it would fire at the wrong time.
    EXPECT_DEATH(q.schedule(99, [](Tick) {}),
                 "scheduled into the past");
}

struct NullClocked : sim::Clocked
{
    void tick(Tick) override {}
    bool busy(Tick) const override { return false; }
};

TEST(CheckDeath, ClockedTickMustBeMonotonic)
{
    SKIP_UNLESS_CHECKED();
    NullClocked c;
    c.noteTick(10);
    c.noteTick(10); // same tick twice is fine
    EXPECT_DEATH(c.noteTick(9), "ticked backwards");
}

/** A memory level whose completions travel backwards in time. */
struct BrokenLevel : mem::MemLevel
{
    mem::MemResult
    access(Tick issue, Addr, mem::AccessKind, unsigned) override
    {
        return {issue - 10, true};
    }
};

TEST(CheckDeath, MemCompletionNeverPrecedesIssue)
{
    SKIP_UNLESS_CHECKED();
    BrokenLevel broken;
    stats::StatGroup root("t");
    mem::Cache c(mem::CacheParams{}, &broken, &root);
    // A cold read misses and fills from the broken downstream.
    EXPECT_DEATH(c.access(100, 0, mem::AccessKind::Read, 4),
                 "precedes issue tick");
}

TEST(CheckDeath, HashSetIndexStaysInBounds)
{
    SKIP_UNLESS_CHECKED();
    mem::AddressSpace as(1ULL << 28);
    scu::UniqueFilterTable t({4096, 4, 4}, as, "h");
    EXPECT_EQ(t.setAddr(0), t.baseAddr());
    EXPECT_DEATH(t.setAddr(t.numSets()), "out of");
}

TEST(CheckDeath, OccupancyAboveCapacityPanics)
{
    SKIP_UNLESS_CHECKED();
    // The grouping table's public API can never overfill a group —
    // which is exactly why the invariant exists: it guards against
    // future refactors of the eviction path. Exercise the check
    // directly at its boundary.
    sim::checkOccupancy("scu hash group", 8, 8);
    EXPECT_DEATH(sim::checkOccupancy("scu hash group", 9, 8),
                 "overfull");
}

TEST(CheckDeath, FifoCreditDriftPanics)
{
    SKIP_UNLESS_CHECKED();
    // Balanced books at every occupancy are fine...
    sim::checkFifoCredits("BoundedFifo", 8, 3, 5);
    sim::checkFifoCredits("BoundedFifo", 0, 0, 0);
    // ...a consumer ahead of its producer lost a credit...
    EXPECT_DEATH(sim::checkFifoCredits("BoundedFifo", 3, 4, 0),
                 "credit drift");
    // ...and books that do not match the queue duplicated one.
    EXPECT_DEATH(sim::checkFifoCredits("BoundedFifo", 8, 3, 4),
                 "credit drift");
}

TEST(CheckDeath, CoalescerWindowBoundsPanic)
{
    SKIP_UNLESS_CHECKED();
    // A warp's lanes merge into [1, lanes] transactions.
    sim::checkCoalesceBounds(32, 1);
    sim::checkCoalesceBounds(32, 32);
    sim::checkCoalesceBounds(0, 0);
    // Fabricated traffic: more transactions than lanes.
    EXPECT_DEATH(sim::checkCoalesceBounds(4, 5), "out of bounds");
    // Lost traffic: active lanes produced no transaction at all.
    EXPECT_DEATH(sim::checkCoalesceBounds(4, 0), "out of bounds");
}

TEST(Check, PassingChecksAreSilent)
{
    // Valid in both checked and unchecked builds.
    sim::checkScheduleTick(5, 5);
    sim::checkMemCompletion("l2", 10, 10);
    sim::checkTickMonotonic("sm", 7, 7);
    sim::checkOccupancy("fifo", 0, 8);
    sim_check(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

} // namespace
