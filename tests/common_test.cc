/**
 * @file
 * Unit tests for the common utilities: bit helpers, bounded FIFO,
 * deterministic RNG and string formatting.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bits.hh"
#include "common/fifo.hh"
#include "common/logging.hh"
#include "common/rng.hh"

using namespace scusim;

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ULL << 33), 33u);
}

TEST(Bits, CeilPowerOf2)
{
    EXPECT_EQ(ceilPowerOf2(1), 1u);
    EXPECT_EQ(ceilPowerOf2(3), 4u);
    EXPECT_EQ(ceilPowerOf2(4), 4u);
    EXPECT_EQ(ceilPowerOf2(1000), 1024u);
}

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignDown(Addr{257}, 128), Addr{256});
    EXPECT_EQ(alignDown(Addr{256}, 128), Addr{256});
    EXPECT_EQ(alignUp(Addr{257}, 128), Addr{384});
    EXPECT_EQ(alignUp(Addr{256}, 128), Addr{256});
}

TEST(Bits, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Bits, MixBitsAvalanche)
{
    // Nearby keys should land far apart: no collisions among the
    // mixed values of 4096 consecutive integers modulo a prime-ish
    // bucket count would be too strong; instead check distinctness.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 4096; ++i)
        seen.insert(mixBits(i));
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(BoundedFifo, FillAndDrain)
{
    BoundedFifo<int> f(3);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.space(), 3u);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.space(), 0u);
    EXPECT_EQ(f.front(), 1);
    f.pop();
    EXPECT_EQ(f.front(), 2);
    f.pop();
    f.pop();
    EXPECT_TRUE(f.empty());
}

TEST(BoundedFifo, OverflowPanics)
{
    BoundedFifo<int> f(1);
    f.push(1);
    EXPECT_DEATH(f.push(2), "full BoundedFifo");
}

TEST(BoundedFifo, UnderflowPanics)
{
    BoundedFifo<int> f(1);
    EXPECT_DEATH(f.pop(), "empty BoundedFifo");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "z"), "x=3 y=z");
    EXPECT_EQ(strprintf("%05u", 42u), "00042");
}

TEST(Logging, PanicIfAborts)
{
    EXPECT_DEATH(panic_if(true, "boom %d", 1), "boom 1");
}
