/**
 * @file
 * Determinism gate: the same RunConfig must produce byte-identical
 * full statistics dumps when run twice. The stats tree flattens every
 * counter in every component (caches, DRAM, SMs, SCU pipeline, hash
 * tables), so byte equality here means the whole simulation — not
 * just the headline metrics — retraced the same trajectory. This is
 * the property the parallel experiment executor and the simlint
 * nondeterminism rules exist to protect.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/runner.hh"

using namespace scusim;
using namespace scusim::harness;

namespace
{

std::string
statsDumpFor(const RunConfig &base)
{
    RunConfig cfg = base;
    std::ostringstream os;
    cfg.dumpStatsTo = &os;
    RunResult r = runPrimitive(cfg);
    EXPECT_TRUE(r.validated)
        << to_string(cfg.primitive) << " on " << cfg.systemName
        << " failed functional validation";
    EXPECT_FALSE(os.str().empty());
    return os.str();
}

class DeterminismGate
    : public ::testing::TestWithParam<
          std::tuple<Primitive, const char *, unsigned>>
{
};

TEST_P(DeterminismGate, RepeatedRunsDumpIdenticalStats)
{
    const auto [prim, system, devices] = GetParam();

    RunConfig cfg;
    cfg.systemName = system;
    cfg.primitive = prim;
    cfg.mode = ScuMode::ScuEnhanced;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    cfg.deviceCount = devices;

    const std::string first = statsDumpFor(cfg);
    const std::string second = statsDumpFor(cfg);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first, second)
        << "stats dumps diverged between identical runs";
}

// deviceCount 2 folds the sharded path — partitioner, per-device
// components, interconnect exchange — into the same byte-identity
// gate the single-device stack has always had to pass.
INSTANTIATE_TEST_SUITE_P(
    AllPrimitivesBothSystems, DeterminismGate,
    ::testing::Combine(::testing::Values(Primitive::Bfs,
                                         Primitive::Sssp,
                                         Primitive::Pr),
                       ::testing::Values("GTX980", "TX1"),
                       ::testing::Values(1u, 2u)),
    [](const auto &info) {
        return to_string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param) + "_dev" +
               std::to_string(std::get<2>(info.param));
    });

} // namespace
