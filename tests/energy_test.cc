/**
 * @file
 * Unit tests for the energy and area models.
 */

#include <gtest/gtest.h>

#include "energy/area_model.hh"
#include "energy/energy_model.hh"
#include "scu/scu_config.hh"

using namespace scusim;
using namespace scusim::energy;

TEST(Energy, DynamicComponentsAdd)
{
    EnergyModel m(EnergyParams::gtx980());
    Activity a;
    a.threadInstrs = 1e6;
    a.l2Accesses = 1e5;
    a.dramLines = 1e4;
    double total = m.dynamicJ(a);
    EXPECT_DOUBLE_EQ(total,
                     m.gpuDynamicJ(a) + m.memDynamicJ(a) +
                         m.scuDynamicJ(a));
    EXPECT_GT(total, 0.0);
}

TEST(Energy, ActivityDifferenceAndSum)
{
    Activity a, b;
    a.threadInstrs = 10;
    a.scuTxns = 4;
    b.threadInstrs = 3;
    b.scuTxns = 1;
    Activity d = a - b;
    EXPECT_DOUBLE_EQ(d.threadInstrs, 7);
    EXPECT_DOUBLE_EQ(d.scuTxns, 3);
    b += d;
    EXPECT_DOUBLE_EQ(b.threadInstrs, 10);
}

TEST(Energy, BreakdownSplitsGpuAndScu)
{
    EnergyModel m(EnergyParams::tx1());
    Activity gpu, scu;
    gpu.threadInstrs = 1e6;
    gpu.l2Accesses = 1e4;
    scu.scuElements = 1e6;
    scu.l2Accesses = 1e4;
    auto e = m.breakdown(gpu, scu, 0.01, true);

    EXPECT_GT(e.gpuDynamicJ, 0.0);
    EXPECT_GT(e.scuDynamicJ, 0.0);
    EXPECT_GT(e.gpuStaticJ, 0.0);
    EXPECT_GT(e.scuStaticJ, 0.0);
    EXPECT_DOUBLE_EQ(e.totalJ(), e.gpuSideJ() + e.scuSideJ());
}

TEST(Energy, NoScuMeansNoScuStatic)
{
    EnergyModel m(EnergyParams::tx1());
    auto e = m.breakdown({}, {}, 0.01, false);
    EXPECT_DOUBLE_EQ(e.scuStaticJ, 0.0);
    EXPECT_GT(e.gpuStaticJ, 0.0);
}

TEST(Energy, StaticScalesWithTime)
{
    EnergyModel m(EnergyParams::gtx980());
    auto e1 = m.breakdown({}, {}, 0.01, true);
    auto e2 = m.breakdown({}, {}, 0.02, true);
    EXPECT_NEAR(e2.gpuStaticJ, 2 * e1.gpuStaticJ, 1e-12);
    EXPECT_NEAR(e2.memStaticJ, 2 * e1.memStaticJ, 1e-12);
}

TEST(Area, PaperTotalsAndOverheads)
{
    auto hp = scuAreaReport("GTX980", scu::ScuParams::forGtx980());
    EXPECT_DOUBLE_EQ(hp.scuMm2, 13.27);
    EXPECT_NEAR(hp.overheadPercent(), 3.3, 0.2);

    auto lp = scuAreaReport("TX1", scu::ScuParams::forTx1());
    EXPECT_DOUBLE_EQ(lp.scuMm2, 3.65);
    EXPECT_NEAR(lp.overheadPercent(), 4.1, 0.2);
}

TEST(Area, ComponentsSumToTotal)
{
    auto r = scuAreaReport("GTX980", scu::ScuParams::forGtx980());
    double sum = 0;
    for (const auto &c : r.components)
        sum += c.mm2;
    EXPECT_NEAR(sum, r.scuMm2, 1e-9);
    EXPECT_GE(r.components.size(), 3u);
}

TEST(Area, UnknownGpuIsFatal)
{
    EXPECT_DEATH(scuAreaReport("RTX9090",
                               scu::ScuParams::forGtx980()),
                 "no area data");
}
