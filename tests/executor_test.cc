/**
 * @file
 * Tests of the parallel executor: serial and parallel executions of
 * the same plan must produce bit-identical results (and byte-equal
 * JSON artifacts), result order must follow plan order regardless of
 * completion order, and memoization must share run results across
 * runPlan() calls.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/results.hh"

using namespace scusim;
using namespace scusim::harness;

namespace
{

/** The determinism workload: 2 datasets x 2 modes x BFS/SSSP. */
ExperimentPlan
smallMatrix()
{
    return ExperimentPlan()
        .systems({"TX1"})
        .primitives({Primitive::Bfs, Primitive::Sssp})
        .datasets({"cond", "ca"})
        .modes({ScuMode::GpuOnly, ScuMode::ScuEnhanced})
        .scale(0.01);
}

std::string
jsonOf(const PlanResults &res)
{
    std::ostringstream os;
    writeRunsJson(os, res);
    return os.str();
}

} // namespace

TEST(Executor, JobsResolutionOrder)
{
    EXPECT_EQ(executorJobs({.jobs = 3}), 3u);
    ::setenv("SCUSIM_JOBS", "5", 1);
    EXPECT_EQ(executorJobs(), 5u);
    EXPECT_EQ(executorJobs({.jobs = 2}), 2u); // explicit wins
    ::unsetenv("SCUSIM_JOBS");
    EXPECT_GE(executorJobs(), 1u);
}

TEST(Executor, ParallelRunMatchesSerialBitForBit)
{
    auto plan = smallMatrix();
    auto serial = runPlan(plan, {.jobs = 1, .memoize = false});
    auto parallel = runPlan(plan, {.jobs = 4, .memoize = false});

    ASSERT_EQ(serial.size(), 8u);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(serial.failures(), 0u);
    EXPECT_EQ(parallel.failures(), 0u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto &a = serial.records()[i];
        const auto &b = parallel.records()[i];
        EXPECT_EQ(a.run.label, b.run.label);
        EXPECT_EQ(a.run.key, b.run.key);
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.result.totalCycles, b.result.totalCycles);
        EXPECT_EQ(a.result.seconds, b.result.seconds);
        EXPECT_EQ(a.result.energy.totalJ(),
                  b.result.energy.totalJ());
        EXPECT_EQ(a.result.gpuCompactionCycles,
                  b.result.gpuCompactionCycles);
        EXPECT_EQ(a.result.gpuThreadInstrs,
                  b.result.gpuThreadInstrs);
        EXPECT_EQ(a.result.bwUtilization, b.result.bwUtilization);
        EXPECT_EQ(a.result.algMetrics.gpuEdgeWork,
                  b.result.algMetrics.gpuEdgeWork);
        EXPECT_EQ(a.result.algMetrics.scuFiltered,
                  b.result.algMetrics.scuFiltered);
        EXPECT_EQ(a.result.validated, b.result.validated);
    }
    // The strongest form: the machine-readable artifacts are
    // byte-identical.
    EXPECT_EQ(jsonOf(serial), jsonOf(parallel));

    std::ostringstream ca, cb;
    writeRunsCsv(ca, serial);
    writeRunsCsv(cb, parallel);
    EXPECT_EQ(ca.str(), cb.str());
}

TEST(Executor, ResultsFollowPlanOrder)
{
    auto plan = smallMatrix();
    auto runs = plan.expand();
    auto res = runPlan(plan, {.jobs = 4, .memoize = false});
    ASSERT_EQ(res.size(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(res.records()[i].run.key, runs[i].key);
}

TEST(Executor, MemoizationSharesRunsAcrossPlans)
{
    clearRunMemo();
    EXPECT_EQ(memoizedRunCount(), 0u);

    auto plan = ExperimentPlan()
                    .systems({"TX1"})
                    .primitives({Primitive::Bfs})
                    .datasets({"cond"})
                    .modes({ScuMode::GpuOnly, ScuMode::ScuEnhanced})
                    .scale(0.01);
    auto first = runPlan(plan, {.jobs = 2});
    EXPECT_EQ(memoizedRunCount(), 2u);

    auto second = runPlan(plan, {.jobs = 2});
    EXPECT_EQ(memoizedRunCount(), 2u); // nothing new simulated
    EXPECT_EQ(jsonOf(first), jsonOf(second));

    // A different config is a different key: the memo grows.
    auto third =
        runPlan(plan.modes({ScuMode::ScuBasic}), {.jobs = 2});
    EXPECT_EQ(memoizedRunCount(), 3u);
    EXPECT_EQ(third.failures(), 0u);

    clearRunMemo();
    EXPECT_EQ(memoizedRunCount(), 0u);
}

TEST(Executor, MemoizedFailuresAreReplayedNotRerun)
{
    clearRunMemo();
    RunConfig bad;
    bad.systemName = "Vega";
    auto plan = ExperimentPlan().add(bad, "poison");
    auto first = runPlan(plan, {.jobs = 1});
    ASSERT_EQ(first.failures(), 1u);
    EXPECT_EQ(memoizedRunCount(), 1u);
    auto second = runPlan(plan, {.jobs = 1});
    ASSERT_EQ(second.failures(), 1u);
    EXPECT_EQ(second.records()[0].error, first.records()[0].error);
    clearRunMemo();
}

TEST(Executor, DuplicateKeysShareOneExecution)
{
    // Two labels, one key: the ablation-baseline sharing pattern.
    RunConfig cfg;
    cfg.systemName = "TX1";
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    cfg.mode = ScuMode::GpuOnly;
    auto res = runPlan(ExperimentPlan()
                           .add(cfg, "first-label")
                           .add(cfg, "second-label"),
                       {.jobs = 2, .memoize = false});
    // expand() dedups identical keys: only one record remains, and
    // both of its would-be aliases resolve through byLabel on the
    // surviving record.
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res.records()[0].run.label, "first-label");
    EXPECT_TRUE(res.byLabel("first-label").validated);
}

TEST(Backoff, DeterministicJitteredExponentialWithCap)
{
    // Pure function of (seed, attempt): the same inputs give the
    // same delay on every host, so retried plans stay reproducible.
    for (unsigned a = 1; a <= 8; ++a)
        EXPECT_EQ(retryBackoffMs(42, a, 25, 2000),
                  retryBackoffMs(42, a, 25, 2000));
    // Jitter lands in [nominal/2, nominal] where nominal doubles per
    // attempt until the cap.
    for (unsigned a = 1; a <= 12; ++a) {
        const unsigned nominal =
            std::min<unsigned>(2000, 25u << (a - 1));
        const unsigned d = retryBackoffMs(7, a, 25, 2000);
        EXPECT_GE(d, nominal / 2) << "attempt " << a;
        EXPECT_LE(d, nominal) << "attempt " << a;
    }
    // Different seeds or attempts de-synchronize retry storms: at
    // least one delay in a small sweep must differ.
    bool varies = false;
    for (std::uint64_t s = 0; s < 16 && !varies; ++s)
        varies = retryBackoffMs(s, 4, 25, 2000) !=
                 retryBackoffMs(s + 16, 4, 25, 2000);
    EXPECT_TRUE(varies);
    // baseMs == 0 is the historical immediate retry.
    EXPECT_EQ(retryBackoffMs(1, 1, 0, 2000), 0u);
    EXPECT_EQ(retryBackoffMs(1, 5, 0, 2000), 0u);
}
