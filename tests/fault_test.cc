/**
 * @file
 * Tests of the robustness stack: the thread-local error trap, the
 * simulation's progress watchdog, the deterministic fault injector,
 * and the supervised executor above them. The heart of the suite is
 * the fault matrix — every armed FaultKind must be *detected* and
 * classified as its designed FailureKind on both modeled systems —
 * plus the inverse guarantee: an armed-but-never-fired injector
 * leaves the run byte-identical to an uninjected one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "common/sim_error.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/results.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"

using namespace scusim;
using namespace scusim::harness;

namespace
{

/** The smallest real workload: BFS on cond at 1% scale. */
RunConfig
tinyConfig(const std::string &sys = "GTX980",
           ScuMode mode = ScuMode::GpuOnly)
{
    RunConfig cfg;
    cfg.systemName = sys;
    cfg.mode = mode;
    cfg.primitive = Primitive::Bfs;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    return cfg;
}

/** Execute one config fresh (no memoization, serial). */
RunRecord
runOne(const RunConfig &cfg)
{
    ExperimentPlan p;
    p.add(cfg);
    auto res = runPlan(p, {.jobs = 1, .memoize = false});
    return res.records().at(0);
}

void
expectFailure(const RunRecord &rec, FailureKind want)
{
    EXPECT_FALSE(rec.ok) << rec.run.label << " unexpectedly ok";
    ASSERT_TRUE(rec.failure.has_value())
        << rec.run.label << ": unclassified error: " << rec.error;
    EXPECT_EQ(*rec.failure, want)
        << rec.run.label << ": " << rec.error;
}

std::string
jsonOf(const PlanResults &res)
{
    std::ostringstream os;
    writeRunsJson(os, res);
    return os.str();
}

const char *const kSystems[] = {"GTX980", "TX1"};

} // namespace

// ---------------------------------------------------------------
// Error trap
// ---------------------------------------------------------------

TEST(ErrorTrap, NestsAndRestores)
{
    EXPECT_FALSE(errorTrapActive());
    {
        ErrorTrapGuard outer;
        EXPECT_TRUE(errorTrapActive());
        {
            ErrorTrapGuard inner;
            EXPECT_TRUE(errorTrapActive());
        }
        EXPECT_TRUE(errorTrapActive());
    }
    EXPECT_FALSE(errorTrapActive());
}

TEST(ErrorTrap, PanicThrowsSimErrorUnderTrap)
{
    ErrorTrapGuard trap;
    try {
        panic("boom %d", 42);
        FAIL() << "panic returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), FailureKind::Panic);
        EXPECT_NE(std::string(e.what()).find("boom 42"),
                  std::string::npos);
    }
}

TEST(ErrorTrap, ReportFailureCarriesKindAndDiagnostics)
{
    ErrorTrapGuard trap;
    try {
        reportFailure(FailureKind::Deadlock, "stuck", "dump line");
        FAIL() << "reportFailure returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), FailureKind::Deadlock);
        EXPECT_EQ(e.diagnostics(), "dump line");
        EXPECT_STREQ(to_string(e.kind()), "deadlock");
    }
}

TEST(ErrorTrap, TimeoutThrowsEvenWithoutATrap)
{
    // Only supervisors raise Timeout, and a supervisor implies a
    // trap — but the contract is that Timeout never aborts.
    EXPECT_FALSE(errorTrapActive());
    EXPECT_THROW(reportFailure(FailureKind::Timeout, "late"),
                 SimError);
}

// ---------------------------------------------------------------
// Watchdog (raw Simulation, toy components)
// ---------------------------------------------------------------

namespace
{

/** Busy forever; makes progress only when asked to. */
struct Spinner : sim::Clocked
{
    bool productive = false;

    void
    tick(Tick) override
    {
        if (productive)
            noteProgress();
    }

    bool busy(Tick) const override { return true; }
};

/** Drains after a fixed number of productive ticks. */
struct Countdown : sim::Clocked
{
    int left = 16;

    void
    tick(Tick) override
    {
        if (left > 0) {
            --left;
            noteProgress();
        }
    }

    bool busy(Tick) const override { return left > 0; }
};

} // namespace

TEST(Watchdog, BusyWithoutProgressIsDeadlock)
{
    sim::Simulation s;
    Spinner c;
    s.addClocked(&c, "spinner");
    s.setWatchdog({.tickBudget = 0, .stallWindow = 64});
    ErrorTrapGuard trap;
    try {
        s.run(1 << 20);
        FAIL() << "deadlock not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), FailureKind::Deadlock);
        // The dump names the hung component and its busy state.
        EXPECT_NE(e.diagnostics().find("spinner"),
                  std::string::npos)
            << e.diagnostics();
        EXPECT_NE(e.diagnostics().find("busy=yes"),
                  std::string::npos)
            << e.diagnostics();
    }
}

TEST(Watchdog, TickBudgetExceededIsRunaway)
{
    sim::Simulation s;
    Spinner c;
    c.productive = true; // progress forever: not a deadlock
    s.addClocked(&c, "spinner");
    s.setWatchdog({.tickBudget = 128, .stallWindow = 1 << 20});
    ErrorTrapGuard trap;
    try {
        s.run();
        FAIL() << "runaway not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), FailureKind::Runaway);
        EXPECT_FALSE(e.diagnostics().empty());
    }
}

TEST(Watchdog, HealthyRunDrainsUnmolested)
{
    sim::Simulation s;
    Countdown c;
    s.addClocked(&c, "countdown");
    s.setWatchdog({.tickBudget = 1 << 20, .stallWindow = 64});
    ErrorTrapGuard trap;
    EXPECT_NO_THROW(s.run());
    EXPECT_EQ(c.left, 0);
}

// ---------------------------------------------------------------
// Fault injector (unit)
// ---------------------------------------------------------------

TEST(FaultInjector, DeterministicAcrossInstances)
{
    sim::FaultPlan plan;
    plan.add({.kind = sim::FaultKind::MemDelay,
              .at = 10,
              .magnitude = 500});
    sim::FaultInjector a(plan, 42);
    sim::FaultInjector b(plan, 42);
    EXPECT_EQ(a.adjustMemCompletion(20, 30),
              b.adjustMemCompletion(20, 30));
    EXPECT_EQ(a.rng().next(), b.rng().next());
    EXPECT_EQ(a.fired(sim::FaultKind::MemDelay), 1u);
}

TEST(FaultInjector, MemFaultsFireOnceAndReorderClampsAtZero)
{
    sim::FaultPlan plan;
    plan.add({.kind = sim::FaultKind::MemDelay,
              .at = 0,
              .magnitude = 100});
    plan.add({.kind = sim::FaultKind::MemReorder,
              .at = 0,
              .magnitude = 1000});
    sim::FaultInjector inj(plan, 1);
    // Delay fires first (+100), then reorder pulls far below the
    // issue tick — clamped at 0, never wrapped around.
    EXPECT_EQ(inj.adjustMemCompletion(50, 60), 0u);
    // Both are one-shot: later accesses pass through untouched.
    EXPECT_EQ(inj.adjustMemCompletion(70, 80), 80u);
    EXPECT_EQ(inj.fired(sim::FaultKind::MemDelay), 1u);
    EXPECT_EQ(inj.fired(sim::FaultKind::MemReorder), 1u);
}

TEST(FaultPlan, SpecParsingRoundTripsTheFingerprint)
{
    // The --inject syntax is the fingerprint syntax: parse every
    // shape back and compare field by field.
    auto s = sim::parseFaultSpec("mem-delay@1000x500");
    EXPECT_EQ(s.kind, sim::FaultKind::MemDelay);
    EXPECT_EQ(s.at, 1000u);
    EXPECT_EQ(s.magnitude, 500u);
    EXPECT_EQ(s.target, 0u);

    s = sim::parseFaultSpec("fifo-stall@42t3");
    EXPECT_EQ(s.kind, sim::FaultKind::FifoStall);
    EXPECT_EQ(s.at, 42u);
    EXPECT_EQ(s.target, 3u);

    s = sim::parseFaultSpec("icn-delay@0x1000000");
    EXPECT_EQ(s.kind, sim::FaultKind::IcnDelay);
    EXPECT_EQ(s.magnitude, 1000000u);

    s = sim::parseFaultSpec("dram-refresh-storm@7");
    EXPECT_EQ(s.kind, sim::FaultKind::DramRefreshStorm);
    EXPECT_EQ(s.at, 7u);

    // A parsed plan fingerprints identically to a built one.
    sim::FaultPlan built;
    built.add({.kind = sim::FaultKind::MemDelay,
               .at = 1000,
               .magnitude = 500});
    sim::FaultPlan parsed;
    parsed.add(sim::parseFaultSpec("mem-delay@1000x500"));
    EXPECT_EQ(built.fingerprint(), parsed.fingerprint());

    EXPECT_EQ(sim::faultKindFromString("panic-at"),
              sim::FaultKind::PanicAt);
    EXPECT_EQ(sim::faultKindFromString("icn-delay"),
              sim::FaultKind::IcnDelay);
}

TEST(FaultPlan, FingerprintIsCanonical)
{
    sim::FaultPlan a;
    sim::FaultPlan b;
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    a.add({.kind = sim::FaultKind::PanicAt, .at = 5});
    b.add({.kind = sim::FaultKind::PanicAt, .at = 5});
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.add({.kind = sim::FaultKind::FifoStall, .at = 1, .target = 2});
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------
// Fault matrix: every FaultKind -> its designed FailureKind, on
// both modeled systems
// ---------------------------------------------------------------

TEST(FaultMatrix, PanicAtIsClassifiedPanic)
{
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::PanicAt, .at = 0});
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Panic);
        EXPECT_NE(rec.error.find("injected panic"),
                  std::string::npos)
            << rec.error;
    }
}

TEST(FaultMatrix, MemDelayTripsTheTickBudgetAsRunaway)
{
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::MemDelay,
                        .at = 0,
                        .magnitude = 1'000'000'000'000'000ULL});
        cfg.guards.tickBudget = 1'000'000'000;
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Runaway);
        EXPECT_FALSE(rec.diagnostics.empty()) << rec.error;
    }
}

TEST(FaultMatrix, MemReorderViolatesTheCompletionInvariant)
{
    if (!sim::checksEnabled)
        GTEST_SKIP() << "SCUSIM_CHECK not compiled in";
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::MemReorder,
                        .at = 0,
                        .magnitude = 1'000'000});
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Invariant);
        EXPECT_NE(rec.error.find("precedes issue"),
                  std::string::npos)
            << rec.error;
    }
}

TEST(FaultMatrix, FifoStallHangsTheSmAsDeadlock)
{
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::FifoStall,
                        .at = 1000,
                        .target = 0});
        cfg.guards.stallWindow = 20000;
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Deadlock);
        // The dump must point at the hung SM.
        EXPECT_NE(rec.diagnostics.find("sm0"), std::string::npos)
            << rec.diagnostics;
    }
}

TEST(FaultMatrix, ComponentFreezeIsDeadlock)
{
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::ComponentFreeze,
                        .at = 1000,
                        .target = 0});
        cfg.guards.stallWindow = 20000;
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Deadlock);
        EXPECT_NE(rec.diagnostics.find("frozen"), std::string::npos)
            << rec.diagnostics;
    }
}

TEST(FaultMatrix, IcnDelayTripsTheTickBudgetAsRunaway)
{
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::IcnDelay,
                        .at = 0,
                        .magnitude = 1'000'000'000'000'000ULL});
        cfg.guards.tickBudget = 1'000'000'000;
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Runaway);
        EXPECT_FALSE(rec.diagnostics.empty()) << rec.error;
    }
}

TEST(FaultMatrix, IcnDelayOnTheDeviceLinkIsRunawayToo)
{
    // target=1 aims the delay at the inter-device link instead of
    // the GPU<->memory crossing: a 2-device run's first boundary
    // exchange then schedules an arrival far past the tick budget.
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.deviceCount = 2;
        cfg.faults.add({.kind = sim::FaultKind::IcnDelay,
                        .at = 0,
                        .magnitude = 1'000'000'000'000'000ULL,
                        .target = 1});
        cfg.guards.tickBudget = 1'000'000'000;
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Runaway);
        EXPECT_FALSE(rec.diagnostics.empty()) << rec.error;
    }
}

TEST(FaultMatrix, DramRefreshStormTripsTheTickBudgetAsRunaway)
{
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys);
        cfg.faults.add({.kind = sim::FaultKind::DramRefreshStorm,
                        .at = 0,
                        .magnitude = 1'000'000'000'000'000ULL});
        cfg.guards.tickBudget = 1'000'000'000;
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Runaway);
        EXPECT_FALSE(rec.diagnostics.empty()) << rec.error;
    }
}

TEST(FaultMatrix, HashCorruptTripsTheParityInvariant)
{
    if (!sim::checksEnabled)
        GTEST_SKIP() << "SCUSIM_CHECK not compiled in";
    for (const auto *sys : kSystems) {
        RunConfig cfg = tinyConfig(sys, ScuMode::ScuEnhanced);
        cfg.faults.add({.kind = sim::FaultKind::HashCorrupt,
                        .at = 0});
        auto rec = runOne(cfg);
        expectFailure(rec, FailureKind::Invariant);
        EXPECT_NE(rec.error.find("parity"), std::string::npos)
            << rec.error;
    }
}

// ---------------------------------------------------------------
// Supervision: wall-clock budget, retry, cancellation, memoization
// ---------------------------------------------------------------

TEST(Supervision, WallClockBudgetIsTimeoutAndRetried)
{
    RunConfig cfg = tinyConfig();
    cfg.guards.wallSeconds = 1e-9; // expires at the first checkpoint
    ExperimentPlan p;
    p.add(cfg);
    auto res = runPlan(p, {.jobs = 1, .memoize = false,
                           .maxRetries = 1});
    const auto &rec = res.records().at(0);
    expectFailure(rec, FailureKind::Timeout);
    // Timeout is a transient kind: one retry was granted, and it
    // waited exactly the deterministic seed-derived backoff the
    // failures report surfaces.
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_EQ(rec.backoffMs, retryBackoffMs(cfg.seed, 1, 25, 2000));
    EXPECT_GT(rec.backoffMs, 0u);
}

TEST(Supervision, TimeoutsAreNeverMemoized)
{
    clearRunMemo();
    RunConfig cfg = tinyConfig();
    cfg.guards.wallSeconds = 1e-9;
    ExperimentPlan p;
    p.add(cfg);
    auto res = runPlan(p, {.jobs = 1}); // memoization on
    expectFailure(res.records().at(0), FailureKind::Timeout);
    EXPECT_EQ(memoizedRunCount(), 0u);
    clearRunMemo();
}

TEST(Supervision, PreCancelledPlanFailsFastWithTimeout)
{
    std::atomic<bool> stop{true};
    auto res = runPlan(ExperimentPlan()
                           .systems({"TX1"})
                           .primitives({Primitive::Bfs})
                           .datasets({"cond", "ca"})
                           .modes({ScuMode::GpuOnly,
                                   ScuMode::ScuEnhanced})
                           .scale(0.01),
                       {.jobs = 2, .memoize = false,
                        .cancel = &stop});
    ASSERT_EQ(res.size(), 4u);
    EXPECT_EQ(res.failures(), 4u);
    for (const auto &rec : res.records()) {
        expectFailure(rec, FailureKind::Timeout);
        EXPECT_EQ(rec.error, "cancelled before start");
    }
}

// ---------------------------------------------------------------
// Pristine-path guarantees and graceful degradation
// ---------------------------------------------------------------

TEST(FaultPlan, ArmedButUnfiredInjectorIsByteIdenticalToNone)
{
    RunConfig clean = tinyConfig();
    RunConfig armed = tinyConfig();
    // Armed far past the drain tick: every hook is consulted but
    // no fault ever fires.
    armed.faults.add({.kind = sim::FaultKind::PanicAt,
                      .at = static_cast<Tick>(1) << 60});

    ExperimentPlan pc;
    pc.add(clean, "cell");
    ExperimentPlan pa;
    pa.add(armed, "cell");
    auto rc = runPlan(pc, {.jobs = 1, .memoize = false});
    auto ra = runPlan(pa, {.jobs = 1, .memoize = false});
    EXPECT_TRUE(rc.records().at(0).ok);
    EXPECT_TRUE(ra.records().at(0).ok);
    EXPECT_EQ(jsonOf(rc), jsonOf(ra));
}

TEST(Degradation, FaultedCellDoesNotPoisonTheMatrix)
{
    ExperimentPlan p;
    p.add(tinyConfig("GTX980", ScuMode::GpuOnly));
    p.add(tinyConfig("GTX980", ScuMode::ScuBasic));
    RunConfig bad = tinyConfig("GTX980", ScuMode::ScuEnhanced);
    bad.faults.add({.kind = sim::FaultKind::PanicAt, .at = 0});
    p.add(bad);

    auto res = runPlan(p, {.jobs = 2, .memoize = false});
    ASSERT_EQ(res.size(), 3u);
    EXPECT_EQ(res.failures(), 1u);
    EXPECT_TRUE(res.records().at(0).ok);
    EXPECT_TRUE(res.records().at(1).ok);
    expectFailure(res.records().at(2), FailureKind::Panic);

    // The ok-aware accessors benches render failed cells with.
    EXPECT_NE(res.tryGet("GTX980", Primitive::Bfs, "cond",
                         ScuMode::GpuOnly),
              nullptr);
    EXPECT_EQ(res.tryGet("GTX980", Primitive::Bfs, "cond",
                         ScuMode::ScuEnhanced),
              nullptr);
    const RunRecord *cell = res.cell("GTX980", Primitive::Bfs,
                                     "cond", ScuMode::ScuEnhanced);
    ASSERT_NE(cell, nullptr);
    EXPECT_FALSE(cell->ok);
    ASSERT_TRUE(cell->failure.has_value());
    EXPECT_EQ(*cell->failure, FailureKind::Panic);
    EXPECT_EQ(res.record(res.records().at(2).run.label), cell);
    EXPECT_EQ(res.tryByLabel(res.records().at(2).run.label),
              nullptr);

    // The machine-readable failure report names the bad cell.
    std::ostringstream os;
    writeFailureReport(os, res);
    EXPECT_NE(os.str().find("\"failureKind\":\"panic\""),
              std::string::npos)
        << os.str();
}

TEST(Degradation, FailureReportArtifactIsWritten)
{
    RunConfig bad = tinyConfig();
    bad.faults.add({.kind = sim::FaultKind::PanicAt, .at = 0});
    ExperimentPlan p;
    p.add(bad);
    auto res = runPlan(p, {.jobs = 1, .memoize = false});
    ASSERT_EQ(res.failures(), 1u);

    const std::filesystem::path dir = "fault_test_artifacts";
    std::filesystem::create_directories(dir);
    ::setenv("SCUSIM_ARTIFACT_DIR", dir.c_str(), 1);
    Table t("fault artifact test");
    t.header({"col"});
    t.row({"val"});
    writeArtifact("fault_probe", res, {&t});
    ::unsetenv("SCUSIM_ARTIFACT_DIR");

    std::ifstream f(dir / "fault_probe.failures.json");
    ASSERT_TRUE(f.good()) << "failure report not written";
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("\"failureKind\":\"panic\""),
              std::string::npos)
        << ss.str();
    f.close();
    std::filesystem::remove_all(dir);
}
