/**
 * @file
 * Unit tests for the GPU timing model: SIMT warp merging, coalescing
 * accounting, phase attribution, launch mechanics and the effect of
 * divergence on execution time.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "gpu/gpu_config.hh"
#include "mem/mem_system.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

using namespace scusim;
using namespace scusim::gpu;

namespace
{

struct Rig
{
    Rig()
        : params(GpuParams::tx1()), clk(params.freqHz),
          root("t"),
          mem(params.memsys, clk, &root),
          gpu(params, mem, sim, &root)
    {
    }

    GpuParams params;
    sim::ClockDomain clk;
    stats::StatGroup root;
    sim::Simulation sim;
    mem::MemSystem mem;
    Gpu gpu;
};

KernelLaunch
makeKernel(const char *name, std::uint64_t threads,
           std::function<void(std::uint64_t, ThreadRecorder &)> body,
           Phase phase = Phase::Processing)
{
    KernelLaunch k;
    k.name = name;
    k.phase = phase;
    k.numThreads = threads;
    k.body = std::move(body);
    return k;
}

} // namespace

TEST(GpuModel, EmptyLaunchOnlyCostsOverhead)
{
    Rig r;
    auto ks = r.gpu.launch(makeKernel(
        "empty", 0, [](std::uint64_t, ThreadRecorder &) {}));
    EXPECT_EQ(ks.cycles(), 0u);
    EXPECT_EQ(r.sim.now(), r.gpu.launchOverhead());
}

TEST(GpuModel, ThreadAndWarpCounts)
{
    Rig r;
    auto ks = r.gpu.launch(makeKernel(
        "count", 100, [](std::uint64_t, ThreadRecorder &rec) {
            rec.compute(1);
        }));
    EXPECT_EQ(ks.threads, 100u);
    EXPECT_EQ(ks.warps, 4u); // ceil(100/32)
    EXPECT_GE(ks.warpInstrs, 4u);
    EXPECT_EQ(ks.threadInstrs, 100u);
}

TEST(GpuModel, CoalescedVsDivergentLoads)
{
    Rig r;
    constexpr std::uint64_t n = 32 * 64;

    auto coalesced = r.gpu.launch(makeKernel(
        "coalesced", n, [](std::uint64_t tid, ThreadRecorder &rec) {
            rec.load(0x100000 + tid * 4, 4);
        }));
    auto divergent = r.gpu.launch(makeKernel(
        "divergent", n, [](std::uint64_t tid, ThreadRecorder &rec) {
            rec.load(0x100000 + tid * 4096, 4);
        }));

    // 1 transaction per warp vs 32.
    EXPECT_EQ(coalesced.memTransactions, n / 32);
    EXPECT_EQ(divergent.memTransactions, n);
    EXPECT_DOUBLE_EQ(coalesced.coalescingEfficiency(), 1.0);
    EXPECT_NEAR(divergent.coalescingEfficiency(), 1.0 / 32, 1e-9);
    EXPECT_GT(divergent.cycles(), coalesced.cycles());
}

TEST(GpuModel, PhaseAttribution)
{
    Rig r;
    r.gpu.launch(makeKernel(
        "proc", 64,
        [](std::uint64_t, ThreadRecorder &rec) { rec.compute(4); },
        Phase::Processing));
    r.gpu.launch(makeKernel(
        "comp", 64,
        [](std::uint64_t, ThreadRecorder &rec) { rec.compute(4); },
        Phase::Compaction));
    const auto &t = r.gpu.totals();
    EXPECT_EQ(t.processing.threads, 64u);
    EXPECT_EQ(t.compaction.threads, 64u);
    EXPECT_GT(t.processingCycles, 0u);
    EXPECT_GT(t.compactionCycles, 0u);
    EXPECT_EQ(t.launches, 2u);
}

TEST(GpuModel, DivergentOpKindsSerialize)
{
    Rig r;
    // Half the lanes load, half store at their first op: the merge
    // must produce two warp instructions per warp.
    auto ks = r.gpu.launch(makeKernel(
        "mixed", 32, [](std::uint64_t tid, ThreadRecorder &rec) {
            if (tid % 2 == 0)
                rec.load(0x1000 + tid * 4, 4);
            else
                rec.store(0x8000 + tid * 4, 4);
        }));
    EXPECT_EQ(ks.warpMemInstrs, 2u);
    EXPECT_EQ(ks.memLanes, 32u);
}

TEST(GpuModel, ImbalancedThreadsExtendWarp)
{
    Rig r;
    // One thread does 100 compute steps; a balanced kernel of the
    // same total work is faster because the long thread serializes
    // its whole warp.
    auto imbalanced = r.gpu.launch(makeKernel(
        "imbalanced", 32, [](std::uint64_t tid, ThreadRecorder &rec) {
            rec.compute(tid == 0 ? 3200 : 1);
        }));
    auto balanced = r.gpu.launch(makeKernel(
        "balanced", 32, [](std::uint64_t, ThreadRecorder &rec) {
            rec.compute(100);
        }));
    EXPECT_GT(imbalanced.cycles(), 2 * balanced.cycles());
}

TEST(GpuModel, AtomicsSerializePerAddress)
{
    Rig r;
    // All lanes atomically update the same address vs distinct
    // addresses in one line: same-address traffic is one txn, but
    // distinct addresses cannot merge.
    auto same = r.gpu.launch(makeKernel(
        "atomic_same", 32, [](std::uint64_t, ThreadRecorder &rec) {
            rec.atomic(0x4000, 4);
        }));
    auto distinct = r.gpu.launch(makeKernel(
        "atomic_distinct", 32,
        [](std::uint64_t tid, ThreadRecorder &rec) {
            rec.atomic(0x4000 + tid * 4, 4);
        }));
    EXPECT_EQ(same.memTransactions, 1u);
    EXPECT_EQ(distinct.memTransactions, 32u);
}

TEST(GpuModel, MoreParallelismMoreThroughput)
{
    // The same memory-bound kernel on GTX980 (16 SMs) must be much
    // faster than on TX1 (2 SMs).
    auto run = [](const GpuParams &p) {
        sim::ClockDomain clk(p.freqHz);
        stats::StatGroup root("t");
        sim::Simulation sim;
        mem::MemSystem mem(p.memsys, clk, &root);
        Gpu gpu(p, mem, sim, &root);
        KernelLaunch k;
        k.name = "stream";
        k.numThreads = 32 * 2048;
        k.body = [](std::uint64_t tid, ThreadRecorder &rec) {
            rec.load(0x1000000 + tid * 4, 4);
            rec.compute(8);
            rec.store(0x4000000 + tid * 4, 4);
        };
        auto ks = gpu.launch(k);
        return ks.cycles();
    };
    Tick big = run(GpuParams::gtx980());
    Tick small = run(GpuParams::tx1());
    EXPECT_GT(small, 3 * big);
}

TEST(GpuModel, LaunchOverheadMatchesConfig)
{
    Rig r;
    Tick before = r.sim.now();
    r.gpu.launch(makeKernel("tiny", 1,
                            [](std::uint64_t, ThreadRecorder &rec) {
                                rec.compute(1);
                            }));
    EXPECT_GE(r.sim.now() - before, r.params.launchLatency);
}
