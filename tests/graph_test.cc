/**
 * @file
 * Unit and property tests for the graph substrate: CSR construction
 * (Figure 2), generators (Table 5 classes), loaders and analysis.
 */

#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <vector>

#include "common/rng.hh"
#include "graph/analysis.hh"
#include "graph/csr.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/loader.hh"

using namespace scusim;
using namespace scusim::graph;

namespace
{

/** Materialize a span accessor for gtest container comparison. */
template <typename T>
std::vector<T>
vec(std::span<const T> s)
{
    return {s.begin(), s.end()};
}

} // namespace

TEST(Csr, ReferenceGraphMatchesFigure2)
{
    CsrGraph g = referenceGraph();
    g.validate();
    ASSERT_EQ(g.numNodes(), 7u);
    ASSERT_EQ(g.numEdges(), 8u);

    // Figure 2b: AdjacencyOffsets 0 3 5 6 8 8 8 (plus final 8).
    const std::vector<EdgeId> want_off{0, 3, 5, 6, 8, 8, 8, 8};
    EXPECT_EQ(vec(g.adjacencyOffsets()), want_off);

    // Edges: B C D | E F | F | C G ; weights 2 3 1 1 1 2 1 2.
    const std::vector<NodeId> want_dst{1, 2, 3, 4, 5, 5, 2, 6};
    EXPECT_EQ(vec(g.edgeArray()), want_dst);
    const std::vector<Weight> want_w{2, 3, 1, 1, 1, 2, 1, 2};
    EXPECT_EQ(vec(g.weightArray()), want_w);

    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(4), 0u);
}

TEST(Csr, FromEdgeListSortsAdjacency)
{
    EdgeList el;
    el.numNodes = 3;
    el.edges = {{0, 2, 5}, {0, 1, 4}, {2, 0, 1}};
    CsrGraph g = CsrGraph::fromEdgeList(std::move(el));
    g.validate();
    auto nbrs = g.neighbors(0);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0], 1u);
    EXPECT_EQ(nbrs[1], 2u);
    EXPECT_EQ(g.edgeWeights(0)[0], 4u);
}

TEST(Csr, DedupKeepsMinWeight)
{
    EdgeList el;
    el.numNodes = 2;
    el.edges = {{0, 1, 9}, {0, 1, 3}, {0, 1, 7}};
    CsrGraph g = CsrGraph::fromEdgeList(std::move(el), true);
    ASSERT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.edgeWeights(0)[0], 3u);
}

TEST(Csr, TransposeReversesEdges)
{
    CsrGraph g = referenceGraph();
    CsrGraph t = g.transpose();
    t.validate();
    EXPECT_EQ(t.numEdges(), g.numEdges());
    // A->B (w 2) becomes B->A.
    auto nbrs = t.neighbors(1);
    ASSERT_EQ(nbrs.size(), 1u);
    EXPECT_EQ(nbrs[0], 0u);
    EXPECT_EQ(t.edgeWeights(1)[0], 2u);
}

TEST(Csr, OutOfRangeEdgeIsFatal)
{
    EdgeList el;
    el.numNodes = 2;
    el.edges = {{0, 5, 1}};
    EXPECT_DEATH(CsrGraph::fromEdgeList(std::move(el)),
                 "out of range");
}

// ---------------------------------------------------------------
// Generators: parameterized over every named dataset.
// ---------------------------------------------------------------

class DatasetGen : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DatasetGen, MatchesSpecSizeAtSmallScale)
{
    const std::string name = GetParam();
    const double scale = 0.02;
    CsrGraph g = makeDataset(name, scale, 1);
    g.validate();
    const DatasetSpec &spec = datasetSpec(name);
    const double want_m =
        static_cast<double>(spec.edges) * scale;
    EXPECT_NEAR(static_cast<double>(g.numEdges()), want_m,
                want_m * 0.15 + 256);
    EXPECT_GT(g.numNodes(), 0u);
}

TEST_P(DatasetGen, Deterministic)
{
    const std::string name = GetParam();
    CsrGraph a = makeDataset(name, 0.01, 7);
    CsrGraph b = makeDataset(name, 0.01, 7);
    EXPECT_EQ(vec(a.edgeArray()), vec(b.edgeArray()));
    EXPECT_EQ(vec(a.weightArray()), vec(b.weightArray()));
}

TEST_P(DatasetGen, SeedChangesGraph)
{
    const std::string name = GetParam();
    CsrGraph a = makeDataset(name, 0.01, 1);
    CsrGraph b = makeDataset(name, 0.01, 2);
    EXPECT_NE(vec(a.edgeArray()), vec(b.edgeArray()));
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetGen,
                         ::testing::Values("ca", "cond", "delaunay",
                                           "human", "kron",
                                           "msdoor"));

TEST(Generators, RmatIsSkewed)
{
    Rng rng(5);
    auto el = rmat(12, 40000, rng);
    CsrGraph g = CsrGraph::fromEdgeList(std::move(el));
    GraphStats st = analyzeGraph(g);
    // Power-law generators produce hubs far above the mean degree.
    EXPECT_GT(static_cast<double>(st.maxOutDegree),
              5.0 * st.avgDegree);
}

TEST(Generators, RoadNetworkIsNearlySymmetricAndSparse)
{
    Rng rng(5);
    auto el = roadNetwork(10000, 49000, rng);
    CsrGraph g = CsrGraph::fromEdgeList(std::move(el));
    GraphStats st = analyzeGraph(g);
    EXPECT_LT(st.degreeStdDev, st.avgDegree * 2);
    EXPECT_EQ(g.numEdges(), 49000u);
}

TEST(Generators, GridAndPathAndStar)
{
    CsrGraph grid = CsrGraph::fromEdgeList(grid2d(4, 3));
    EXPECT_EQ(grid.numNodes(), 12u);
    // 4x3 grid: 3*3 horizontal + 4*2 vertical, both directions.
    EXPECT_EQ(grid.numEdges(), 2u * (9 + 8));

    CsrGraph p = CsrGraph::fromEdgeList(path(5));
    EXPECT_EQ(p.numEdges(), 4u);
    EXPECT_EQ(p.degree(4), 0u);

    CsrGraph s = CsrGraph::fromEdgeList(star(6));
    EXPECT_EQ(s.degree(0), 5u);
    EXPECT_EQ(s.degree(3), 0u);
}

TEST(Generators, ErdosRenyiExactEdgeCount)
{
    Rng rng(1);
    auto el = erdosRenyi(500, 2500, rng);
    EXPECT_EQ(el.edges.size(), 2500u);
    for (const auto &e : el.edges)
        EXPECT_NE(e.src, e.dst);
}

// ---------------------------------------------------------------
// Loaders.
// ---------------------------------------------------------------

TEST(Loader, EdgeListRoundTrip)
{
    CsrGraph g = referenceGraph();
    std::stringstream ss;
    writeEdgeList(g, ss);
    EdgeList el = parseEdgeList(ss);
    CsrGraph g2 = CsrGraph::fromEdgeList(std::move(el));
    EXPECT_EQ(vec(g2.edgeArray()), vec(g.edgeArray()));
    EXPECT_EQ(vec(g2.weightArray()), vec(g.weightArray()));
    EXPECT_EQ(vec(g2.adjacencyOffsets()), vec(g.adjacencyOffsets()));
}

TEST(Loader, EdgeListCommentsAndDefaults)
{
    std::stringstream ss("# comment\n0 1\n% other comment\n1 2 9\n");
    EdgeList el = parseEdgeList(ss);
    ASSERT_EQ(el.edges.size(), 2u);
    EXPECT_EQ(el.edges[0].weight, 1u);
    EXPECT_EQ(el.edges[1].weight, 9u);
    EXPECT_EQ(el.numNodes, 3u);
}

TEST(Loader, DimacsFormat)
{
    std::stringstream ss(
        "c comment line\np sp 3 2\na 1 2 7\na 2 3 4\n");
    EdgeList el = parseDimacs(ss);
    ASSERT_EQ(el.edges.size(), 2u);
    EXPECT_EQ(el.numNodes, 3u);
    EXPECT_EQ(el.edges[0].src, 0u); // converted to 0-based
    EXPECT_EQ(el.edges[0].dst, 1u);
    EXPECT_EQ(el.edges[0].weight, 7u);
}

TEST(Loader, MatrixMarketSymmetricPattern)
{
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "% a comment\n"
        "4 4 3\n"
        "2 1\n3 1\n4 2\n");
    EdgeList el = parseMatrixMarket(ss);
    EXPECT_EQ(el.numNodes, 4u);
    EXPECT_EQ(el.edges.size(), 6u); // symmetric expansion
}

TEST(Loader, MalformedDimacsIsFatal)
{
    std::stringstream ss("a 1 2 3\n");
    EXPECT_DEATH(parseDimacs(ss), "missing");
}

// ---------------------------------------------------------------
// Analysis.
// ---------------------------------------------------------------

TEST(Analysis, ReferenceGraphStats)
{
    GraphStats st = analyzeGraph(referenceGraph());
    EXPECT_EQ(st.nodes, 7u);
    EXPECT_EQ(st.edges, 8u);
    EXPECT_DOUBLE_EQ(st.avgDegree, 16.0 / 7.0);
    EXPECT_EQ(st.maxOutDegree, 3u);
    EXPECT_EQ(st.isolatedNodes, 3u); // E, F, G have no out-edges
}

TEST(Analysis, DatasetTableHasSixRows)
{
    EXPECT_EQ(datasetTable().size(), 6u);
    EXPECT_EQ(datasetSpec("human").nodes, 22000u);
    EXPECT_EQ(datasetSpec("kron").edges, 21000000u);
    EXPECT_DEATH(datasetSpec("nope"), "unknown dataset");
}
