/**
 * @file
 * Integration tests of the harness: system wiring, activity
 * attribution, run metrics and config presets (Tables 2-4).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "harness/system.hh"

using namespace scusim;
using namespace scusim::harness;

TEST(SystemConfig, PresetsMatchTables)
{
    auto hp = SystemConfig::gtx980();
    EXPECT_EQ(hp.gpu.numSms, 16u);                      // Table 3
    EXPECT_EQ(hp.gpu.maxThreadsPerSm, 2048u);
    EXPECT_EQ(hp.gpu.memsys.l2.sizeBytes, 2u << 20);
    EXPECT_DOUBLE_EQ(hp.gpu.memsys.dram.peakBytesPerSec, 224e9);
    EXPECT_DOUBLE_EQ(hp.gpu.freqHz, 1.27e9);
    EXPECT_EQ(hp.scu.pipelineWidth, 4u);                // Table 2
    EXPECT_EQ(hp.scu.filterBfsHash.sizeBytes, 1u << 20);

    auto lp = SystemConfig::tx1();
    EXPECT_EQ(lp.gpu.numSms, 2u);                       // Table 4
    EXPECT_EQ(lp.gpu.maxThreadsPerSm, 256u);
    EXPECT_EQ(lp.gpu.memsys.l2.sizeBytes, 256u << 10);
    EXPECT_DOUBLE_EQ(lp.gpu.memsys.dram.peakBytesPerSec, 25.6e9);
    EXPECT_EQ(lp.scu.pipelineWidth, 1u);
    EXPECT_EQ(lp.scu.filterBfsHash.sizeBytes, 132u << 10);

    // Table 1 constants shared by both.
    EXPECT_EQ(hp.scu.vectorBufferBytes, 5u << 10);
    EXPECT_EQ(hp.scu.fifoRequestBytes, 38u << 10);
    EXPECT_EQ(hp.scu.hashRequestBytes, 18u << 10);
    EXPECT_EQ(hp.scu.coalesceInflight, 32u);
    EXPECT_EQ(hp.scu.mergeWindow, 4u);
}

TEST(SystemConfig, ByName)
{
    EXPECT_EQ(SystemConfig::byName("TX1").gpu.name, "TX1");
    EXPECT_EQ(SystemConfig::byName("GTX980").gpu.name, "GTX980");
    EXPECT_DEATH(SystemConfig::byName("Vega"), "unknown system");
}

TEST(System, ScuPresenceFollowsConfig)
{
    System with(SystemConfig::tx1(true));
    EXPECT_TRUE(with.hasScu());
    System without(SystemConfig::tx1(false));
    EXPECT_FALSE(without.hasScu());
    EXPECT_DEATH(without.scuDevice(), "without an SCU");
}

TEST(System, ScuSectionAttributesActivity)
{
    System sys(SystemConfig::tx1(true));
    auto &as = sys.addressSpace();
    scu::Scu::Elems in(as, "in", 1000);
    scu::Scu::Elems out(as, "out", 1000);
    for (std::size_t i = 0; i < 1000; ++i)
        in[i] = static_cast<std::uint32_t>(i);

    std::size_t n = 0;
    sys.scuSection([&] {
        sys.scuDevice().dataCompaction(in, 1000, nullptr, out, n);
    });
    const auto &scu_act = sys.scuActivity();
    EXPECT_GT(scu_act.scuElements, 0.0);
    // GPU side saw nothing.
    auto gpu_act = sys.gpuActivity();
    EXPECT_DOUBLE_EQ(gpu_act.scuElements, 0.0);
    EXPECT_DOUBLE_EQ(gpu_act.threadInstrs, 0.0);
}

TEST(Runner, EndToEndTinyRun)
{
    RunConfig cfg;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    cfg.systemName = "TX1";
    cfg.primitive = Primitive::Bfs;
    cfg.mode = ScuMode::ScuEnhanced;
    auto r = runPrimitive(cfg);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.energy.totalJ(), 0.0);
    EXPECT_GE(r.compactionShare(), 0.0);
    EXPECT_LE(r.compactionShare(), 1.0);
    EXPECT_GT(r.bwUtilization, 0.0);
    EXPECT_LE(r.bwUtilization, 1.0);
    EXPECT_GT(r.l2HitRate, 0.0);
    EXPECT_LE(r.l2HitRate, 1.0);
}

TEST(Runner, DatasetCacheReturnsSameGraph)
{
    const auto &a = cachedDataset("cond", 0.01, 1);
    const auto &b = cachedDataset("cond", 0.01, 1);
    EXPECT_EQ(&a, &b);
    const auto &c = cachedDataset("cond", 0.01, 2);
    EXPECT_NE(&a, &c);
}

TEST(Runner, ToStringHelpers)
{
    EXPECT_EQ(to_string(Primitive::Bfs), "BFS");
    EXPECT_EQ(to_string(Primitive::Sssp), "SSSP");
    EXPECT_EQ(to_string(Primitive::Pr), "PR");
    EXPECT_EQ(to_string(ScuMode::GpuOnly), "gpu-only");
    EXPECT_EQ(to_string(ScuMode::ScuBasic), "scu-basic");
    EXPECT_EQ(to_string(ScuMode::ScuEnhanced), "scu-enhanced");
}

TEST(Runner, StatsDumpContainsComponents)
{
    RunConfig cfg;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    cfg.systemName = "TX1";
    cfg.primitive = Primitive::Bfs;
    cfg.mode = ScuMode::ScuEnhanced;
    std::ostringstream os;
    cfg.dumpStatsTo = &os;
    runPrimitive(cfg);
    std::string out = os.str();
    EXPECT_NE(out.find("memsys.dram.reads"), std::string::npos);
    EXPECT_NE(out.find("memsys.l2.hits"), std::string::npos);
    EXPECT_NE(out.find("scu.elements"), std::string::npos);
    EXPECT_NE(out.find("gpu.sm0.issued_instrs"),
              std::string::npos);
}

TEST(Runner, EnergyBreakdownConsistent)
{
    RunConfig cfg;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    cfg.systemName = "GTX980";
    cfg.primitive = Primitive::Pr;
    cfg.mode = ScuMode::ScuBasic;
    cfg.alg.prMaxIterations = 2;
    auto r = runPrimitive(cfg);
    EXPECT_NEAR(r.energy.totalJ(),
                r.energy.gpuSideJ() + r.energy.scuSideJ(), 1e-12);
    EXPECT_GT(r.energy.scuDynamicJ, 0.0);
}
