/**
 * @file
 * Unit tests for the memory hierarchy: address space, coalescer,
 * cache behaviour (hits, LRU, writebacks, MSHRs, way-locking,
 * streaming bypass) and the DRAM timing model (bandwidth cap, row
 * buffer locality).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/dram.hh"
#include "mem/mem_system.hh"
#include "sim/clock.hh"
#include "stats/stats.hh"

using namespace scusim;
using namespace scusim::mem;

TEST(AddressSpace, LineAlignedAllocations)
{
    AddressSpace as(1 << 20, 128);
    Addr a = as.alloc("a", 5);
    Addr b = as.alloc("b", 300);
    EXPECT_EQ(a % 128, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GE(b, a + 128); // no line sharing
    EXPECT_EQ(as.find(a)->name, "a");
    EXPECT_EQ(as.find(b + 200)->name, "b");
    EXPECT_EQ(as.find(b + 512), nullptr);
}

TEST(AddressSpace, ExhaustionIsFatal)
{
    AddressSpace as(4096, 128);
    EXPECT_DEATH(as.alloc("big", 1 << 20), "exhausted");
}

TEST(DeviceArray, AddressMath)
{
    AddressSpace as(1 << 20, 128);
    DeviceArray<std::uint32_t> arr(as, "arr", 100);
    EXPECT_EQ(arr.size(), 100u);
    EXPECT_EQ(arr.addrOf(0), arr.base());
    EXPECT_EQ(arr.addrOf(7), arr.base() + 28);
    arr[3] = 99;
    EXPECT_EQ(arr[3], 99u);
}

TEST(Coalescer, FullyCoalescedWarp)
{
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 32; ++i)
        lanes.push_back(0x1000 + i * 4);
    std::vector<Addr> out;
    EXPECT_EQ(coalesceLanes(lanes, 128, out), 1u);
    EXPECT_EQ(out[0], Addr{0x1000});
}

TEST(Coalescer, FullyDivergentWarp)
{
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 32; ++i)
        lanes.push_back(i * 4096);
    std::vector<Addr> out;
    EXPECT_EQ(coalesceLanes(lanes, 128, out), 32u);
}

TEST(Coalescer, MaskSelectsActiveLanes)
{
    // Slot-per-lane span: only the masked slots participate, the
    // rest are don't-care (and deliberately colliding here).
    std::vector<Addr> lanes(8, 0);
    lanes[1] = 0x1000;
    lanes[3] = 0x1040;
    lanes[6] = 0x1080;
    std::vector<Addr> out;
    const std::uint64_t active = (1u << 1) | (1u << 3) | (1u << 6);
    EXPECT_EQ(coalesceLanes(lanes, active, 128, out), 2u);
    EXPECT_EQ(out, (std::vector<Addr>{0x1000, 0x1080}));
}

TEST(Coalescer, MaskBitsPastSpanAreIgnored)
{
    std::vector<Addr> lanes{0x0, 0x1000, 0x2000};
    std::vector<Addr> out;
    EXPECT_EQ(appendUniqueAddrs(lanes, ~std::uint64_t{0}, out), 3u);
    EXPECT_EQ(out.size(), 3u);
}

TEST(Coalescer, FirstTouchOrderUnderMask)
{
    // Lane order — not value order — decides output order, and a
    // value reappearing after unrelated lanes is still a duplicate
    // (the membership table, not just the prev-value run check).
    std::vector<Addr> lanes{0x300, 0x100, 0x100, 0x200,
                            0x100, 0x300, 0x050};
    std::vector<Addr> out;
    const std::uint64_t all = maskLow(7);
    EXPECT_EQ(appendUniqueAddrs(lanes, all, out), 4u);
    EXPECT_EQ(out, (std::vector<Addr>{0x300, 0x100, 0x200, 0x050}));
}

TEST(Coalescer, FullTableOf32DistinctValues)
{
    // 32 distinct values is the membership table's capacity limit
    // (64 slots, load factor 1/2): all insert, order preserved.
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 32; ++i)
        lanes.push_back((31 - i) * 4096);
    std::vector<Addr> out;
    EXPECT_EQ(appendUniqueAddrs(lanes, maskLow(32), out), 32u);
    for (Addr i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], (31 - i) * 4096);
}

TEST(Coalescer, WideMaskFallsBackToLinearRescan)
{
    // >32 active lanes exceed the table's load-factor budget and run
    // the linear-rescan path; dedup and order must be unchanged.
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 48; ++i)
        lanes.push_back((i % 20) * 4096);
    std::vector<Addr> out;
    EXPECT_EQ(appendUniqueAddrs(lanes, maskLow(48), out), 20u);
    for (Addr i = 0; i < 20; ++i)
        EXPECT_EQ(out[i], i * 4096);
}

TEST(Coalescer, DenseSpanWiderThan64Lanes)
{
    // No 64-bit mask can address a 70-lane span: the dense overload
    // must still dedup it (legacy linear loop).
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 70; ++i)
        lanes.push_back((i % 7) * 128);
    std::vector<Addr> out;
    EXPECT_EQ(coalesceLanes(lanes, 128, out), 7u);
    for (Addr i = 0; i < 7; ++i)
        EXPECT_EQ(out[i], i * 128);
}

TEST(Coalescer, DenseAndMaskedPathsAgree)
{
    // The dense overload forwards to the masked one for spans <= 64;
    // a scattered-duplicate pattern must produce identical output
    // through both entry points.
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 32; ++i)
        lanes.push_back(mixBits(i) % 5 * 4096);
    std::vector<Addr> dense, masked;
    const std::size_t a = appendUniqueAddrs(lanes, dense);
    const std::size_t b =
        appendUniqueAddrs(lanes, maskLow(32), masked);
    EXPECT_EQ(a, b);
    EXPECT_EQ(dense, masked);
}

TEST(Coalescer, StatsEfficiency)
{
    CoalesceStats cs;
    cs.record(32, 1);
    EXPECT_DOUBLE_EQ(cs.efficiency(), 1.0);
    cs.record(32, 32);
    EXPECT_DOUBLE_EQ(cs.txnsPerInstr(), 16.5);
    EXPECT_NEAR(cs.efficiency(), 64.0 / (32.0 * 33.0), 1e-12);
}

namespace
{

/** Fixed-latency backing store standing in for DRAM. */
class FakeMem : public MemLevel
{
  public:
    MemResult
    access(Tick issue, Addr, AccessKind kind, unsigned) override
    {
        ++accesses;
        if (kind == AccessKind::Write ||
            kind == AccessKind::WriteNoAlloc) {
            ++writes;
            return {issue + 1, false};
        }
        ++reads;
        return {issue + 200, false};
    }

    int accesses = 0, reads = 0, writes = 0;
};

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "c";
    p.sizeBytes = 4 << 10; // 4 KB: 2 sets x 16 ways x 128 B
    p.lineBytes = 128;
    p.ways = 16;
    p.banks = 1;
    p.hitLatency = 10;
    p.mshrs = 8;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    FakeMem dram;
    stats::StatGroup g("t");
    Cache c(smallCache(), &dram, &g);

    auto r1 = c.access(0, 0x1000, AccessKind::Read, 128);
    EXPECT_FALSE(r1.hit);
    EXPECT_GE(r1.complete, 200u);

    auto r2 = c.access(r1.complete, 0x1000, AccessKind::Read, 128);
    EXPECT_TRUE(r2.hit);
    EXPECT_LE(r2.complete, r1.complete + 12);
    EXPECT_EQ(dram.reads, 1);
}

TEST(Cache, LruEviction)
{
    FakeMem dram;
    stats::StatGroup g("t");
    CacheParams p = smallCache();
    Cache c(p, &dram, &g);

    // Fill far more distinct lines than the cache holds, then
    // re-touch the first: it must miss again.
    Tick t = 0;
    for (Addr a = 0; a < 64; ++a)
        t = c.access(t, a * 128, AccessKind::Read, 128).complete;
    int reads_before = dram.reads;
    auto r = c.access(t, 0, AccessKind::Read, 128);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(dram.reads, reads_before + 1);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    FakeMem dram;
    stats::StatGroup g("t");
    Cache c(smallCache(), &dram, &g);

    c.access(0, 0x0, AccessKind::Write, 128);
    // Evict everything by streaming reads.
    Tick t = 1000;
    for (Addr a = 1; a < 80; ++a)
        t = c.access(t, a * 128, AccessKind::Read, 128).complete;
    EXPECT_GE(c.numWritebacks(), 1.0);
    EXPECT_GE(dram.writes, 1);
}

TEST(Cache, WriteValidateSkipsFetch)
{
    FakeMem dram;
    stats::StatGroup g("t");
    Cache c(smallCache(), &dram, &g);

    // A full-line store on a miss must not read from downstream.
    auto r = c.access(0, 0x2000, AccessKind::Write, 128);
    EXPECT_EQ(dram.reads, 0);
    EXPECT_LE(r.complete, 5u);
    // And the line is now present.
    auto r2 = c.access(10, 0x2000, AccessKind::Read, 128);
    EXPECT_TRUE(r2.hit);
}

TEST(Cache, ReadNoAllocBypasses)
{
    FakeMem dram;
    stats::StatGroup g("t");
    Cache c(smallCache(), &dram, &g);

    auto r1 = c.access(0, 0x3000, AccessKind::ReadNoAlloc, 128);
    EXPECT_FALSE(r1.hit);
    // Second streaming read of the same line misses again: nothing
    // was allocated.
    auto r2 = c.access(r1.complete, 0x3000, AccessKind::ReadNoAlloc,
                       128);
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(dram.reads, 2);
}

TEST(Cache, ReadNoAllocStillHits)
{
    FakeMem dram;
    stats::StatGroup g("t");
    Cache c(smallCache(), &dram, &g);

    c.access(0, 0x3000, AccessKind::Read, 128);       // allocate
    auto r = c.access(500, 0x3000, AccessKind::ReadNoAlloc, 128);
    EXPECT_TRUE(r.hit);
}

TEST(Cache, ProtectedRegionSurvivesStreaming)
{
    FakeMem dram;
    stats::StatGroup g("t");
    Cache c(smallCache(), &dram, &g);

    // Pin [0, 2KB); bring one pinned line in.
    c.setProtectedRegion(0, 2048);
    Tick t = c.access(0, 0x0, AccessKind::Read, 128).complete;

    // Stream a large number of unpinned lines over it.
    for (Addr a = 1 << 16; a < (1 << 16) + 200 * 128; a += 128)
        t = c.access(t, a, AccessKind::Read, 128).complete;

    auto r = c.access(t, 0x0, AccessKind::Read, 128);
    EXPECT_TRUE(r.hit) << "pinned line was evicted by streaming";
}

TEST(Cache, MshrLimitDelaysBursts)
{
    FakeMem dram;
    stats::StatGroup g("t");
    CacheParams p = smallCache();
    p.mshrs = 2;
    Cache c(p, &dram, &g);

    // Issue 6 distinct misses at tick 0: with 2 MSHRs and a 200
    // cycle downstream, later ones must wait for slots.
    Tick last = 0;
    for (Addr a = 0; a < 6; ++a) {
        auto r = c.access(0, a * 128, AccessKind::Read, 128);
        last = std::max(last, r.complete);
    }
    EXPECT_GT(last, 400u);
}

TEST(Dram, RowBufferLocality)
{
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    DramParams p = DramParams::lpddr4();
    Dram d(p, clk, &g);

    // Sequential stream: high row hit rate.
    Tick t = 0;
    for (Addr a = 0; a < 512 * 128; a += 128)
        t = d.access(t, a, AccessKind::Read, 128).complete;
    EXPECT_GT(d.rowHitRate(), 0.8);
}

TEST(Dram, RandomAccessMissesRows)
{
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    Dram d(DramParams::lpddr4(), clk, &g);

    Rng rng(3);
    Tick t = 0;
    for (int i = 0; i < 2000; ++i) {
        Addr a = (rng.next() % (1ULL << 30)) & ~Addr{127};
        t = d.access(t, a, AccessKind::Read, 128).complete;
    }
    EXPECT_LT(d.rowHitRate(), 0.3);
}

TEST(Dram, BandwidthCapHolds)
{
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    DramParams p = DramParams::lpddr4(); // 25.6 GB/s at 1 GHz
    Dram d(p, clk, &g);

    // Saturate with sequential reads issued every cycle.
    const int n = 20000;
    Tick last = 0;
    for (int i = 0; i < n; ++i) {
        auto r = d.access(static_cast<Tick>(i), Addr(i) * 128,
                          AccessKind::Read, 128);
        last = std::max(last, r.complete);
    }
    double bytes = static_cast<double>(n) * 128;
    double achieved = bytes / clk.toSeconds(last);
    EXPECT_LE(achieved, p.peakBytesPerSec * 1.02);
    EXPECT_GE(achieved, p.peakBytesPerSec * 0.5);
}

TEST(Dram, SectoredTransfersMoveFewerBytes)
{
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    Dram d(DramParams::gddr5(), clk, &g);
    d.access(0, 0, AccessKind::Read, 32);
    d.access(100, 4096, AccessKind::Read, 128);
    EXPECT_DOUBLE_EQ(d.bytesMoved(), 160.0);
}

TEST(MemSystem, InterconnectLatencyAdds)
{
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    MemSystemParams mp;
    mp.l2 = smallCache();
    mp.dram = DramParams::lpddr4();
    mp.icnLatency = 50;
    MemSystem ms(mp, clk, &g);

    auto miss = ms.access(0, 0x1000, AccessKind::Read, 128);
    auto hit = ms.access(miss.complete, 0x1000, AccessKind::Read,
                         128);
    EXPECT_TRUE(hit.hit);
    // Hit path: icn there (50) + hit latency (10) + icn back (50).
    EXPECT_GE(hit.complete - miss.complete, 110u);
}

TEST(MemSystem, BandwidthUtilizationMetric)
{
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    MemSystemParams mp;
    mp.l2 = smallCache();
    mp.dram = DramParams::lpddr4();
    MemSystem ms(mp, clk, &g);

    for (int i = 0; i < 100; ++i)
        ms.access(static_cast<Tick>(i), Addr(i) * 4096,
                  AccessKind::Read, 128);
    double util = ms.bandwidthUtilization(100000);
    EXPECT_GT(util, 0.0);
    EXPECT_LT(util, 1.0);
}
