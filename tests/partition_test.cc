/**
 * @file
 * Partitioner gate: ownership is a total function (every vertex inner
 * in exactly one fragment), edges are conserved across fragments, and
 * the assignment is a pure function of (graph, numDevices) — repeated
 * builds fingerprint identically, regardless of SCUSIM_JOBS.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <tuple>
#include <vector>

#include "graph/datasets.hh"
#include "graph/partition.hh"

using namespace scusim;
using namespace scusim::graph;

namespace
{

CsrGraph
testGraph()
{
    return makeDataset("cond", 0.05, 1);
}

/** Materialize a span accessor for gtest container comparison. */
template <typename T>
std::vector<T>
vec(std::span<const T> s)
{
    return {s.begin(), s.end()};
}

class PartitionGate : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PartitionGate, EveryVertexIsInnerInExactlyOneFragment)
{
    const CsrGraph g = testGraph();
    const unsigned numDev = GetParam();
    const GraphPartition part = GraphPartition::build(g, numDev);

    ASSERT_EQ(part.numFragments(), numDev);
    ASSERT_EQ(part.numNodes(), g.numNodes());

    std::vector<unsigned> innerCopies(g.numNodes(), 0);
    for (DeviceId d = 0; d < numDev; ++d) {
        const Fragment &f = part.fragment(d);
        EXPECT_EQ(f.device, d);
        EXPECT_EQ(f.numLocal(), f.toGlobal.size());
        EXPECT_EQ(f.csr.numNodes(), f.numLocal());
        for (NodeId l = 0; l < f.numInner; ++l) {
            const NodeId gl = f.globalOf(l);
            ASSERT_LT(gl, g.numNodes());
            ++innerCopies[gl];
            EXPECT_EQ(part.ownerOf(gl), d);
            EXPECT_EQ(part.localOf(gl), l);
        }
        // Ghosts are never owned here and never expand edges.
        for (NodeId l = f.numInner; l < f.numLocal(); ++l) {
            EXPECT_NE(part.ownerOf(f.globalOf(l)), d);
            EXPECT_EQ(f.csr.degree(l), 0u);
        }
    }
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(innerCopies[v], 1u) << "vertex " << v;
}

TEST_P(PartitionGate, EdgesAreConserved)
{
    const CsrGraph g = testGraph();
    const unsigned numDev = GetParam();
    const GraphPartition part = GraphPartition::build(g, numDev);

    using Edge = std::tuple<NodeId, NodeId, Weight>;
    std::vector<Edge> want, got;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const auto nbr = g.neighbors(u);
        const auto ws = g.edgeWeights(u);
        for (std::size_t i = 0; i < nbr.size(); ++i)
            want.emplace_back(u, nbr[i], ws[i]);
    }
    for (DeviceId d = 0; d < numDev; ++d) {
        const Fragment &f = part.fragment(d);
        for (NodeId l = 0; l < f.numLocal(); ++l) {
            const auto nbr = f.csr.neighbors(l);
            const auto ws = f.csr.edgeWeights(l);
            for (std::size_t i = 0; i < nbr.size(); ++i) {
                got.emplace_back(f.globalOf(l), f.globalOf(nbr[i]),
                                 ws[i]);
            }
        }
    }
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(want, got);
}

TEST_P(PartitionGate, FingerprintIsReproducible)
{
    const CsrGraph g = testGraph();
    const unsigned numDev = GetParam();

    const auto first = GraphPartition::build(g, numDev).fingerprint();
    const auto again = GraphPartition::build(g, numDev).fingerprint();
    EXPECT_EQ(first, again);

    // The build is single-threaded by construction: the executor's
    // worker count must not leak into the assignment.
    setenv("SCUSIM_JOBS", "7", 1);
    const auto jobs7 = GraphPartition::build(g, numDev).fingerprint();
    setenv("SCUSIM_JOBS", "1", 1);
    const auto jobs1 = GraphPartition::build(g, numDev).fingerprint();
    unsetenv("SCUSIM_JOBS");
    EXPECT_EQ(first, jobs7);
    EXPECT_EQ(first, jobs1);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, PartitionGate,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto &info) {
                             return "N" + std::to_string(info.param);
                         });

TEST(PartitionSingle, OneFragmentIsTheParentGraphVerbatim)
{
    const CsrGraph g = testGraph();
    const GraphPartition part = GraphPartition::build(g, 1);
    const Fragment &f = part.fragment(0);

    EXPECT_EQ(f.numInner, g.numNodes());
    EXPECT_EQ(f.numOuter, 0u);
    EXPECT_EQ(vec(f.csr.adjacencyOffsets()), vec(g.adjacencyOffsets()));
    EXPECT_EQ(vec(f.csr.edgeArray()), vec(g.edgeArray()));
    EXPECT_EQ(vec(f.csr.weightArray()), vec(g.weightArray()));
}

} // namespace
