/**
 * @file
 * Tests of the declarative plan layer: cartesian expansion and its
 * ordering, run-key identity (the dedup/memoization handle), shared
 * GPU-only baselines under ablation sweeps, scuOverride plumbing and
 * executor failure isolation (a poisoned config must not abort the
 * rest of the matrix).
 */

#include <gtest/gtest.h>

#include "graph/datasets.hh"
#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/system.hh"

using namespace scusim;
using namespace scusim::harness;

TEST(Plan, DefaultExpandsToSingleDefaultRun)
{
    auto runs = ExperimentPlan().expand();
    ASSERT_EQ(runs.size(), 1u);
    const RunConfig def;
    EXPECT_EQ(runs[0].key, runKey(def));
    EXPECT_EQ(runs[0].label, runLabel(def));
    EXPECT_EQ(runs[0].label, "BFS/GTX980/cond/gpu-only");
    EXPECT_EQ(runs[0].graph, nullptr);
}

TEST(Plan, CartesianExpansionOrderIsDeterministic)
{
    auto plan = ExperimentPlan()
                    .systems({"GTX980", "TX1"})
                    .primitives({Primitive::Bfs, Primitive::Sssp})
                    .datasets({"cond", "ca"})
                    .modes({ScuMode::GpuOnly, ScuMode::ScuEnhanced});
    auto runs = plan.expand();
    ASSERT_EQ(runs.size(), 2u * 2u * 2u * 2u);
    // Primitive-major, then system, dataset, mode.
    EXPECT_EQ(runs[0].label, "BFS/GTX980/cond/gpu-only");
    EXPECT_EQ(runs[1].label, "BFS/GTX980/cond/scu-enhanced");
    EXPECT_EQ(runs[2].label, "BFS/GTX980/ca/gpu-only");
    EXPECT_EQ(runs[4].label, "BFS/TX1/cond/gpu-only");
    EXPECT_EQ(runs[8].label, "SSSP/GTX980/cond/gpu-only");
    EXPECT_EQ(runs[15].label, "SSSP/TX1/ca/scu-enhanced");
    // Expansion is reproducible.
    auto again = plan.expand();
    ASSERT_EQ(again.size(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(again[i].key, runs[i].key);
}

TEST(Plan, ModesForPairsEachPrimitiveWithItsModes)
{
    auto runs =
        ExperimentPlan()
            .systems({"TX1"})
            .primitives({Primitive::Bfs, Primitive::Pr})
            .modesFor([](Primitive p) -> std::vector<ScuMode> {
                if (p == Primitive::Pr)
                    return {ScuMode::ScuBasic};
                return {ScuMode::GpuOnly, ScuMode::ScuEnhanced};
            })
            .expand();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].label, "BFS/TX1/cond/gpu-only");
    EXPECT_EQ(runs[1].label, "BFS/TX1/cond/scu-enhanced");
    EXPECT_EQ(runs[2].label, "PR/TX1/cond/scu-basic");
}

TEST(Plan, RunKeyIgnoresScuOverrideForGpuOnly)
{
    RunConfig cfg;
    cfg.mode = ScuMode::GpuOnly;
    auto plain = runKey(cfg);
    cfg.scuOverride = SystemConfig::tx1().scu;
    EXPECT_EQ(runKey(cfg), plain);

    cfg.mode = ScuMode::ScuEnhanced;
    auto with = runKey(cfg);
    cfg.scuOverride->pipelineWidth *= 2;
    EXPECT_NE(runKey(cfg), with);
}

TEST(Plan, RunKeySeparatesConfigsAndGraphs)
{
    RunConfig a;
    RunConfig b = a;
    EXPECT_EQ(runKey(a), runKey(b));
    b.scale = 0.26;
    EXPECT_NE(runKey(a), runKey(b));
    b = a;
    b.seed = 2;
    EXPECT_NE(runKey(a), runKey(b));
    b = a;
    b.alg.source = 7;
    EXPECT_NE(runKey(a), runKey(b));

    auto g = graph::makeDataset("cond", 0.01, 1);
    auto h = graph::makeDataset("cond", 0.01, 1);
    EXPECT_NE(runKey(a, &g), runKey(a));
    EXPECT_NE(runKey(a, &g), runKey(a, &h));
}

TEST(Plan, AblationSharesOneGpuOnlyBaseline)
{
    auto base = SystemConfig::tx1().scu;
    std::vector<std::pair<std::string, scu::ScuParams>> vars;
    for (unsigned w : {1u, 2u, 4u}) {
        auto p = base;
        p.pipelineWidth = w;
        vars.emplace_back(std::to_string(w), p);
    }
    auto runs = ExperimentPlan()
                    .systems({"TX1"})
                    .primitives({Primitive::Bfs})
                    .modes({ScuMode::GpuOnly, ScuMode::ScuEnhanced})
                    .ablate("width", vars)
                    .expand();
    // 1 shared baseline + 3 SCU variants, not 2 x 3.
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(runs[0].label, "BFS/TX1/cond/gpu-only");
    EXPECT_EQ(runs[1].label, "BFS/TX1/cond/scu-enhanced/width=1");
    EXPECT_EQ(runs[2].label, "BFS/TX1/cond/scu-enhanced/width=2");
    EXPECT_EQ(runs[3].label, "BFS/TX1/cond/scu-enhanced/width=4");
    // scuOverride reaches the expanded configs.
    ASSERT_TRUE(runs[3].cfg.scuOverride.has_value());
    EXPECT_EQ(runs[3].cfg.scuOverride->pipelineWidth, 4u);
    // The baseline carries an override too, but its key ignores it.
    RunConfig bare;
    bare.systemName = "TX1";
    bare.mode = ScuMode::GpuOnly;
    bare.primitive = Primitive::Bfs;
    EXPECT_EQ(runs[0].key, runKey(bare));
}

TEST(Plan, IdenticalAblationVariantsCollapse)
{
    auto preset = SystemConfig::tx1().scu;
    auto widened = preset;
    widened.pipelineWidth *= 2;
    auto runs =
        ExperimentPlan()
            .systems({"TX1"})
            .primitives({Primitive::Bfs})
            .modes({ScuMode::ScuEnhanced})
            .ablate("width", {{"a", preset},
                              {"b", preset}, // same params, same key
                              {"c", widened}})
            .expand();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].label, "BFS/TX1/cond/scu-enhanced/width=a");
    EXPECT_EQ(runs[1].label, "BFS/TX1/cond/scu-enhanced/width=c");
}

TEST(Plan, AddAppendsExtrasAndDedupsAgainstMatrix)
{
    RunConfig dup; // identical to the declared matrix cell
    RunConfig fresh;
    fresh.alg.source = 42;
    auto runs = ExperimentPlan()
                    .modes({ScuMode::GpuOnly})
                    .add(dup)
                    .add(fresh, "from-42")
                    .expand();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].label, "BFS/GTX980/cond/gpu-only");
    EXPECT_EQ(runs[1].label, "from-42");
    EXPECT_EQ(runs[1].cfg.alg.source, 42u);
}

TEST(Plan, ExtrasOnlyPlanSkipsTheImplicitMatrix)
{
    RunConfig cfg;
    cfg.alg.source = 9;
    auto runs = ExperimentPlan().add(cfg, "only-me").expand();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].label, "only-me");
    // graph()/scale()/seed() are cell parameters, not axes: they do
    // not resurrect the default matrix either.
    auto g = graph::makeDataset("cond", 0.01, 1);
    RunConfig on;
    auto runs2 =
        ExperimentPlan().graph(&g, "mine").add(on, "on-g").expand();
    ASSERT_EQ(runs2.size(), 1u);
    EXPECT_EQ(runs2[0].label, "on-g");
    EXPECT_EQ(runs2[0].graph, &g);
}

TEST(Plan, GraphAxisAttachesCallerGraph)
{
    auto g = graph::makeDataset("cond", 0.01, 1);
    auto runs = ExperimentPlan()
                    .graph(&g, "mine")
                    .systems({"TX1"})
                    .expand();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].graph, &g);
    EXPECT_EQ(runs[0].cfg.dataset, "mine");
    EXPECT_NE(runs[0].key.find("graph="), std::string::npos);
}

TEST(Plan, PoisonedConfigDoesNotAbortTheMatrix)
{
    RunConfig badSystem;
    badSystem.systemName = "Vega";
    badSystem.dataset = "cond";
    badSystem.scale = 0.01;
    RunConfig badDataset;
    badDataset.systemName = "TX1";
    badDataset.dataset = "no-such-dataset";
    badDataset.scale = 0.01;
    auto res = runPlan(ExperimentPlan()
                           .systems({"TX1"})
                           .primitives({Primitive::Bfs})
                           .datasets({"cond"})
                           .modes({ScuMode::ScuEnhanced})
                           .scale(0.01)
                           .add(badSystem, "bad-system")
                           .add(badDataset, "bad-dataset"),
                       {.jobs = 2, .memoize = false});
    ASSERT_EQ(res.size(), 3u);
    EXPECT_EQ(res.failures(), 2u);
    const auto &good = res.records()[0];
    EXPECT_TRUE(good.ok);
    EXPECT_TRUE(good.result.validated);
    const auto &sys = res.records()[1];
    EXPECT_FALSE(sys.ok);
    EXPECT_NE(sys.error.find("Vega"), std::string::npos);
    const auto &ds = res.records()[2];
    EXPECT_FALSE(ds.ok);
    EXPECT_NE(ds.error.find("no-such-dataset"), std::string::npos);
    // The healthy cell is still reachable through the accessors.
    EXPECT_TRUE(res.get("TX1", Primitive::Bfs, "cond",
                        ScuMode::ScuEnhanced)
                    .validated);
}
