/**
 * @file
 * Randomized property tests: every SCU operation is compared against
 * a trivially-correct oracle over many random inputs and parameter
 * combinations; cache and DRAM invariants are checked under random
 * access streams; generator properties hold across scales and seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/rng.hh"
#include "graph/datasets.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "mem/mem_system.hh"
#include "scu/scu.hh"
#include "sim/clock.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

using namespace scusim;
using namespace scusim::scu;

namespace
{

/** Everything an SCU property test needs, rebuilt per test. */
struct Rig
{
    Rig() : clk(1e9), root("t"), as(1ULL << 32)
    {
        mem::MemSystemParams mp;
        mp.dram = mem::DramParams::lpddr4();
        memsys = std::make_unique<mem::MemSystem>(mp, clk, &root);
        scu = std::make_unique<Scu>(ScuParams::forTx1(), *memsys,
                                    sim, as, &root);
    }

    sim::ClockDomain clk;
    stats::StatGroup root;
    sim::Simulation sim;
    mem::AddressSpace as;
    std::unique_ptr<mem::MemSystem> memsys;
    std::unique_ptr<Scu> scu;
};

std::vector<std::uint32_t>
randomVec(Rng &rng, std::size_t n, std::uint32_t bound)
{
    std::vector<std::uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<std::uint32_t>(rng.below(bound));
    return v;
}

std::vector<std::uint8_t>
randomMask(Rng &rng, std::size_t n, double p)
{
    std::vector<std::uint8_t> m(n);
    for (auto &x : m)
        x = rng.chance(p) ? 1 : 0;
    return m;
}

} // namespace

class ScuOpProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ScuOpProperty, DataCompactionMatchesOracle)
{
    Rng rng(GetParam());
    Rig r;
    const std::size_t n = 200 + rng.below(800);
    auto vals = randomVec(rng, n, 1 << 20);
    auto mask = randomMask(rng, n, 0.4);

    Scu::Elems in(r.as, "in", n);
    Scu::Flags m(r.as, "m", n);
    Scu::Elems out(r.as, "out", n);
    for (std::size_t i = 0; i < n; ++i) {
        in[i] = vals[i];
        m[i] = mask[i];
    }

    std::size_t got_n = 0;
    r.scu->dataCompaction(in, n, &m, out, got_n);

    std::vector<std::uint32_t> want;
    for (std::size_t i = 0; i < n; ++i) {
        if (mask[i])
            want.push_back(vals[i]);
    }
    ASSERT_EQ(got_n, want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(out[i], want[i]);
}

TEST_P(ScuOpProperty, AccessExpansionMatchesOracle)
{
    Rng rng(GetParam() * 3 + 1);
    Rig r;
    const std::size_t data_n = 500 + rng.below(500);
    const std::size_t runs = 50 + rng.below(100);
    auto data = randomVec(rng, data_n, 1 << 30);

    std::vector<std::uint32_t> idx(runs), cnt(runs);
    std::size_t total = 0;
    for (std::size_t i = 0; i < runs; ++i) {
        cnt[i] = static_cast<std::uint32_t>(rng.below(9));
        idx[i] = static_cast<std::uint32_t>(
            rng.below(data_n - cnt[i] + 1));
        total += cnt[i];
    }

    Scu::Elems d(r.as, "d", data_n), ix(r.as, "ix", runs),
        c(r.as, "c", runs), out(r.as, "out", total + 1);
    for (std::size_t i = 0; i < data_n; ++i)
        d[i] = data[i];
    for (std::size_t i = 0; i < runs; ++i) {
        ix[i] = idx[i];
        c[i] = cnt[i];
    }

    std::size_t got_n = 0;
    r.scu->accessExpansionCompaction(d, ix, c, runs, nullptr, out,
                                     got_n);

    std::vector<std::uint32_t> want;
    for (std::size_t i = 0; i < runs; ++i) {
        for (std::uint32_t j = 0; j < cnt[i]; ++j)
            want.push_back(data[idx[i] + j]);
    }
    ASSERT_EQ(got_n, want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(out[i], want[i]);
}

TEST_P(ScuOpProperty, FilterNeverDropsFirstSighting)
{
    Rng rng(GetParam() * 7 + 5);
    Rig r;
    const std::size_t n = 2000;
    auto vals = randomVec(rng, n, 400); // heavy duplication

    Scu::Elems in(r.as, "in", n), out(r.as, "out", n);
    for (std::size_t i = 0; i < n; ++i)
        in[i] = vals[i];

    r.scu->uniqueFilter().reset();
    std::vector<std::uint8_t> keep;
    OpOptions o1;
    o1.writeOutput = false;
    o1.filterMode = FilterMode::Unique;
    o1.keepOut = &keep;
    std::size_t ig = 0;
    r.scu->dataCompaction(in, n, nullptr, out, ig, o1);

    // Soundness: the set of kept values covers every distinct value
    // (first occurrences pass; only duplicates may be kept extra).
    std::set<std::uint32_t> kept, all(vals.begin(), vals.end());
    std::map<std::uint32_t, std::size_t> first;
    for (std::size_t i = 0; i < n; ++i) {
        if (!first.count(vals[i]))
            first[vals[i]] = i;
        if (keep[i])
            kept.insert(vals[i]);
    }
    EXPECT_EQ(kept, all);
    for (auto [v, i] : first)
        EXPECT_TRUE(keep[i]) << "first sighting of " << v
                             << " dropped";
}

TEST_P(ScuOpProperty, TwoStepEqualsDirectFilteredCompaction)
{
    Rng rng(GetParam() * 11 + 3);
    Rig r;
    const std::size_t n = 1000;
    auto vals = randomVec(rng, n, 300);

    Scu::Elems in(r.as, "in", n), out(r.as, "out", n);
    for (std::size_t i = 0; i < n; ++i)
        in[i] = vals[i];

    r.scu->uniqueFilter().reset();
    std::vector<std::uint8_t> keep;
    OpOptions o1;
    o1.writeOutput = false;
    o1.filterMode = FilterMode::Unique;
    o1.keepOut = &keep;
    std::size_t ig = 0;
    r.scu->dataCompaction(in, n, nullptr, out, ig, o1);

    OpOptions o2;
    o2.keep = &keep;
    std::size_t got_n = 0;
    r.scu->dataCompaction(in, n, nullptr, out, got_n, o2);

    // Oracle: apply the keep flags directly.
    std::vector<std::uint32_t> want;
    for (std::size_t i = 0; i < n; ++i) {
        if (keep[i])
            want.push_back(vals[i]);
    }
    ASSERT_EQ(got_n, want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(out[i], want[i]);
}

TEST_P(ScuOpProperty, GroupedOutputIsPermutationOfKept)
{
    Rng rng(GetParam() * 13 + 7);
    Rig r;
    const std::size_t n = 1500;
    auto vals = randomVec(rng, n, 5000);
    auto mask = randomMask(rng, n, 0.6);

    Scu::Elems in(r.as, "in", n), out(r.as, "out", n);
    Scu::Flags m(r.as, "m", n);
    for (std::size_t i = 0; i < n; ++i) {
        in[i] = vals[i];
        m[i] = mask[i];
    }

    r.scu->groupingTable().reset();
    std::vector<std::uint32_t> order;
    OpOptions g1;
    g1.writeOutput = false;
    g1.makeGroups = true;
    g1.orderOut = &order;
    std::size_t ig = 0;
    r.scu->dataCompaction(in, n, &m, out, ig, g1);

    OpOptions s2;
    s2.order = &order;
    std::size_t got_n = 0;
    r.scu->dataCompaction(in, n, &m, out, got_n, s2);

    std::multiset<std::uint32_t> want, got;
    for (std::size_t i = 0; i < n; ++i) {
        if (mask[i])
            want.insert(vals[i]);
    }
    for (std::size_t i = 0; i < got_n; ++i)
        got.insert(out[i]);
    EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScuOpProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           34));

// ----------------------------------------------------------------
// Memory-system invariants under random streams.
// ----------------------------------------------------------------

class CacheProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheProperty, CompletionNeverBeforeIssue)
{
    auto [ways, banks] = GetParam();
    struct Backing : mem::MemLevel
    {
        mem::MemResult
        access(Tick issue, Addr, mem::AccessKind,
               unsigned) override
        {
            return {issue + 150, false};
        }
    } backing;

    mem::CacheParams p;
    p.sizeBytes = 16 << 10;
    p.ways = ways;
    p.banks = banks;
    p.hitLatency = 12;
    p.mshrs = 16;
    stats::StatGroup g("t");
    mem::Cache c(p, &backing, &g);

    Rng rng(99);
    Tick monotonic_issue = 0;
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.below(1 << 22) & ~Addr{127};
        auto kind = rng.chance(0.3) ? mem::AccessKind::Write
                                    : mem::AccessKind::Read;
        auto r = c.access(monotonic_issue, a, kind, 128);
        ASSERT_GT(r.complete, monotonic_issue);
        if (rng.chance(0.5))
            ++monotonic_issue;
    }
    EXPECT_GT(c.numHits() + c.numMisses(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Combine(::testing::Values(1u, 4u, 16u),
                       ::testing::Values(1u, 4u, 16u)));

class DramProperty : public ::testing::TestWithParam<bool>
{
};

TEST_P(DramProperty, CompletionMonotonicPerStream)
{
    const bool sequential = GetParam();
    sim::ClockDomain clk(1e9);
    stats::StatGroup g("t");
    mem::Dram d(mem::DramParams::gddr5(), clk, &g);

    Rng rng(5);
    Tick issue = 0;
    for (int i = 0; i < 4000; ++i) {
        Addr a = sequential
                     ? Addr(i) * 128
                     : (rng.below(1 << 26) & ~Addr{127});
        auto r = d.access(issue, a, mem::AccessKind::Read, 128);
        ASSERT_GT(r.complete, issue);
        issue += 1 + rng.below(3);
    }
    if (sequential) {
        EXPECT_GT(d.rowHitRate(), 0.8);
    }
}

INSTANTIATE_TEST_SUITE_P(Streams, DramProperty,
                         ::testing::Bool());

// ----------------------------------------------------------------
// Generator properties across scales.
// ----------------------------------------------------------------

class GeneratorScaleProperty
    : public ::testing::TestWithParam<
          std::tuple<const char *, double>>
{
};

TEST_P(GeneratorScaleProperty, DegreePreservedUnderScaling)
{
    auto [name, scale] = GetParam();
    auto g = graph::makeDataset(name, scale, 1);
    g.validate();
    const auto &spec = graph::datasetSpec(name);
    double want_deg = 2.0 * static_cast<double>(spec.edges) /
                      static_cast<double>(spec.nodes);
    // Average degree is scale-invariant within a generous band
    // (generators trim/pad and round node counts).
    EXPECT_NEAR(g.averageDegree(), want_deg, want_deg * 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    ScaleSweep, GeneratorScaleProperty,
    ::testing::Combine(::testing::Values("ca", "cond", "kron"),
                       ::testing::Values(0.01, 0.03, 0.06)));
