/**
 * @file
 * Tests of the persistent cross-process run cache: a plan re-run
 * against a warm SCUSIM_CACHE_DIR must be served entirely from disk
 * with byte-identical artifacts, records from an incompatible schema
 * version must be rejected, and truncated or corrupted cache files
 * must read as misses (the run simply re-simulates), never as wrong
 * results or crashes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/results.hh"
#include "harness/run_cache.hh"

using namespace scusim;
using namespace scusim::harness;

namespace
{

/** Fresh cache directory + SCUSIM_CACHE_DIR for one test body. */
class CacheDirGuard
{
  public:
    explicit CacheDirGuard(const char *name)
        : dir(::testing::TempDir() + "scusim_cache_" + name)
    {
        std::filesystem::remove_all(dir);
        ::setenv("SCUSIM_CACHE_DIR", dir.c_str(), 1);
        clearRunMemo();
    }

    ~CacheDirGuard()
    {
        ::unsetenv("SCUSIM_CACHE_DIR");
        std::filesystem::remove_all(dir);
        clearRunMemo();
    }

    const std::string dir;
};

ExperimentPlan
tinyMatrix()
{
    return ExperimentPlan()
        .systems({"TX1"})
        .primitives({Primitive::Bfs, Primitive::Sssp})
        .datasets({"cond"})
        .modes({ScuMode::GpuOnly, ScuMode::ScuEnhanced})
        .scale(0.01);
}

std::string
jsonOf(const PlanResults &res)
{
    std::ostringstream os;
    writeRunsJson(os, res);
    return os.str();
}

std::string
csvOf(const PlanResults &res)
{
    std::ostringstream os;
    writeRunsCsv(os, res);
    return os.str();
}

/** A representative record with every outcome field populated. */
RunRecord
sampleRecord()
{
    RunRecord rec;
    rec.run.key = "BFS|TX1|cond|0.01|1|scu";
    rec.ok = true;
    rec.attempts = 2;
    rec.result.totalCycles = 123456789;
    rec.result.seconds = 0.1234567890123456789;
    rec.result.energy.gpuDynamicJ = 1.5e-3;
    rec.result.energy.memStaticJ = 2.25e-4;
    rec.result.gpuCompactionCycles = 42;
    rec.result.gpuProcessingCycles = 4242;
    rec.result.scuBusyCycles = 17;
    rec.result.gpuThreadInstrs = 1e9 + 1;
    rec.result.coalescingEfficiency = 0.25;
    rec.result.txnsPerMemInstr = 3.875;
    rec.result.bwUtilization = 0.9999999999999999;
    rec.result.l2HitRate = 1.0 / 3.0;
    rec.result.dramLines = 7777;
    rec.result.algMetrics.iterations = 9;
    rec.result.algMetrics.gpuEdgeWork = 1002003;
    rec.result.algMetrics.rawExpanded = 2004006;
    rec.result.algMetrics.scuFiltered = 1002003;
    rec.result.validated = true;
    return rec;
}

} // namespace

TEST(RunCacheCodec, EncodeDecodeRoundTripsEveryField)
{
    const RunRecord rec = sampleRecord();
    RunRecord back;
    back.run.key = rec.run.key;
    ASSERT_TRUE(decodeRunRecord(encodeRunRecord(rec), rec.run.key,
                                back));
    EXPECT_EQ(back.ok, rec.ok);
    EXPECT_EQ(back.attempts, rec.attempts);
    EXPECT_EQ(back.failure, rec.failure);
    EXPECT_EQ(back.error, rec.error);
    EXPECT_EQ(back.result.totalCycles, rec.result.totalCycles);
    // Bit-exact doubles, including ones with no short decimal form.
    EXPECT_EQ(back.result.seconds, rec.result.seconds);
    EXPECT_EQ(back.result.bwUtilization, rec.result.bwUtilization);
    EXPECT_EQ(back.result.l2HitRate, rec.result.l2HitRate);
    EXPECT_EQ(back.result.energy.gpuDynamicJ,
              rec.result.energy.gpuDynamicJ);
    EXPECT_EQ(back.result.algMetrics.scuFiltered,
              rec.result.algMetrics.scuFiltered);
    EXPECT_EQ(back.result.validated, rec.result.validated);
}

TEST(RunCacheCodec, FailedRecordRoundTripsDiagnostics)
{
    RunRecord rec = sampleRecord();
    rec.ok = false;
    rec.failure = FailureKind::Deadlock;
    rec.error = "no component progress for 1000 ticks";
    rec.diagnostics = "tick 42\nsm0: busy=yes wake=never\n";
    RunRecord back;
    ASSERT_TRUE(decodeRunRecord(encodeRunRecord(rec), rec.run.key,
                                back));
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.failure, FailureKind::Deadlock);
    EXPECT_EQ(back.error, rec.error);
    EXPECT_EQ(back.diagnostics, rec.diagnostics);
}

TEST(RunCacheCodec, RejectsKeyMismatchAndGarbage)
{
    const RunRecord rec = sampleRecord();
    const std::string text = encodeRunRecord(rec);
    RunRecord back;
    // The stored key guards against file-name hash collisions.
    EXPECT_FALSE(decodeRunRecord(text, "some|other|run", back));
    EXPECT_FALSE(decodeRunRecord("", rec.run.key, back));
    EXPECT_FALSE(decodeRunRecord("not a cache file", rec.run.key,
                                 back));
    // Any truncation point must fail cleanly, not misparse.
    for (std::size_t n : {std::size_t{10}, text.size() / 2,
                          text.size() - 2})
        EXPECT_FALSE(
            decodeRunRecord(text.substr(0, n), rec.run.key, back))
            << "truncated at " << n;
}

TEST(RunCacheCodec, RejectsSchemaVersionMismatch)
{
    const RunRecord rec = sampleRecord();
    std::string text = encodeRunRecord(rec);
    const std::string want =
        "scusim-run-cache " + std::to_string(runCacheSchemaVersion);
    ASSERT_EQ(text.compare(0, want.size(), want), 0);
    text.replace(0, want.size(),
                 "scusim-run-cache " +
                     std::to_string(runCacheSchemaVersion + 1));
    RunRecord back;
    EXPECT_FALSE(decodeRunRecord(text, rec.run.key, back));
}

TEST(RunCache, StorabilityPolicy)
{
    RunRecord rec = sampleRecord();
    EXPECT_TRUE(runCacheStorable(rec));
    // Timeouts are transient: caching one would make it permanent.
    rec.failure = FailureKind::Timeout;
    EXPECT_FALSE(runCacheStorable(rec));
    rec.failure.reset();
    // Graph-backed keys embed a raw pointer — useless across
    // processes.
    graph::CsrGraph g;
    rec.run.graph = &g;
    EXPECT_FALSE(runCacheStorable(rec));
    // ...unless the run is keyed by a durable content fingerprint
    // (a store-backed graph): then the key means the same thing in
    // every process and the record may be persisted.
    rec.run.graphFp = "00000000cafef00d";
    EXPECT_TRUE(runCacheStorable(rec));
}

TEST(RunCache, FingerprintKeyedGraphRunsRoundTripThroughDisk)
{
    CacheDirGuard cache("fpkeyed");
    graph::CsrGraph g; // identity comes from the fp, not the graph
    RunRecord rec = sampleRecord();
    rec.run.graph = &g;
    rec.run.graphFp = "0123456789abcdef";
    rec.run.key = runKey(rec.run.cfg, &g, rec.run.graphFp);
    ASSERT_NE(rec.run.key.find("|fp=0123456789abcdef"),
              std::string::npos);

    ASSERT_TRUE(storeCachedRun(cache.dir, rec));
    RunRecord back;
    back.run = rec.run;
    EXPECT_TRUE(loadCachedRun(cache.dir, rec.run.key, back));
    EXPECT_EQ(encodeRunRecord(back), encodeRunRecord(rec));
}

TEST(RunCache, SecondExecutionIsServedFromDiskByteIdentically)
{
    CacheDirGuard cache("roundtrip");
    const auto plan = tinyMatrix();

    auto cold = runPlan(plan, {.jobs = 2});
    ASSERT_EQ(cold.failures(), 0u);
    for (const auto &r : cold.records())
        EXPECT_FALSE(r.fromDiskCache) << r.run.label;

    // Forget the in-process memo: the only way the second execution
    // can avoid simulating is the on-disk cache.
    clearRunMemo();
    auto warm = runPlan(plan, {.jobs = 2});
    ASSERT_EQ(warm.failures(), 0u);
    ASSERT_EQ(warm.size(), cold.size());
    for (const auto &r : warm.records())
        EXPECT_TRUE(r.fromDiskCache)
            << r.run.label << " was re-simulated";

    // The artifacts the benches write must not change by a byte.
    EXPECT_EQ(jsonOf(cold), jsonOf(warm));
    EXPECT_EQ(csvOf(cold), csvOf(warm));
}

TEST(RunCache, DisabledWithoutEnvOrWithMemoizeOff)
{
    {
        CacheDirGuard cache("gating");
        // memoize=false implies no disk cache either: the test knobs
        // that force fresh executions stay trustworthy.
        auto r1 = runPlan(tinyMatrix(), {.memoize = false});
        ASSERT_EQ(r1.failures(), 0u);
        EXPECT_FALSE(std::filesystem::exists(cache.dir))
            << "memoize=false still wrote cache files";
        // diskCache=false leaves the directory untouched too.
        clearRunMemo();
        auto r2 = runPlan(tinyMatrix(), {.diskCache = false});
        ASSERT_EQ(r2.failures(), 0u);
        EXPECT_FALSE(std::filesystem::exists(cache.dir))
            << "diskCache=false still wrote cache files";
    }
    EXPECT_EQ(runCacheDir(), "");
}

TEST(RunCache, CorruptAndTruncatedFilesAreMissesNotErrors)
{
    CacheDirGuard cache("corrupt");
    const auto plan = tinyMatrix();
    auto cold = runPlan(plan, {});
    ASSERT_EQ(cold.failures(), 0u);

    // Mangle every stored record: truncate one, scribble over the
    // rest.
    std::size_t n = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(cache.dir)) {
        if (n++ % 2 == 0) {
            std::filesystem::resize_file(
                e.path(), std::filesystem::file_size(e.path()) / 2);
        } else {
            std::ofstream f(e.path(), std::ios::trunc);
            f << "garbage\n";
        }
    }
    ASSERT_GT(n, 0u);

    const std::uint64_t quarantinedBefore =
        runCacheQuarantinedCount();
    clearRunMemo();
    auto warm = runPlan(plan, {});
    ASSERT_EQ(warm.failures(), 0u) << "corrupt cache broke the run";
    for (const auto &r : warm.records())
        EXPECT_FALSE(r.fromDiskCache)
            << r.run.label << " served from a corrupt file";
    EXPECT_EQ(jsonOf(cold), jsonOf(warm));

    // Every damaged file was quarantined aside (counted, renamed to
    // "<name>.corrupt"), so a damaged record costs one failed parse
    // ever — and re-simulation wrote fresh records next to them.
    EXPECT_EQ(runCacheQuarantinedCount() - quarantinedBefore, n);
    std::size_t corrupt = 0, fresh = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(cache.dir)) {
        if (e.path().extension() == ".corrupt")
            ++corrupt;
        else if (e.path().extension() == ".run")
            ++fresh;
    }
    EXPECT_EQ(corrupt, n);
    EXPECT_EQ(fresh, n);

    // The quarantined copies are inert: a third execution is served
    // from the fresh records, byte-identically.
    clearRunMemo();
    auto rewarm = runPlan(plan, {});
    ASSERT_EQ(rewarm.failures(), 0u);
    for (const auto &r : rewarm.records())
        EXPECT_TRUE(r.fromDiskCache) << r.run.label;
    EXPECT_EQ(jsonOf(cold), jsonOf(rewarm));
}

TEST(RunCache, KeyMismatchIsAMissNotCorruption)
{
    CacheDirGuard cache("collision");
    // A well-formed record stored under a *different* key's file
    // name models a hash collision: it must read as a plain miss —
    // no quarantine, the resident file left alone.
    const RunRecord rec = sampleRecord();
    std::filesystem::create_directories(cache.dir);
    const std::string victim =
        runCachePath(cache.dir, "some|other|key");
    {
        std::ofstream f(victim, std::ios::binary);
        f << encodeRunRecord(rec);
    }
    const std::uint64_t before = runCacheQuarantinedCount();
    RunRecord out;
    EXPECT_FALSE(loadCachedRun(cache.dir, "some|other|key", out));
    EXPECT_EQ(runCacheQuarantinedCount(), before);
    EXPECT_TRUE(std::filesystem::exists(victim))
        << "hash-collision miss quarantined a healthy file";
}

TEST(RunCache, DirGettersAndPathShape)
{
    ::unsetenv("SCUSIM_CACHE_DIR");
    EXPECT_EQ(runCacheDir(), "");
    ::setenv("SCUSIM_CACHE_DIR", "/some/dir", 1);
    EXPECT_EQ(runCacheDir(), "/some/dir");
    ::unsetenv("SCUSIM_CACHE_DIR");
    const std::string p = runCachePath("/d", "BFS|TX1|cond");
    EXPECT_EQ(p.substr(0, 3), "/d/");
    EXPECT_EQ(p.substr(p.size() - 4), ".run");
    // Different keys land in different files.
    EXPECT_NE(p, runCachePath("/d", "BFS|TX1|ca"));
}
