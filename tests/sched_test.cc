/**
 * @file
 * Scheduler-equivalence gate: the event-driven scheduler must retrace
 * exactly the trajectory of the reference polling loop. Full stats
 * dumps — every counter of every component — are compared byte for
 * byte across both modes for every primitive on both systems, plus
 * unit tests of the mode plumbing (env default, process override,
 * per-instance setScheduler) and of notifyWake re-arming.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "sim/simulation.hh"

using namespace scusim;
using namespace scusim::harness;
using sim::SchedulerMode;
using sim::Simulation;

namespace
{

/** Force every Simulation built during @p f into @p mode. */
class SchedulerOverrideGuard
{
  public:
    explicit SchedulerOverrideGuard(SchedulerMode m)
    {
        Simulation::overrideDefaultScheduler(m);
    }
    ~SchedulerOverrideGuard()
    {
        Simulation::clearDefaultSchedulerOverride();
    }
};

std::string
statsDumpFor(const RunConfig &base, SchedulerMode mode)
{
    SchedulerOverrideGuard guard(mode);
    RunConfig cfg = base;
    std::ostringstream os;
    cfg.dumpStatsTo = &os;
    RunResult r = runPrimitive(cfg);
    EXPECT_TRUE(r.validated)
        << to_string(cfg.primitive) << " on " << cfg.systemName
        << " failed functional validation";
    EXPECT_FALSE(os.str().empty());
    return os.str();
}

class SchedulerEquivalence
    : public ::testing::TestWithParam<
          std::tuple<Primitive, const char *>>
{
};

TEST_P(SchedulerEquivalence, EventAndPollingDumpIdenticalStats)
{
    const auto [prim, system] = GetParam();

    RunConfig cfg;
    cfg.systemName = system;
    cfg.primitive = prim;
    cfg.mode = ScuMode::ScuEnhanced;
    cfg.dataset = "cond";
    cfg.scale = 0.01;

    const std::string event =
        statsDumpFor(cfg, SchedulerMode::EventDriven);
    const std::string polling =
        statsDumpFor(cfg, SchedulerMode::Polling);
    ASSERT_EQ(event.size(), polling.size());
    EXPECT_EQ(event, polling)
        << "event-driven scheduling changed the simulation";
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitivesBothSystems, SchedulerEquivalence,
    ::testing::Combine(::testing::Values(Primitive::Bfs,
                                         Primitive::Sssp,
                                         Primitive::Pr),
                       ::testing::Values("GTX980", "TX1")),
    [](const auto &info) {
        return to_string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

TEST(SchedulerMode_, DefaultResolutionOrder)
{
    ::unsetenv("SCUSIM_SCHEDULER");
    EXPECT_EQ(Simulation::defaultScheduler(),
              SchedulerMode::EventDriven);
    ::setenv("SCUSIM_SCHEDULER", "polling", 1);
    EXPECT_EQ(Simulation::defaultScheduler(),
              SchedulerMode::Polling);
    ::setenv("SCUSIM_SCHEDULER", "event", 1);
    EXPECT_EQ(Simulation::defaultScheduler(),
              SchedulerMode::EventDriven);
    // The process-wide override out-ranks the environment.
    ::setenv("SCUSIM_SCHEDULER", "event", 1);
    Simulation::overrideDefaultScheduler(SchedulerMode::Polling);
    EXPECT_EQ(Simulation::defaultScheduler(),
              SchedulerMode::Polling);
    Simulation::clearDefaultSchedulerOverride();
    ::unsetenv("SCUSIM_SCHEDULER");

    Simulation simDefault;
    EXPECT_EQ(simDefault.scheduler(), SchedulerMode::EventDriven);
    simDefault.setScheduler(SchedulerMode::Polling);
    EXPECT_EQ(simDefault.scheduler(), SchedulerMode::Polling);
}

namespace unit
{

/** Wakes at a fixed tick, runs for a fixed number of ticks. */
class Sleeper : public sim::Clocked
{
  public:
    Sleeper(Tick wake, Tick ticks) : wakeAt(wake), left(ticks) {}

    void
    tick(Tick) override
    {
        if (left) {
            --left;
            noteProgress();
        }
    }

    bool busy(Tick now) const override
    {
        return left && now >= wakeAt;
    }

    Tick
    nextWakeTick() const override
    {
        return left ? wakeAt : tickNever;
    }

    Tick wakeAt;
    Tick left;
};

} // namespace unit

TEST(SchedulerMode_, EventModeFastForwardsAndServicesAllWork)
{
    Simulation s;
    s.setScheduler(SchedulerMode::EventDriven);
    unit::Sleeper a(1000000, 3), b(500, 2);
    s.addClocked(&a, "a");
    s.addClocked(&b, "b");
    s.run();
    EXPECT_EQ(a.left, 0u);
    EXPECT_EQ(b.left, 0u);
    // Wake at 1000000, three busy ticks, done after the third.
    EXPECT_EQ(s.now(), 1000003u);
}

TEST(SchedulerMode_, NotifyWakeReArmsMidRunWork)
{
    // New work handed to an idle component between step() calls is
    // picked up because run()/step() re-derive every wake on entry —
    // and notifyWake makes the re-arm immediate for code that adds
    // work outside tick(), the way Sm::beginKernel does.
    Simulation s;
    s.setScheduler(SchedulerMode::EventDriven);
    unit::Sleeper a(0, 1);
    s.addClocked(&a, "a");
    s.run();
    EXPECT_EQ(s.now(), 1u);

    a.wakeAt = s.now() + 100;
    a.left = 2;
    a.notifyWake();
    s.run();
    EXPECT_EQ(a.left, 0u);
    EXPECT_EQ(s.now(), 103u);
}

} // namespace
