/**
 * @file
 * Unit tests for the Stream Compaction Unit: the golden semantics of
 * the five operations of Figure 6, the filtering and grouping hash
 * tables of Section 4, the two-step enhanced flow and the timing
 * model's throughput behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.hh"

#include "mem/address_space.hh"
#include "mem/mem_system.hh"
#include "scu/hash_table.hh"
#include "scu/scu.hh"
#include "sim/clock.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

using namespace scusim;
using namespace scusim::scu;

namespace
{

struct Rig
{
    Rig()
        : clk(1e9), root("t"), as(1ULL << 32)
    {
        mem::MemSystemParams mp;
        mp.dram = mem::DramParams::lpddr4();
        mp.l2.sizeBytes = 256 << 10;
        mem = std::make_unique<mem::MemSystem>(mp, clk, &root);
        ScuParams sp = ScuParams::forTx1();
        scu = std::make_unique<Scu>(sp, *mem, sim, as, &root);
    }

    Scu::Elems
    elems(const std::string &name,
          const std::vector<std::uint32_t> &vals,
          std::size_t extra = 0)
    {
        Scu::Elems e(as, name, vals.size() + extra);
        for (std::size_t i = 0; i < vals.size(); ++i)
            e[i] = vals[i];
        return e;
    }

    Scu::Flags
    flags(const std::string &name,
          const std::vector<std::uint8_t> &vals)
    {
        Scu::Flags f(as, name, vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i)
            f[i] = vals[i];
        return f;
    }

    sim::ClockDomain clk;
    stats::StatGroup root;
    sim::Simulation sim;
    mem::AddressSpace as;
    std::unique_ptr<mem::MemSystem> mem;
    std::unique_ptr<Scu> scu;
};

std::vector<std::uint32_t>
collect(const Scu::Elems &out, std::size_t n)
{
    std::vector<std::uint32_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = out[i];
    return v;
}

} // namespace

// ----------------------------------------------------------------
// Figure 6 golden semantics.
// ----------------------------------------------------------------

TEST(ScuOps, BitmaskConstructor)
{
    Rig r;
    auto in = r.elems("in", {5, 2, 9, 7, 2});
    Scu::Flags out(r.as, "mask", 5);
    auto st = r.scu->bitmaskConstructor(in, 5, CompareOp::Gt, 4, out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 0);
    EXPECT_EQ(out[2], 1);
    EXPECT_EQ(out[3], 1);
    EXPECT_EQ(out[4], 0);
    EXPECT_EQ(st.elemsIn, 5u);
    EXPECT_EQ(st.elemsOut, 5u);
    EXPECT_GT(st.cycles(), 0u);
}

TEST(ScuOps, BitmaskComparators)
{
    Rig r;
    auto in = r.elems("in", {3});
    Scu::Flags out(r.as, "mask", 1);
    auto check = [&](CompareOp op, std::uint32_t ref, bool want) {
        r.scu->bitmaskConstructor(in, 1, op, ref, out);
        EXPECT_EQ(out[0] != 0, want);
    };
    check(CompareOp::Eq, 3, true);
    check(CompareOp::Ne, 3, false);
    check(CompareOp::Lt, 4, true);
    check(CompareOp::Le, 3, true);
    check(CompareOp::Gt, 3, false);
    check(CompareOp::Ge, 3, true);
}

TEST(ScuOps, DataCompactionFigure6)
{
    // Figure 6: source A B C with bitmask 1 0 1 -> A C.
    Rig r;
    auto in = r.elems("in", {'A', 'B', 'C'});
    auto mask = r.flags("mask", {1, 0, 1});
    Scu::Elems out(r.as, "out", 3);
    std::size_t n = 0;
    auto st = r.scu->dataCompaction(in, 3, &mask, out, n);
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(out[0], static_cast<std::uint32_t>('A'));
    EXPECT_EQ(out[1], static_cast<std::uint32_t>('C'));
    EXPECT_EQ(st.elemsOut, 2u);
}

TEST(ScuOps, DataCompactionNullMaskKeepsAll)
{
    Rig r;
    auto in = r.elems("in", {1, 2, 3, 4});
    Scu::Elems out(r.as, "out", 4);
    std::size_t n = 0;
    r.scu->dataCompaction(in, 4, nullptr, out, n);
    EXPECT_EQ(collect(out, n), (std::vector<std::uint32_t>{1, 2, 3,
                                                           4}));
}

TEST(ScuOps, AccessCompactionFigure6)
{
    // Figure 6: indexes 1 7 2 with bitmask 0 1 1 gathers
    // data[7], data[2].
    Rig r;
    std::vector<std::uint32_t> data(10);
    std::iota(data.begin(), data.end(), 100);
    auto d = r.elems("data", data);
    auto idx = r.elems("idx", {1, 7, 2});
    auto mask = r.flags("mask", {0, 1, 1});
    Scu::Elems out(r.as, "out", 3);
    std::size_t n = 0;
    r.scu->accessCompaction(d, idx, 3, &mask, out, n);
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(out[0], 107u);
    EXPECT_EQ(out[1], 102u);
}

TEST(ScuOps, ReplicationCompactionFigure6)
{
    // Figure 6: A B C with counts 4 2 1 and bitmask 1 1 0
    // -> A A A A B B.
    Rig r;
    auto in = r.elems("in", {'A', 'B', 'C'});
    auto cnt = r.elems("cnt", {4, 2, 1});
    auto mask = r.flags("mask", {1, 1, 0});
    Scu::Elems out(r.as, "out", 8);
    std::size_t n = 0;
    r.scu->replicationCompaction(in, cnt, 3, &mask, out, n);
    EXPECT_EQ(collect(out, n),
              (std::vector<std::uint32_t>{'A', 'A', 'A', 'A', 'B',
                                          'B'}));
}

TEST(ScuOps, AccessExpansionCompactionFigure6)
{
    // Gather runs data[idx[i] .. idx[i]+count[i]).
    Rig r;
    std::vector<std::uint32_t> data(16);
    std::iota(data.begin(), data.end(), 0);
    auto d = r.elems("data", data);
    auto idx = r.elems("idx", {3, 2, 10});
    auto cnt = r.elems("cnt", {3, 2, 1});
    Scu::Elems out(r.as, "out", 8);
    std::size_t n = 0;
    r.scu->accessExpansionCompaction(d, idx, cnt, 3, nullptr, out, n);
    EXPECT_EQ(collect(out, n),
              (std::vector<std::uint32_t>{3, 4, 5, 2, 3, 10}));
}

TEST(ScuOps, AccessExpansionWithMaskSkipsRuns)
{
    Rig r;
    std::vector<std::uint32_t> data{9, 8, 7, 6};
    auto d = r.elems("data", data);
    auto idx = r.elems("idx", {0, 2});
    auto cnt = r.elems("cnt", {2, 2});
    auto mask = r.flags("mask", {0, 1});
    Scu::Elems out(r.as, "out", 4);
    std::size_t n = 0;
    r.scu->accessExpansionCompaction(d, idx, cnt, 2, &mask, out, n);
    EXPECT_EQ(collect(out, n), (std::vector<std::uint32_t>{7, 6}));
}

TEST(ScuOps, AppendSemantics)
{
    Rig r;
    auto a = r.elems("a", {1, 2});
    auto b = r.elems("b", {3});
    Scu::Elems out(r.as, "out", 4);
    std::size_t n = 0;
    r.scu->dataCompaction(a, 2, nullptr, out, n);
    r.scu->dataCompaction(b, 1, nullptr, out, n);
    EXPECT_EQ(collect(out, n), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(ScuOps, OutputOverflowPanics)
{
    Rig r;
    auto in = r.elems("in", {1, 2, 3});
    Scu::Elems out(r.as, "out", 1);
    std::size_t n = 0;
    EXPECT_DEATH(r.scu->dataCompaction(in, 3, nullptr, out, n),
                 "overflow");
}

// ----------------------------------------------------------------
// Filtering (Section 4.2).
// ----------------------------------------------------------------

TEST(ScuFilter, UniqueRemovesDuplicates)
{
    Rig r;
    auto in = r.elems("in", {7, 3, 7, 7, 3, 9});
    Scu::Elems out(r.as, "out", 6);

    std::vector<std::uint8_t> keep;
    OpOptions o1;
    o1.writeOutput = false;
    o1.filterMode = FilterMode::Unique;
    o1.keepOut = &keep;
    std::size_t ignore = 0;
    auto st = r.scu->dataCompaction(in, 6, nullptr, out, ignore, o1);
    EXPECT_EQ(st.filtered, 3u);
    EXPECT_EQ(keep,
              (std::vector<std::uint8_t>{1, 1, 0, 0, 0, 1}));

    OpOptions o2;
    o2.keep = &keep;
    std::size_t n = 0;
    r.scu->dataCompaction(in, 6, nullptr, out, n, o2);
    EXPECT_EQ(collect(out, n), (std::vector<std::uint32_t>{7, 3, 9}));
}

TEST(ScuFilter, BestCostKeepsImprovements)
{
    Rig r;
    // Element 5 seen with costs 10, 8, 12, 8: keep the first and
    // the improvement; drop the worse and the tie.
    auto in = r.elems("in", {5, 5, 5, 5});
    Scu::Elems out(r.as, "out", 4);
    std::vector<std::uint32_t> costs{10, 8, 12, 8};
    std::vector<std::uint8_t> keep;
    OpOptions o1;
    o1.writeOutput = false;
    o1.filterMode = FilterMode::BestCost;
    o1.keepOut = &keep;
    o1.costs = costs;
    std::size_t ignore = 0;
    r.scu->dataCompaction(in, 4, nullptr, out, ignore, o1);
    EXPECT_EQ(keep, (std::vector<std::uint8_t>{1, 1, 0, 0}));
}

TEST(ScuFilter, ResetForgetsHistory)
{
    Rig r;
    auto in = r.elems("in", {4});
    Scu::Elems out(r.as, "out", 1);
    std::vector<std::uint8_t> keep;
    OpOptions o1;
    o1.writeOutput = false;
    o1.filterMode = FilterMode::Unique;
    o1.keepOut = &keep;
    std::size_t ig = 0;
    r.scu->dataCompaction(in, 1, nullptr, out, ig, o1);
    EXPECT_EQ(keep[0], 1);
    r.scu->dataCompaction(in, 1, nullptr, out, ig, o1);
    EXPECT_EQ(keep[0], 0); // duplicate across ops, table persists
    r.scu->uniqueFilter().reset();
    r.scu->dataCompaction(in, 1, nullptr, out, ig, o1);
    EXPECT_EQ(keep[0], 1);
}

TEST(ScuFilter, CollisionsGiveFalseNegativesOnly)
{
    // With a tiny hash, evictions may let duplicates through (false
    // negatives) but a first occurrence is never dropped before any
    // eviction of its entry can happen... verified statistically:
    // every value the filter keeps at first sight must be correct.
    Rig r;
    Rng rng(13);
    std::vector<std::uint32_t> vals;
    for (int i = 0; i < 5000; ++i)
        vals.push_back(static_cast<std::uint32_t>(rng.below(1000)));
    auto in = r.elems("in", vals);
    Scu::Elems out(r.as, "out", vals.size());
    std::vector<std::uint8_t> keep;
    OpOptions o1;
    o1.writeOutput = false;
    o1.filterMode = FilterMode::Unique;
    o1.keepOut = &keep;
    std::size_t ig = 0;
    r.scu->uniqueFilter().reset();
    auto st = r.scu->dataCompaction(in, vals.size(), nullptr, out,
                                    ig, o1);

    // All kept elements must include every distinct value at least
    // once (no false positives: a first sighting always passes).
    std::set<std::uint32_t> kept, all(vals.begin(), vals.end());
    for (std::size_t i = 0; i < vals.size(); ++i) {
        if (keep[i])
            kept.insert(vals[i]);
    }
    EXPECT_EQ(kept, all);
    // And the filter removed the bulk of the ~4000 duplicates.
    EXPECT_GT(st.filtered, 3000u);
}

// ----------------------------------------------------------------
// Grouping (Section 4.3).
// ----------------------------------------------------------------

TEST(ScuGroup, OrderIsAPermutation)
{
    Rig r;
    Rng rng(17);
    std::vector<std::uint32_t> vals;
    for (int i = 0; i < 3000; ++i)
        vals.push_back(static_cast<std::uint32_t>(rng.below(8000)));
    auto in = r.elems("in", vals);
    Scu::Elems out(r.as, "out", vals.size());
    std::vector<std::uint32_t> order;
    OpOptions g1;
    g1.writeOutput = false;
    g1.makeGroups = true;
    g1.orderOut = &order;
    std::size_t ig = 0;
    r.scu->groupingTable().reset();
    r.scu->dataCompaction(in, vals.size(), nullptr, out, ig, g1);

    ASSERT_EQ(order.size(), vals.size());
    std::vector<std::uint32_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(ScuGroup, ImprovesDestinationLineLocality)
{
    Rig r;
    Rng rng(23);
    std::vector<std::uint32_t> vals;
    for (int i = 0; i < 8000; ++i)
        vals.push_back(static_cast<std::uint32_t>(rng.below(4096)));
    auto in = r.elems("in", vals);
    Scu::Elems out(r.as, "out", vals.size());

    std::vector<std::uint32_t> order;
    OpOptions g1;
    g1.writeOutput = false;
    g1.makeGroups = true;
    g1.orderOut = &order;
    std::size_t ig = 0;
    r.scu->groupingTable().reset();
    r.scu->dataCompaction(in, vals.size(), nullptr, out, ig, g1);

    OpOptions s2;
    s2.order = &order;
    std::size_t n = 0;
    r.scu->dataCompaction(in, vals.size(), nullptr, out, n, s2);
    ASSERT_EQ(n, vals.size());

    auto same_line_pairs = [&](auto get) {
        std::size_t same = 0;
        for (std::size_t i = 1; i < vals.size(); ++i) {
            if (get(i) / 32 == get(i - 1) / 32)
                ++same;
        }
        return same;
    };
    std::size_t before = same_line_pairs(
        [&](std::size_t i) { return vals[i]; });
    std::size_t after = same_line_pairs(
        [&](std::size_t i) { return out[i]; });
    EXPECT_GT(after, 2 * std::max<std::size_t>(before, 1));
}

TEST(ScuGroup, GroupSizeBoundsRunLengths)
{
    // Elements of a single line key are emitted in bursts of at
    // most groupSize.
    Rig r;
    std::vector<std::uint32_t> vals(64, 7); // same line for all
    auto in = r.elems("in", vals);
    Scu::Elems out(r.as, "out", vals.size());
    std::vector<std::uint32_t> order;
    OpOptions g1;
    g1.writeOutput = false;
    g1.makeGroups = true;
    g1.orderOut = &order;
    std::size_t ig = 0;
    r.scu->groupingTable().reset();
    r.scu->dataCompaction(in, vals.size(), nullptr, out, ig, g1);
    ASSERT_EQ(order.size(), vals.size());
    // Emission order must stay index-ordered within the single
    // group key (eviction-by-fullness preserves arrival order).
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]);
}

// ----------------------------------------------------------------
// Timing behaviour.
// ----------------------------------------------------------------

TEST(ScuTiming, ThroughputScalesWithWidth)
{
    auto run_width = [](unsigned width) {
        sim::ClockDomain clk(1e9);
        stats::StatGroup root("t");
        sim::Simulation sim;
        mem::AddressSpace as(1ULL << 32);
        mem::MemSystemParams mp;
        mp.dram = mem::DramParams::gddr5();
        mem::MemSystem mem(mp, clk, &root);
        ScuParams sp = ScuParams::forGtx980();
        sp.pipelineWidth = width;
        Scu scu(sp, mem, sim, as, &root);

        std::vector<std::uint32_t> vals(100000, 1);
        Scu::Elems in(as, "in", vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i)
            in[i] = vals[i];
        Scu::Elems out(as, "out", vals.size());
        std::size_t n = 0;
        auto st = scu.dataCompaction(in, vals.size(), nullptr, out,
                                     n);
        return st.cycles();
    };
    Tick w1 = run_width(1);
    Tick w4 = run_width(4);
    EXPECT_GT(w1, 3 * w4);
}

TEST(ScuTiming, OpsAdvanceTheSharedClock)
{
    Rig r;
    auto in = r.elems("in", {1, 2, 3});
    Scu::Elems out(r.as, "out", 3);
    std::size_t n = 0;
    Tick before = r.sim.now();
    r.scu->dataCompaction(in, 3, nullptr, out, n);
    EXPECT_GT(r.sim.now(), before);
}

TEST(ScuTiming, TotalsAccumulate)
{
    Rig r;
    auto in = r.elems("in", {1, 2, 3, 4});
    Scu::Elems out(r.as, "out", 4);
    std::size_t n = 0;
    r.scu->dataCompaction(in, 4, nullptr, out, n);
    n = 0;
    r.scu->dataCompaction(in, 4, nullptr, out, n);
    EXPECT_EQ(r.scu->totals().ops, 2u);
    EXPECT_EQ(r.scu->totals().elements, 8u);
    EXPECT_GT(r.scu->totals().busyCycles, 0u);
}

// ----------------------------------------------------------------
// Hash table units.
// ----------------------------------------------------------------

TEST(HashTable, GeometryFromConfig)
{
    HashConfig cfg{1 << 20, 16, 4};
    EXPECT_EQ(cfg.numSets(), (1u << 20) / 64);
    mem::AddressSpace as(1ULL << 28);
    UniqueFilterTable t(cfg, as, "h");
    EXPECT_EQ(t.numSets(), cfg.numSets());
    EXPECT_LT(t.setAddr(t.numSets() - 1),
              t.baseAddr() + cfg.sizeBytes);
}

TEST(HashTable, UniqueProbeSemantics)
{
    mem::AddressSpace as(1ULL << 28);
    UniqueFilterTable t({4096, 4, 4}, as, "h");
    ProbeTraffic tr;
    EXPECT_TRUE(t.probe(42, tr));
    EXPECT_TRUE(tr.wrote);
    EXPECT_FALSE(t.probe(42, tr));
    EXPECT_FALSE(tr.wrote);
    t.reset();
    EXPECT_TRUE(t.probe(42, tr));
}

TEST(HashTable, BestCostProbeSemantics)
{
    mem::AddressSpace as(1ULL << 28);
    BestCostFilterTable t({4096, 4, 8}, as, "h");
    ProbeTraffic tr;
    EXPECT_TRUE(t.probe(9, 100, tr));
    EXPECT_FALSE(t.probe(9, 100, tr)); // tie: not better
    EXPECT_FALSE(t.probe(9, 150, tr)); // worse
    EXPECT_TRUE(t.probe(9, 50, tr));   // better
    EXPECT_FALSE(t.probe(9, 60, tr));  // worse than the update
}

TEST(HashTable, GroupingFlushEmitsEverything)
{
    mem::AddressSpace as(1ULL << 28);
    GroupingTable t({4096, 4, 32}, 8, as, "h");
    std::vector<std::uint32_t> order;
    ProbeTraffic tr;
    for (std::uint32_t i = 0; i < 20; ++i)
        t.probe(i % 3, i, order, tr);
    t.flush(order);
    EXPECT_EQ(order.size(), 20u);
}
