/**
 * @file
 * Tests of the scusimd resident simulation service: the versioned
 * frame protocol, and the four robustness properties the service
 * exists to provide —
 *
 *  1. malformed / oversized / truncated frames are rejected
 *     per-connection without daemon death (fuzz-style corpus);
 *  2. a full admission queue sheds with a typed Overloaded reply the
 *     client maps to a failure, never a hang;
 *  3. a client that vanishes mid-run has its work cancelled through
 *     the cooperative-cancellation hooks;
 *  4. a daemon killed at any instant (SIGTERM drain or kill -9
 *     mid-run) leaves a journal a restarted daemon re-executes, and
 *     daemon-served results stay byte-identical to locally simulated
 *     ones.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/executor.hh"
#include "harness/plan.hh"
#include "harness/run_cache.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"

using namespace scusim;
using namespace scusim::service;
using scusim::harness::Primitive;
using scusim::harness::RunConfig;
using scusim::harness::RunRecord;
using scusim::harness::ScuMode;

namespace
{

/** Fresh scratch tree (socket, cache, journal) for one test body. */
class ServiceDirs
{
  public:
    explicit ServiceDirs(const char *name)
        : root(::testing::TempDir() + "scusim_service_" + name)
    {
        std::filesystem::remove_all(root);
        std::filesystem::create_directories(root + "/journal");
        ::setenv("SCUSIM_CACHE_DIR", (root + "/cache").c_str(), 1);
        harness::clearRunMemo();
    }

    ~ServiceDirs()
    {
        ::unsetenv("SCUSIM_CACHE_DIR");
        std::filesystem::remove_all(root);
        harness::clearRunMemo();
    }

    std::string socket() const { return root + "/sock"; }
    std::string journal() const { return root + "/journal"; }

    std::size_t
    journalEntries() const
    {
        std::size_t n = 0;
        for (const auto &e :
             std::filesystem::directory_iterator(journal()))
            if (e.path().extension() == ".req")
                ++n;
        return n;
    }

    const std::string root;
};

/** A run small enough to finish in milliseconds. */
RunConfig
tinyConfig()
{
    RunConfig cfg;
    cfg.systemName = "TX1";
    cfg.primitive = Primitive::Bfs;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    cfg.mode = ScuMode::ScuEnhanced;
    cfg.alg.mode = cfg.mode;
    return cfg;
}

/**
 * A run that grinds for many seconds unless cancelled: PageRank with
 * a huge sweep count and a convergence bound it can never meet.
 */
RunConfig
slowConfig(unsigned iters = 100000)
{
    RunConfig cfg;
    cfg.systemName = "TX1";
    cfg.primitive = Primitive::Pr;
    cfg.dataset = "ca";
    cfg.scale = 0.05;
    cfg.alg.mode = cfg.mode;
    cfg.alg.prMaxIterations = iters;
    cfg.alg.prEpsilon = 0;
    return cfg;
}

ServerOptions
baseOptions(const ServiceDirs &dirs)
{
    ServerOptions o;
    o.socketPath = dirs.socket();
    o.journalDir = dirs.journal();
    o.workers = 2;
    o.drainSeconds = 0.2;
    return o;
}

ClientOptions
clientFor(const ServiceDirs &dirs, unsigned retries = 0)
{
    ClientOptions c;
    c.socketPath = dirs.socket();
    c.maxRetries = retries;
    c.backoffBaseMs = 20;
    c.backoffCapMs = 200;
    c.deadlineSeconds = 120;
    return c;
}

/** Poll @p pred every 10 ms for up to @p seconds. */
bool
waitFor(double seconds, const std::function<bool()> &pred)
{
    const int tries = static_cast<int>(seconds * 100);
    for (int i = 0; i < tries; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

/** Raw blocking connection for protocol-level poking. */
class RawConn
{
  public:
    explicit RawConn(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~RawConn() { close(); }

    void
    close()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }

    bool ok() const { return fd >= 0; }

    bool
    sendBytes(const std::string &bytes) const
    {
        return fd >= 0 &&
               ::send(fd, bytes.data(), bytes.size(),
                      MSG_NOSIGNAL) ==
                   static_cast<ssize_t>(bytes.size());
    }

    /**
     * Read until EOF or @p seconds elapse; returns the bytes seen.
     * Used to observe Reject replies and connection drops.
     */
    std::string
    drain(double seconds) const
    {
        std::string got;
        char buf[4096];
        for (int i = 0; i < static_cast<int>(seconds * 100); ++i) {
            pollfd p{fd, POLLIN, 0};
            if (::poll(&p, 1, 10) <= 0)
                continue;
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0)
                break;
            got.append(buf, static_cast<std::size_t>(n));
        }
        return got;
    }

    /** True when the server closed its side within @p seconds. */
    bool
    closedBy(double seconds) const
    {
        char buf[256];
        for (int i = 0; i < static_cast<int>(seconds * 100); ++i) {
            pollfd p{fd, POLLIN, 0};
            if (::poll(&p, 1, 10) <= 0)
                continue;
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n == 0)
                return true;
            if (n < 0)
                return errno != EAGAIN && errno != EWOULDBLOCK;
        }
        return false;
    }

    int fd = -1;
};

} // namespace

// ---------------------------------------------------------------
// Protocol layer
// ---------------------------------------------------------------

TEST(ServiceProtocol, FrameRoundTripAndIncrementalParse)
{
    const std::string payload = "hello frames";
    const std::string bytes =
        encodeFrame(FrameType::Submit, payload);
    ASSERT_EQ(bytes.size(), frameHeaderBytes + payload.size());

    // Feed the frame one byte at a time: NeedMore until complete.
    std::string buf;
    Frame f;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        buf.push_back(bytes[i]);
        EXPECT_EQ(parseFrame(buf, f), FrameStatus::NeedMore)
            << "at byte " << i;
    }
    buf.push_back(bytes.back());
    ASSERT_EQ(parseFrame(buf, f), FrameStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Submit);
    EXPECT_EQ(f.payload, payload);
    EXPECT_TRUE(buf.empty()) << "frame bytes not consumed";

    // Two concatenated frames parse back to back.
    buf = encodeFrame(FrameType::Health, "") +
          encodeFrame(FrameType::Submit, "x");
    ASSERT_EQ(parseFrame(buf, f), FrameStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Health);
    ASSERT_EQ(parseFrame(buf, f), FrameStatus::Ok);
    EXPECT_EQ(f.payload, "x");
}

TEST(ServiceProtocol, MalformedFramesAreRejectedNotGuessed)
{
    Frame f;
    std::string why;

    // Bad magic is rejected from the very first divergent byte —
    // before a full header ever arrives.
    std::string buf = "G";
    EXPECT_EQ(parseFrame(buf, f, &why), FrameStatus::Malformed);
    EXPECT_EQ(why, "bad magic");

    auto mangled = [](std::size_t at, char to) {
        std::string b = encodeFrame(FrameType::Submit, "payload");
        b[at] = to;
        return b;
    };
    buf = mangled(0, 'X'); // magic
    EXPECT_EQ(parseFrame(buf, f, &why), FrameStatus::Malformed);
    buf = mangled(4, 0x7F); // protocol version
    EXPECT_EQ(parseFrame(buf, f, &why), FrameStatus::Malformed);
    EXPECT_EQ(why, "unsupported protocol version");
    buf = mangled(6, 0x55); // frame type
    EXPECT_EQ(parseFrame(buf, f, &why), FrameStatus::Malformed);
    EXPECT_EQ(why, "unknown frame type");
    buf = mangled(11, 0x7F); // length high byte -> > maxFramePayload
    EXPECT_EQ(parseFrame(buf, f, &why), FrameStatus::Malformed);
    EXPECT_EQ(why, "oversized frame");
}

TEST(ServiceProtocol, RunRequestRoundTripsEveryField)
{
    RunRequest req;
    req.cfg = slowConfig(123);
    req.cfg.seed = 99;
    req.cfg.alg.source = 7;
    req.cfg.alg.ssspDelta = 3;
    req.cfg.deviceCount = 2;
    req.cfg.sharded = true;
    req.cfg.guards.tickBudget = 1'000'000;
    req.cfg.guards.stallWindow = 500;
    req.deadlineMs = 45'000;

    RunRequest back;
    std::string err;
    ASSERT_TRUE(decodeRunRequest(encodeRunRequest(req), back, err))
        << err;
    EXPECT_EQ(harness::runKey(back.cfg), harness::runKey(req.cfg));
    EXPECT_EQ(back.cfg.alg.prMaxIterations, 123u);
    EXPECT_EQ(back.cfg.alg.prEpsilon, 0.0);
    EXPECT_EQ(back.cfg.guards.tickBudget, Tick{1'000'000});
    EXPECT_EQ(back.cfg.guards.stallWindow, Tick{500});
    EXPECT_EQ(back.deadlineMs, 45'000u);
    EXPECT_EQ(back.cfg.alg.mode, back.cfg.mode);
}

TEST(ServiceProtocol, RunRequestRejectsMalformedFields)
{
    RunRequest req;
    req.cfg = tinyConfig();
    const std::string good = encodeRunRequest(req);

    RunRequest back;
    std::string err;
    // A corpus of field-level corruptions: every one must fail with
    // a reason, never crash or half-fill the output.
    const std::vector<std::string> corpus = {
        "",
        "garbage",
        "scusim-request 999\n" + good.substr(good.find('\n') + 1),
        good.substr(0, good.size() - 5), // missing terminator
        // primitive / mode / scale / deviceCount out of range:
        [&] {
            std::string s = good;
            s.replace(s.find("primitive BFS"), 13, "primitive XXX");
            return s;
        }(),
        [&] {
            std::string s = good;
            s.replace(s.find("mode scu-enhanced"), 17,
                      "mode warp-drive!!");
            return s;
        }(),
        [&] {
            std::string s = good;
            const auto at = s.find("deviceCount 1");
            s.replace(at, 13, "deviceCount 0");
            return s;
        }(),
    };
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_FALSE(decodeRunRequest(corpus[i], back, err))
            << "corpus entry " << i << " decoded";
}

TEST(ServiceProtocol, RejectAndHealthRoundTrip)
{
    RejectInfo r;
    r.kind = FailureKind::Overloaded;
    r.message = "queue full\nand a second line";
    RejectInfo back;
    ASSERT_TRUE(decodeReject(encodeReject(r), back));
    EXPECT_EQ(back.kind, FailureKind::Overloaded);
    EXPECT_EQ(back.message, r.message);
    EXPECT_TRUE(isTransientFailure(back.kind));

    HealthInfo h;
    h.requestsAccepted = 5;
    h.overloadShed = 2;
    h.draining = 1;
    HealthInfo hb;
    ASSERT_TRUE(decodeHealth(encodeHealth(h), hb));
    EXPECT_EQ(hb.requestsAccepted, 5u);
    EXPECT_EQ(hb.overloadShed, 2u);
    EXPECT_EQ(hb.draining, 1u);
    EXPECT_FALSE(decodeHealth("ok 1\n", hb));
}

// ---------------------------------------------------------------
// Served results are byte-identical to local simulation
// ---------------------------------------------------------------

TEST(Service, ServedRunsMatchLocalSimulationByteForByte)
{
    ServiceDirs dirs("bytes");
    const RunConfig cfg = tinyConfig();

    // Local ground truth, outside every cache tier.
    auto local = harness::runPlan(
        harness::ExperimentPlan().add(cfg),
        {.jobs = 1, .memoize = false});
    ASSERT_EQ(local.failures(), 0u);
    const std::string want =
        harness::encodeRunRecord(local.records().at(0));

    Server server(baseOptions(dirs));
    ASSERT_TRUE(server.start());
    ServiceClient client(clientFor(dirs));

    const RunRecord cold = client.submit(cfg);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(harness::encodeRunRecord(cold), want);

    const RunRecord warm = client.submit(cfg);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(harness::encodeRunRecord(warm), want);

    const HealthInfo h = server.healthSnapshot();
    EXPECT_EQ(h.requestsCompleted, 2u);
    EXPECT_EQ(h.requestsFailed, 0u);
    server.stop();

    // A fresh daemon over the same cache dir serves it from disk,
    // still byte-identical (the cross-restart warm path).
    harness::clearRunMemo();
    Server server2(baseOptions(dirs));
    ASSERT_TRUE(server2.start());
    const RunRecord rewarm = ServiceClient(clientFor(dirs)).submit(cfg);
    ASSERT_TRUE(rewarm.ok) << rewarm.error;
    EXPECT_EQ(harness::encodeRunRecord(rewarm), want);
    server2.stop();
}

// ---------------------------------------------------------------
// Property 1: malformed frames never kill the daemon
// ---------------------------------------------------------------

TEST(Service, MalformedFrameCorpusNeverKillsTheDaemon)
{
    ServiceDirs dirs("fuzz");
    Server server(baseOptions(dirs));
    ASSERT_TRUE(server.start());

    // Frame-level corpus: each entry poisons its own connection and
    // must leave the daemon serving.
    std::string huge = encodeFrame(FrameType::Submit, "x");
    huge[11] = 0x7F; // declared length far beyond maxFramePayload
    const std::vector<std::string> corpus = {
        "GET / HTTP/1.1\r\n\r\n",          // wrong protocol entirely
        std::string(1, '\x00'),            // bad magic, single byte
        std::string(64, '\xFF'),           // bad magic, bulk garbage
        [] {                               // wrong protocol version
            std::string b = encodeFrame(FrameType::Health, "");
            b[4] = 0x7E;
            return b;
        }(),
        [] {                               // unknown frame type
            std::string b = encodeFrame(FrameType::Health, "");
            b[6] = 0x44;
            return b;
        }(),
        huge,                              // oversized declared length
        // reply frame sent to the server:
        encodeFrame(FrameType::Result, "i am not a server"),
    };

    for (std::size_t i = 0; i < corpus.size(); ++i) {
        RawConn conn(dirs.socket());
        ASSERT_TRUE(conn.ok()) << "daemon gone before entry " << i;
        ASSERT_TRUE(conn.sendBytes(corpus[i])) << "entry " << i;
        EXPECT_TRUE(conn.closedBy(5.0))
            << "entry " << i << " did not get the connection dropped";
        ASSERT_TRUE(server.running())
            << "corpus entry " << i << " killed the daemon";
    }

    // A truncated frame followed by an abrupt close: no reply owed,
    // no crash.
    {
        RawConn conn(dirs.socket());
        ASSERT_TRUE(conn.ok());
        const std::string frame =
            encodeFrame(FrameType::Submit,
                        encodeRunRequest({tinyConfig(), 0}));
        ASSERT_TRUE(conn.sendBytes(frame.substr(0, frame.size() / 2)));
        conn.close();
    }

    // A well-formed frame whose Submit payload is garbage: typed
    // Invariant reject, connection kept open and usable.
    {
        RawConn conn(dirs.socket());
        ASSERT_TRUE(conn.ok());
        ASSERT_TRUE(conn.sendBytes(
            encodeFrame(FrameType::Submit, "not a run request")));
        std::string got = conn.drain(5.0);
        Frame f;
        ASSERT_EQ(parseFrame(got, f), FrameStatus::Ok);
        ASSERT_EQ(f.type, FrameType::Reject);
        RejectInfo info;
        ASSERT_TRUE(decodeReject(f.payload, info));
        EXPECT_EQ(info.kind, FailureKind::Invariant);
    }

    // After the whole corpus the daemon still serves real work.
    ASSERT_TRUE(server.running());
    const RunRecord rec =
        ServiceClient(clientFor(dirs)).submit(tinyConfig());
    EXPECT_TRUE(rec.ok) << rec.error;
    const HealthInfo h = server.healthSnapshot();
    EXPECT_GE(h.framesRejected, corpus.size());
    server.stop();
}

// ---------------------------------------------------------------
// Property 2: bounded admission, typed Overloaded shed
// ---------------------------------------------------------------

TEST(Service, OverloadShedsWithTypedReplyNotAHang)
{
    ServiceDirs dirs("overload");
    ServerOptions so = baseOptions(dirs);
    so.workers = 1;
    so.maxQueueDepth = 1;
    Server server(so);
    ASSERT_TRUE(server.start());

    // A: occupies the single worker. B: fills the queue.
    std::thread tA([&] {
        ServiceClient(clientFor(dirs)).submit(slowConfig());
    });
    ASSERT_TRUE(waitFor(30, [&] {
        return server.healthSnapshot().inFlight >= 1;
    }));
    std::thread tB([&] {
        ServiceClient(clientFor(dirs)).submit(slowConfig(99999));
    });
    ASSERT_TRUE(waitFor(30, [&] {
        return server.healthSnapshot().queueDepth >= 1;
    }));

    // C: must be shed promptly with a typed Overloaded failure.
    ClientOptions c = clientFor(dirs);
    c.deadlineSeconds = 30;
    const RunRecord shed = ServiceClient(c).submit(tinyConfig());
    ASSERT_FALSE(shed.ok);
    ASSERT_TRUE(shed.failure.has_value());
    EXPECT_EQ(*shed.failure, FailureKind::Overloaded);
    EXPECT_GE(server.healthSnapshot().overloadShed, 1u);

    // Shutdown sheds the queued run (typed, journaled) and
    // force-cancels the in-flight one after the drain budget.
    server.stop();
    tA.join();
    tB.join();
    EXPECT_GE(dirs.journalEntries(), 1u)
        << "shed/cancelled work lost from the journal";
}

// ---------------------------------------------------------------
// Property 3: a vanished client cancels its run
// ---------------------------------------------------------------

TEST(Service, DisconnectedClientCancelsItsRun)
{
    ServiceDirs dirs("vanish");
    ServerOptions so = baseOptions(dirs);
    so.workers = 1;
    Server server(so);
    ASSERT_TRUE(server.start());

    {
        RawConn conn(dirs.socket());
        ASSERT_TRUE(conn.ok());
        ASSERT_TRUE(conn.sendBytes(encodeFrame(
            FrameType::Submit,
            encodeRunRequest({slowConfig(), 0}))));
        ASSERT_TRUE(waitFor(30, [&] {
            return server.healthSnapshot().inFlight >= 1;
        }));
    } // client vanishes mid-run

    EXPECT_TRUE(waitFor(60, [&] {
        return server.healthSnapshot().disconnectCancels >= 1;
    })) << "disconnect not detected";
    EXPECT_TRUE(waitFor(60, [&] {
        return server.healthSnapshot().inFlight == 0;
    })) << "run not cancelled after its client vanished";

    // The worker is free again for real work.
    const RunRecord rec =
        ServiceClient(clientFor(dirs)).submit(tinyConfig());
    EXPECT_TRUE(rec.ok) << rec.error;
    server.stop();
}

// ---------------------------------------------------------------
// Property 4: crash-safe journal, byte-identical re-serving
// ---------------------------------------------------------------

TEST(Service, JournalRecoveryReExecutesAndServesByteIdentically)
{
    ServiceDirs dirs("journal");
    const RunConfig cfg = tinyConfig();

    // Local ground truth.
    auto local = harness::runPlan(
        harness::ExperimentPlan().add(cfg),
        {.jobs = 1, .memoize = false});
    ASSERT_EQ(local.failures(), 0u);
    const std::string want =
        harness::encodeRunRecord(local.records().at(0));

    // Plant a journal entry by hand — exactly what a kill -9 between
    // accept and completion leaves behind — plus one corrupt entry
    // that must be quarantined, not crash recovery.
    {
        RunRequest req{cfg, 0};
        std::ofstream f(dirs.journal() + "/0000000000000001.req",
                        std::ios::binary);
        f << "scusimd-journal " << journalSchemaVersion << '\n'
          << encodeRunRequest(req);
    }
    {
        std::ofstream f(dirs.journal() + "/0000000000000002.req",
                        std::ios::binary);
        f << "scusimd-journal 999\ntrash\n";
    }

    harness::clearRunMemo();
    Server server(baseOptions(dirs));
    ASSERT_TRUE(server.start());
    EXPECT_EQ(server.healthSnapshot().journalRecovered, 1u);
    ASSERT_TRUE(waitFor(60, [&] {
        const HealthInfo h = server.healthSnapshot();
        return h.requestsCompleted + h.requestsFailed >= 1;
    })) << "recovered request never executed";

    // The journal entry is consumed; the corrupt one is quarantined.
    EXPECT_EQ(dirs.journalEntries(), 0u);
    EXPECT_TRUE(std::filesystem::exists(
        dirs.journal() + "/0000000000000002.req.corrupt"));

    // The re-executed result reaches clients byte-identically.
    const RunRecord rec = ServiceClient(clientFor(dirs)).submit(cfg);
    ASSERT_TRUE(rec.ok) << rec.error;
    EXPECT_EQ(harness::encodeRunRecord(rec), want);
    server.stop();
}

#ifdef SCUSIMD_BINARY
TEST(Service, KillNineMidRunThenRestartReservesByteIdentically)
{
    ServiceDirs dirs("killnine");
    const RunConfig cfg = slowConfig(12); // a few seconds of work

    auto spawnDaemon = [&]() -> pid_t {
        const pid_t pid = ::fork();
        if (pid == 0) {
            ::execl(SCUSIMD_BINARY, "scusimd", "--socket",
                    dirs.socket().c_str(), "--journal",
                    dirs.journal().c_str(), "--workers", "2",
                    "--drain", "5", static_cast<char *>(nullptr));
            _exit(127);
        }
        return pid;
    };

    pid_t daemon1 = spawnDaemon();
    ASSERT_GT(daemon1, 0);
    ServiceClient probe(clientFor(dirs));
    HealthInfo h;
    ASSERT_TRUE(waitFor(30, [&] { return probe.health(h); }))
        << "daemon 1 never came up";

    // Submit from a supervised client with retries: it must survive
    // the daemon dying under it and land on the restarted daemon.
    ClientOptions copts = clientFor(dirs, /*retries=*/60);
    copts.backoffBaseMs = 100;
    copts.backoffCapMs = 500;
    copts.deadlineSeconds = 240;
    RunRecord got;
    std::thread submitter(
        [&] { got = ServiceClient(copts).submit(cfg); });

    ASSERT_TRUE(waitFor(60, [&] {
        return probe.health(h) && h.inFlight >= 1;
    })) << "run never started on daemon 1";

    // kill -9 mid-run: no drain, no journal cleanup, nothing.
    ASSERT_EQ(::kill(daemon1, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon1, &status, 0), daemon1);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_GE(dirs.journalEntries(), 1u)
        << "kill -9 lost the accepted request";

    // The restarted daemon recovers the journal, re-executes, and
    // the retrying client completes against it.
    pid_t daemon2 = spawnDaemon();
    ASSERT_GT(daemon2, 0);
    ASSERT_TRUE(waitFor(30, [&] { return probe.health(h); }))
        << "daemon 2 never came up";
    EXPECT_GE(h.journalRecovered, 1u);

    submitter.join();
    // On success the record carries the *daemon's* outcome fields
    // verbatim (that is the byte-identity contract), so the client's
    // own retry count is not asserted here — the crash is proven by
    // the journal entry above and the recovery count below.
    ASSERT_TRUE(got.ok) << got.error;

    // Byte-identical to a local simulation of the same config.
    harness::clearRunMemo();
    ::unsetenv("SCUSIM_CACHE_DIR"); // local truth: no cache tier
    auto local = harness::runPlan(
        harness::ExperimentPlan().add(cfg),
        {.jobs = 1, .memoize = false});
    ::setenv("SCUSIM_CACHE_DIR", (dirs.root + "/cache").c_str(), 1);
    ASSERT_EQ(local.failures(), 0u);
    EXPECT_EQ(harness::encodeRunRecord(got),
              harness::encodeRunRecord(local.records().at(0)));

    // SIGTERM is a graceful exit 0, journal fully consumed.
    ASSERT_EQ(::kill(daemon2, SIGTERM), 0);
    ASSERT_EQ(::waitpid(daemon2, &status, 0), daemon2);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "daemon 2 did not drain cleanly";
    EXPECT_EQ(dirs.journalEntries(), 0u);
}
#endif // SCUSIMD_BINARY
