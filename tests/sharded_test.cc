/**
 * @file
 * Sharded-execution gates.
 *
 * 1-fragment equivalence: forcing the sharded driver with
 * deviceCount == 1 must produce a byte-identical full statistics dump
 * to the plain path — the partitioner copies the parent CSR verbatim,
 * the drivers run the plain runners' loop, and no ghost or exchange
 * code executes. This pins the refactor down: multi-device support
 * may not perturb single-device behavior at all.
 *
 * Multi-device: 2- and 4-device runs must still validate against the
 * serial references on both systems, move boundary traffic over the
 * interconnect, and remain deterministic dump-for-dump.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "harness/runner.hh"

using namespace scusim;
using namespace scusim::harness;

namespace
{

std::string
statsDumpFor(const RunConfig &base, RunResult *out = nullptr)
{
    RunConfig cfg = base;
    std::ostringstream os;
    cfg.dumpStatsTo = &os;
    RunResult r = runPrimitive(cfg);
    EXPECT_TRUE(r.validated)
        << to_string(cfg.primitive) << " on " << cfg.systemName
        << " with " << cfg.deviceCount
        << " device(s) failed functional validation";
    EXPECT_FALSE(os.str().empty());
    if (out)
        *out = r;
    return os.str();
}

RunConfig
baseConfig(Primitive prim, const char *system)
{
    RunConfig cfg;
    cfg.systemName = system;
    cfg.primitive = prim;
    cfg.mode = ScuMode::ScuEnhanced;
    cfg.dataset = "cond";
    cfg.scale = 0.01;
    return cfg;
}

class ShardedGate
    : public ::testing::TestWithParam<
          std::tuple<Primitive, const char *>>
{
};

TEST_P(ShardedGate, OneFragmentMatchesThePlainPathByteForByte)
{
    const auto [prim, system] = GetParam();
    RunConfig cfg = baseConfig(prim, system);

    const std::string plain = statsDumpFor(cfg);

    cfg.sharded = true;
    cfg.deviceCount = 1;
    RunResult r;
    const std::string sharded = statsDumpFor(cfg, &r);

    ASSERT_EQ(plain.size(), sharded.size());
    EXPECT_EQ(plain, sharded)
        << "sharded deviceCount=1 dump diverged from the plain path";
    EXPECT_EQ(r.deviceCount, 1u);
    ASSERT_EQ(r.devices.size(), 1u);
    EXPECT_EQ(r.icnMessages, 0u);
    EXPECT_EQ(r.devices[0].gpuEdgeWork, r.algMetrics.gpuEdgeWork);
}

TEST_P(ShardedGate, TwoAndFourDevicesValidate)
{
    const auto [prim, system] = GetParam();
    for (unsigned numDev : {2u, 4u}) {
        RunConfig cfg = baseConfig(prim, system);
        cfg.deviceCount = numDev;
        RunResult r;
        statsDumpFor(cfg, &r);
        EXPECT_EQ(r.deviceCount, numDev);
        ASSERT_EQ(r.devices.size(), numDev);
        std::uint64_t work = 0;
        for (const DeviceMetrics &dm : r.devices)
            work += dm.gpuEdgeWork;
        EXPECT_EQ(work, r.algMetrics.gpuEdgeWork);
        // A connected frontier cannot stay on one device: some
        // boundary traffic must have crossed the interconnect.
        EXPECT_GT(r.icnMessages, 0u);
        EXPECT_GE(r.icnBytes, 8 * r.icnMessages);
    }
}

TEST_P(ShardedGate, TwoDeviceRunsAreDeterministic)
{
    const auto [prim, system] = GetParam();
    RunConfig cfg = baseConfig(prim, system);
    cfg.deviceCount = 2;

    const std::string first = statsDumpFor(cfg);
    const std::string second = statsDumpFor(cfg);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first, second)
        << "2-device stats dumps diverged between identical runs";
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitivesBothSystems, ShardedGate,
    ::testing::Combine(::testing::Values(Primitive::Bfs,
                                         Primitive::Sssp,
                                         Primitive::Pr),
                       ::testing::Values("GTX980", "TX1")),
    [](const auto &info) {
        return to_string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

} // namespace
