/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, clock
 * domain conversions and the fast-forwarding run loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

using namespace scusim;
using namespace scusim::sim;

TEST(ClockDomain, SecondsConversion)
{
    ClockDomain c(1e9);
    EXPECT_DOUBLE_EQ(c.toSeconds(1000000000), 1.0);
    EXPECT_EQ(c.fromNs(10.0), 10u);
    EXPECT_EQ(c.fromNs(10.5), 11u); // rounds up
}

TEST(ClockDomain, BandwidthCycles)
{
    ClockDomain c(1e9);
    // 128 bytes at 12.8 GB/s = 10 ns = 10 cycles.
    EXPECT_EQ(c.cyclesForBytes(128, 12.8e9), 10u);
}

TEST(EventQueue, FiresInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(q.nextTick(), 10u);
    q.serviceUpTo(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableWithinSameTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&](Tick) { order.push_back(1); });
    q.schedule(5, [&](Tick) { order.push_back(2); });
    q.serviceUpTo(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&](Tick t) {
        ++fired;
        q.schedule(t + 1, [&](Tick) { ++fired; });
    });
    q.serviceUpTo(10);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PartialService)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&](Tick) { ++fired; });
    q.schedule(50, [&](Tick) { ++fired; });
    q.serviceUpTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.nextTick(), 50u);
}

namespace
{

/** A component busy for the first N ticks it is ticked. */
class CountdownClocked : public Clocked
{
  public:
    explicit CountdownClocked(int n) : remaining(n) {}

    void tick(Tick) override { --remaining; ++ticked; }
    bool busy(Tick) const override { return remaining > 0; }

    int remaining;
    int ticked = 0;
};

/** Idle component that wakes once at a fixed tick. */
class SleeperClocked : public Clocked
{
  public:
    explicit SleeperClocked(Tick at) : wake(at) {}

    void
    tick(Tick now) override
    {
        if (now >= wake)
            done = true;
    }

    bool
    busy(Tick now) const override
    {
        return !done && now >= wake;
    }

    Tick
    nextWakeTick() const override
    {
        return done ? tickNever : wake;
    }

    Tick wake;
    bool done = false;
};

} // namespace

TEST(Simulation, RunsClockedUntilDrained)
{
    Simulation s;
    CountdownClocked c(5);
    s.addClocked(&c);
    s.run();
    EXPECT_EQ(c.ticked, 5);
    EXPECT_EQ(c.remaining, 0);
}

TEST(Simulation, FastForwardsIdleGaps)
{
    Simulation s;
    SleeperClocked sleeper(1000000);
    s.addClocked(&sleeper);
    Tick elapsed = s.run();
    // The loop must jump, not crawl: elapsed covers the gap and the
    // component fired at its wake tick.
    EXPECT_TRUE(sleeper.done);
    EXPECT_GE(elapsed, 1000000u);
    EXPECT_LE(elapsed, 1000002u);
}

TEST(Simulation, AdvanceToServicesEvents)
{
    Simulation s;
    int fired = 0;
    s.events().schedule(100, [&](Tick) { ++fired; });
    s.advanceTo(50);
    EXPECT_EQ(fired, 0);
    s.advanceTo(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s.now(), 150u);
    // Going backwards is a no-op.
    s.advanceTo(10);
    EXPECT_EQ(s.now(), 150u);
}

TEST(Simulation, StepAdvancesExactly)
{
    Simulation s;
    s.step(7);
    EXPECT_EQ(s.now(), 7u);
}
